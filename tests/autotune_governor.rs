//! End-to-end test of the online DVFS governor inside a paper-scale campaign:
//! the governor rides the rank-0 meter's region boundaries, actuates the
//! campaign's own cluster, and converges every pipeline stage to an on-grid
//! operating point — with the compute-dominant stage settling at a higher
//! clock than the memory/communication-bound ones (the paper's Figure 5
//! structure, discovered online).

use energy_aware_sim::autotune::{ClusterActuator, Governor, GovernorConfig};
use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::sphsim::{run_campaign_governed, scenario, CampaignConfig, ScenarioRef};
use std::sync::Arc;

fn governed_campaign(case: ScenarioRef, timesteps: u64) -> (Arc<Governor>, f64) {
    let mut config = CampaignConfig::paper_defaults(SystemKind::MiniHpc, case.clone(), 2);
    config.particles_per_rank = 20.0e6;
    config.timesteps = timesteps;
    config.setup_seconds = 5.0;
    config.teardown_seconds = 1.0;

    let mut governor_slot: Option<Arc<Governor>> = None;
    let result = run_campaign_governed(&config, |cluster| {
        let actuator = Arc::new(ClusterActuator::new(cluster.clone()));
        let governor = Arc::new(Governor::new(
            GovernorConfig::edp_hill_climb(case.stage_labels()),
            actuator,
        ));
        governor_slot = Some(Arc::clone(&governor));
        vec![governor]
    });
    (governor_slot.expect("wire closure ran"), result.true_main_loop_energy_j)
}

#[test]
fn governor_converges_every_stage_on_grid() {
    let case = scenario::get("Turb").unwrap();
    let (governor, energy) = governed_campaign(case.clone(), 60);
    assert!(energy > 0.0);

    let model = governor.dvfs().clone();
    let requested = governor.requested_frequencies();
    assert!(!requested.is_empty());
    for f in requested {
        assert!(f >= model.f_min_hz && f <= model.f_max_hz, "out of range: {f} Hz");
        let steps = (f - model.f_min_hz) / model.f_step_hz;
        assert!((steps - steps.round()).abs() < 1e-6, "off grid: {f} Hz");
    }

    let report = governor.report();
    assert_eq!(report.len(), case.stage_labels().len());
    for stage in &report {
        assert!(stage.converged, "stage {} did not converge", stage.label);
        assert!(stage.best_frequency_hz.is_some());
    }
}

#[test]
fn compute_bound_stage_tunes_higher_than_memory_bound_stage() {
    let (governor, _) = governed_campaign(scenario::get("Evr").unwrap(), 60);
    let best = |label: &str| {
        governor
            .best_frequency(label)
            .unwrap_or_else(|| panic!("no tuning state for {label}"))
    };
    let f_momentum = best("MomentumEnergy");
    let f_sync = best("DomainDecompAndSync");
    assert!(
        f_momentum > f_sync,
        "MomentumEnergy ({:.0} MHz) should tune above DomainDecompAndSync ({:.0} MHz)",
        f_momentum / 1.0e6,
        f_sync / 1.0e6
    );
}
