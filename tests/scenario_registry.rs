//! End-to-end test of the open scenario system: a scenario registered by a
//! *downstream* crate — this test — flows through every consumer (name
//! lookup, CPU propagator, paper-scale campaign executor with stage gating)
//! without any further plumbing.
//!
//! This file is its own test binary (own process), so mutating the
//! process-wide registry here cannot perturb other test binaries.

use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::sphsim::{
    run_campaign, scenario, CampaignConfig, CostScale, ParticleSet, Scenario, Simulation, SphStage, ValidationCheck,
};
use std::sync::Arc;

/// A gravitating variant of the blast wave — deliberately a stage mix no
/// built-in scenario has (gravity without stirring, on blast ICs).
#[derive(Debug)]
struct GravitatingBlast;

impl Scenario for GravitatingBlast {
    fn name(&self) -> &'static str {
        "Gravitating Blast"
    }

    fn short_name(&self) -> &'static str {
        "GravBlast"
    }

    fn particles_per_gpu(&self) -> f64 {
        50.0e6
    }

    fn global_particle_options(&self) -> Vec<f64> {
        vec![0.5e9, 1.0e9]
    }

    fn has_gravity(&self) -> bool {
        true
    }

    fn stage_cost_scale(&self, stage: SphStage) -> CostScale {
        match stage {
            SphStage::Gravity => CostScale { flops: 1.3, bytes: 1.1 },
            _ => CostScale::UNIT,
        }
    }

    fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
        scenario::get("Sedov")
            .expect("built-in scenario")
            .initial_conditions(n_target, seed)
    }

    fn validate(&self) -> ValidationCheck {
        // A real check is out of scope for the test double; the gallery only
        // sweeps what is registered at its own runtime.
        ValidationCheck {
            scenario: self.short_name().to_string(),
            observable: "trivial",
            measured: 1.0,
            expected: 1.0,
            acceptance: (0.5, 1.5),
            detail: String::new(),
        }
    }
}

#[test]
fn downstream_registration_flows_through_every_consumer() {
    scenario::register(Arc::new(GravitatingBlast));

    // Name lookup (short, full, case-insensitive) and enumeration.
    let found = scenario::get("gravblast").expect("registered scenario resolvable by name");
    assert_eq!(found.name(), "Gravitating Blast");
    assert!(scenario::get("Gravitating Blast").is_some());
    assert!(scenario::names().contains(&"GravBlast"));
    assert!(scenario::all().iter().any(|s| s.short_name() == "GravBlast"));

    // The CPU propagator runs it, including the gated Gravity stage.
    let mut sim = Simulation::from_scenario(found.clone(), 300, 3);
    let summary = sim.step();
    assert!(summary.dt > 0.0 && summary.total_energy.is_finite());

    // The paper-scale campaign executor runs it with the correct stage gating:
    // Gravity present (gravitating), Turbulence absent (not stirred).
    let mut config = CampaignConfig::paper_defaults(SystemKind::CscsA100, found.clone(), 2);
    config.particles_per_rank = 10.0e6;
    config.timesteps = 2;
    config.setup_seconds = 5.0;
    config.teardown_seconds = 1.0;
    let result = run_campaign(&config);
    let labels: std::collections::BTreeSet<&str> =
        result.rank_reports[0].records.iter().map(|r| r.label.as_str()).collect();
    assert!(labels.contains("Gravity"));
    assert!(!labels.contains("Turbulence"));
    assert!(result.sacct.job_name.contains("gravblast"));
}
