//! System-level trace tests: the 4-rank merge invariant and the exporter
//! round-trip, exercised through the umbrella crate exactly as a downstream
//! user would drive them.
//!
//! The merge test runs a real 4-rank distributed simulation into **one**
//! shared sink and asserts the property the whole design hangs on: sequence
//! numbers come from a single shared atomic, so the per-rank streams arrive
//! already merged into one strictly monotonic total order with correct rank
//! tags — no post-hoc sorting or clock alignment. The round-trip test writes
//! both exporters to disk and validates the artefacts a human would actually
//! open: the Chrome trace parses as Perfetto expects, and every JSONL line
//! decodes back into the event that produced it.

use energy_aware_sim::sphsim::distributed::run_distributed_traced;
use energy_aware_sim::sphsim::scenario;
use energy_aware_sim::telemetry::{self, Event, EventKind};
use std::sync::Arc;

const RANKS: usize = 4;
const STEPS: u64 = 2;

fn traced_four_rank_events() -> (Arc<telemetry::Telemetry>, Vec<Event>) {
    let kh = scenario::get("KH").expect("built-in scenario");
    let sink = Arc::new(telemetry::Telemetry::new());
    let shards = run_distributed_traced(kh, RANKS, 600, 7, STEPS, Arc::clone(&sink));
    assert_eq!(shards.len(), RANKS);
    let events = sink.events_snapshot();
    (sink, events)
}

#[test]
fn four_rank_streams_merge_into_one_strictly_monotonic_order() {
    let (_sink, events) = traced_four_rank_events();
    assert!(!events.is_empty());

    // One shared atomic => strictly monotonic sequence across all ranks.
    for pair in events.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "sequence numbers must be strictly monotonic across ranks: {} then {}",
            pair[0].seq,
            pair[1].seq
        );
    }

    // Every rank contributed stage spans, tagged with its own rank id.
    for rank in 0..RANKS as u32 {
        let spans = events
            .iter()
            .filter(|e| e.rank == rank && matches!(e.kind, EventKind::Span { .. }))
            .count();
        assert!(spans > 0, "rank {rank} recorded no spans");
    }
    let max_rank = events.iter().map(|e| e.rank).max().unwrap();
    assert!(max_rank < RANKS as u32, "rank tag {max_rank} out of range");

    // The health gauges were published once per completed step.
    for gauge in [
        "health.total_energy",
        "health.energy_drift",
        "health.mass_drift",
        "health.momentum_drift",
        "health.dt",
    ] {
        let samples = events.iter().filter(|e| e.name == gauge).count();
        assert_eq!(samples, STEPS as usize, "gauge {gauge}: one sample per step");
    }
}

#[test]
fn exporters_round_trip_through_disk() {
    let dir = std::env::temp_dir().join(format!("sphsim_trace_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let chrome_path = dir.join("trace.json");
    let jsonl_path = dir.join("trace.jsonl");

    let kh = scenario::get("KH").expect("built-in scenario");
    let sink = Arc::new(
        telemetry::Telemetry::new()
            .with_chrome_trace(&chrome_path)
            .with_jsonl(&jsonl_path),
    );
    run_distributed_traced(kh, RANKS, 600, 7, STEPS, Arc::clone(&sink));
    sink.flush();
    let events = sink.events_snapshot();

    // Chrome/Perfetto: the on-disk document must validate structurally and
    // carry the merged stream unchanged.
    let doc = std::fs::read_to_string(&chrome_path).unwrap();
    let digest = telemetry::trace::validate_chrome_trace(&doc).expect("valid Chrome trace");
    assert!(digest.seqs_strictly_monotonic());
    assert!(digest.span_names.iter().any(|n| n == "Step"));
    for rank in 0..RANKS as u32 {
        assert!(digest.ranks.contains(&rank), "rank {rank} missing from the trace");
    }

    // JSONL: one line per event, each decoding back to the original record.
    let stream = std::fs::read_to_string(&jsonl_path).unwrap();
    let lines: Vec<&str> = stream.lines().collect();
    assert_eq!(lines.len(), events.len(), "one JSONL line per recorded event");
    for (event, line) in events.iter().zip(&lines) {
        let decoded = Event::from_jsonl(line).expect("JSONL line decodes");
        assert_eq!(decoded.seq, event.seq);
        assert_eq!(decoded.rank, event.rank);
        assert_eq!(decoded.name, event.name);
        assert_eq!(decoded.kind.tag(), event.kind.tag());
    }

    std::fs::remove_dir_all(&dir).ok();
}
