//! End-to-end integration tests spanning PMT + hwmodel + cluster + slurm +
//! sphsim + analysis: the full measurement chain of the paper on small,
//! fast configurations.

use energy_aware_sim::cluster::{Cluster, RankMapping, SimClockAdapter, SimNodeSensor};
use energy_aware_sim::energy_analysis::device_breakdown::device_breakdown;
use energy_aware_sim::energy_analysis::function_breakdown::function_breakdown;
use energy_aware_sim::energy_analysis::validation::pmt_node_level_energy;
use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::hwmodel::VirtualSysfs;
use energy_aware_sim::pmt::backends::{CrayPmCountersSensor, RaplSensor};
use energy_aware_sim::pmt::{DomainKind, PowerMeter, RankReport};
use energy_aware_sim::sphsim::{run_campaign, scenario, CampaignConfig, ScenarioRef, MAIN_LOOP_LABEL};

fn turb() -> ScenarioRef {
    scenario::get("Turb").expect("built-in scenario")
}

fn quick_campaign(
    system: SystemKind,
    case: ScenarioRef,
    ranks: usize,
    steps: u64,
) -> energy_aware_sim::sphsim::CampaignResult {
    let mut config = CampaignConfig::paper_defaults(system, case, ranks);
    config.timesteps = steps;
    run_campaign(&config)
}

#[test]
fn campaign_energy_is_conserved_across_measurement_paths() {
    let result = quick_campaign(SystemKind::CscsA100, turb(), 8, 5);
    // PMT node-level energy over the loop must match the simulator ground truth.
    let pmt = pmt_node_level_energy(&result.rank_reports, &result.mapping, MAIN_LOOP_LABEL);
    let truth = result.true_main_loop_energy_j;
    assert!((pmt - truth).abs() / truth < 0.02, "PMT {pmt} vs truth {truth}");
    // Slurm covers a strictly larger window.
    assert!(result.sacct.consumed_energy_j > truth);
    // And the job energy ground truth matches sacct within the plugin quantisation.
    assert!((result.sacct.consumed_energy_j - result.true_job_energy_j).abs() / result.true_job_energy_j < 0.02);
}

#[test]
fn device_breakdown_shape_matches_figure2() {
    for system in [SystemKind::LumiG, SystemKind::CscsA100] {
        let ranks = if system == SystemKind::LumiG { 8 } else { 4 };
        let result = quick_campaign(system, turb(), ranks, 5);
        let b = device_breakdown(&result.rank_reports, &result.mapping, MAIN_LOOP_LABEL);
        let p = b.percentages();
        // GPU dominates with roughly three quarters of the node energy.
        assert!(p[0] > 55.0 && p[0] < 92.0, "{}: GPU share {}", system.name(), p[0]);
        // Shares sum to 100 %.
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        // Memory is only separately attributed on LUMI-G.
        if system == SystemKind::LumiG {
            assert!(p[2] > 0.0);
        } else {
            assert_eq!(p[2], 0.0);
        }
        // "Other" is present and smaller than the GPU share.
        assert!(p[3] > 0.0 && p[3] < p[0]);
    }
}

#[test]
fn function_breakdown_shape_matches_figure3() {
    let lumi = quick_campaign(SystemKind::LumiG, turb(), 8, 5);
    let cscs = quick_campaign(SystemKind::CscsA100, turb(), 4, 5);
    let fb_lumi = function_breakdown(&lumi.rank_reports, &lumi.mapping, &[MAIN_LOOP_LABEL]);
    let fb_cscs = function_breakdown(&cscs.rank_reports, &cscs.mapping, &[MAIN_LOOP_LABEL]);

    // MomentumEnergy is the top GPU energy consumer on both systems...
    let top_lumi = fb_lumi.labels_by_energy();
    assert_eq!(top_lumi[0], "MomentumEnergy");
    // ...and its *share* of GPU energy is clearly larger on the AMD system,
    // the paper's indication that the HIP port is less optimised.
    let share_lumi = fb_lumi.gpu_share_percent("MomentumEnergy");
    let share_cscs = fb_cscs.gpu_share_percent("MomentumEnergy");
    assert!(
        share_lumi > share_cscs + 5.0,
        "LUMI share {share_lumi} should exceed CSCS share {share_cscs}"
    );
    assert!(share_cscs > 10.0 && share_cscs < 45.0, "CSCS share {share_cscs}");
    assert!(share_lumi > 30.0 && share_lumi < 65.0, "LUMI share {share_lumi}");
}

#[test]
fn lumi_run_consumes_more_energy_than_cscs_run() {
    // Same global problem (16 x 20M particles vs 8+8), same steps: the LUMI job
    // draws more total energy, as in Figure 2.
    let mut lumi_cfg = CampaignConfig::paper_defaults(SystemKind::LumiG, turb(), 16);
    lumi_cfg.particles_per_rank = 20.0e6;
    lumi_cfg.timesteps = 5;
    let mut cscs_cfg = CampaignConfig::paper_defaults(SystemKind::CscsA100, turb(), 8);
    cscs_cfg.particles_per_rank = 40.0e6;
    cscs_cfg.timesteps = 5;
    let lumi = run_campaign(&lumi_cfg);
    let cscs = run_campaign(&cscs_cfg);
    assert!(
        lumi.true_main_loop_energy_j > cscs.true_main_loop_energy_j,
        "LUMI {} J vs CSCS {} J",
        lumi.true_main_loop_energy_j,
        cscs.true_main_loop_energy_j
    );
}

#[test]
fn frequency_downscaling_improves_domain_sync_but_not_momentum_energy() {
    // The Figure 5 contrast, checked end to end on a tiny sweep.
    let edp_of = |freq: f64| {
        let mut config = CampaignConfig::paper_defaults(SystemKind::MiniHpc, turb(), 2);
        config.particles_per_rank = 450.0f64.powi(3);
        config.timesteps = 3;
        config.gpu_frequency_hz = Some(freq);
        let result = run_campaign(&config);
        let fb = function_breakdown(&result.rank_reports, &result.mapping, &[MAIN_LOOP_LABEL]);
        let edp = |label: &str| {
            let f = fb.function(label).unwrap();
            (f.gpu_j + f.cpu_j + f.mem_j) * f.time_s
        };
        (edp("DomainDecompAndSync"), edp("MomentumEnergy"))
    };
    let (sync_hi, momentum_hi) = edp_of(1410.0e6);
    let (sync_lo, momentum_lo) = edp_of(1005.0e6);
    assert!(
        sync_lo < sync_hi * 0.95,
        "DomainDecompAndSync EDP should improve: {sync_lo} vs {sync_hi}"
    );
    assert!(
        momentum_lo > momentum_hi * 0.95,
        "MomentumEnergy EDP should not improve much: {momentum_lo} vs {momentum_hi}"
    );
}

#[test]
fn rank_reports_round_trip_through_csv_files() {
    let result = quick_campaign(SystemKind::MiniHpc, turb(), 2, 3);
    let dir = std::env::temp_dir().join(format!("energy-aware-sim-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for report in &result.rank_reports {
        let path = dir.join(format!("rank{}.csv", report.rank));
        report.write_csv(&path).unwrap();
        let parsed = RankReport::read_csv(&path).unwrap();
        // The CSV stores fixed-precision values, so compare structurally and
        // numerically within the serialisation precision.
        assert_eq!(parsed.rank, report.rank);
        assert_eq!(parsed.hostname, report.hostname);
        assert_eq!(parsed.records.len(), report.records.len());
        for (a, b) in parsed.records.iter().zip(&report.records) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.iteration, b.iteration);
            assert!((a.duration_s() - b.duration_s()).abs() < 1e-6);
            assert_eq!(a.energy_j.len(), b.energy_j.len());
            for (domain, energy) in &b.energy_j {
                assert!((a.energy(*domain) - energy).abs() < 1e-3);
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_based_backends_read_the_virtual_sysfs_of_a_running_node() {
    // Exercise the full file-based path: simulated node -> virtual sysfs ->
    // RAPL + pm_counters back-ends -> meter -> measured region.
    let cluster = Cluster::new(SystemKind::LumiG, 1);
    let node = cluster.node(0).clone();
    let dir = std::env::temp_dir().join(format!("energy-aware-sim-sysfs-{}", std::process::id()));
    let sysfs = VirtualSysfs::new(&dir, node.clone(), cluster.clock().clone());
    sysfs.materialize().unwrap();

    let meter = PowerMeter::builder()
        .sensor(CrayPmCountersSensor::discover(sysfs.pm_counters_root()).unwrap())
        .sensor(RaplSensor::discover(sysfs.powercap_root()).unwrap())
        .clock(SimClockAdapter::new(cluster.clock().clone()))
        .build();

    meter.start_region("busy").unwrap();
    for gpu in node.gpus() {
        gpu.set_load(1.0);
    }
    cluster.advance(30.0);
    sysfs.refresh().unwrap();
    let record = meter.end_region("busy").unwrap();

    // 8 GCDs at ~280 W for 30 s ≈ 67 kJ of GPU-card energy.
    let gpu = record.energy_by_kind(DomainKind::GpuCard);
    assert!(gpu > 30_000.0 && gpu < 120_000.0, "gpu card energy {gpu}");
    let cpu = record.energy_by_kind(DomainKind::Cpu);
    assert!(cpu > 1_000.0, "cpu energy {cpu}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn per_rank_meters_report_identical_node_counters_on_shared_nodes() {
    // §2: all ranks of a node report the same CPU/node measurement; only one
    // must be counted. Verify the duplication is really there in the raw data.
    let cluster = Cluster::new(SystemKind::CscsA100, 1);
    let mapping = RankMapping::one_rank_per_die(&cluster);
    let meters: Vec<PowerMeter> = mapping
        .placements()
        .iter()
        .map(|p| {
            PowerMeter::builder()
                .sensor(SimNodeSensor::per_card(cluster.node(p.node_index).clone()))
                .clock(SimClockAdapter::new(cluster.clock().clone()))
                .rank(p.rank)
                .build()
        })
        .collect();
    for m in &meters {
        m.start_region("step").unwrap();
    }
    cluster.node(0).cpus()[0].set_load(0.5);
    cluster.advance(10.0);
    let records: Vec<_> = meters.iter().map(|m| m.end_region("step").unwrap()).collect();
    let cpu0 = records[0].energy_by_kind(DomainKind::Cpu);
    assert!(cpu0 > 0.0);
    for r in &records[1..] {
        assert!((r.energy_by_kind(DomainKind::Cpu) - cpu0).abs() < 1e-9);
    }
}
