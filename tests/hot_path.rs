//! Refactor-equivalence and CSR-invariant tests of the flattened SPH hot path.
//!
//! The golden test runs every registered scenario twice — once with the
//! particle storage left in construction order, once Morton-reordered every
//! step — and asserts that the physics agrees per particle to 1e-12: the
//! reorder changes memory layout and summation order, never the result beyond
//! floating-point round-off. The CSR tests pin the structural invariants of
//! the flat neighbour lists.

use energy_aware_sim::sphsim::init::lattice_cube;
use energy_aware_sim::sphsim::physics::neighbors::{build_tree, find_neighbors};
use energy_aware_sim::sphsim::scenario::ScenarioRegistry;
use energy_aware_sim::sphsim::Simulation;

/// Absolute-or-relative agreement to 1e-12.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn morton_reordered_pipeline_matches_construction_order_on_every_scenario() {
    for scenario in ScenarioRegistry::builtin().scenarios() {
        let name = scenario.short_name();
        let mut plain = Simulation::from_scenario(scenario.clone(), 400, 7).with_reorder_interval(0);
        let mut sorted = Simulation::from_scenario(scenario.clone(), 400, 7).with_reorder_interval(1);
        for _ in 0..3 {
            let a = plain.step();
            let b = sorted.step();
            assert!(close(a.dt, b.dt), "{name}: dt diverged ({} vs {})", a.dt, b.dt);
        }
        let pa = plain.particles();
        let pb = sorted.particles();
        assert_eq!(pa.len(), pb.len());
        for original in 0..pa.len() {
            // `plain` never reorders, so its slot IS the construction index;
            // resolve the same particle in the reordered run through the map.
            assert_eq!(plain.current_index_of(original), original);
            let current = sorted.current_index_of(original);
            for (field, a, b) in [
                ("rho", pa.rho[original], pb.rho[current]),
                ("u", pa.u[original], pb.u[current]),
                ("x", pa.x[original], pb.x[current]),
                ("vx", pa.vx[original], pb.vx[current]),
                ("p", pa.p[original], pb.p[current]),
                ("du", pa.du[original], pb.du[current]),
            ] {
                assert!(
                    close(a, b),
                    "{name}: particle {original} field {field} diverged after 3 steps: {a} vs {b}"
                );
            }
            assert_eq!(
                pa.neighbor_count[original], pb.neighbor_count[current],
                "{name}: neighbour count diverged for particle {original}"
            );
        }
    }
}

#[test]
fn csr_offsets_are_monotone_and_start_at_zero() {
    let mut p = lattice_cube(6, 1.0, 1.0, 1.3);
    let tree = build_tree(&p, 16);
    let nl = find_neighbors(&mut p, &tree);
    assert_eq!(nl.len(), p.len());
    assert_eq!(nl.offsets[0], 0);
    assert!(
        nl.offsets.windows(2).all(|w| w[0] <= w[1]),
        "CSR offsets must be monotone"
    );
    assert_eq!(*nl.offsets.last().unwrap() as usize, nl.indices.len());
}

#[test]
fn csr_rows_include_self() {
    let mut p = lattice_cube(6, 1.0, 1.0, 1.3);
    let tree = build_tree(&p, 16);
    let nl = find_neighbors(&mut p, &tree);
    for i in 0..p.len() {
        assert!(
            nl.neighbors(i).contains(&(i as u32)),
            "particle {i} missing from its own neighbour row"
        );
    }
}

#[test]
fn csr_lists_are_symmetric_on_a_uniform_lattice() {
    // With a uniform smoothing length the search radius 2·h is the same for
    // every particle, so neighbourhood must be symmetric: j ∈ N(i) ⟺ i ∈ N(j).
    let mut p = lattice_cube(6, 1.0, 1.0, 1.3);
    let tree = build_tree(&p, 16);
    let nl = find_neighbors(&mut p, &tree);
    for i in 0..p.len() {
        for &j in nl.neighbors(i) {
            assert!(
                nl.neighbors(j as usize).contains(&(i as u32)),
                "asymmetric neighbourhood: {j} ∈ N({i}) but {i} ∉ N({j})"
            );
        }
    }
}
