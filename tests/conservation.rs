//! Conservation properties of the momentum/energy kernel — on open *and*
//! periodic boxes.
//!
//! With the SPH-EXA grad-h form (`P_i/(Ω_i ρ_i²)·∇W(h_i) + P_j/(Ω_j ρ_j²)·
//! ∇W(h_j)`, viscosity on the symmetrised gradient) every pairwise force is
//! antisymmetric under `i ↔ j`, and the symmetrised neighbour lists guarantee
//! each interacting pair is visited from both sides — so the *discrete* total
//! momentum update cancels exactly, step by step. The minimum-image map is
//! exactly antisymmetric too, so the same cancellation holds across periodic
//! wrap seams. Total energy is conserved by the continuous-time equations;
//! the kick-drift integrator leaves an O(dt) per-step error, so its drift is
//! bounded rather than zero.
//!
//! The golden test at the bottom pins the open-box path **bit for bit** to
//! the pre-periodic-boundaries code: threading `Boundary` through the
//! pipeline added a branch-free minimum-image map to every pair kernel, and
//! for open boxes that map must reduce to the exact identity.

use energy_aware_sim::sphsim::scenario;
use energy_aware_sim::sphsim::{ParticleSet, Simulation};

fn momentum(p: &ParticleSet) -> (f64, f64, f64) {
    let mut total = (0.0, 0.0, 0.0);
    for i in 0..p.len() {
        total.0 += p.m[i] * p.vx[i];
        total.1 += p.m[i] * p.vy[i];
        total.2 += p.m[i] * p.vz[i];
    }
    total
}

/// Σ m |v| — the scale against which momentum cancellation is judged.
fn momentum_scale(p: &ParticleSet) -> f64 {
    (0..p.len())
        .map(|i| p.m[i] * (p.vx[i].powi(2) + p.vy[i].powi(2) + p.vz[i].powi(2)).sqrt())
        .sum()
}

#[test]
fn sedov_momentum_is_conserved_to_round_off_over_50_steps() {
    let mut sim = Simulation::from_scenario(scenario::get("Sedov").unwrap(), 500, 5);
    let p0 = momentum(sim.particles());
    // The blast starts from rest: total momentum is exactly zero.
    assert_eq!(p0, (0.0, 0.0, 0.0));
    sim.run(50);
    let p = sim.particles();
    let (px, py, pz) = momentum(p);
    let scale = momentum_scale(p);
    assert!(scale > 0.0, "the blast must set the gas in motion");
    for (axis, component) in [("x", px), ("y", py), ("z", pz)] {
        assert!(
            component.abs() <= 1e-12 * scale,
            "momentum p_{axis} = {component} drifted beyond round-off (scale {scale})"
        );
    }
}

#[test]
fn periodic_kh_momentum_is_conserved_to_round_off_over_50_steps() {
    // The KH box is fully periodic: every pair interaction — including the
    // ones reaching across the wrap seam through image neighbours — must
    // cancel pairwise. A one-sided seam (particle i sees j's image but j
    // does not see i's) would show up here as a secular momentum drift.
    let mut sim = Simulation::from_scenario(scenario::get("KH").unwrap(), 500, 5);
    assert!(sim.particles().boundary.is_periodic(), "KH must run periodic");
    let p0 = momentum(sim.particles());
    // Counter-streaming slabs carry no net momentum (up to lattice jitter).
    let scale0 = momentum_scale(sim.particles());
    assert!(p0.0.abs() < 1e-2 * scale0 && p0.1.abs() < 1e-2 * scale0);
    sim.run(50);
    let p = sim.particles();
    let (px, py, pz) = momentum(p);
    let scale = momentum_scale(p);
    assert!(scale > 0.0);
    for (axis, component, initial) in [("x", px, p0.0), ("y", py, p0.1), ("z", pz, p0.2)] {
        assert!(
            (component - initial).abs() <= 1e-12 * scale,
            "momentum p_{axis} drifted {initial} -> {component} beyond round-off (scale {scale})"
        );
    }
}

#[test]
fn periodic_kh_mass_is_conserved_exactly_over_50_steps() {
    // Particles wrap across the faces instead of leaving the box: the mass
    // ledger must not change by a single bit, and every particle must end
    // the run inside the unit box.
    let mut sim = Simulation::from_scenario(scenario::get("KH").unwrap(), 500, 5);
    let masses0: Vec<u64> = sim.particles().m.iter().map(|m| m.to_bits()).collect();
    let n0 = sim.particles().len();
    sim.run(50);
    let p = sim.particles();
    assert_eq!(p.len(), n0, "particles were created or destroyed");
    // Masses are untouched bit-for-bit (resolved through the reorder maps).
    for (original, &mass0) in masses0.iter().enumerate() {
        let current = sim.current_index_of(original);
        assert_eq!(p.m[current].to_bits(), mass0, "mass of particle {original} changed");
    }
    // Positions stay wrapped: wrapping runs at the start of each step, so at
    // most one step of subsonic drift (|v|·dt ≲ 0.05) can stick out past the
    // faces — nothing streams off to infinity as it would in an open box.
    for i in 0..n0 {
        for (axis, v) in [("x", p.x[i]), ("y", p.y[i]), ("z", p.z[i])] {
            assert!((-0.1..1.1).contains(&v), "{axis}[{i}] = {v} escaped the box");
        }
    }
}

#[test]
fn sedov_energy_drift_is_bounded_over_50_steps() {
    let mut sim = Simulation::from_scenario(scenario::get("Sedov").unwrap(), 500, 5);
    // Density/EOS are defined after the first step; take the budget there.
    sim.step();
    let p = sim.particles();
    let e0 = p.kinetic_energy() + p.internal_energy();
    sim.run(50);
    let p = sim.particles();
    let e1 = p.kinetic_energy() + p.internal_energy();
    let drift = (e1 - e0).abs() / e0.abs().max(1e-12);
    // The pairwise exchange is exactly energy-consistent in continuous time;
    // what remains is the kick-drift integrator's O(dt) error on a blast
    // running at the Courant limit (measured ≈ 10 % over 50 steps).
    assert!(
        drift < 0.15,
        "kinetic + internal energy drifted {:.3}% over 50 steps ({e0} -> {e1})",
        drift * 100.0
    );
}

#[test]
fn sedov_conservation_holds_with_timestep_bins_over_50_substeps() {
    // Individual timesteps break the exact pairwise force cancellation of the
    // global scheme: a pair where one side is frozen exchanges momentum
    // asymmetrically within a cycle (the frozen side integrates the pair
    // force only at its own next kick, from re-evaluated accelerations). The
    // scheme must still hold conservation to integrator-error levels — a
    // secular momentum or energy runaway here means the kick/drift gating or
    // the neighbour-rung limiter is wrong.
    let mut sim = Simulation::from_scenario(scenario::get("Sedov").unwrap(), 500, 5).with_timestep_bins(4);
    sim.step();
    let p = sim.particles();
    let e0 = p.kinetic_energy() + p.internal_energy();
    sim.run(50);
    let p = sim.particles();
    let e1 = p.kinetic_energy() + p.internal_energy();
    let drift = (e1 - e0).abs() / e0.abs().max(1e-12);
    assert!(
        drift < 0.15,
        "binned run drifted kinetic + internal energy by {:.3}% over 50 substeps ({e0} -> {e1})",
        drift * 100.0
    );
    let (px, py, pz) = momentum(p);
    let scale = momentum_scale(p);
    assert!(scale > 0.0, "the blast must set the gas in motion");
    for (axis, component) in [("x", px), ("y", py), ("z", pz)] {
        assert!(
            component.abs() <= 1e-2 * scale,
            "binned momentum p_{axis} = {component} beyond the integrator-error bound (scale {scale})"
        );
    }
}

/// FNV-1a over the bit patterns of the full evolved state (resolved through
/// the reorder maps back to construction order), plus the simulation time.
/// Any single changed bit anywhere in the state changes the digest.
fn state_digest(sim: &Simulation) -> u64 {
    let p = sim.particles();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |h: &mut u64, v: f64| {
        *h ^= v.to_bits();
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for original in 0..p.len() {
        let i = sim.current_index_of(original);
        for v in [
            p.x[i], p.y[i], p.z[i], p.vx[i], p.vy[i], p.vz[i], p.rho[i], p.u[i], p.p[i], p.du[i], p.h[i], p.alpha[i],
        ] {
            mix(&mut h, v);
        }
    }
    mix(&mut h, sim.time());
    h
}

#[test]
fn open_box_scenarios_are_bit_identical_to_pre_periodic_goldens() {
    // Digests captured on the commit *before* periodic boundaries were
    // threaded through the pipeline (3 steps of each open-box scenario at
    // n = 400, seed 7, default reorder interval). The open-box path must be
    // bit-identical: the minimum-image map degenerates to `dx - 0·round(0)`,
    // position wrapping to a no-op, and the Morton key anchor to the same
    // bounding box — so not one bit of the evolved state may move.
    //
    // Caveat: the IC generators call libm transcendentals (sin/cos/cbrt)
    // whose last-ulp rounding is implementation-defined, so these goldens
    // are pinned to the x86-64 glibc toolchain this repo builds on (dev
    // container and ubuntu CI alike). On another libm, re-capture the
    // digests at the parent commit rather than trusting a mismatch here.
    for (name, golden) in [
        ("Sedov", 0x526f3b07d19d9446u64),
        ("Noh", 0x311796faaaadac32),
        ("Evr", 0xd767b3e98baf460c),
    ] {
        let mut sim = Simulation::from_scenario(scenario::get(name).unwrap(), 400, 7);
        sim.run(3);
        let digest = state_digest(&sim);
        assert_eq!(
            digest, golden,
            "{name}: open-box state digest 0x{digest:016x} no longer matches the pre-periodic \
             golden 0x{golden:016x} — the Boundary plumbing changed open-box physics"
        );
    }
}

#[test]
fn one_timestep_bin_is_bit_identical_to_the_global_goldens() {
    // The individual-timestep configuration with a single bin IS the global
    // scheme: `with_timestep_bins(1)` must not even install the binned
    // driver, so the evolved state matches the pre-binned goldens bit for
    // bit. This pins the opt-in contract — no rung bookkeeping, no extra
    // rounding, no reordered arithmetic leaks into the default path.
    for (name, golden) in [
        ("Sedov", 0x526f3b07d19d9446u64),
        ("Noh", 0x311796faaaadac32),
        ("Evr", 0xd767b3e98baf460c),
    ] {
        let mut sim = Simulation::from_scenario(scenario::get(name).unwrap(), 400, 7).with_timestep_bins(1);
        sim.run(3);
        let digest = state_digest(&sim);
        assert_eq!(
            digest, golden,
            "{name}: with_timestep_bins(1) digest 0x{digest:016x} diverged from the global-scheme \
             golden 0x{golden:016x} — a single bin must leave the default path untouched"
        );
    }
}
