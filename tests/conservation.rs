//! Conservation properties of the fixed momentum/energy kernel.
//!
//! With the SPH-EXA grad-h form (`P_i/(Ω_i ρ_i²)·∇W(h_i) + P_j/(Ω_j ρ_j²)·
//! ∇W(h_j)`, viscosity on the symmetrised gradient) every pairwise force is
//! antisymmetric under `i ↔ j`, and the symmetrised neighbour lists guarantee
//! each interacting pair is visited from both sides — so the *discrete* total
//! momentum update cancels exactly, step by step. Total energy is conserved by
//! the continuous-time equations; the kick-drift integrator leaves an O(dt)
//! per-step error, so its drift is bounded rather than zero.

use energy_aware_sim::sphsim::scenario;
use energy_aware_sim::sphsim::{ParticleSet, Simulation};

fn momentum(p: &ParticleSet) -> (f64, f64, f64) {
    let mut total = (0.0, 0.0, 0.0);
    for i in 0..p.len() {
        total.0 += p.m[i] * p.vx[i];
        total.1 += p.m[i] * p.vy[i];
        total.2 += p.m[i] * p.vz[i];
    }
    total
}

/// Σ m |v| — the scale against which momentum cancellation is judged.
fn momentum_scale(p: &ParticleSet) -> f64 {
    (0..p.len())
        .map(|i| p.m[i] * (p.vx[i].powi(2) + p.vy[i].powi(2) + p.vz[i].powi(2)).sqrt())
        .sum()
}

#[test]
fn sedov_momentum_is_conserved_to_round_off_over_50_steps() {
    let mut sim = Simulation::from_scenario(scenario::get("Sedov").unwrap(), 500, 5);
    let p0 = momentum(sim.particles());
    // The blast starts from rest: total momentum is exactly zero.
    assert_eq!(p0, (0.0, 0.0, 0.0));
    sim.run(50);
    let p = sim.particles();
    let (px, py, pz) = momentum(p);
    let scale = momentum_scale(p);
    assert!(scale > 0.0, "the blast must set the gas in motion");
    for (axis, component) in [("x", px), ("y", py), ("z", pz)] {
        assert!(
            component.abs() <= 1e-12 * scale,
            "momentum p_{axis} = {component} drifted beyond round-off (scale {scale})"
        );
    }
}

#[test]
fn sedov_energy_drift_is_bounded_over_50_steps() {
    let mut sim = Simulation::from_scenario(scenario::get("Sedov").unwrap(), 500, 5);
    // Density/EOS are defined after the first step; take the budget there.
    sim.step();
    let p = sim.particles();
    let e0 = p.kinetic_energy() + p.internal_energy();
    sim.run(50);
    let p = sim.particles();
    let e1 = p.kinetic_energy() + p.internal_energy();
    let drift = (e1 - e0).abs() / e0.abs().max(1e-12);
    // The pairwise exchange is exactly energy-consistent in continuous time;
    // what remains is the kick-drift integrator's O(dt) error on a blast
    // running at the Courant limit (measured ≈ 10 % over 50 steps).
    assert!(
        drift < 0.15,
        "kinetic + internal energy drifted {:.3}% over 50 steps ({e0} -> {e1})",
        drift * 100.0
    );
}
