//! Decomposition invariants of the distributed propagator.
//!
//! * every particle is owned by exactly one rank;
//! * ghost sets are symmetric across rank pairs (every interacting cross-rank
//!   pair is covered from both sides);
//! * an R-rank run of every registered scenario matches the single-rank run
//!   per particle (through the global-id maps) to 1e-10 after 3 steps —
//!   including the periodic box scenarios, whose ghost layers cross the wrap
//!   seam;
//! * a 4-rank periodic KH run with a tracer driven through the wrap seam
//!   still matches the single-rank propagator per particle to 1e-10, and the
//!   tracer *provably* wraps and migrates to a different owner rank.

use energy_aware_sim::cluster::{CommWorld, TransportKind};
use energy_aware_sim::sphsim::distributed::{run_distributed, run_distributed_with_transport, DistributedSimulation};
use energy_aware_sim::sphsim::domain::{decompose, exact_ghosts, pair_interacts, DomainMap};
use energy_aware_sim::sphsim::scenario::ScenarioRegistry;
use energy_aware_sim::sphsim::{scenario, ParticleSet, Simulation, StepSummary};

/// Absolute-or-relative agreement to 1e-10.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-10 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn every_particle_is_owned_by_exactly_one_rank() {
    for scenario in ScenarioRegistry::builtin().scenarios() {
        let global = scenario.initial_conditions(500, 9);
        let map = DomainMap::new(&global, 4);
        let mut counts = [0usize; 4];
        for i in 0..global.len() {
            let owner = map.owner_of((global.x[i], global.y[i], global.z[i]));
            assert!(owner < 4);
            counts[owner] += 1;
        }
        // Ownership is a partition by construction (owner_of is a function);
        // what must hold beyond that is that every rank gets a non-trivial,
        // roughly balanced share.
        assert_eq!(counts.iter().sum::<usize>(), global.len());
        let mean = global.len() as f64 / 4.0;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) < 1.5 * mean && c > 0,
                "{}: rank {rank} owns {c} of {} particles",
                scenario.short_name(),
                global.len()
            );
        }
        // And the sharded run reports the same partition: each global id on
        // exactly one rank, none lost.
        let shards = run_distributed(scenario.clone(), 4, 500, 9, 1);
        let mut seen = vec![false; global.len()];
        for shard in &shards {
            for &id in &shard.ids {
                assert!(!seen[id as usize], "particle {id} owned by two ranks");
                seen[id as usize] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "{}: particles lost in the shards",
            scenario.short_name()
        );
    }
}

#[test]
fn ghost_sets_are_symmetric_across_rank_pairs() {
    let scenario = ScenarioRegistry::builtin().scenarios()[0].clone();
    let mut particles = scenario.initial_conditions(600, 4);
    // Perturb h so one-sided supports exist across boundaries too.
    for (i, h) in particles.h.iter_mut().enumerate() {
        *h *= 1.0 + 0.4 * ((i % 5) as f64) / 5.0;
    }
    let d = decompose(&particles, 3);
    let mut cross_pairs = 0usize;
    for a in 0..3 {
        for b in 0..3 {
            if a == b {
                continue;
            }
            let g_ab = exact_ghosts(&particles, &d.owned, a, b);
            let g_ba = exact_ghosts(&particles, &d.owned, b, a);
            // Symmetry: every ghost a sends towards b interacts with a ghost
            // b sends towards a (and vice versa by the loop over (b, a)).
            for &i in &g_ab {
                assert!(
                    g_ba.iter().any(|&j| pair_interacts(&particles, i, j)),
                    "ghost {i} of rank {a} has no partner in G({b} -> {a})"
                );
            }
            // Completeness: every interacting cross-rank pair is covered from
            // both sides.
            for &i in &d.owned[a] {
                for &j in &d.owned[b] {
                    if pair_interacts(&particles, i, j) {
                        cross_pairs += 1;
                        assert!(g_ab.contains(&i), "pair ({i}, {j}) missing {i} in G({a} -> {b})");
                        assert!(g_ba.contains(&j), "pair ({i}, {j}) missing {j} in G({b} -> {a})");
                    }
                }
            }
        }
    }
    assert!(cross_pairs > 0, "test set has no cross-rank interactions");
}

#[test]
fn four_rank_periodic_kh_crosses_the_wrap_seam_and_matches_single_rank() {
    const STEPS: u64 = 10;
    let kh = scenario::get("KH").unwrap();
    // KH initial conditions plus a subsonic tracer aimed straight at the
    // y = 0 face: within a few steps it must wrap to y ≈ 1 and — because the
    // 4-rank Morton splitters quarter the box by the top (z, y) key bits —
    // re-key to a different owner rank. That makes this run exercise
    // migration *across the wrap seam*, not just plain ownership churn.
    let mut global = kh.initial_conditions(500, 9);
    let tracer: usize = (0..global.len()).min_by(|&a, &b| global.y[a].total_cmp(&global.y[b])).unwrap();
    global.vy[tracer] = -1.2;
    let start_y = global.y[tracer];
    assert!(start_y < 0.1, "tracer should start against the lower face");

    // Initial owner of the tracer under the shared domain map.
    let mut stamped = global.clone();
    stamped.boundary = kh.boundary();
    let map = DomainMap::new(&stamped, 4);
    let owner_before = map.owner_of((global.x[tracer], global.y[tracer], global.z[tracer]));

    // Reference: single-rank propagator in construction order.
    let mut reference = Simulation::new(kh.clone(), global.clone()).with_reorder_interval(0);
    let ref_summaries = reference.run(STEPS);

    // 4-rank distributed run over the *same* particles.
    let comms = CommWorld::create(4);
    let shards: Vec<(Vec<u32>, ParticleSet)> = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let kh = kh.clone();
                let global = global.clone();
                s.spawn(move || {
                    let mut sim = DistributedSimulation::new(comm, kh, global);
                    let summaries = sim.run(STEPS);
                    (sim.into_shard(), summaries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let ((ids, particles), summaries) = h.join().expect("rank thread panicked");
                for (a, b) in summaries.iter().zip(&ref_summaries) {
                    assert!(close(a.dt, b.dt), "dt diverged: {} vs {}", a.dt, b.dt);
                }
                (ids, particles)
            })
            .collect()
    });

    // Per-particle 1e-10 agreement through the global-id maps.
    let rp = reference.particles();
    let mut matched = 0usize;
    let mut tracer_rank = usize::MAX;
    for (rank, (ids, sp)) in shards.iter().enumerate() {
        for (slot, &id) in ids.iter().enumerate() {
            let id = id as usize;
            if id == tracer {
                tracer_rank = rank;
            }
            for (field, a, b) in [
                ("x", sp.x[slot], rp.x[id]),
                ("y", sp.y[slot], rp.y[id]),
                ("vx", sp.vx[slot], rp.vx[id]),
                ("vy", sp.vy[slot], rp.vy[id]),
                ("rho", sp.rho[slot], rp.rho[id]),
                ("u", sp.u[slot], rp.u[id]),
                ("du", sp.du[slot], rp.du[id]),
                ("h", sp.h[slot], rp.h[id]),
            ] {
                assert!(
                    close(a, b),
                    "particle {id} field {field} diverged across the wrap seam: {a} vs {b}"
                );
            }
            matched += 1;
        }
    }
    assert_eq!(matched, rp.len(), "shards do not cover the global set");

    // The tracer provably crossed the wrap seam: resolve it through the
    // reference's origin/position maps, and note its velocity stayed
    // downward the whole way — the only route from y ≈ 0.06 to the upper
    // half of the box while falling is through the periodic seam.
    let cur = reference.current_index_of(tracer);
    assert_eq!(reference.original_index_of(cur), tracer);
    let end_y = rp.y[cur];
    assert!(rp.vy[cur] < 0.0, "tracer should still be falling, vy = {}", rp.vy[cur]);
    assert!(
        end_y > 0.6,
        "tracer should have wrapped from y = {start_y:.3} to the top of the box, ended at {end_y:.3}"
    );
    // ...and it migrated: a different rank owns it now.
    assert_ne!(tracer_rank, usize::MAX, "tracer lost from the shards");
    assert_ne!(
        tracer_rank, owner_before,
        "tracer wrapped across the seam but stayed on rank {owner_before} — wrap-seam migration broken"
    );
}

#[test]
fn four_rank_socket_transport_matches_shm_on_every_scenario() {
    // The transport-equivalence gate: the same 4-rank run over real Unix
    // sockets (length-prefixed wire codec, f64 as raw bits) must agree with
    // the in-process shm channels to 1e-10 on every registered scenario —
    // and both paths must show the overlapped ghost exchange actually ran.
    for scenario in ScenarioRegistry::builtin().scenarios() {
        let name = scenario.short_name();
        let shm = run_distributed_with_transport(scenario.clone(), 4, 400, 7, 3, TransportKind::Shm);
        let socket = run_distributed_with_transport(scenario.clone(), 4, 400, 7, 3, TransportKind::Socket);

        // Same decomposition on both backends: rank r owns the same ids.
        for (a, b) in shm.iter().zip(&socket) {
            assert_eq!(a.ids, b.ids, "{name}: rank {} owns different ids per backend", a.rank);
            for (s, t) in a.summaries.iter().zip(&b.summaries) {
                assert!(close(s.dt, t.dt), "{name}: dt diverged across transports");
                assert!(
                    close(s.total_energy, t.total_energy),
                    "{name}: total energy diverged across transports"
                );
            }
            for slot in 0..a.particles.len() {
                let (sp, tp) = (&a.particles, &b.particles);
                for (field, x, y) in [
                    ("x", sp.x[slot], tp.x[slot]),
                    ("vx", sp.vx[slot], tp.vx[slot]),
                    ("rho", sp.rho[slot], tp.rho[slot]),
                    ("u", sp.u[slot], tp.u[slot]),
                    ("p", sp.p[slot], tp.p[slot]),
                    ("du", sp.du[slot], tp.du[slot]),
                    ("alpha", sp.alpha[slot], tp.alpha[slot]),
                    ("h", sp.h[slot], tp.h[slot]),
                ] {
                    assert!(
                        close(x, y),
                        "{name}: particle slot {slot} field {field} diverged between shm and socket: {x} vs {y}"
                    );
                }
            }
            // The overlapped exchange posted real work on both backends.
            assert!(
                a.overlap.posted_s + a.overlap.overlapped_s + a.overlap.waited_s > 0.0,
                "{name}: shm rank {} recorded no ghost-exchange overlap activity",
                a.rank
            );
            assert!(
                b.overlap.posted_s + b.overlap.overlapped_s + b.overlap.waited_s > 0.0,
                "{name}: socket rank {} recorded no ghost-exchange overlap activity",
                b.rank
            );
        }
    }
}

#[test]
fn four_rank_binned_run_matches_single_rank_per_particle() {
    // The individual-timestep gate: with power-of-two dt bins enabled, a
    // 4-rank run must agree with the single-rank binned propagator per
    // particle to 1e-10 over a full cycle and change — on an open blast and
    // on the periodic KH box, whose ghost layers and rung exchanges cross
    // the wrap seam. The cycle plan is collective (allreduce'd Courant
    // minimum, limiter fixpoint, max-reduced deepest rung), so the substep
    // dt sequence must also agree step by step.
    const STEPS: u64 = 12;
    const BINS: usize = 4;
    for name in ["Sedov", "KH"] {
        let sc = scenario::get(name).unwrap();
        let mut reference = Simulation::from_scenario(sc.clone(), 400, 7)
            .with_reorder_interval(0)
            .with_timestep_bins(BINS);
        let ref_summaries = reference.run(STEPS);

        let comms = CommWorld::create(4);
        let shards: Vec<(Vec<u32>, ParticleSet, Vec<StepSummary>)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let sc = sc.clone();
                    s.spawn(move || {
                        let mut sim = DistributedSimulation::from_scenario(comm, sc, 400, 7).with_timestep_bins(BINS);
                        let summaries = sim.run(STEPS);
                        let (ids, particles) = sim.into_shard();
                        (ids, particles, summaries)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
        });

        let rp = reference.particles();
        let mut matched = 0usize;
        for (ids, sp, summaries) in &shards {
            for (a, b) in summaries.iter().zip(&ref_summaries) {
                assert!(
                    close(a.dt, b.dt),
                    "{name}: binned substep dt diverged ({} vs {})",
                    a.dt,
                    b.dt
                );
                assert!(close(a.total_energy, b.total_energy), "{name}: total energy diverged");
            }
            for (slot, &id) in ids.iter().enumerate() {
                let id = id as usize;
                for (field, a, b) in [
                    ("x", sp.x[slot], rp.x[id]),
                    ("vx", sp.vx[slot], rp.vx[id]),
                    ("rho", sp.rho[slot], rp.rho[id]),
                    ("u", sp.u[slot], rp.u[id]),
                    ("p", sp.p[slot], rp.p[id]),
                    ("du", sp.du[slot], rp.du[id]),
                    ("alpha", sp.alpha[slot], rp.alpha[id]),
                    ("h", sp.h[slot], rp.h[id]),
                ] {
                    assert!(
                        close(a, b),
                        "{name}: particle {id} field {field} diverged after {STEPS} binned substeps: {a} vs {b}"
                    );
                }
                assert_eq!(
                    sp.rung[slot], rp.rung[id],
                    "{name}: rung of particle {id} diverged across the decomposition"
                );
                matched += 1;
            }
        }
        assert_eq!(matched, rp.len(), "{name}: shards do not cover the global set");
    }
}

#[test]
fn four_rank_run_matches_single_rank_per_particle_on_every_scenario() {
    for scenario in ScenarioRegistry::builtin().scenarios() {
        let name = scenario.short_name();
        // Reference: the ordinary single-rank propagator in construction
        // order (so its slot IS the global id).
        let mut reference = Simulation::from_scenario(scenario.clone(), 400, 7).with_reorder_interval(0);
        let ref_summaries = reference.run(3);
        let shards = run_distributed(scenario.clone(), 4, 400, 7, 3);

        let rp = reference.particles();
        let mut matched = 0usize;
        for shard in &shards {
            // Global per-step dt must agree across the paths.
            for (a, b) in shard.summaries.iter().zip(&ref_summaries) {
                assert!(close(a.dt, b.dt), "{name}: dt diverged ({} vs {})", a.dt, b.dt);
            }
            for (slot, &id) in shard.ids.iter().enumerate() {
                let id = id as usize;
                let sp = &shard.particles;
                for (field, a, b) in [
                    ("x", sp.x[slot], rp.x[id]),
                    ("vx", sp.vx[slot], rp.vx[id]),
                    ("rho", sp.rho[slot], rp.rho[id]),
                    ("u", sp.u[slot], rp.u[id]),
                    ("p", sp.p[slot], rp.p[id]),
                    ("du", sp.du[slot], rp.du[id]),
                    ("alpha", sp.alpha[slot], rp.alpha[id]),
                    ("h", sp.h[slot], rp.h[id]),
                ] {
                    assert!(
                        close(a, b),
                        "{name}: particle {id} field {field} diverged after 3 steps: {a} vs {b}"
                    );
                }
                assert_eq!(
                    sp.neighbor_count[slot], rp.neighbor_count[id],
                    "{name}: neighbour count diverged for particle {id}"
                );
                matched += 1;
            }
        }
        assert_eq!(matched, rp.len(), "{name}: shards do not cover the global set");
    }
}
