//! Decomposition invariants of the distributed propagator.
//!
//! * every particle is owned by exactly one rank;
//! * ghost sets are symmetric across rank pairs (every interacting cross-rank
//!   pair is covered from both sides);
//! * an R-rank run of every registered scenario matches the single-rank run
//!   per particle (through the global-id maps) to 1e-10 after 3 steps.

use energy_aware_sim::sphsim::distributed::run_distributed;
use energy_aware_sim::sphsim::domain::{decompose, exact_ghosts, pair_interacts, DomainMap};
use energy_aware_sim::sphsim::scenario::ScenarioRegistry;
use energy_aware_sim::sphsim::Simulation;

/// Absolute-or-relative agreement to 1e-10.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-10 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn every_particle_is_owned_by_exactly_one_rank() {
    for scenario in ScenarioRegistry::builtin().scenarios() {
        let global = scenario.initial_conditions(500, 9);
        let map = DomainMap::new(&global, 4);
        let mut counts = [0usize; 4];
        for i in 0..global.len() {
            let owner = map.owner_of((global.x[i], global.y[i], global.z[i]));
            assert!(owner < 4);
            counts[owner] += 1;
        }
        // Ownership is a partition by construction (owner_of is a function);
        // what must hold beyond that is that every rank gets a non-trivial,
        // roughly balanced share.
        assert_eq!(counts.iter().sum::<usize>(), global.len());
        let mean = global.len() as f64 / 4.0;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) < 1.5 * mean && c > 0,
                "{}: rank {rank} owns {c} of {} particles",
                scenario.short_name(),
                global.len()
            );
        }
        // And the sharded run reports the same partition: each global id on
        // exactly one rank, none lost.
        let shards = run_distributed(scenario.clone(), 4, 500, 9, 1);
        let mut seen = vec![false; global.len()];
        for shard in &shards {
            for &id in &shard.ids {
                assert!(!seen[id as usize], "particle {id} owned by two ranks");
                seen[id as usize] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "{}: particles lost in the shards",
            scenario.short_name()
        );
    }
}

#[test]
fn ghost_sets_are_symmetric_across_rank_pairs() {
    let scenario = ScenarioRegistry::builtin().scenarios()[0].clone();
    let mut particles = scenario.initial_conditions(600, 4);
    // Perturb h so one-sided supports exist across boundaries too.
    for (i, h) in particles.h.iter_mut().enumerate() {
        *h *= 1.0 + 0.4 * ((i % 5) as f64) / 5.0;
    }
    let d = decompose(&particles, 3);
    let mut cross_pairs = 0usize;
    for a in 0..3 {
        for b in 0..3 {
            if a == b {
                continue;
            }
            let g_ab = exact_ghosts(&particles, &d.owned, a, b);
            let g_ba = exact_ghosts(&particles, &d.owned, b, a);
            // Symmetry: every ghost a sends towards b interacts with a ghost
            // b sends towards a (and vice versa by the loop over (b, a)).
            for &i in &g_ab {
                assert!(
                    g_ba.iter().any(|&j| pair_interacts(&particles, i, j)),
                    "ghost {i} of rank {a} has no partner in G({b} -> {a})"
                );
            }
            // Completeness: every interacting cross-rank pair is covered from
            // both sides.
            for &i in &d.owned[a] {
                for &j in &d.owned[b] {
                    if pair_interacts(&particles, i, j) {
                        cross_pairs += 1;
                        assert!(g_ab.contains(&i), "pair ({i}, {j}) missing {i} in G({a} -> {b})");
                        assert!(g_ba.contains(&j), "pair ({i}, {j}) missing {j} in G({b} -> {a})");
                    }
                }
            }
        }
    }
    assert!(cross_pairs > 0, "test set has no cross-rank interactions");
}

#[test]
fn four_rank_run_matches_single_rank_per_particle_on_every_scenario() {
    for scenario in ScenarioRegistry::builtin().scenarios() {
        let name = scenario.short_name();
        // Reference: the ordinary single-rank propagator in construction
        // order (so its slot IS the global id).
        let mut reference = Simulation::from_scenario(scenario.clone(), 400, 7).with_reorder_interval(0);
        let ref_summaries = reference.run(3);
        let shards = run_distributed(scenario.clone(), 4, 400, 7, 3);

        let rp = reference.particles();
        let mut matched = 0usize;
        for shard in &shards {
            // Global per-step dt must agree across the paths.
            for (a, b) in shard.summaries.iter().zip(&ref_summaries) {
                assert!(close(a.dt, b.dt), "{name}: dt diverged ({} vs {})", a.dt, b.dt);
            }
            for (slot, &id) in shard.ids.iter().enumerate() {
                let id = id as usize;
                let sp = &shard.particles;
                for (field, a, b) in [
                    ("x", sp.x[slot], rp.x[id]),
                    ("vx", sp.vx[slot], rp.vx[id]),
                    ("rho", sp.rho[slot], rp.rho[id]),
                    ("u", sp.u[slot], rp.u[id]),
                    ("p", sp.p[slot], rp.p[id]),
                    ("du", sp.du[slot], rp.du[id]),
                    ("alpha", sp.alpha[slot], rp.alpha[id]),
                    ("h", sp.h[slot], rp.h[id]),
                ] {
                    assert!(
                        close(a, b),
                        "{name}: particle {id} field {field} diverged after 3 steps: {a} vs {b}"
                    );
                }
                assert_eq!(
                    sp.neighbor_count[slot], rp.neighbor_count[id],
                    "{name}: neighbour count diverged for particle {id}"
                );
                matched += 1;
            }
        }
        assert_eq!(matched, rp.len(), "{name}: shards do not cover the global set");
    }
}
