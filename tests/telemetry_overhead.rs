//! The acceptance gate for telemetry's "near-zero cost when disabled" claim.
//!
//! An attached-but-disabled sink must add at most **2%** to the per-step wall
//! time of the real CPU propagator at N = 4000 — the disabled fast path is a
//! single relaxed atomic load per instrumentation point, so anything above
//! that bound means a span guard started doing work before checking the flag.
//!
//! Methodology: two simulations on the identical trajectory (same scenario,
//! N, seed), one bare and one with a disabled sink attached, stepped in an
//! interleaved A/B pattern so drift (thermal, scheduler) hits both arms
//! equally. The minimum per arm over the repetitions rejects noise, and the
//! gate compares minima. CI runs this test in release mode
//! (`cargo test --release --test telemetry_overhead`); a debug-mode run
//! measures unoptimised code, so the bound is only asserted when optimised.

use energy_aware_sim::sphsim::{scenario, Simulation};
use energy_aware_sim::telemetry::Telemetry;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 4000;
const REPS: usize = 7;
const STEPS_PER_REP: u64 = 2;
const MAX_OVERHEAD: f64 = 1.02;

fn time_steps(sim: &mut Simulation, steps: u64) -> f64 {
    let start = Instant::now();
    sim.run(steps);
    start.elapsed().as_secs_f64()
}

#[test]
fn disabled_sink_costs_at_most_two_percent_per_step() {
    let sedov = scenario::get("Sedov").expect("built-in scenario");
    let sink = Arc::new(Telemetry::disabled());

    let mut bare = Simulation::from_scenario(sedov.clone(), N, 7);
    let mut traced = Simulation::from_scenario(sedov, N, 7).with_telemetry(Arc::clone(&sink));
    assert!(!sink.enabled());

    // Warm up both arms (first step pays workspace/tree construction).
    bare.run(1);
    traced.run(1);

    let (mut best_bare, mut best_traced) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        // Interleaved A/B: both arms advance through the same trajectory
        // window inside each repetition, so slow machine phases hit both.
        best_bare = best_bare.min(time_steps(&mut bare, STEPS_PER_REP));
        best_traced = best_traced.min(time_steps(&mut traced, STEPS_PER_REP));
    }

    assert_eq!(sink.event_count(), 0, "a disabled sink must record nothing");

    let ratio = best_traced / best_bare;
    eprintln!(
        "disabled-sink overhead: bare {:.3} ms/rep, traced {:.3} ms/rep, ratio {ratio:.4}",
        best_bare * 1e3,
        best_traced * 1e3
    );
    // The 2% bound is about optimised code; debug builds measure something
    // else entirely (no inlining of the atomic check), so report but don't
    // gate there. CI enforces this test with --release.
    if cfg!(debug_assertions) {
        eprintln!("debug build: overhead bound reported, not enforced");
    } else {
        assert!(
            ratio <= MAX_OVERHEAD,
            "attached-but-disabled telemetry costs {:.2}% per step (bound: {:.0}%)",
            (ratio - 1.0) * 100.0,
            (MAX_OVERHEAD - 1.0) * 100.0
        );
    }
}
