//! Property-based tests on the core invariants of the measurement toolkit and
//! the simulation substrates.

use energy_aware_sim::autotune::{ExhaustiveSweep, GoldenSection, HillClimb, SearchStrategy};
use energy_aware_sim::hwmodel::dvfs::DvfsModel;
use energy_aware_sim::pmt::integration::{integrate_power_trace, EnergyAccumulator};
use energy_aware_sim::pmt::{Domain, DomainSample};
use energy_aware_sim::sphsim::init::lattice_cube;
use energy_aware_sim::sphsim::morton;
use energy_aware_sim::sphsim::octree::Octree;
use energy_aware_sim::sphsim::physics::neighbors::{build_tree, find_neighbors};
use energy_aware_sim::sphsim::physics::timestep::courant_timestep_prefix;
use energy_aware_sim::sphsim::{dx_periodic, Boundary, MinImage, ParticleSet, TimestepBins};
use proptest::prelude::*;

proptest! {
    /// Energy accumulated from monotone counter readings equals last − first,
    /// independent of how the readings are spaced in time.
    #[test]
    fn counter_energy_is_last_minus_first(
        deltas in proptest::collection::vec(0.0f64..1.0e4, 1..50),
        dts in proptest::collection::vec(1.0e-3f64..10.0, 1..50),
    ) {
        let mut acc = EnergyAccumulator::new();
        let mut counter = 0.0;
        let mut t = 0.0;
        acc.update(t, &DomainSample::energy(Domain::cpu(0), counter));
        for (d, dt) in deltas.iter().zip(dts.iter().cycle()) {
            counter += d;
            t += dt;
            acc.update(t, &DomainSample::energy(Domain::cpu(0), counter));
        }
        prop_assert!((acc.energy_j() - counter).abs() < 1e-6 * counter.max(1.0));
    }

    /// Trapezoidal integration of a non-negative power trace is non-negative,
    /// monotone in the trace length, and bounded by max power × duration.
    #[test]
    fn power_integration_is_bounded(
        powers in proptest::collection::vec(0.0f64..2000.0, 2..100),
    ) {
        let trace: Vec<(f64, f64)> = powers.iter().enumerate().map(|(i, &p)| (i as f64, p)).collect();
        let energy = integrate_power_trace(&trace);
        let duration = (trace.len() - 1) as f64;
        let pmax = powers.iter().cloned().fold(0.0, f64::max);
        prop_assert!(energy >= 0.0);
        prop_assert!(energy <= pmax * duration + 1e-9);
    }

    /// Morton encode/decode round-trips for any in-range cell coordinates.
    #[test]
    fn morton_round_trip(x in 0u64..(1 << 21), y in 0u64..(1 << 21), z in 0u64..(1 << 21)) {
        let code = morton::encode_cells(x, y, z);
        prop_assert_eq!(morton::decode_cells(code), (x, y, z));
    }

    /// DVFS: the applied frequency is always inside the supported range, and
    /// dynamic power never increases when the frequency decreases.
    #[test]
    fn dvfs_clamp_and_monotone_power(freq_mhz in 0.0f64..3000.0, lower_mhz in 0.0f64..3000.0) {
        let d = DvfsModel::nvidia_a100();
        let f = d.clamp(freq_mhz * 1.0e6);
        prop_assert!(f >= d.f_min_hz && f <= d.f_max_hz);
        let (hi, lo) = if freq_mhz >= lower_mhz { (freq_mhz, lower_mhz) } else { (lower_mhz, freq_mhz) };
        prop_assert!(d.dynamic_power_scale(hi * 1.0e6) >= d.dynamic_power_scale(lo * 1.0e6) - 1e-12);
    }

    /// The autotuner never proposes a frequency outside `[f_min, f_max]` or
    /// off the `f_step` grid, for any convex objective and any strategy, and
    /// always converges with a best frequency.
    #[test]
    fn autotune_proposals_stay_on_the_dvfs_grid(
        opt_mhz in 100.0f64..2000.0,
        curvature in 0.1f64..10.0,
        strategy_idx in 0usize..3,
    ) {
        let model = DvfsModel::nvidia_a100();
        let mut strategy: Box<dyn SearchStrategy> = match strategy_idx {
            0 => Box::new(ExhaustiveSweep::new(&model)),
            1 => Box::new(GoldenSection::new(&model)),
            _ => Box::new(HillClimb::new(&model)),
        };
        let mut evaluations = 0;
        while let Some(f) = strategy.propose() {
            prop_assert!(f >= model.f_min_hz && f <= model.f_max_hz, "out of range: {} Hz", f);
            let steps = (f - model.f_min_hz) / model.f_step_hz;
            prop_assert!((steps - steps.round()).abs() < 1e-6, "off grid: {} Hz", f);
            let x = (f / 1.0e6 - opt_mhz) / 1.0e3;
            strategy.observe(f, 1.0 + curvature * x * x);
            evaluations += 1;
            prop_assert!(evaluations <= 200, "strategy failed to converge");
        }
        prop_assert!(strategy.is_converged());
        prop_assert!(strategy.best_frequency().is_some());
    }

    /// Octree neighbour queries return exactly the brute-force neighbour set.
    #[test]
    fn octree_neighbors_match_brute_force(
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..120),
        radius in 0.01f64..0.4,
    ) {
        let x: Vec<f64> = points.iter().map(|p| p.0).collect();
        let y: Vec<f64> = points.iter().map(|p| p.1).collect();
        let z: Vec<f64> = points.iter().map(|p| p.2).collect();
        let m = vec![1.0; x.len()];
        let tree = Octree::build(&x, &y, &z, &m, 8);
        let center = (x[0], y[0], z[0]);
        let mut found = Vec::new();
        tree.neighbors_within(center, radius, &x, &y, &z, &mut found);
        found.sort_unstable();
        let mut expected: Vec<usize> = (0..x.len())
            .filter(|&j| {
                let d2 = (x[j] - center.0).powi(2) + (y[j] - center.1).powi(2) + (z[j] - center.2).powi(2);
                d2 <= radius * radius
            })
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(found, expected);
    }

    /// Minimum-image displacement: antisymmetric under i ↔ j (so pairwise
    /// forces cancel exactly), bounded by half the box space diagonal, and
    /// invariant under integer box-vector shifts of either particle.
    #[test]
    fn min_image_is_symmetric_bounded_and_shift_invariant(
        lx in 0.5f64..4.0, ly in 0.5f64..4.0, lz in 0.5f64..4.0,
        dx in -10.0f64..10.0, dy in -10.0f64..10.0, dz in -10.0f64..10.0,
        kx in -3i64..4, ky in -3i64..4, kz in -3i64..4,
    ) {
        let boundary = Boundary::Periodic {
            box_min: (0.0, 0.0, 0.0),
            box_max: (lx, ly, lz),
        };
        let mi = MinImage::of(&boundary);
        let (mx, my, mz) = mi.map(dx, dy, dz);

        // The scalar convenience helper evaluates the identical expression.
        prop_assert_eq!(dx_periodic(&boundary, dx, dy, dz), (mx, my, mz));

        // Antisymmetry is exact in floating point: negating the raw
        // displacement negates the image bit for bit.
        let (nx, ny, nz) = mi.map(-dx, -dy, -dz);
        prop_assert_eq!(nx.to_bits(), (-mx).to_bits());
        prop_assert_eq!(ny.to_bits(), (-my).to_bits());
        prop_assert_eq!(nz.to_bits(), (-mz).to_bits());

        // Bounded by half the box space diagonal (and per-axis by half the
        // edge, up to rounding).
        let norm = (mx * mx + my * my + mz * mz).sqrt();
        prop_assert!(norm <= boundary.half_diagonal() * (1.0 + 1e-12));
        prop_assert!(mx.abs() <= 0.5 * lx * (1.0 + 1e-12));
        prop_assert!(my.abs() <= 0.5 * ly * (1.0 + 1e-12));
        prop_assert!(mz.abs() <= 0.5 * lz * (1.0 + 1e-12));

        // Shifting either particle by whole box vectors leaves the image
        // unchanged (to rounding in the shifted sum).
        let (sx, sy, sz) = mi.map(
            dx + kx as f64 * lx,
            dy + ky as f64 * ly,
            dz + kz as f64 * lz,
        );
        // Displacements that land within rounding of the half-edge tie are
        // legitimately ambiguous between the ±L/2 images; compare circularly.
        let circ = |a: f64, b: f64, l: f64| {
            let d = (a - b).abs();
            d.min((d - l).abs()) <= 1e-9 * l.max(1.0)
        };
        prop_assert!(circ(sx, mx, lx), "{} vs {}", sx, mx);
        prop_assert!(circ(sy, my, ly), "{} vs {}", sy, my);
        prop_assert!(circ(sz, mz, lz), "{} vs {}", sz, mz);
    }

    /// CSR neighbour lists on a periodic lattice are translation-invariant:
    /// shifting every particle by the same box fraction (then wrapping)
    /// produces the identical neighbour multiset for every particle.
    #[test]
    fn periodic_csr_lists_are_translation_invariant(
        shift_x in 0.0f64..1.0, shift_y in 0.0f64..1.0, shift_z in 0.0f64..1.0,
    ) {
        let mut base = lattice_cube(5, 1.0, 1.0, 1.2);
        base.boundary = Boundary::unit_box();
        let mut shifted = base.clone();
        for i in 0..shifted.len() {
            shifted.x[i] += shift_x;
            shifted.y[i] += shift_y;
            shifted.z[i] += shift_z;
        }
        shifted.wrap_positions();

        let base_tree = build_tree(&base, 8);
        let base_nl = find_neighbors(&mut base, &base_tree);
        let shifted_tree = build_tree(&shifted, 8);
        let shifted_nl = find_neighbors(&mut shifted, &shifted_tree);

        prop_assert_eq!(base_nl.len(), shifted_nl.len());
        for i in 0..base_nl.len() {
            let mut a: Vec<u32> = base_nl.neighbors(i).to_vec();
            let mut b: Vec<u32> = shifted_nl.neighbors(i).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "row {} differs after translation", i);
            prop_assert_eq!(base.neighbor_count[i], shifted.neighbor_count[i]);
        }
    }

    /// After rung assignment plus limiter rounds to the fixpoint, every
    /// neighbouring pair's rungs differ by at most one level — on open and
    /// periodic random clouds alike. The limiter is raise-only Jacobi, so it
    /// must also reach the fixpoint in at most `n_bins` rounds (one rung-gap
    /// hop propagates per round, and rungs are bounded by `n_bins − 1`).
    #[test]
    fn timestep_limiter_fixpoint_bounds_neighbour_rung_gaps(
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 20..80),
        speeds in proptest::collection::vec(0.01f64..100.0, 80..81),
        periodic_bit in 0usize..2,
    ) {
        let periodic = periodic_bit == 1;
        let n = points.len();
        let mut p = ParticleSet::with_capacity(n);
        for &(x, y, z) in &points {
            p.push(x, y, z, 0.0, 0.0, 0.0, 1.0, 0.15, 1.0);
        }
        if periodic {
            p.boundary = Boundary::unit_box();
        }
        p.c = speeds[..n].to_vec();
        let tree = build_tree(&p, 8);
        let nl = find_neighbors(&mut p, &tree);

        let mut bins = TimestepBins::new(8);
        bins.plan(courant_timestep_prefix(&p, n, 0.05), 0.05);
        bins.assign_rungs(&mut p, n);
        let mut rounds = 0;
        while bins.limiter_round(&mut p, &nl, n) {
            rounds += 1;
            prop_assert!(rounds <= bins.n_bins(), "limiter failed to converge in n_bins rounds");
        }
        for i in 0..n {
            for &j in nl.neighbors(i) {
                let (ki, kj) = (p.rung[i] as i32, p.rung[j as usize] as i32);
                prop_assert!(
                    (ki - kj).abs() <= 1,
                    "neighbours {} (rung {}) and {} (rung {}) violate the one-level limiter",
                    i, ki, j, kj
                );
            }
        }
    }

    /// The limiter couples rungs *across the periodic wrap seam*: a slow
    /// cluster hugging the x = 0 face only overlaps a fast (deep-rung)
    /// cluster hugging x = 1 through the seam, yet must end within one rung
    /// of it. A one-sided seam in the CSR rows or a limiter that ignores
    /// image neighbours shows up here as an untouched rung-0 cluster.
    #[test]
    fn timestep_limiter_reaches_across_the_wrap_seam(
        fast_c in 50.0f64..200.0,
        slow_c in 0.01f64..0.05,
        jitter in 0.0f64..0.01,
    ) {
        let mut p = ParticleSet::with_capacity(16);
        // Two 2×2×2 micro-lattices: one against x = 0, one against x = 1.
        // h = 0.05 gives a 0.1 support radius — the 0.06 cross-seam gap is
        // inside it, the 0.9 direct gap is far outside.
        for cluster in 0..2 {
            let x0 = if cluster == 0 { 0.01 } else { 0.95 };
            for dx in 0..2 {
                for dy in 0..2 {
                    for dz in 0..2 {
                        p.push(
                            x0 + 0.02 * dx as f64 + jitter,
                            0.4 + 0.02 * dy as f64,
                            0.4 + 0.02 * dz as f64,
                            0.0, 0.0, 0.0,
                            1.0, 0.05, 1.0,
                        );
                    }
                }
            }
        }
        p.boundary = Boundary::unit_box();
        p.c = (0..16).map(|i| if i < 8 { slow_c } else { fast_c }).collect();
        let tree = build_tree(&p, 8);
        let nl = find_neighbors(&mut p, &tree);
        // The clusters must actually interact through the seam only.
        let crossing = (0..8usize).any(|i| nl.neighbors(i).iter().any(|&j| j >= 8));
        prop_assert!(crossing, "clusters must see each other through the wrap seam");

        let mut bins = TimestepBins::new(8);
        bins.plan(courant_timestep_prefix(&p, 16, 0.05), 0.05);
        bins.assign_rungs(&mut p, 16);
        let spread_before = p.rung[..16].iter().max().unwrap() - p.rung[..16].iter().min().unwrap();
        prop_assert!(spread_before >= 2, "the sound-speed contrast must split the rungs");
        while bins.limiter_round(&mut p, &nl, 16) {}
        for i in 0..16 {
            for &j in nl.neighbors(i) {
                let (ki, kj) = (p.rung[i] as i32, p.rung[j as usize] as i32);
                prop_assert!(
                    (ki - kj).abs() <= 1,
                    "seam pair {} (rung {}) / {} (rung {}) violates the one-level limiter",
                    i, ki, j, kj
                );
            }
        }
        // The slow cluster was dragged up through the seam, not left alone.
        let deep = *p.rung[8..16].iter().max().unwrap();
        prop_assert!(
            p.rung[..8].iter().all(|&k| k + 1 >= deep),
            "slow cluster rungs {:?} not within one level of the fast cluster's {deep}",
            &p.rung[..8]
        );
    }

    /// SPH cubic kernel: non-negative, compact support, normalised within 1 %.
    #[test]
    fn kernel_properties(h in 0.05f64..5.0) {
        use energy_aware_sim::sphsim::kernels::{w_cubic, KERNEL_SUPPORT};
        prop_assert!(w_cubic(KERNEL_SUPPORT * h * 1.001, h) == 0.0);
        prop_assert!(w_cubic(0.0, h) > 0.0);
        // Normalisation via coarse radial integration.
        let n = 500;
        let dr = KERNEL_SUPPORT * h / n as f64;
        let integral: f64 = (0..n)
            .map(|i| {
                let r = (i as f64 + 0.5) * dr;
                4.0 * std::f64::consts::PI * r * r * w_cubic(r, h) * dr
            })
            .sum();
        prop_assert!((integral - 1.0).abs() < 0.01, "integral {}", integral);
    }
}
