//! Dynamic voltage and frequency scaling (DVFS) model.
//!
//! GPU (and CPU) dynamic power follows the classic CMOS model
//! `P_dyn ∝ C · V² · f`. Voltage itself scales roughly linearly with frequency
//! within the supported range, which is why down-scaling the compute clock
//! reduces power super-linearly — the effect exploited in the paper's
//! Section 3.2 (Figures 4 and 5).
//!
//! [`DvfsModel`] captures a device's supported frequency range, its
//! voltage–frequency curve and the split between frequency-dependent (dynamic)
//! and frequency-independent (static/idle) power.

use serde::{Deserialize, Serialize};

/// Voltage/frequency operating model for one clock domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DvfsModel {
    /// Minimum supported compute frequency in Hz.
    pub f_min_hz: f64,
    /// Maximum (nominal/boost) compute frequency in Hz. This is the paper's
    /// baseline frequency (1410 MHz on A100, 1700 MHz on MI250X).
    pub f_max_hz: f64,
    /// Granularity of frequency steps in Hz (e.g. 15 MHz on A100).
    pub f_step_hz: f64,
    /// Core voltage at `f_min_hz`, in volts.
    pub v_min: f64,
    /// Core voltage at `f_max_hz`, in volts.
    pub v_max: f64,
}

impl DvfsModel {
    /// A100-like DVFS range: 210–1410 MHz in 15 MHz steps, 0.70–1.00 V.
    pub fn nvidia_a100() -> Self {
        Self {
            f_min_hz: 210.0e6,
            f_max_hz: 1410.0e6,
            f_step_hz: 15.0e6,
            v_min: 0.70,
            v_max: 1.00,
        }
    }

    /// MI250X-like DVFS range: 500–1700 MHz in 100 MHz steps, 0.73–1.05 V.
    pub fn amd_mi250x() -> Self {
        Self {
            f_min_hz: 500.0e6,
            f_max_hz: 1700.0e6,
            f_step_hz: 100.0e6,
            v_min: 0.73,
            v_max: 1.05,
        }
    }

    /// Generic CPU package DVFS (used by the CPU model for completeness).
    pub fn generic_cpu(f_nominal_hz: f64) -> Self {
        Self {
            f_min_hz: f_nominal_hz * 0.4,
            f_max_hz: f_nominal_hz,
            f_step_hz: 100.0e6,
            v_min: 0.75,
            v_max: 1.10,
        }
    }

    /// Clamp an arbitrary frequency request into the supported range and snap it
    /// to the step granularity (rounding down, as `nvidia-smi -lgc` does).
    pub fn clamp(&self, f_hz: f64) -> f64 {
        if f_hz >= self.f_max_hz {
            return self.f_max_hz;
        }
        let f = f_hz.clamp(self.f_min_hz, self.f_max_hz);
        if self.f_step_hz <= 0.0 {
            return f;
        }
        let steps = ((f - self.f_min_hz) / self.f_step_hz).floor();
        (self.f_min_hz + steps * self.f_step_hz).min(self.f_max_hz)
    }

    /// Operating voltage at frequency `f_hz` (linear V–f curve, clamped).
    pub fn voltage(&self, f_hz: f64) -> f64 {
        let f = f_hz.clamp(self.f_min_hz, self.f_max_hz);
        if (self.f_max_hz - self.f_min_hz).abs() < f64::EPSILON {
            return self.v_max;
        }
        let x = (f - self.f_min_hz) / (self.f_max_hz - self.f_min_hz);
        self.v_min + x * (self.v_max - self.v_min)
    }

    /// Dynamic-power scale factor at `f_hz` relative to running at `f_max_hz`:
    /// `(f/f_max) · (V(f)/V(f_max))²`. Equals 1.0 at the maximum frequency and
    /// decreases super-linearly as the clock is lowered.
    pub fn dynamic_power_scale(&self, f_hz: f64) -> f64 {
        let f = f_hz.clamp(self.f_min_hz, self.f_max_hz);
        let v = self.voltage(f);
        let v0 = self.voltage(self.f_max_hz);
        (f / self.f_max_hz) * (v / v0).powi(2)
    }

    /// Throughput scale factor for purely compute-bound work: `f / f_max`.
    pub fn throughput_scale(&self, f_hz: f64) -> f64 {
        f_hz.clamp(self.f_min_hz, self.f_max_hz) / self.f_max_hz
    }

    /// Enumerate the supported frequencies between `lo_hz` and `hi_hz` inclusive.
    pub fn supported_range(&self, lo_hz: f64, hi_hz: f64) -> Vec<f64> {
        let lo = self.clamp(lo_hz);
        let hi = self.clamp(hi_hz);
        let mut out = Vec::new();
        let mut f = lo;
        while f <= hi + 1e-3 {
            out.push(f);
            f += self.f_step_hz;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_nominal_is_1410mhz() {
        let d = DvfsModel::nvidia_a100();
        assert_eq!(d.f_max_hz, 1410.0e6);
        assert!((d.dynamic_power_scale(d.f_max_hz) - 1.0).abs() < 1e-12);
        assert!((d.throughput_scale(d.f_max_hz) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_snaps_to_steps() {
        let d = DvfsModel::nvidia_a100();
        // 1007 MHz -> snapped down onto the 15 MHz grid starting at 210 MHz.
        let f = d.clamp(1007.0e6);
        assert!(f <= 1007.0e6);
        let steps = (f - d.f_min_hz) / d.f_step_hz;
        assert!((steps - steps.round()).abs() < 1e-9);
    }

    #[test]
    fn clamp_respects_bounds() {
        let d = DvfsModel::nvidia_a100();
        assert_eq!(d.clamp(10.0e6), d.f_min_hz);
        assert_eq!(d.clamp(99.0e9), d.f_max_hz);
    }

    #[test]
    fn voltage_monotonic_in_frequency() {
        let d = DvfsModel::amd_mi250x();
        let mut prev = 0.0;
        for mhz in (500..=1700).step_by(50) {
            let v = d.voltage(mhz as f64 * 1e6);
            assert!(v >= prev);
            prev = v;
        }
        assert!((d.voltage(d.f_min_hz) - d.v_min).abs() < 1e-12);
        assert!((d.voltage(d.f_max_hz) - d.v_max).abs() < 1e-12);
    }

    #[test]
    fn power_scale_is_superlinear() {
        let d = DvfsModel::nvidia_a100();
        // At ~71% of the max frequency the dynamic power should be well below 71%.
        let f = 1005.0e6;
        let scale = d.dynamic_power_scale(f);
        let linear = f / d.f_max_hz;
        assert!(scale < linear);
        assert!(scale > 0.3);
    }

    #[test]
    fn supported_range_includes_endpoints() {
        let d = DvfsModel::nvidia_a100();
        let fs = d.supported_range(1005.0e6, 1410.0e6);
        assert!(!fs.is_empty());
        assert!(fs.windows(2).all(|w| w[1] > w[0]));
        assert!(*fs.last().unwrap() <= d.f_max_hz + 1.0);
    }

    #[test]
    fn degenerate_voltage_range() {
        let d = DvfsModel {
            f_min_hz: 1.0e9,
            f_max_hz: 1.0e9,
            f_step_hz: 0.0,
            v_min: 0.9,
            v_max: 0.9,
        };
        assert_eq!(d.voltage(1.0e9), 0.9);
        assert_eq!(d.clamp(2.0e9), 1.0e9);
    }
}
