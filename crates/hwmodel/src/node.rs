//! Compute-node composition.
//!
//! A [`Node`] groups CPU sockets, GPU dies, memory and auxiliary components and
//! exposes aggregate power/energy, mirroring what a node-level sensor (Cray
//! `pm_counters` `power`/`energy`, IPMI via the BMC) would report. The node-level
//! value includes a power-supply conversion loss on top of the component sum,
//! which is why the paper's "Other" category (node − GPU − CPU − MEM) is larger
//! than the auxiliary baseline alone.

use crate::aux::{AuxHandle, AuxSpec};
use crate::cpu::{CpuHandle, CpuSpec};
use crate::device::{DeviceKind, PowerDevice};
use crate::gpu::{GpuHandle, GpuSpec};
use crate::memory::{MemoryHandle, MemorySpec};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Static description of a node: its component specs and measurement quirks.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeSpec {
    /// System family name, e.g. `"LUMI-G"`.
    pub system: String,
    /// CPU sockets.
    pub cpus: Vec<CpuSpec>,
    /// GPU dies (one entry per die/GCD, not per card).
    pub gpus: Vec<GpuSpec>,
    /// Node DRAM.
    pub memory: MemorySpec,
    /// Auxiliary components.
    pub aux: AuxSpec,
    /// Whether the platform exposes a separate memory power sensor
    /// (`true` on LUMI-G, `false` on the CSCS A100 system, per the paper §3.1).
    pub has_memory_sensor: bool,
}

impl NodeSpec {
    /// Number of GPU dies per node.
    pub fn gpu_dies(&self) -> usize {
        self.gpus.len()
    }

    /// Number of physical GPU cards per node.
    pub fn gpu_cards(&self) -> usize {
        if self.gpus.is_empty() {
            return 0;
        }
        let dies_per_card = self.gpus[0].dies_per_card as usize;
        self.gpus.len().div_ceil(dies_per_card)
    }

    /// Dies per card of the installed GPUs (assumed homogeneous).
    pub fn dies_per_card(&self) -> usize {
        self.gpus.first().map(|g| g.dies_per_card as usize).unwrap_or(1)
    }
}

/// Builder for [`Node`] instances.
#[derive(Clone, Debug)]
pub struct NodeBuilder {
    spec: NodeSpec,
    hostname: String,
    index: usize,
}

impl NodeBuilder {
    /// Start building a node from a spec.
    pub fn new(spec: NodeSpec) -> Self {
        Self {
            spec,
            hostname: "nid000001".to_string(),
            index: 0,
        }
    }

    /// Set the hostname reported by this node.
    pub fn hostname(mut self, hostname: impl Into<String>) -> Self {
        self.hostname = hostname.into();
        self
    }

    /// Set the node index within its cluster.
    pub fn index(mut self, index: usize) -> Self {
        self.index = index;
        self
    }

    /// Access the spec being built (e.g. to tweak component parameters).
    pub fn spec_mut(&mut self) -> &mut NodeSpec {
        &mut self.spec
    }

    /// Access the spec being built.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Construct the node.
    pub fn build(self) -> Node {
        let NodeBuilder { spec, hostname, index } = self;
        assert!(!spec.cpus.is_empty(), "a node needs at least one CPU socket");
        let cpus: Vec<CpuHandle> = spec
            .cpus
            .iter()
            .enumerate()
            .map(|(i, s)| CpuHandle::new(s.clone(), i))
            .collect();
        let gpus: Vec<GpuHandle> = spec
            .gpus
            .iter()
            .enumerate()
            .map(|(i, s)| GpuHandle::new(s.clone(), i))
            .collect();
        let memory = MemoryHandle::new(spec.memory.clone());
        let aux = AuxHandle::new(spec.aux.clone());
        Node {
            spec: Arc::new(spec),
            hostname,
            index,
            cpus,
            gpus,
            memory,
            aux,
        }
    }
}

/// One simulated compute node.
///
/// `Node` is cheaply cloneable: clones share the same underlying device state.
#[derive(Clone, Debug)]
pub struct Node {
    spec: Arc<NodeSpec>,
    hostname: String,
    index: usize,
    cpus: Vec<CpuHandle>,
    gpus: Vec<GpuHandle>,
    memory: MemoryHandle,
    aux: AuxHandle,
}

impl Node {
    /// Static description of the node.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Hostname of this node.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Index of this node within its cluster.
    pub fn index(&self) -> usize {
        self.index
    }

    /// All CPU sockets.
    pub fn cpus(&self) -> &[CpuHandle] {
        &self.cpus
    }

    /// All GPU dies.
    pub fn gpus(&self) -> &[GpuHandle] {
        &self.gpus
    }

    /// One CPU socket by index.
    pub fn cpu(&self, i: usize) -> Option<&CpuHandle> {
        self.cpus.get(i)
    }

    /// One GPU die by index.
    pub fn gpu(&self, i: usize) -> Option<&GpuHandle> {
        self.gpus.get(i)
    }

    /// Node DRAM handle.
    pub fn memory(&self) -> &MemoryHandle {
        &self.memory
    }

    /// Auxiliary components handle.
    pub fn aux(&self) -> &AuxHandle {
        &self.aux
    }

    /// GPU dies grouped by physical card, in card order.
    pub fn gpu_cards(&self) -> Vec<Vec<GpuHandle>> {
        let cards = self.spec.gpu_cards();
        let mut out: Vec<Vec<GpuHandle>> = vec![Vec::new(); cards];
        for gpu in &self.gpus {
            out[gpu.card_index()].push(gpu.clone());
        }
        out
    }

    /// Total power of one physical GPU card (sum of its dies) in watts. This is
    /// what HPE/Cray `pm_counters` `accelN_power` reports on MI250X systems.
    pub fn card_power_w(&self, card: usize) -> f64 {
        self.gpus.iter().filter(|g| g.card_index() == card).map(|g| g.power_w()).sum()
    }

    /// Total energy of one physical GPU card in joules.
    pub fn card_energy_j(&self, card: usize) -> f64 {
        self.gpus.iter().filter(|g| g.card_index() == card).map(|g| g.energy_j()).sum()
    }

    /// Aggregate instantaneous power of one device class in watts (without PSU loss).
    pub fn power_by_kind_w(&self, kind: DeviceKind) -> f64 {
        match kind {
            DeviceKind::Cpu => self.cpus.iter().map(|d| d.power_w()).sum(),
            DeviceKind::Gpu => self.gpus.iter().map(|d| d.power_w()).sum(),
            DeviceKind::Memory => self.memory.power_w(),
            DeviceKind::Aux => self.aux.power_w(),
            DeviceKind::Node => self.power_w(),
        }
    }

    /// Aggregate energy of one device class in joules (without PSU loss).
    pub fn energy_by_kind_j(&self, kind: DeviceKind) -> f64 {
        match kind {
            DeviceKind::Cpu => self.cpus.iter().map(|d| d.energy_j()).sum(),
            DeviceKind::Gpu => self.gpus.iter().map(|d| d.energy_j()).sum(),
            DeviceKind::Memory => self.memory.energy_j(),
            DeviceKind::Aux => self.aux.energy_j(),
            DeviceKind::Node => self.energy_j(),
        }
    }

    /// Node-level power in watts: component sum scaled by the PSU conversion loss.
    /// This is what the BMC / `pm_counters` `power` file reports.
    pub fn power_w(&self) -> f64 {
        let component_sum: f64 = DeviceKind::concrete().iter().map(|k| self.power_by_kind_w(*k)).sum();
        component_sum * (1.0 + self.spec.aux.psu_loss_fraction)
    }

    /// Node-level cumulative energy in joules (component sum + PSU loss).
    pub fn energy_j(&self) -> f64 {
        let component_sum: f64 = DeviceKind::concrete().iter().map(|k| self.energy_by_kind_j(*k)).sum();
        component_sum * (1.0 + self.spec.aux.psu_loss_fraction)
    }

    /// Advance every device of the node by `dt` seconds at its current load.
    pub fn advance(&self, dt: f64) {
        for c in &self.cpus {
            c.advance(dt);
        }
        for g in &self.gpus {
            g.advance(dt);
        }
        self.memory.advance(dt);
        self.aux.advance(dt);
    }

    /// Set every device of the node to its idle state.
    pub fn set_idle(&self) {
        for c in &self.cpus {
            c.set_idle();
        }
        for g in &self.gpus {
            g.set_idle();
        }
        self.memory.set_idle();
        self.aux.set_idle();
    }

    /// Set the compute clock of every GPU die; returns the applied frequency.
    pub fn set_gpu_frequency(&self, f_hz: f64) -> f64 {
        let mut applied = f_hz;
        for g in &self.gpus {
            applied = g.set_compute_frequency(f_hz);
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn lumi_node_has_8_gcds_on_4_cards() {
        let node = arch::lumi_g().build();
        assert_eq!(node.spec().gpu_dies(), 8);
        assert_eq!(node.spec().gpu_cards(), 4);
        assert_eq!(node.gpu_cards().len(), 4);
        assert!(node.gpu_cards().iter().all(|c| c.len() == 2));
    }

    #[test]
    fn cscs_node_has_4_single_die_cards() {
        let node = arch::cscs_a100().build();
        assert_eq!(node.spec().gpu_dies(), 4);
        assert_eq!(node.spec().gpu_cards(), 4);
    }

    #[test]
    fn node_power_exceeds_component_sum_by_psu_loss() {
        let node = arch::cscs_a100().build();
        let comp: f64 = DeviceKind::concrete().iter().map(|k| node.power_by_kind_w(*k)).sum();
        assert!(node.power_w() > comp);
        let loss = node.power_w() / comp - 1.0;
        assert!((loss - node.spec().aux.psu_loss_fraction).abs() < 1e-9);
    }

    #[test]
    fn advance_accumulates_energy_in_all_devices() {
        let node = arch::mini_hpc().build();
        node.gpus()[0].set_load(1.0);
        node.cpus()[0].set_load(0.2);
        node.advance(10.0);
        assert!(node.energy_by_kind_j(DeviceKind::Gpu) > 0.0);
        assert!(node.energy_by_kind_j(DeviceKind::Cpu) > 0.0);
        assert!(node.energy_by_kind_j(DeviceKind::Memory) > 0.0);
        assert!(node.energy_by_kind_j(DeviceKind::Aux) > 0.0);
        assert!(node.energy_j() > node.energy_by_kind_j(DeviceKind::Gpu));
    }

    #[test]
    fn card_energy_sums_both_gcds() {
        let node = arch::lumi_g().build();
        node.gpu(0).unwrap().set_load(1.0);
        node.gpu(1).unwrap().set_load(1.0);
        node.advance(5.0);
        let card0 = node.card_energy_j(0);
        let die0 = node.gpu(0).unwrap().energy_j();
        let die1 = node.gpu(1).unwrap().energy_j();
        assert!((card0 - (die0 + die1)).abs() < 1e-9);
        // Idle card draws less.
        assert!(node.card_energy_j(1) < card0);
    }

    #[test]
    fn set_gpu_frequency_applies_to_all_dies() {
        let node = arch::mini_hpc().build();
        let applied = node.set_gpu_frequency(1200.0e6);
        for g in node.gpus() {
            assert_eq!(g.compute_frequency(), applied);
        }
    }

    #[test]
    fn clones_share_device_state() {
        let node = arch::cscs_a100().build();
        let clone = node.clone();
        node.gpus()[0].set_load(1.0);
        node.advance(1.0);
        assert_eq!(clone.energy_j(), node.energy_j());
    }

    #[test]
    fn set_idle_resets_loads() {
        let node = arch::cscs_a100().build();
        node.gpus()[0].set_load(1.0);
        node.cpus()[0].set_load(1.0);
        node.set_idle();
        assert_eq!(node.gpus()[0].occupancy(), 0.0);
        assert_eq!(node.cpus()[0].load(), 0.0);
    }
}
