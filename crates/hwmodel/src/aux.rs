//! Auxiliary node components: NIC, fans, voltage regulators, SSD, baseboard.
//!
//! In the paper this is the "Other" category of Figure 2 — calculated by
//! subtracting GPU, CPU and memory from the node-level measurement. The paper
//! notes it is the second-most energy-consuming part and that a per-component
//! breakdown (e.g. network interface) would be valuable future information. Here
//! we model it as a baseline power plus a communication-activity component so that
//! communication-heavy functions (halo exchange, domain sync) show up in "Other".

use crate::device::{DeviceKind, PowerDevice};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Static description of the auxiliary components of a node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuxSpec {
    /// Constant baseline power in watts (fans, VRs, board, SSD).
    pub baseline_w: f64,
    /// Additional power at full network utilisation, in watts.
    pub network_active_w: f64,
    /// Power-supply conversion loss as a fraction of the total node power
    /// (applied by the node model, reported here for documentation).
    pub psu_loss_fraction: f64,
}

impl AuxSpec {
    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.baseline_w >= 0.0);
        assert!(self.network_active_w >= 0.0);
        assert!(
            (0.0..0.5).contains(&self.psu_loss_fraction),
            "PSU loss must be a small fraction"
        );
    }
}

#[derive(Debug)]
struct AuxState {
    network_util: f64,
    energy_j: f64,
}

/// Shareable handle to the auxiliary components of a node.
#[derive(Clone, Debug)]
pub struct AuxHandle {
    spec: Arc<AuxSpec>,
    state: Arc<Mutex<AuxState>>,
}

impl AuxHandle {
    /// Create the auxiliary device.
    pub fn new(spec: AuxSpec) -> Self {
        spec.validate();
        Self {
            spec: Arc::new(spec),
            state: Arc::new(Mutex::new(AuxState {
                network_util: 0.0,
                energy_j: 0.0,
            })),
        }
    }

    /// Static description.
    pub fn spec(&self) -> &AuxSpec {
        &self.spec
    }

    /// Set the network utilisation (0..=1).
    pub fn set_load(&self, network_util: f64) {
        assert!((0.0..=1.0).contains(&network_util), "utilisation must be in [0, 1]");
        self.state.lock().network_util = network_util;
    }

    /// Mark the network idle.
    pub fn set_idle(&self) {
        self.set_load(0.0);
    }

    /// Current network utilisation.
    pub fn load(&self) -> f64 {
        self.state.lock().network_util
    }
}

impl PowerDevice for AuxHandle {
    fn id(&self) -> String {
        "aux".to_string()
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Aux
    }

    fn power_w(&self) -> f64 {
        let util = self.state.lock().network_util;
        self.spec.baseline_w + self.spec.network_active_w * util
    }

    fn energy_j(&self) -> f64 {
        self.state.lock().energy_j
    }

    fn advance(&self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite());
        let p = self.power_w();
        self.state.lock().energy_j += p * dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AuxSpec {
        AuxSpec {
            baseline_w: 120.0,
            network_active_w: 40.0,
            psu_loss_fraction: 0.06,
        }
    }

    #[test]
    fn baseline_power() {
        let a = AuxHandle::new(spec());
        assert!((a.power_w() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn network_activity_adds_power() {
        let a = AuxHandle::new(spec());
        a.set_load(0.5);
        assert!((a.power_w() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn energy_integrates() {
        let a = AuxHandle::new(spec());
        a.advance(5.0);
        assert!((a.energy_j() - 600.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn absurd_psu_loss_panics() {
        let mut s = spec();
        s.psu_loss_fraction = 0.9;
        AuxHandle::new(s);
    }
}
