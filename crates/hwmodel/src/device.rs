//! Common device abstraction.
//!
//! Every simulated hardware component (CPU socket, GPU die, memory, auxiliary
//! board electronics) exposes the same minimal interface: an instantaneous power
//! draw and a cumulative energy counter that advances with simulated time.
//! The cumulative counters are what the vendor interfaces (RAPL `energy_uj`,
//! Cray `pm_counters` `energy`) expose on real machines.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a simulated device. Mirrors the device categories reported in
/// the paper's Figure 2 (GPU / CPU / MEM / Other) plus the whole node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A CPU socket (package domain in RAPL terms).
    Cpu,
    /// A GPU die (a GCD on AMD MI250X, a full die on NVIDIA A100).
    Gpu,
    /// Node DRAM.
    Memory,
    /// Everything else on the board: NIC, fans, VRs, SSD, baseboard.
    Aux,
    /// The whole node (sum of the above). Used by node-level sensors such as the
    /// Cray `pm_counters` `power`/`energy` files and IPMI.
    Node,
}

impl DeviceKind {
    /// Short lower-case label used in file names and report columns.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
            DeviceKind::Memory => "mem",
            DeviceKind::Aux => "other",
            DeviceKind::Node => "node",
        }
    }

    /// All concrete (non-node) device kinds.
    pub fn concrete() -> [DeviceKind; 4] {
        [DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Memory, DeviceKind::Aux]
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Interface shared by every simulated power-drawing component.
pub trait PowerDevice: Send + Sync {
    /// Stable identifier, unique within a node (e.g. `"gpu0"`, `"cpu0"`, `"mem"`).
    fn id(&self) -> String;

    /// Device class.
    fn kind(&self) -> DeviceKind;

    /// Instantaneous power draw in watts for the current load state.
    fn power_w(&self) -> f64;

    /// Cumulative energy in joules since the device was created.
    fn energy_j(&self) -> f64;

    /// Advance the device's internal energy counter by `dt` seconds at the
    /// current power draw.
    fn advance(&self, dt: f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(DeviceKind::Cpu.label(), "cpu");
        assert_eq!(DeviceKind::Gpu.label(), "gpu");
        assert_eq!(DeviceKind::Memory.label(), "mem");
        assert_eq!(DeviceKind::Aux.label(), "other");
        assert_eq!(DeviceKind::Node.label(), "node");
        assert_eq!(DeviceKind::Gpu.to_string(), "gpu");
    }

    #[test]
    fn concrete_excludes_node() {
        let all = DeviceKind::concrete();
        assert_eq!(all.len(), 4);
        assert!(!all.contains(&DeviceKind::Node));
    }

    #[test]
    fn kinds_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<_> = DeviceKind::concrete().into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
