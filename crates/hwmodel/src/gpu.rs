//! GPU power and performance model.
//!
//! Each [`GpuHandle`] models one GPU *die*: a full die on NVIDIA A100, or a single
//! GCD (Graphics Compute Die) on AMD MI250X. The distinction matters for the
//! paper's measurement methodology (§2): HPE/Cray `pm_counters` report power per
//! *card*, i.e. per **two** GCDs on LUMI-G, while one MPI rank drives one GCD.
//!
//! The power model is
//!
//! ```text
//! P(f, occ) = P_static + P_clock·s(f) + (P_peak − P_static − P_clock)·occ·s(f)
//! s(f)      = (f/f_max) · (V(f)/V(f_max))²
//! ```
//!
//! and the execution-time model for a kernel with `flops` floating-point
//! operations, `bytes` of memory traffic and `L` launches is a no-overlap
//! roofline:
//!
//! ```text
//! t(f) = flops / (peak_flops · eff_c · f/f_max)  +  bytes / (bandwidth · eff_m)  +  L·t_launch
//! ```

use crate::device::{DeviceKind, PowerDevice};
use crate::dvfs::DvfsModel;
use crate::kernel::{KernelExecution, KernelWorkload};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// GPU vendor, used to select measurement back-ends and per-architecture kernel
/// efficiency factors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuVendor {
    Nvidia,
    Amd,
}

impl GpuVendor {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            GpuVendor::Nvidia => "nvidia",
            GpuVendor::Amd => "amd",
        }
    }
}

/// Static description of a GPU die.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-SXM4-80GB"` or `"MI250X GCD"`.
    pub name: String,
    pub vendor: GpuVendor,
    /// Peak double-precision throughput in flop/s at the maximum compute clock.
    pub peak_flops: f64,
    /// Peak device-memory bandwidth in byte/s.
    pub mem_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: f64,
    /// Static (leakage + board) power in watts, drawn even when fully idle.
    pub static_power_w: f64,
    /// Clock-tree power at the maximum frequency in watts: drawn whenever the
    /// device is powered, scales with the DVFS state but not with occupancy.
    pub clock_power_w: f64,
    /// Board power limit (TDP) in watts at full occupancy and maximum clock.
    pub peak_power_w: f64,
    /// Compute-clock DVFS model.
    pub dvfs: DvfsModel,
    /// Memory clock in Hz (reported but not scaled in this work, as in the paper).
    pub memory_freq_hz: f64,
    /// Achievable fraction of peak flop/s for well-optimised kernels.
    pub compute_efficiency: f64,
    /// Achievable fraction of peak bandwidth for streaming kernels.
    pub memory_efficiency: f64,
    /// Fixed host-side + device-side cost of one kernel launch, in seconds.
    pub launch_overhead_s: f64,
    /// Number of resident work items needed to saturate the die (occupancy = 1).
    pub saturation_parallelism: f64,
    /// Dies per physical card (2 for MI250X, 1 for A100). Needed by card-level
    /// sensors such as Cray `pm_counters`.
    pub dies_per_card: u32,
}

impl GpuSpec {
    /// Validate invariants; panics with a descriptive message on nonsense specs.
    pub fn validate(&self) {
        assert!(self.peak_flops > 0.0, "peak_flops must be positive");
        assert!(self.mem_bandwidth > 0.0, "mem_bandwidth must be positive");
        assert!(self.static_power_w >= 0.0);
        assert!(self.clock_power_w >= 0.0);
        assert!(
            self.peak_power_w > self.static_power_w + self.clock_power_w,
            "peak power must exceed static + clock power"
        );
        assert!(self.compute_efficiency > 0.0 && self.compute_efficiency <= 1.0);
        assert!(self.memory_efficiency > 0.0 && self.memory_efficiency <= 1.0);
        assert!(self.saturation_parallelism > 0.0);
        assert!(self.dies_per_card >= 1);
    }

    /// Machine balance in flop/byte at the maximum clock.
    pub fn machine_balance(&self) -> f64 {
        self.peak_flops / self.mem_bandwidth
    }
}

#[derive(Debug)]
struct GpuState {
    compute_freq_hz: f64,
    occupancy: f64,
    energy_j: f64,
    busy_time_s: f64,
    total_time_s: f64,
    kernels_executed: u64,
}

/// A shareable handle to one simulated GPU die.
///
/// Cloning the handle clones the reference, not the device.
#[derive(Clone, Debug)]
pub struct GpuHandle {
    spec: Arc<GpuSpec>,
    index: usize,
    state: Arc<Mutex<GpuState>>,
}

impl GpuHandle {
    /// Create a GPU die with the given spec and index within its node.
    pub fn new(spec: GpuSpec, index: usize) -> Self {
        spec.validate();
        let f0 = spec.dvfs.f_max_hz;
        Self {
            spec: Arc::new(spec),
            index,
            state: Arc::new(Mutex::new(GpuState {
                compute_freq_hz: f0,
                occupancy: 0.0,
                energy_j: 0.0,
                busy_time_s: 0.0,
                total_time_s: 0.0,
                kernels_executed: 0,
            })),
        }
    }

    /// Static description of this die.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Index of the die within its node (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Index of the physical card this die sits on.
    pub fn card_index(&self) -> usize {
        self.index / self.spec.dies_per_card as usize
    }

    /// Set the compute clock. The request is clamped and snapped to the DVFS grid;
    /// the applied frequency is returned (mirrors `nvidia-smi -lgc` semantics).
    pub fn set_compute_frequency(&self, f_hz: f64) -> f64 {
        let f = self.spec.dvfs.clamp(f_hz);
        self.state.lock().compute_freq_hz = f;
        f
    }

    /// Currently applied compute clock in Hz.
    pub fn compute_frequency(&self) -> f64 {
        self.state.lock().compute_freq_hz
    }

    /// Memory clock in Hz (fixed).
    pub fn memory_frequency(&self) -> f64 {
        self.spec.memory_freq_hz
    }

    /// Set the current occupancy (0 = idle, 1 = fully busy).
    pub fn set_load(&self, occupancy: f64) {
        assert!((0.0..=1.0).contains(&occupancy), "occupancy must be in [0, 1]");
        self.state.lock().occupancy = occupancy;
    }

    /// Mark the device idle.
    pub fn set_idle(&self) {
        self.set_load(0.0);
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> f64 {
        self.state.lock().occupancy
    }

    /// Fraction of simulated time spent with non-zero occupancy.
    pub fn utilization(&self) -> f64 {
        let s = self.state.lock();
        if s.total_time_s <= 0.0 {
            0.0
        } else {
            s.busy_time_s / s.total_time_s
        }
    }

    /// Number of kernels executed so far.
    pub fn kernels_executed(&self) -> u64 {
        self.state.lock().kernels_executed
    }

    /// Predict the execution of `work` at the current compute clock without
    /// changing the device state.
    pub fn estimate(&self, work: &KernelWorkload) -> KernelExecution {
        let f = self.compute_frequency();
        self.estimate_at(work, f)
    }

    /// Predict the execution of `work` at an explicit compute clock.
    pub fn estimate_at(&self, work: &KernelWorkload, f_hz: f64) -> KernelExecution {
        let spec = &*self.spec;
        let f = spec.dvfs.clamp(f_hz);
        let occupancy = (work.parallelism / spec.saturation_parallelism).clamp(0.0, 1.0);
        let throughput = spec.peak_flops * spec.compute_efficiency * spec.dvfs.throughput_scale(f);
        // Low occupancy leaves the memory system latency-bound: the achievable
        // bandwidth fraction drops, making the kernel *less* sensitive to the
        // core clock (the regime the paper's 200³-per-GPU case sits in).
        let bandwidth = spec.mem_bandwidth * spec.memory_efficiency * (0.40 + 0.60 * occupancy);
        let t_compute = if work.flops > 0.0 { work.flops / throughput } else { 0.0 };
        let t_memory = if work.bytes > 0.0 { work.bytes / bandwidth } else { 0.0 };
        let t_launch = work.launches as f64 * spec.launch_overhead_s;
        let duration = t_compute + t_memory + t_launch;
        let compute_fraction = if duration > 0.0 { t_compute / duration } else { 0.0 };
        KernelExecution {
            duration_s: duration,
            occupancy,
            compute_fraction,
        }
    }

    /// Begin executing `work`: the device load is set to the workload's occupancy
    /// and the predicted duration is returned. The caller is responsible for
    /// advancing simulated time and calling [`GpuHandle::set_idle`] afterwards.
    pub fn execute(&self, work: &KernelWorkload) -> f64 {
        let exec = self.estimate(work);
        let mut s = self.state.lock();
        s.occupancy = exec.occupancy;
        s.kernels_executed += 1;
        exec.duration_s
    }

    /// Instantaneous power at an explicit occupancy and frequency (model formula
    /// exposed for analysis and testing).
    pub fn power_at(&self, occupancy: f64, f_hz: f64) -> f64 {
        let spec = &*self.spec;
        let s = spec.dvfs.dynamic_power_scale(spec.dvfs.clamp(f_hz));
        let dynamic_span = spec.peak_power_w - spec.static_power_w - spec.clock_power_w;
        // Dynamic power rises sub-linearly with occupancy: even a kernel that
        // keeps only part of the SMs busy drives the full clock tree, L2 and
        // HBM interface, so a lightly-loaded GPU draws far more than idle.
        let occ = occupancy.clamp(0.0, 1.0);
        let occ_power = if occ > 0.0 { occ.powf(0.35) } else { 0.0 };
        spec.static_power_w + spec.clock_power_w * s + dynamic_span * occ_power * s
    }
}

impl PowerDevice for GpuHandle {
    fn id(&self) -> String {
        format!("gpu{}", self.index)
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Gpu
    }

    fn power_w(&self) -> f64 {
        let (occ, f) = {
            let s = self.state.lock();
            (s.occupancy, s.compute_freq_hz)
        };
        self.power_at(occ, f)
    }

    fn energy_j(&self) -> f64 {
        self.state.lock().energy_j
    }

    fn advance(&self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be non-negative");
        let power = self.power_w();
        let mut s = self.state.lock();
        s.energy_j += power * dt;
        s.total_time_s += dt;
        if s.occupancy > 0.0 {
            s.busy_time_s += dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_spec() -> GpuSpec {
        GpuSpec {
            name: "TestGPU".to_string(),
            vendor: GpuVendor::Nvidia,
            peak_flops: 9.7e12,
            mem_bandwidth: 1.6e12,
            mem_bytes: 40.0e9,
            static_power_w: 40.0,
            clock_power_w: 20.0,
            peak_power_w: 400.0,
            dvfs: DvfsModel::nvidia_a100(),
            memory_freq_hz: 1593.0e6,
            compute_efficiency: 0.6,
            memory_efficiency: 0.75,
            launch_overhead_s: 10.0e-6,
            saturation_parallelism: 30.0e6,
            dies_per_card: 1,
        }
    }

    #[test]
    fn idle_power_is_static_plus_clock() {
        let g = GpuHandle::new(test_spec(), 0);
        let p = g.power_w();
        assert!(
            (p - 60.0).abs() < 1e-9,
            "idle power at max clock = static + clock ({p})"
        );
    }

    #[test]
    fn full_load_power_equals_tdp_at_max_clock() {
        let g = GpuHandle::new(test_spec(), 0);
        g.set_load(1.0);
        assert!((g.power_w() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn lower_frequency_lowers_power() {
        let g = GpuHandle::new(test_spec(), 0);
        g.set_load(1.0);
        let p_max = g.power_w();
        g.set_compute_frequency(1005.0e6);
        let p_low = g.power_w();
        assert!(p_low < p_max);
        // Super-linear: power ratio below frequency ratio.
        assert!(p_low / p_max < 1005.0 / 1410.0 + 0.05);
    }

    #[test]
    fn lower_frequency_slows_compute_bound_kernels() {
        let g = GpuHandle::new(test_spec(), 0);
        let work = KernelWorkload::new("k", 1.0e13, 1.0e9).with_parallelism(1.0e8);
        let fast = g.estimate_at(&work, 1410.0e6);
        let slow = g.estimate_at(&work, 1005.0e6);
        assert!(slow.duration_s > fast.duration_s);
        assert!(fast.compute_fraction > 0.8, "this workload should be compute bound");
    }

    #[test]
    fn memory_bound_kernels_are_frequency_insensitive() {
        let g = GpuHandle::new(test_spec(), 0);
        let work = KernelWorkload::new("k", 1.0e9, 1.0e12).with_parallelism(1.0e8);
        let fast = g.estimate_at(&work, 1410.0e6);
        let slow = g.estimate_at(&work, 1005.0e6);
        let ratio = slow.duration_s / fast.duration_s;
        assert!(ratio < 1.05, "memory-bound kernel should barely slow down, got {ratio}");
    }

    #[test]
    fn energy_accumulates_with_time() {
        let g = GpuHandle::new(test_spec(), 0);
        g.set_load(0.5);
        g.advance(10.0);
        let e = g.energy_j();
        assert!(e > 0.0);
        g.advance(10.0);
        assert!((g.energy_j() - 2.0 * e).abs() < 1e-9);
    }

    #[test]
    fn occupancy_scales_with_parallelism() {
        let g = GpuHandle::new(test_spec(), 0);
        let small = KernelWorkload::new("s", 1e9, 1e9).with_parallelism(3.0e6);
        let large = KernelWorkload::new("l", 1e9, 1e9).with_parallelism(3.0e8);
        assert!(g.estimate(&small).occupancy < 0.2);
        assert!((g.estimate(&large).occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn execute_sets_load_and_counts_kernels() {
        let g = GpuHandle::new(test_spec(), 0);
        let work = KernelWorkload::new("k", 1e12, 1e10).with_parallelism(3.0e7);
        let dt = g.execute(&work);
        assert!(dt > 0.0);
        assert!(g.occupancy() > 0.9);
        assert_eq!(g.kernels_executed(), 1);
        g.advance(dt);
        g.set_idle();
        assert_eq!(g.occupancy(), 0.0);
        assert!(g.utilization() > 0.99);
    }

    #[test]
    fn card_index_accounts_for_dies_per_card() {
        let mut spec = test_spec();
        spec.dies_per_card = 2;
        let g0 = GpuHandle::new(spec.clone(), 0);
        let g1 = GpuHandle::new(spec.clone(), 1);
        let g2 = GpuHandle::new(spec, 2);
        assert_eq!(g0.card_index(), 0);
        assert_eq!(g1.card_index(), 0);
        assert_eq!(g2.card_index(), 1);
    }

    #[test]
    fn set_frequency_reports_applied_value() {
        let g = GpuHandle::new(test_spec(), 0);
        let applied = g.set_compute_frequency(1.0e6);
        assert_eq!(applied, g.spec().dvfs.f_min_hz);
        assert_eq!(g.compute_frequency(), applied);
    }

    #[test]
    #[should_panic]
    fn invalid_occupancy_panics() {
        let g = GpuHandle::new(test_spec(), 0);
        g.set_load(1.5);
    }

    #[test]
    fn machine_balance_is_positive() {
        assert!(test_spec().machine_balance() > 1.0);
    }
}
