//! Node DRAM power model.
//!
//! Memory power has a capacity-proportional background component (refresh,
//! standby) and a bandwidth-proportional active component. LUMI-G exposes memory
//! power through `pm_counters`; on the CSCS A100 system no separate memory
//! measurement exists and memory ends up inside "Other" (paper §3.1) — that
//! distinction is handled by the node description, not here.

use crate::device::{DeviceKind, PowerDevice};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Static description of the node DRAM.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Installed capacity in bytes.
    pub capacity_bytes: f64,
    /// Background power per gigabyte in watts (refresh/standby).
    pub idle_w_per_gb: f64,
    /// Additional power at full bandwidth utilisation, in watts.
    pub active_w_max: f64,
}

impl MemorySpec {
    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.capacity_bytes > 0.0);
        assert!(self.idle_w_per_gb >= 0.0);
        assert!(self.active_w_max >= 0.0);
    }

    /// Background (idle) power of the full capacity in watts.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_w_per_gb * self.capacity_bytes / 1.0e9
    }
}

#[derive(Debug)]
struct MemoryState {
    bandwidth_util: f64,
    energy_j: f64,
}

/// Shareable handle to the node DRAM.
#[derive(Clone, Debug)]
pub struct MemoryHandle {
    spec: Arc<MemorySpec>,
    state: Arc<Mutex<MemoryState>>,
}

impl MemoryHandle {
    /// Create the DRAM device.
    pub fn new(spec: MemorySpec) -> Self {
        spec.validate();
        Self {
            spec: Arc::new(spec),
            state: Arc::new(Mutex::new(MemoryState {
                bandwidth_util: 0.0,
                energy_j: 0.0,
            })),
        }
    }

    /// Static description.
    pub fn spec(&self) -> &MemorySpec {
        &self.spec
    }

    /// Set the fraction of peak bandwidth currently in use (0..=1).
    pub fn set_load(&self, bandwidth_util: f64) {
        assert!((0.0..=1.0).contains(&bandwidth_util), "utilisation must be in [0, 1]");
        self.state.lock().bandwidth_util = bandwidth_util;
    }

    /// Mark the memory idle.
    pub fn set_idle(&self) {
        self.set_load(0.0);
    }

    /// Current bandwidth utilisation.
    pub fn load(&self) -> f64 {
        self.state.lock().bandwidth_util
    }
}

impl PowerDevice for MemoryHandle {
    fn id(&self) -> String {
        "mem".to_string()
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Memory
    }

    fn power_w(&self) -> f64 {
        let util = self.state.lock().bandwidth_util;
        self.spec.idle_power_w() + self.spec.active_w_max * util
    }

    fn energy_j(&self) -> f64 {
        self.state.lock().energy_j
    }

    fn advance(&self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite());
        let p = self.power_w();
        self.state.lock().energy_j += p * dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MemorySpec {
        MemorySpec {
            capacity_bytes: 512.0e9,
            idle_w_per_gb: 0.08,
            active_w_max: 30.0,
        }
    }

    #[test]
    fn idle_power_scales_with_capacity() {
        let m = MemoryHandle::new(spec());
        assert!((m.power_w() - 0.08 * 512.0).abs() < 1e-9);
    }

    #[test]
    fn active_power_adds_on_top() {
        let m = MemoryHandle::new(spec());
        m.set_load(1.0);
        assert!((m.power_w() - (0.08 * 512.0 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn energy_integrates() {
        let m = MemoryHandle::new(spec());
        m.set_load(0.5);
        let p = m.power_w();
        m.advance(10.0);
        assert!((m.energy_j() - 10.0 * p).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn overload_panics() {
        MemoryHandle::new(spec()).set_load(2.0);
    }
}
