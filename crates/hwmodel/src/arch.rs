//! Architecture presets for the paper's three test systems (Table 1).
//!
//! | System      | Node hardware                                               | GPU nominal clock |
//! |-------------|--------------------------------------------------------------|-------------------|
//! | LUMI-G      | 1× AMD EPYC 7A53 (64 c, 512 GB), 4× AMD MI250X (8 GCDs, 64 GB each) | 1700 MHz          |
//! | CSCS-A100   | 1× AMD EPYC 7713 (64 c), 4× NVIDIA A100-SXM4-80GB            | 1410 MHz          |
//! | miniHPC     | 2× Intel Xeon Gold 6258R (28 c, 1.5 TB), 2× NVIDIA A100-PCIE-40GB | 1410 MHz          |
//!
//! Peak throughput, bandwidth and power envelopes come from public vendor
//! datasheets; efficiency factors are calibrated so that the relative magnitudes
//! reported in the paper (GPU ≈ 75 % of node energy, LUMI runs drawing more
//! energy than CSCS runs for the same simulation) are reproduced.

use crate::aux::AuxSpec;
use crate::cpu::CpuSpec;
use crate::dvfs::DvfsModel;
use crate::gpu::{GpuSpec, GpuVendor};
use crate::memory::MemorySpec;
use crate::node::{NodeBuilder, NodeSpec};
use serde::{Deserialize, Serialize};

/// The three systems evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// LUMI-G: AMD EPYC + 4× MI250X (8 GCDs) per node, Cray pm_counters.
    LumiG,
    /// CSCS A100 system: AMD EPYC + 4× A100-SXM4 per node, Cray pm_counters
    /// without a separate memory sensor.
    CscsA100,
    /// University of Basel miniHPC GPU node: 2× Xeon + 2× A100-PCIE, RAPL + NVML,
    /// user-controllable GPU frequency.
    MiniHpc,
}

impl SystemKind {
    /// Human-readable system name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::LumiG => "LUMI-G",
            SystemKind::CscsA100 => "CSCS-A100",
            SystemKind::MiniHpc => "miniHPC",
        }
    }

    /// Node builder for this system.
    pub fn node_builder(&self) -> NodeBuilder {
        match self {
            SystemKind::LumiG => lumi_g(),
            SystemKind::CscsA100 => cscs_a100(),
            SystemKind::MiniHpc => mini_hpc(),
        }
    }

    /// Nominal GPU compute frequency in Hz (the paper's baseline).
    pub fn nominal_gpu_frequency_hz(&self) -> f64 {
        match self {
            SystemKind::LumiG => 1700.0e6,
            SystemKind::CscsA100 | SystemKind::MiniHpc => 1410.0e6,
        }
    }

    /// Whether users may change the GPU compute frequency (only miniHPC in the paper).
    pub fn allows_user_frequency_control(&self) -> bool {
        matches!(self, SystemKind::MiniHpc)
    }

    /// All systems.
    pub fn all() -> [SystemKind; 3] {
        [SystemKind::LumiG, SystemKind::CscsA100, SystemKind::MiniHpc]
    }
}

/// GPU spec of one AMD MI250X GCD (half card), as installed in LUMI-G.
pub fn mi250x_gcd() -> GpuSpec {
    GpuSpec {
        name: "MI250X GCD".to_string(),
        vendor: GpuVendor::Amd,
        peak_flops: 23.9e12,
        mem_bandwidth: 1.6e12,
        mem_bytes: 64.0e9,
        static_power_w: 30.0,
        clock_power_w: 45.0,
        peak_power_w: 280.0,
        dvfs: DvfsModel::amd_mi250x(),
        memory_freq_hz: 1600.0e6,
        compute_efficiency: 0.50,
        memory_efficiency: 0.70,
        launch_overhead_s: 14.0e-6,
        saturation_parallelism: 90.0e6,
        dies_per_card: 2,
    }
}

/// GPU spec of one NVIDIA A100-SXM4-80GB, as installed in the CSCS A100 system.
pub fn a100_sxm4_80gb() -> GpuSpec {
    GpuSpec {
        name: "A100-SXM4-80GB".to_string(),
        vendor: GpuVendor::Nvidia,
        peak_flops: 9.7e12,
        mem_bandwidth: 2.0e12,
        mem_bytes: 80.0e9,
        static_power_w: 30.0,
        clock_power_w: 50.0,
        peak_power_w: 400.0,
        dvfs: DvfsModel::nvidia_a100(),
        memory_freq_hz: 1593.0e6,
        compute_efficiency: 0.62,
        memory_efficiency: 0.80,
        launch_overhead_s: 8.0e-6,
        saturation_parallelism: 60.0e6,
        dies_per_card: 1,
    }
}

/// GPU spec of one NVIDIA A100-PCIE-40GB, as installed in miniHPC.
pub fn a100_pcie_40gb() -> GpuSpec {
    GpuSpec {
        name: "A100-PCIE-40GB".to_string(),
        vendor: GpuVendor::Nvidia,
        peak_flops: 9.7e12,
        mem_bandwidth: 1.555e12,
        mem_bytes: 40.0e9,
        static_power_w: 20.0,
        clock_power_w: 40.0,
        peak_power_w: 250.0,
        dvfs: DvfsModel::nvidia_a100(),
        memory_freq_hz: 1593.0e6,
        compute_efficiency: 0.60,
        memory_efficiency: 0.78,
        launch_overhead_s: 9.0e-6,
        saturation_parallelism: 60.0e6,
        dies_per_card: 1,
    }
}

/// CPU spec of the AMD EPYC 7A53 "Trento" (LUMI-G host CPU).
pub fn epyc_7a53() -> CpuSpec {
    CpuSpec {
        name: "AMD EPYC 7A53".to_string(),
        cores: 64,
        nominal_freq_hz: 2.0e9,
        idle_power_w: 90.0,
        tdp_w: 280.0,
        dvfs: DvfsModel::generic_cpu(2.0e9),
    }
}

/// CPU spec of the AMD EPYC 7713 (CSCS A100 system host CPU; the paper's
/// Table 1 lists it as "EPYC 7113").
pub fn epyc_7713() -> CpuSpec {
    CpuSpec {
        name: "AMD EPYC 7713".to_string(),
        cores: 64,
        nominal_freq_hz: 2.0e9,
        idle_power_w: 80.0,
        tdp_w: 225.0,
        dvfs: DvfsModel::generic_cpu(2.0e9),
    }
}

/// CPU spec of the Intel Xeon Gold 6258R (miniHPC host CPU).
pub fn xeon_gold_6258r() -> CpuSpec {
    CpuSpec {
        name: "Intel Xeon Gold 6258R".to_string(),
        cores: 28,
        nominal_freq_hz: 2.7e9,
        idle_power_w: 55.0,
        tdp_w: 205.0,
        dvfs: DvfsModel::generic_cpu(2.7e9),
    }
}

/// Node builder for a LUMI-G node: 1× EPYC 7A53, 512 GB, 4× MI250X (8 GCDs),
/// Slingshot NICs, separate memory power sensor.
pub fn lumi_g() -> NodeBuilder {
    let spec = NodeSpec {
        system: SystemKind::LumiG.name().to_string(),
        cpus: vec![epyc_7a53()],
        gpus: vec![mi250x_gcd(); 8],
        memory: MemorySpec {
            capacity_bytes: 512.0e9,
            idle_w_per_gb: 0.08,
            active_w_max: 40.0,
        },
        aux: AuxSpec {
            baseline_w: 160.0,
            network_active_w: 100.0,
            psu_loss_fraction: 0.06,
        },
        has_memory_sensor: true,
    };
    NodeBuilder::new(spec)
}

/// Node builder for a CSCS A100 node: 1× EPYC 7713, 4× A100-SXM4-80GB,
/// no separate memory sensor (memory ends up in "Other", as in the paper).
pub fn cscs_a100() -> NodeBuilder {
    let spec = NodeSpec {
        system: SystemKind::CscsA100.name().to_string(),
        cpus: vec![epyc_7713()],
        gpus: vec![a100_sxm4_80gb(); 4],
        memory: MemorySpec {
            capacity_bytes: 512.0e9,
            idle_w_per_gb: 0.075,
            active_w_max: 35.0,
        },
        aux: AuxSpec {
            baseline_w: 130.0,
            network_active_w: 70.0,
            psu_loss_fraction: 0.06,
        },
        has_memory_sensor: false,
    };
    NodeBuilder::new(spec)
}

/// Node builder for the miniHPC GPU node: 2× Xeon Gold 6258R, 1.5 TB,
/// 2× A100-PCIE-40GB, RAPL + NVML sensors, user-controllable GPU clocks.
pub fn mini_hpc() -> NodeBuilder {
    let spec = NodeSpec {
        system: SystemKind::MiniHpc.name().to_string(),
        cpus: vec![xeon_gold_6258r(), xeon_gold_6258r()],
        gpus: vec![a100_pcie_40gb(); 2],
        memory: MemorySpec {
            capacity_bytes: 1.5e12,
            idle_w_per_gb: 0.04,
            active_w_max: 45.0,
        },
        aux: AuxSpec {
            baseline_w: 90.0,
            network_active_w: 30.0,
            psu_loss_fraction: 0.07,
        },
        has_memory_sensor: true,
    };
    NodeBuilder::new(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PowerDevice;

    #[test]
    fn system_names_match_paper() {
        assert_eq!(SystemKind::LumiG.name(), "LUMI-G");
        assert_eq!(SystemKind::CscsA100.name(), "CSCS-A100");
        assert_eq!(SystemKind::MiniHpc.name(), "miniHPC");
    }

    #[test]
    fn nominal_frequencies_match_table1() {
        assert_eq!(SystemKind::LumiG.nominal_gpu_frequency_hz(), 1700.0e6);
        assert_eq!(SystemKind::CscsA100.nominal_gpu_frequency_hz(), 1410.0e6);
        assert_eq!(SystemKind::MiniHpc.nominal_gpu_frequency_hz(), 1410.0e6);
    }

    #[test]
    fn only_minihpc_allows_frequency_control() {
        assert!(!SystemKind::LumiG.allows_user_frequency_control());
        assert!(!SystemKind::CscsA100.allows_user_frequency_control());
        assert!(SystemKind::MiniHpc.allows_user_frequency_control());
    }

    #[test]
    fn all_specs_validate() {
        mi250x_gcd().validate();
        a100_sxm4_80gb().validate();
        a100_pcie_40gb().validate();
        epyc_7a53().validate();
        epyc_7713().validate();
        xeon_gold_6258r().validate();
    }

    #[test]
    fn mi250x_card_is_two_gcds() {
        assert_eq!(mi250x_gcd().dies_per_card, 2);
        assert_eq!(a100_sxm4_80gb().dies_per_card, 1);
    }

    #[test]
    fn node_builders_produce_expected_counts() {
        for kind in SystemKind::all() {
            let node = kind.node_builder().build();
            match kind {
                SystemKind::LumiG => {
                    assert_eq!(node.gpus().len(), 8);
                    assert_eq!(node.cpus().len(), 1);
                    assert!(node.spec().has_memory_sensor);
                }
                SystemKind::CscsA100 => {
                    assert_eq!(node.gpus().len(), 4);
                    assert_eq!(node.cpus().len(), 1);
                    assert!(!node.spec().has_memory_sensor);
                }
                SystemKind::MiniHpc => {
                    assert_eq!(node.gpus().len(), 2);
                    assert_eq!(node.cpus().len(), 2);
                }
            }
        }
    }

    #[test]
    fn busy_gpu_dominates_node_power() {
        // The headline observation of Figure 2: GPUs draw ~3/4 of node energy
        // when the simulation is running.
        for kind in [SystemKind::LumiG, SystemKind::CscsA100] {
            let node = kind.node_builder().build();
            for g in node.gpus() {
                g.set_load(0.95);
            }
            for c in node.cpus() {
                c.set_load(0.08);
            }
            node.memory().set_load(0.3);
            node.aux().set_load(0.3);
            let gpu_share = node.power_by_kind_w(crate::device::DeviceKind::Gpu) / node.power_w();
            assert!(
                (0.60..0.90).contains(&gpu_share),
                "{}: GPU share {gpu_share} outside the plausible range",
                kind.name()
            );
        }
    }

    #[test]
    fn lumi_node_draws_more_than_cscs_node_at_full_load() {
        let lumi = lumi_g().build();
        let cscs = cscs_a100().build();
        for g in lumi.gpus().iter().chain(cscs.gpus()) {
            g.set_load(1.0);
        }
        assert!(lumi.power_w() > cscs.power_w());
    }

    #[test]
    fn idle_node_power_is_plausible() {
        // Idle LUMI-G node should draw a few hundred watts, not kilowatts.
        let node = lumi_g().build();
        let p = node.power_w();
        assert!(p > 300.0 && p < 1800.0, "idle power {p} W implausible");
        assert!(node.gpus()[0].power_w() < 100.0);
    }
}
