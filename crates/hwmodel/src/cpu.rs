//! CPU socket power model.
//!
//! In the paper's GPU-centric runs the CPUs mostly orchestrate GPU work, so their
//! power sits between idle and a light-load level, and their *energy* per function
//! is proportional to the function's duration (§3.1). The model is
//!
//! ```text
//! P(load, f) = P_idle + (P_tdp − P_idle) · load · s(f)
//! ```
//!
//! where `load` is the busy fraction across all cores and `s(f)` the DVFS dynamic
//! power scale.

use crate::device::{DeviceKind, PowerDevice};
use crate::dvfs::DvfsModel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Static description of one CPU socket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"AMD EPYC 7A53"`.
    pub name: String,
    /// Physical core count of the socket.
    pub cores: u32,
    /// Nominal all-core frequency in Hz.
    pub nominal_freq_hz: f64,
    /// Idle package power in watts.
    pub idle_power_w: f64,
    /// Package TDP in watts (all cores busy at nominal frequency).
    pub tdp_w: f64,
    /// DVFS model of the package.
    pub dvfs: DvfsModel,
}

impl CpuSpec {
    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.cores >= 1, "a CPU needs at least one core");
        assert!(self.nominal_freq_hz > 0.0);
        assert!(self.idle_power_w >= 0.0);
        assert!(self.tdp_w > self.idle_power_w, "TDP must exceed idle power");
    }
}

#[derive(Debug)]
struct CpuState {
    load: f64,
    freq_hz: f64,
    energy_j: f64,
    total_time_s: f64,
    busy_time_s: f64,
}

/// Shareable handle to one simulated CPU socket.
#[derive(Clone, Debug)]
pub struct CpuHandle {
    spec: Arc<CpuSpec>,
    index: usize,
    state: Arc<Mutex<CpuState>>,
}

impl CpuHandle {
    /// Create a socket with the given spec and index within its node.
    pub fn new(spec: CpuSpec, index: usize) -> Self {
        spec.validate();
        let f0 = spec.nominal_freq_hz;
        Self {
            spec: Arc::new(spec),
            index,
            state: Arc::new(Mutex::new(CpuState {
                load: 0.0,
                freq_hz: f0,
                energy_j: 0.0,
                total_time_s: 0.0,
                busy_time_s: 0.0,
            })),
        }
    }

    /// Static description.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Socket index within the node.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Set the busy fraction across all cores (0 = idle, 1 = all cores busy).
    pub fn set_load(&self, load: f64) {
        assert!((0.0..=1.0).contains(&load), "load must be in [0, 1]");
        self.state.lock().load = load;
    }

    /// Set the busy fraction from a number of busy cores.
    pub fn set_busy_cores(&self, cores: u32) {
        let load = (cores.min(self.spec.cores) as f64) / self.spec.cores as f64;
        self.set_load(load);
    }

    /// Mark the socket idle.
    pub fn set_idle(&self) {
        self.set_load(0.0);
    }

    /// Current busy fraction.
    pub fn load(&self) -> f64 {
        self.state.lock().load
    }

    /// Set the package frequency (clamped to the DVFS range).
    pub fn set_frequency(&self, f_hz: f64) -> f64 {
        let f = self.spec.dvfs.clamp(f_hz);
        self.state.lock().freq_hz = f;
        f
    }

    /// Current package frequency.
    pub fn frequency(&self) -> f64 {
        self.state.lock().freq_hz
    }

    /// Fraction of simulated time with non-zero load.
    pub fn utilization(&self) -> f64 {
        let s = self.state.lock();
        if s.total_time_s <= 0.0 {
            0.0
        } else {
            s.busy_time_s / s.total_time_s
        }
    }

    /// Instantaneous power for an explicit load/frequency (model formula).
    pub fn power_at(&self, load: f64, f_hz: f64) -> f64 {
        let s = self.spec.dvfs.dynamic_power_scale(self.spec.dvfs.clamp(f_hz));
        self.spec.idle_power_w + (self.spec.tdp_w - self.spec.idle_power_w) * load.clamp(0.0, 1.0) * s
    }
}

impl PowerDevice for CpuHandle {
    fn id(&self) -> String {
        format!("cpu{}", self.index)
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Cpu
    }

    fn power_w(&self) -> f64 {
        let (load, f) = {
            let s = self.state.lock();
            (s.load, s.freq_hz)
        };
        self.power_at(load, f)
    }

    fn energy_j(&self) -> f64 {
        self.state.lock().energy_j
    }

    fn advance(&self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite());
        let p = self.power_w();
        let mut s = self.state.lock();
        s.energy_j += p * dt;
        s.total_time_s += dt;
        if s.load > 0.0 {
            s.busy_time_s += dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec {
            name: "Test EPYC".into(),
            cores: 64,
            nominal_freq_hz: 2.4e9,
            idle_power_w: 65.0,
            tdp_w: 280.0,
            dvfs: DvfsModel::generic_cpu(2.4e9),
        }
    }

    #[test]
    fn idle_power_matches_spec() {
        let c = CpuHandle::new(spec(), 0);
        assert!((c.power_w() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn full_load_reaches_tdp() {
        let c = CpuHandle::new(spec(), 0);
        c.set_load(1.0);
        assert!((c.power_w() - 280.0).abs() < 1e-9);
    }

    #[test]
    fn busy_cores_scale_load() {
        let c = CpuHandle::new(spec(), 0);
        c.set_busy_cores(16);
        assert!((c.load() - 0.25).abs() < 1e-12);
        c.set_busy_cores(1000);
        assert!((c.load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_time() {
        let c = CpuHandle::new(spec(), 0);
        c.set_load(0.5);
        let p = c.power_w();
        c.advance(100.0);
        assert!((c.energy_j() - p * 100.0).abs() < 1e-6);
    }

    #[test]
    fn lower_frequency_reduces_active_power() {
        let c = CpuHandle::new(spec(), 0);
        c.set_load(1.0);
        let p_hi = c.power_w();
        c.set_frequency(1.2e9);
        let p_lo = c.power_w();
        assert!(p_lo < p_hi);
        assert!(p_lo > c.spec().idle_power_w);
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let c = CpuHandle::new(spec(), 0);
        c.set_load(1.0);
        c.advance(1.0);
        c.set_idle();
        c.advance(3.0);
        assert!((c.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_spec_panics() {
        let mut s = spec();
        s.tdp_w = 10.0; // below idle
        CpuHandle::new(s, 0);
    }
}
