//! Kernel workload descriptions.
//!
//! A [`KernelWorkload`] is the architecture-independent description of one
//! offloaded computation: how many floating-point operations it performs, how
//! many bytes it moves through device memory, how much parallelism it exposes and
//! how many kernel launches it is split into. The GPU model turns a workload into
//! an execution time and an occupancy for a given compute frequency (a
//! roofline-style model, see [`crate::gpu`]).

use serde::{Deserialize, Serialize};

/// Description of one device-side computation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelWorkload {
    /// Human-readable kernel name (e.g. `"MomentumEnergy"`).
    pub name: String,
    /// Total floating-point operations.
    pub flops: f64,
    /// Total bytes moved to/from device memory.
    pub bytes: f64,
    /// Number of independent work items (e.g. particles); determines occupancy.
    pub parallelism: f64,
    /// Number of kernel launches the computation is split into (fixed per-launch
    /// overhead applies to each).
    pub launches: u32,
}

impl KernelWorkload {
    /// Create a workload with default parallelism (derived from the flop count)
    /// and a single launch.
    pub fn new(name: impl Into<String>, flops: f64, bytes: f64) -> Self {
        assert!(flops >= 0.0 && bytes >= 0.0, "workload sizes must be non-negative");
        Self {
            name: name.into(),
            flops,
            bytes,
            parallelism: (flops / 100.0).max(1.0),
            launches: 1,
        }
    }

    /// Set the exposed parallelism (e.g. the number of particles).
    pub fn with_parallelism(mut self, parallelism: f64) -> Self {
        assert!(parallelism > 0.0, "parallelism must be positive");
        self.parallelism = parallelism;
        self
    }

    /// Set the number of kernel launches.
    pub fn with_launches(mut self, launches: u32) -> Self {
        assert!(launches >= 1, "at least one launch is required");
        self.launches = launches;
        self
    }

    /// Arithmetic intensity in flop/byte. Returns infinity for pure-compute
    /// workloads that move no data.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            if self.flops <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.flops / self.bytes
        }
    }

    /// Combine two workloads executed back-to-back into one aggregate workload.
    pub fn merge(&self, other: &KernelWorkload, name: impl Into<String>) -> KernelWorkload {
        KernelWorkload {
            name: name.into(),
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            parallelism: self.parallelism.max(other.parallelism),
            launches: self.launches + other.launches,
        }
    }

    /// Scale the workload size (flops, bytes, parallelism) by a factor, e.g. to
    /// derive a per-rank slice from a global workload.
    pub fn scaled(&self, factor: f64) -> KernelWorkload {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        KernelWorkload {
            name: self.name.clone(),
            flops: self.flops * factor,
            bytes: self.bytes * factor,
            parallelism: (self.parallelism * factor).max(1.0),
            launches: self.launches,
        }
    }
}

/// Result of mapping a [`KernelWorkload`] onto a specific GPU at a specific
/// compute frequency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelExecution {
    /// Predicted wall-clock duration of the kernel in seconds.
    pub duration_s: f64,
    /// Achieved occupancy of the device, in `[0, 1]`.
    pub occupancy: f64,
    /// Fraction of the duration attributable to compute (frequency-sensitive).
    pub compute_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_flops_per_byte() {
        let w = KernelWorkload::new("k", 100.0, 25.0);
        assert!((w.arithmetic_intensity() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn intensity_handles_zero_bytes() {
        let w = KernelWorkload::new("k", 100.0, 0.0);
        assert!(w.arithmetic_intensity().is_infinite());
        let z = KernelWorkload::new("k", 0.0, 0.0);
        assert_eq!(z.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn merge_adds_sizes() {
        let a = KernelWorkload::new("a", 10.0, 20.0).with_launches(2);
        let b = KernelWorkload::new("b", 30.0, 40.0).with_launches(3);
        let m = a.merge(&b, "ab");
        assert_eq!(m.flops, 40.0);
        assert_eq!(m.bytes, 60.0);
        assert_eq!(m.launches, 5);
        assert_eq!(m.name, "ab");
    }

    #[test]
    fn scaled_preserves_intensity() {
        let w = KernelWorkload::new("k", 1.0e9, 4.0e8).with_parallelism(1.0e6);
        let s = w.scaled(0.25);
        assert!((s.arithmetic_intensity() - w.arithmetic_intensity()).abs() < 1e-9);
        assert!((s.parallelism - 2.5e5).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_flops_panics() {
        KernelWorkload::new("bad", -1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_launches_panics() {
        KernelWorkload::new("bad", 1.0, 1.0).with_launches(0);
    }
}
