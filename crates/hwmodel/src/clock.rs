//! Simulated clock.
//!
//! Every component of the hardware model reads time from a [`SimClock`]. The clock
//! only moves when the workload executor calls [`SimClock::advance`], which lets a
//! paper-scale campaign (hundreds of simulated seconds per run) complete in
//! milliseconds of host time, while all power→energy integrations still operate on
//! the realistic simulated durations.

use parking_lot::RwLock;
use std::sync::Arc;

/// A shareable simulated clock counting seconds since the start of the simulation.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    inner: Arc<RwLock<f64>>,
}

impl SimClock {
    /// Create a new clock at t = 0 s.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a clock starting at `t0` seconds.
    pub fn starting_at(t0: f64) -> Self {
        assert!(
            t0.is_finite() && t0 >= 0.0,
            "clock origin must be finite and non-negative"
        );
        Self {
            inner: Arc::new(RwLock::new(t0)),
        }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        *self.inner.read()
    }

    /// Advance the clock by `dt` seconds. Panics on negative or non-finite steps.
    pub fn advance(&self, dt: f64) {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "clock can only advance forward (dt = {dt})"
        );
        let mut t = self.inner.write();
        *t += dt;
    }

    /// Set the clock to an absolute time, which must not be in the past.
    pub fn set(&self, t: f64) {
        assert!(t.is_finite(), "time must be finite");
        let mut cur = self.inner.write();
        assert!(t >= *cur, "clock cannot move backwards ({} -> {})", *cur, t);
        *cur = t;
    }

    /// True if both handles refer to the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn starts_at_origin() {
        let c = SimClock::starting_at(42.5);
        assert_eq!(c.now(), 42.5);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(1.5);
        c.advance(2.5);
        assert!((c.now() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(3.0);
        assert_eq!(c2.now(), 3.0);
        assert!(c.same_clock(&c2));
    }

    #[test]
    fn independent_clocks_are_not_same() {
        let a = SimClock::new();
        let b = SimClock::new();
        assert!(!a.same_clock(&b));
    }

    #[test]
    fn set_moves_forward() {
        let c = SimClock::new();
        c.set(10.0);
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    #[should_panic]
    fn set_backwards_panics() {
        let c = SimClock::starting_at(5.0);
        c.set(1.0);
    }

    #[test]
    #[should_panic]
    fn negative_advance_panics() {
        let c = SimClock::new();
        c.advance(-1.0);
    }

    #[test]
    fn concurrent_advances_are_all_counted() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.advance(0.001);
                    }
                });
            }
        });
        assert!((c.now() - 8.0).abs() < 1e-6);
    }
}
