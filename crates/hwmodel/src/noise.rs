//! Measurement noise model.
//!
//! Real power sensors quantise and jitter: `pm_counters` updates at ~10 Hz with
//! watt-level resolution, NVML at ~20–50 Hz with ±5 % accuracy on some boards.
//! The [`NoiseModel`] adds deterministic, seedable Gaussian relative noise and
//! quantisation to simulated readings so that validation experiments (Figure 1)
//! see realistic disagreement between measurement paths rather than exact
//! equality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seedable sensor noise model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the relative Gaussian noise (e.g. 0.02 = 2 %).
    pub relative_sigma: f64,
    /// Quantisation step of the reported value (e.g. 1.0 W); 0 disables it.
    pub quantum: f64,
    seed: u64,
    #[serde(skip)]
    counter: u64,
}

impl NoiseModel {
    /// Create a noise model. `relative_sigma` is the relative standard deviation,
    /// `quantum` the reporting resolution, `seed` makes the noise reproducible.
    pub fn new(relative_sigma: f64, quantum: f64, seed: u64) -> Self {
        assert!((0.0..0.5).contains(&relative_sigma));
        assert!(quantum >= 0.0);
        Self {
            relative_sigma,
            quantum,
            seed,
            counter: 0,
        }
    }

    /// A noise model that changes nothing (ideal sensor).
    pub fn ideal() -> Self {
        Self::new(0.0, 0.0, 0)
    }

    /// Typical node-level BMC sensor: 2 % relative noise, 1 W quantisation.
    pub fn bmc(seed: u64) -> Self {
        Self::new(0.02, 1.0, seed)
    }

    /// Typical on-die energy counter: 0.5 % relative noise, no quantisation.
    pub fn on_die(seed: u64) -> Self {
        Self::new(0.005, 0.0, seed)
    }

    /// Apply noise and quantisation to a reading. Each call draws fresh noise but
    /// the sequence is deterministic for a given seed.
    pub fn apply(&mut self, value: f64) -> f64 {
        self.counter += 1;
        let mut out = value;
        if self.relative_sigma > 0.0 {
            // Derive a per-sample RNG from (seed, counter) so the model stays
            // deterministic even if calls interleave across threads.
            let mut rng = StdRng::seed_from_u64(self.seed ^ self.counter.wrapping_mul(0x9E3779B97F4A7C15));
            let gauss = gaussian(&mut rng);
            out *= 1.0 + self.relative_sigma * gauss;
        }
        if self.quantum > 0.0 {
            out = (out / self.quantum).round() * self.quantum;
        }
        out.max(0.0)
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_noise_is_identity() {
        let mut n = NoiseModel::ideal();
        assert_eq!(n.apply(123.456), 123.456);
    }

    #[test]
    fn quantisation_rounds() {
        let mut n = NoiseModel::new(0.0, 1.0, 0);
        assert_eq!(n.apply(123.4), 123.0);
        assert_eq!(n.apply(123.6), 124.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = NoiseModel::new(0.05, 0.0, 42);
        let mut b = NoiseModel::new(0.05, 0.0, 42);
        for _ in 0..10 {
            assert_eq!(a.apply(100.0), b.apply(100.0));
        }
    }

    #[test]
    fn noise_stays_near_value() {
        let mut n = NoiseModel::new(0.02, 0.0, 7);
        let mut sum = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let v = n.apply(100.0);
            assert!(v > 80.0 && v < 120.0, "6-sigma outlier unexpected: {v}");
            sum += v;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - 100.0).abs() < 1.0,
            "mean should stay near the true value, got {mean}"
        );
    }

    #[test]
    fn never_negative() {
        let mut n = NoiseModel::new(0.4, 0.0, 3);
        for _ in 0..100 {
            assert!(n.apply(0.01) >= 0.0);
        }
    }
}
