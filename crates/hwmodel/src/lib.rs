//! # hwmodel — simulated HPC node hardware
//!
//! This crate provides a *power–performance simulator* for CPU+GPU compute nodes.
//! It is the substrate that replaces the physical LUMI-G, CSCS-A100 and miniHPC
//! nodes used in the paper:
//!
//! > *Accurate Measurement of Application-level Energy Consumption for
//! > Energy-Aware Large-Scale Simulations* (SC 2023).
//!
//! The simulator models, per node:
//!
//! * **CPUs** — idle + per-core dynamic power, frequency-aware ([`cpu`]);
//! * **GPUs** — idle + occupancy- and DVFS-dependent dynamic power, with a
//!   roofline-style kernel execution-time model ([`gpu`], [`kernel`], [`dvfs`]);
//! * **Memory** — idle + bandwidth-proportional power ([`memory`]);
//! * **Auxiliary components** (NIC, fans, board) — the "Other" category of the
//!   paper's Figure 2 ([`aux`]);
//! * a **simulated clock** ([`clock`]) so that hundred-timestep, billion-particle
//!   campaigns can be "executed" in milliseconds of host time while preserving
//!   realistic simulated durations and energies;
//! * a **virtual sysfs** ([`sysfs`]) that materialises Intel RAPL `powercap` and
//!   HPE/Cray `pm_counters` file trees from the live device counters, in exactly
//!   the file formats the real kernel interfaces expose, so that file-parsing
//!   measurement back-ends (crate `pmt`) exercise their real code paths.
//!
//! Architecture presets for the paper's three systems live in [`arch`].
//!
//! All quantities use SI units (`f64`): seconds, watts, joules, hertz, bytes.
//!
//! ## Quick example
//!
//! ```
//! use hwmodel::arch;
//! use hwmodel::device::PowerDevice;
//! use hwmodel::kernel::KernelWorkload;
//!
//! // Build one CSCS-A100-like node (1x EPYC, 4x A100-SXM4).
//! let node = arch::cscs_a100().build();
//! let gpu = node.gpu(0).unwrap();
//!
//! // Launch a kernel on GPU 0 and advance simulated time by its duration.
//! let work = KernelWorkload::new("MomentumEnergy", 4.0e12, 2.0e10);
//! let elapsed = gpu.execute(&work);
//! node.advance(elapsed);
//!
//! assert!(gpu.energy_j() > 0.0);
//! assert!(node.energy_j() >= gpu.energy_j());
//! ```

pub mod arch;
pub mod aux;
pub mod clock;
pub mod cpu;
pub mod device;
pub mod dvfs;
pub mod gpu;
pub mod kernel;
pub mod memory;
pub mod node;
pub mod noise;
pub mod sysfs;

pub use arch::{cscs_a100, lumi_g, mini_hpc, SystemKind};
pub use clock::SimClock;
pub use device::{DeviceKind, PowerDevice};
pub use dvfs::DvfsModel;
pub use gpu::{GpuHandle, GpuSpec, GpuVendor};
pub use kernel::KernelWorkload;
pub use node::{Node, NodeBuilder, NodeSpec};
pub use sysfs::VirtualSysfs;
