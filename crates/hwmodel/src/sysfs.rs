//! Virtual sysfs provider.
//!
//! Real power-measurement back-ends read kernel-exported files:
//!
//! * Intel RAPL via the `powercap` framework:
//!   `/sys/class/powercap/intel-rapl:<pkg>/energy_uj` (cumulative microjoules,
//!   wrapping at `max_energy_range_uj`), with a `intel-rapl:<pkg>:0` sub-domain
//!   named `dram`;
//! * HPE/Cray `pm_counters`:
//!   `/sys/cray/pm_counters/{power,energy,cpu_power,cpu_energy,memory_power,
//!   memory_energy,accelN_power,accelN_energy}` with values formatted as
//!   `"<value> W <timestamp> us"` / `"<value> J <timestamp> us"`.
//!
//! [`VirtualSysfs`] materialises both trees under a caller-chosen root directory
//! from the live counters of a simulated [`Node`], using **exactly** those file
//! formats. The `pmt` crate's file-based back-ends therefore exercise the same
//! parsing code they would use against a real `/sys`.

use crate::clock::SimClock;
use crate::device::DeviceKind;
use crate::node::Node;
use crate::noise::NoiseModel;
use parking_lot::Mutex;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Maximum value of the RAPL `energy_uj` counter before it wraps (the common
/// value exposed by production Intel/AMD firmwares).
pub const RAPL_MAX_ENERGY_RANGE_UJ: u64 = 262_143_328_850;

/// Materialises powercap/RAPL and Cray `pm_counters` file trees for one node.
pub struct VirtualSysfs {
    root: PathBuf,
    node: Node,
    clock: SimClock,
    power_noise: Mutex<NoiseModel>,
}

impl VirtualSysfs {
    /// Create a provider rooted at `root` for `node`, stamping files with times
    /// from `clock`. The directory is created on [`VirtualSysfs::materialize`].
    pub fn new(root: impl Into<PathBuf>, node: Node, clock: SimClock) -> Self {
        Self {
            root: root.into(),
            node,
            clock,
            power_noise: Mutex::new(NoiseModel::ideal()),
        }
    }

    /// Apply a noise model to the *power* readings (energy counters stay exact,
    /// as they do on real hardware).
    pub fn with_power_noise(self, noise: NoiseModel) -> Self {
        *self.power_noise.lock() = noise;
        self
    }

    /// Root directory of the virtual tree.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory containing the `intel-rapl:*` powercap domains.
    pub fn powercap_root(&self) -> PathBuf {
        self.root.join("class/powercap")
    }

    /// Directory containing the Cray `pm_counters` files.
    pub fn pm_counters_root(&self) -> PathBuf {
        self.root.join("cray/pm_counters")
    }

    /// The node backing this tree.
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Create the directory structure and static files, then write a first set of
    /// dynamic values.
    pub fn materialize(&self) -> io::Result<()> {
        let pcap = self.powercap_root();
        for (i, _) in self.node.cpus().iter().enumerate() {
            let pkg = pcap.join(format!("intel-rapl:{i}"));
            fs::create_dir_all(&pkg)?;
            fs::write(pkg.join("name"), format!("package-{i}\n"))?;
            fs::write(pkg.join("max_energy_range_uj"), format!("{RAPL_MAX_ENERGY_RANGE_UJ}\n"))?;
            // DRAM sub-domain lives under the first package, as on typical servers.
            if i == 0 {
                let dram = pcap.join(format!("intel-rapl:{i}:0"));
                fs::create_dir_all(&dram)?;
                fs::write(dram.join("name"), "dram\n")?;
                fs::write(
                    dram.join("max_energy_range_uj"),
                    format!("{RAPL_MAX_ENERGY_RANGE_UJ}\n"),
                )?;
            }
        }

        let pm = self.pm_counters_root();
        fs::create_dir_all(&pm)?;
        fs::write(pm.join("version"), "2\n")?;
        fs::write(pm.join("generation"), "1\n")?;
        fs::write(pm.join("startup"), format!("{}\n", self.timestamp_us()))?;
        fs::write(pm.join("raw_scan_hz"), "10\n")?;

        self.refresh()
    }

    /// Rewrite every dynamic file from the node's current counters.
    pub fn refresh(&self) -> io::Result<()> {
        self.refresh_powercap()?;
        self.refresh_pm_counters()
    }

    fn timestamp_us(&self) -> u64 {
        (self.clock.now() * 1.0e6).round() as u64
    }

    fn refresh_powercap(&self) -> io::Result<()> {
        let pcap = self.powercap_root();
        for (i, cpu) in self.node.cpus().iter().enumerate() {
            use crate::device::PowerDevice;
            let pkg = pcap.join(format!("intel-rapl:{i}"));
            let uj = (cpu.energy_j() * 1.0e6) as u64 % RAPL_MAX_ENERGY_RANGE_UJ;
            fs::write(pkg.join("energy_uj"), format!("{uj}\n"))?;
            if i == 0 {
                let dram = pcap.join(format!("intel-rapl:{i}:0"));
                let dram_uj =
                    (self.node.energy_by_kind_j(DeviceKind::Memory) * 1.0e6) as u64 % RAPL_MAX_ENERGY_RANGE_UJ;
                fs::write(dram.join("energy_uj"), format!("{dram_uj}\n"))?;
            }
        }
        Ok(())
    }

    fn refresh_pm_counters(&self) -> io::Result<()> {
        let pm = self.pm_counters_root();
        let ts = self.timestamp_us();
        let mut noise = self.power_noise.lock();

        let write_power = |path: PathBuf, watts: f64, noise: &mut NoiseModel| -> io::Result<()> {
            let w = noise.apply(watts).round() as u64;
            fs::write(path, format!("{w} W {ts} us\n"))
        };
        let write_energy = |path: PathBuf, joules: f64| -> io::Result<()> {
            fs::write(path, format!("{} J {ts} us\n", joules.round() as u64))
        };

        // Node-level counters (what Slurm's pm_counters plugin consumes).
        write_power(pm.join("power"), self.node.power_w(), &mut noise)?;
        write_energy(pm.join("energy"), self.node.energy_j())?;

        // CPU package counters.
        write_power(
            pm.join("cpu_power"),
            self.node.power_by_kind_w(DeviceKind::Cpu),
            &mut noise,
        )?;
        write_energy(pm.join("cpu_energy"), self.node.energy_by_kind_j(DeviceKind::Cpu))?;

        // Memory counters only exist on platforms with a memory sensor (LUMI-G).
        if self.node.spec().has_memory_sensor {
            write_power(
                pm.join("memory_power"),
                self.node.power_by_kind_w(DeviceKind::Memory),
                &mut noise,
            )?;
            write_energy(pm.join("memory_energy"), self.node.energy_by_kind_j(DeviceKind::Memory))?;
        }

        // Accelerator counters are reported per physical card (not per die!):
        // on MI250X one file covers two GCDs — the measurement quirk discussed in
        // the paper's §2 and §3.1.
        for card in 0..self.node.spec().gpu_cards() {
            write_power(
                pm.join(format!("accel{card}_power")),
                self.node.card_power_w(card),
                &mut noise,
            )?;
            write_energy(pm.join(format!("accel{card}_energy")), self.node.card_energy_j(card))?;
        }

        fs::write(pm.join("freshness"), format!("{ts}\n"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use std::fs;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hwmodel-sysfs-{tag}-{}-{}",
            std::process::id(),
            // sphlint::allow(float-determinism, temp-dir uniquifier; value never reaches an assertion)
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn materialize_creates_expected_layout() {
        let dir = tempdir("layout");
        let clock = SimClock::new();
        let node = arch::lumi_g().build();
        let sysfs = VirtualSysfs::new(&dir, node, clock);
        sysfs.materialize().unwrap();

        assert!(sysfs.powercap_root().join("intel-rapl:0/energy_uj").exists());
        assert!(sysfs.powercap_root().join("intel-rapl:0:0/name").exists());
        let pm = sysfs.pm_counters_root();
        assert!(pm.join("power").exists());
        assert!(pm.join("energy").exists());
        assert!(pm.join("cpu_power").exists());
        assert!(pm.join("memory_energy").exists());
        // 4 physical cards -> accel0..accel3.
        assert!(pm.join("accel0_power").exists());
        assert!(pm.join("accel3_energy").exists());
        assert!(!pm.join("accel4_power").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cscs_tree_has_no_memory_counters() {
        let dir = tempdir("cscs");
        let clock = SimClock::new();
        let node = arch::cscs_a100().build();
        let sysfs = VirtualSysfs::new(&dir, node, clock);
        sysfs.materialize().unwrap();
        assert!(!sysfs.pm_counters_root().join("memory_power").exists());
        assert!(sysfs.pm_counters_root().join("accel3_power").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pm_counters_format_is_value_unit_timestamp() {
        let dir = tempdir("format");
        let clock = SimClock::starting_at(12.5);
        let node = arch::cscs_a100().build();
        let sysfs = VirtualSysfs::new(&dir, node, clock);
        sysfs.materialize().unwrap();
        let content = fs::read_to_string(sysfs.pm_counters_root().join("power")).unwrap();
        let parts: Vec<&str> = content.split_whitespace().collect();
        assert_eq!(parts.len(), 4, "expected '<value> W <ts> us', got {content:?}");
        assert_eq!(parts[1], "W");
        assert_eq!(parts[3], "us");
        assert_eq!(parts[2].parse::<u64>().unwrap(), 12_500_000);
        assert!(parts[0].parse::<u64>().unwrap() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refresh_tracks_energy_growth() {
        let dir = tempdir("refresh");
        let clock = SimClock::new();
        let node = arch::mini_hpc().build();
        let sysfs = VirtualSysfs::new(&dir, node.clone(), clock.clone());
        sysfs.materialize().unwrap();

        let read_energy = |sysfs: &VirtualSysfs| -> u64 {
            let content = fs::read_to_string(sysfs.pm_counters_root().join("energy")).unwrap();
            content.split_whitespace().next().unwrap().parse().unwrap()
        };
        let e0 = read_energy(&sysfs);
        node.gpus()[0].set_load(1.0);
        node.advance(100.0);
        clock.advance(100.0);
        sysfs.refresh().unwrap();
        let e1 = read_energy(&sysfs);
        assert!(e1 > e0, "energy counter should grow: {e0} -> {e1}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rapl_counter_wraps_at_max_range() {
        let dir = tempdir("wrap");
        let clock = SimClock::new();
        let node = arch::mini_hpc().build();
        let sysfs = VirtualSysfs::new(&dir, node.clone(), clock);
        sysfs.materialize().unwrap();
        // Drive an absurd amount of energy through the CPU to force a wrap.
        node.cpus()[0].set_load(1.0);
        node.advance(5.0e6); // ~10^9 J ~ 10^15 uJ >> max range
        sysfs.refresh().unwrap();
        let content = fs::read_to_string(sysfs.powercap_root().join("intel-rapl:0/energy_uj")).unwrap();
        let uj: u64 = content.trim().parse().unwrap();
        assert!(uj < RAPL_MAX_ENERGY_RANGE_UJ);
        fs::remove_dir_all(&dir).unwrap();
    }
}
