//! Job lifecycle with energy accounting.
//!
//! The decisive detail for the paper's Figure 1: **Slurm's energy window starts
//! at job submission**, so it includes job launch and application setup
//! (allocating the simulation's data structures, reading input, moving data to
//! the GPUs) — phases during which the GPUs are mostly idle but the node still
//! draws hundreds of watts. PMT's window, by contrast, starts when the
//! time-stepping loop begins. [`SlurmJob`] models the full lifecycle so both
//! windows can be computed from the same run.

use crate::energy_plugin::AcctGatherEnergyType;
use crate::sacct::SacctRecord;
use cluster::Cluster;
use hwmodel::noise::NoiseModel;
use parking_lot::Mutex;

/// Phases of a job's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, accounting started, nothing running yet.
    Pending,
    /// Job launch + application initialisation (GPUs idle).
    Setup,
    /// The application's main (time-stepping) loop.
    Running,
    /// Final I/O and teardown.
    Teardown,
    /// Completed; accounting closed.
    Completed,
}

/// A job under (simulated) Slurm control with energy accounting.
pub struct SlurmJob {
    id: u64,
    name: String,
    cluster: Cluster,
    backend: AcctGatherEnergyType,
    noise: Mutex<NoiseModel>,
    submit_time_s: f64,
    submit_energy_j: Vec<f64>,
    phase: Mutex<JobPhase>,
    end_time_s: Mutex<Option<f64>>,
    end_energy_j: Mutex<Option<Vec<f64>>>,
    main_loop_window: Mutex<Option<(f64, f64)>>,
}

impl SlurmJob {
    /// Submit a job over `cluster`. Energy accounting starts *now*: the plugin
    /// records each node's counter at submission time.
    pub fn submit(id: u64, name: impl Into<String>, cluster: Cluster, backend: AcctGatherEnergyType) -> Self {
        let mut noise = backend.noise(id);
        let submit_energy_j = cluster
            .nodes()
            .iter()
            .map(|n| backend.sample_node_energy_j(n, &mut noise))
            .collect();
        Self {
            id,
            name: name.into(),
            submit_time_s: cluster.clock().now(),
            submit_energy_j,
            cluster,
            backend,
            noise: Mutex::new(noise),
            phase: Mutex::new(JobPhase::Pending),
            end_time_s: Mutex::new(None),
            end_energy_j: Mutex::new(None),
            main_loop_window: Mutex::new(None),
        }
    }

    /// Job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current phase.
    pub fn phase(&self) -> JobPhase {
        *self.phase.lock()
    }

    /// The cluster this job runs on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The accounting back-end in use.
    pub fn backend(&self) -> AcctGatherEnergyType {
        self.backend
    }

    /// Simulated time of submission, seconds.
    pub fn submit_time_s(&self) -> f64 {
        self.submit_time_s
    }

    /// Run the job-launch + application-setup phase for `duration_s` simulated
    /// seconds: CPUs moderately busy (launcher, I/O, building data structures),
    /// GPUs idle — exactly the situation the paper describes when explaining why
    /// the Slurm−PMT gap is dominated by setup.
    pub fn run_setup(&self, duration_s: f64) {
        assert!(duration_s >= 0.0);
        *self.phase.lock() = JobPhase::Setup;
        for node in self.cluster.nodes() {
            for cpu in node.cpus() {
                cpu.set_load(0.25);
            }
            node.memory().set_load(0.2);
            node.aux().set_load(0.1);
            for gpu in node.gpus() {
                gpu.set_idle();
            }
        }
        self.cluster.advance(duration_s);
        self.cluster.set_idle();
    }

    /// Mark the beginning of the application's main loop (what PMT measures).
    pub fn mark_main_loop_start(&self) {
        *self.phase.lock() = JobPhase::Running;
        let now = self.cluster.clock().now();
        let mut window = self.main_loop_window.lock();
        *window = Some((now, window.map(|w| w.1).unwrap_or(now)));
    }

    /// Mark the end of the application's main loop.
    pub fn mark_main_loop_end(&self) {
        *self.phase.lock() = JobPhase::Teardown;
        let now = self.cluster.clock().now();
        let mut window = self.main_loop_window.lock();
        let start = window.map(|w| w.0).unwrap_or(now);
        *window = Some((start, now));
    }

    /// Run the teardown phase (final I/O) for `duration_s` simulated seconds.
    pub fn run_teardown(&self, duration_s: f64) {
        assert!(duration_s >= 0.0);
        *self.phase.lock() = JobPhase::Teardown;
        for node in self.cluster.nodes() {
            for cpu in node.cpus() {
                cpu.set_load(0.15);
            }
            node.aux().set_load(0.2);
        }
        self.cluster.advance(duration_s);
        self.cluster.set_idle();
    }

    /// Close accounting: record the final counters and time.
    pub fn complete(&self) {
        let mut noise = self.noise.lock();
        let end: Vec<f64> = self
            .cluster
            .nodes()
            .iter()
            .map(|n| self.backend.sample_node_energy_j(n, &mut noise))
            .collect();
        *self.end_energy_j.lock() = Some(end);
        *self.end_time_s.lock() = Some(self.cluster.clock().now());
        *self.phase.lock() = JobPhase::Completed;
    }

    /// The main-loop window `(start_s, end_s)` if it was marked.
    pub fn main_loop_window(&self) -> Option<(f64, f64)> {
        *self.main_loop_window.lock()
    }

    /// Total energy consumed between submission and completion according to the
    /// accounting plugin, in joules. Panics if the job is not completed.
    pub fn consumed_energy_j(&self) -> f64 {
        let end = self.end_energy_j.lock();
        let end = end.as_ref().expect("job not completed");
        end.iter().zip(&self.submit_energy_j).map(|(e, s)| (e - s).max(0.0)).sum()
    }

    /// Produce the `sacct` accounting record. Panics if the job is not completed.
    pub fn sacct(&self) -> SacctRecord {
        let end_time = self.end_time_s.lock().expect("job not completed");
        SacctRecord {
            job_id: self.id,
            job_name: self.name.clone(),
            n_nodes: self.cluster.node_count(),
            elapsed_s: end_time - self.submit_time_s,
            consumed_energy_j: self.consumed_energy_j(),
            state: "COMPLETED".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::arch::SystemKind;

    fn small_cluster() -> Cluster {
        Cluster::new(SystemKind::CscsA100, 2)
    }

    #[test]
    fn lifecycle_phases_progress() {
        let cluster = small_cluster();
        let job = SlurmJob::submit(1, "test", cluster, AcctGatherEnergyType::PmCounters);
        assert_eq!(job.phase(), JobPhase::Pending);
        job.run_setup(30.0);
        assert_eq!(job.phase(), JobPhase::Setup);
        job.mark_main_loop_start();
        assert_eq!(job.phase(), JobPhase::Running);
        job.cluster().advance(10.0);
        job.mark_main_loop_end();
        job.run_teardown(5.0);
        job.complete();
        assert_eq!(job.phase(), JobPhase::Completed);
        let (start, end) = job.main_loop_window().unwrap();
        assert!((end - start - 10.0).abs() < 1e-9);
    }

    #[test]
    fn consumed_energy_covers_setup_phase() {
        let cluster = small_cluster();
        let job = SlurmJob::submit(2, "setup-heavy", cluster, AcctGatherEnergyType::PmCounters);
        job.run_setup(60.0);
        job.mark_main_loop_start();
        // Main loop: GPUs fully busy for 10 s.
        for node in job.cluster().nodes() {
            for g in node.gpus() {
                g.set_load(1.0);
            }
        }
        job.cluster().advance(10.0);
        job.cluster().set_idle();
        job.mark_main_loop_end();
        job.complete();

        let total = job.consumed_energy_j();
        // Energy of the main loop alone (node power at full GPU load ~2.2 kW * 10 s * 2 nodes).
        let idle_node_power = 600.0; // rough lower bound for an idle A100 node
        assert!(total > 0.0);
        // The setup phase at ~60 s of idle-ish power must contribute at least
        // the idle node power times its duration.
        assert!(
            total > idle_node_power * 2.0 * 60.0,
            "total {total} J should include the 60 s setup phase"
        );
    }

    #[test]
    fn sacct_record_reflects_job() {
        let cluster = small_cluster();
        let job = SlurmJob::submit(77, "sphexa", cluster, AcctGatherEnergyType::PmCounters);
        job.run_setup(30.0);
        job.mark_main_loop_start();
        job.cluster().advance(70.0);
        job.mark_main_loop_end();
        job.complete();
        let rec = job.sacct();
        assert_eq!(rec.job_id, 77);
        assert_eq!(rec.n_nodes, 2);
        assert!((rec.elapsed_s - 100.0).abs() < 1e-9);
        assert!(rec.consumed_energy_j > 0.0);
        assert_eq!(rec.state, "COMPLETED");
    }

    #[test]
    fn rapl_backend_reports_much_less_than_pm_counters() {
        // Same workload accounted by both back-ends on separate clusters.
        let run = |backend| {
            let cluster = small_cluster();
            let job = SlurmJob::submit(3, "x", cluster, backend);
            for node in job.cluster().nodes() {
                for g in node.gpus() {
                    g.set_load(1.0);
                }
            }
            job.cluster().advance(100.0);
            job.complete();
            job.consumed_energy_j()
        };
        let pm = run(AcctGatherEnergyType::PmCounters);
        let rapl = run(AcctGatherEnergyType::Rapl);
        assert!(rapl < pm * 0.3, "rapl {rapl} vs pm_counters {pm}");
    }

    #[test]
    #[should_panic]
    fn sacct_before_completion_panics() {
        let cluster = small_cluster();
        let job = SlurmJob::submit(4, "x", cluster, AcctGatherEnergyType::Ipmi);
        let _ = job.sacct();
    }
}
