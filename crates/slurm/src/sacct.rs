//! `sacct`-style job accounting records.
//!
//! After a job completes, the paper's users would run
//! `sacct -j <id> --format=JobID,Elapsed,ConsumedEnergy` to obtain the only
//! energy figure Slurm offers: one number for the whole job. [`SacctRecord`]
//! is that row.

use std::fmt;

/// One accounting row for a completed job.
#[derive(Clone, Debug, PartialEq)]
pub struct SacctRecord {
    /// Numeric job id.
    pub job_id: u64,
    /// Job name.
    pub job_name: String,
    /// Number of nodes allocated.
    pub n_nodes: usize,
    /// Wall-clock (simulated) duration from submission to completion, seconds.
    pub elapsed_s: f64,
    /// Total consumed energy reported by the energy-gathering plugin, joules.
    pub consumed_energy_j: f64,
    /// Final job state.
    pub state: String,
}

impl SacctRecord {
    /// Consumed energy in kilojoules (the unit `sacct` prints as `ConsumedEnergy`
    /// uses K/M suffixes; we expose the conversions explicitly).
    pub fn consumed_energy_kj(&self) -> f64 {
        self.consumed_energy_j / 1.0e3
    }

    /// Consumed energy in megajoules.
    pub fn consumed_energy_mj(&self) -> f64 {
        self.consumed_energy_j / 1.0e6
    }

    /// Average node power over the job, in watts.
    pub fn average_power_w(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.consumed_energy_j / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Format the elapsed time like `sacct` does (`[DD-]HH:MM:SS`).
    pub fn elapsed_formatted(&self) -> String {
        let total = self.elapsed_s.round() as u64;
        let days = total / 86_400;
        let hours = (total % 86_400) / 3600;
        let minutes = (total % 3600) / 60;
        let seconds = total % 60;
        if days > 0 {
            format!("{days}-{hours:02}:{minutes:02}:{seconds:02}")
        } else {
            format!("{hours:02}:{minutes:02}:{seconds:02}")
        }
    }

    /// One pipe-separated `sacct` output line:
    /// `JobID|JobName|NNodes|Elapsed|ConsumedEnergy|State`.
    pub fn to_sacct_line(&self) -> String {
        format!(
            "{}|{}|{}|{}|{:.0}|{}",
            self.job_id,
            self.job_name,
            self.n_nodes,
            self.elapsed_formatted(),
            self.consumed_energy_j,
            self.state
        )
    }
}

impl fmt::Display for SacctRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sacct_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> SacctRecord {
        SacctRecord {
            job_id: 4242,
            job_name: "sphexa-turb".to_string(),
            n_nodes: 12,
            elapsed_s: 3723.0,
            consumed_energy_j: 24.4e6,
            state: "COMPLETED".to_string(),
        }
    }

    #[test]
    fn unit_conversions() {
        let r = record();
        assert!((r.consumed_energy_mj() - 24.4).abs() < 1e-9);
        assert!((r.consumed_energy_kj() - 24_400.0).abs() < 1e-6);
        assert!((r.average_power_w() - 24.4e6 / 3723.0).abs() < 1e-6);
    }

    #[test]
    fn elapsed_formatting() {
        let mut r = record();
        assert_eq!(r.elapsed_formatted(), "01:02:03");
        r.elapsed_s = 90_061.0;
        assert_eq!(r.elapsed_formatted(), "1-01:01:01");
        r.elapsed_s = 59.0;
        assert_eq!(r.elapsed_formatted(), "00:00:59");
    }

    #[test]
    fn sacct_line_layout() {
        let line = record().to_sacct_line();
        assert_eq!(line, "4242|sphexa-turb|12|01:02:03|24400000|COMPLETED");
        assert_eq!(record().to_string(), line);
    }

    #[test]
    fn zero_duration_average_power() {
        let mut r = record();
        r.elapsed_s = 0.0;
        assert_eq!(r.average_power_w(), 0.0);
    }
}
