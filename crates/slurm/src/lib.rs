//! # slurm — resource-manager energy accounting (simulated)
//!
//! The paper validates PMT-measured energy against the only measurement HPC
//! users normally have access to: Slurm's job-level energy accounting
//! (`AcctGatherEnergyType` plugin + `sacct`). This crate reproduces the parts
//! of that pipeline that matter for the comparison (Figure 1):
//!
//! * [`energy_plugin`] — the three accounting back-ends (`ipmi`,
//!   `pm_counters`, `rapl`) reading node-level counters from the simulated
//!   nodes, with the coverage differences of the real plugins (RAPL sees only
//!   CPU+DRAM; IPMI is noisy and coarsely quantised);
//! * [`job`] — the job lifecycle: **energy accounting starts at submission**,
//!   then a setup phase (job launch, allocation of simulation data structures)
//!   runs with idle GPUs, then the application's time-stepping loop, then
//!   teardown. PMT, by contrast, only measures the time-stepping loop — that
//!   window difference is exactly what Figure 1 shows;
//! * [`sacct`] — `sacct`-style consumed-energy records and formatting.

pub mod energy_plugin;
pub mod job;
pub mod sacct;

pub use energy_plugin::AcctGatherEnergyType;
pub use job::{JobPhase, SlurmJob};
pub use sacct::SacctRecord;
