//! Slurm `AcctGatherEnergyType` back-ends.
//!
//! Depending on the system, Slurm gathers job energy through IPMI (the BMC),
//! the HPE/Cray `pm_counters`, or RAPL. The back-ends differ in coverage and
//! fidelity, and those differences are modelled here:
//!
//! * **`pm_counters`** — node-level counter, essentially exact, 1 J resolution
//!   (what LUMI-G and the CSCS A100 system use);
//! * **`ipmi`** — node-level but read through the BMC: ±2 % noise and coarse
//!   quantisation;
//! * **`rapl`** — covers only CPU packages and DRAM, so it *misses the GPUs
//!   entirely*; included because Slurm supports it and it illustrates why
//!   node-level validation needs a node-level source.

use hwmodel::device::DeviceKind;
use hwmodel::noise::NoiseModel;
use hwmodel::Node;

/// The energy-gathering back-end configured for a (simulated) Slurm cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AcctGatherEnergyType {
    /// BMC readings via IPMI.
    Ipmi,
    /// HPE/Cray `pm_counters` node counter.
    PmCounters,
    /// RAPL: CPU packages + DRAM only.
    Rapl,
}

impl AcctGatherEnergyType {
    /// The Slurm configuration string for this back-end.
    pub fn config_name(&self) -> &'static str {
        match self {
            AcctGatherEnergyType::Ipmi => "acct_gather_energy/ipmi",
            AcctGatherEnergyType::PmCounters => "acct_gather_energy/pm_counters",
            AcctGatherEnergyType::Rapl => "acct_gather_energy/rapl",
        }
    }

    /// Whether this back-end sees GPU power at all.
    pub fn covers_gpus(&self) -> bool {
        !matches!(self, AcctGatherEnergyType::Rapl)
    }

    /// Noise model applied to readings from this back-end.
    pub fn noise(&self, seed: u64) -> NoiseModel {
        match self {
            AcctGatherEnergyType::Ipmi => NoiseModel::new(0.02, 10.0, seed),
            AcctGatherEnergyType::PmCounters => NoiseModel::new(0.0, 1.0, seed),
            AcctGatherEnergyType::Rapl => NoiseModel::new(0.0, 0.0, seed),
        }
    }

    /// Read the cumulative energy counter of one node, in joules, through this
    /// back-end (before noise/quantisation).
    pub fn read_node_energy_j(&self, node: &Node) -> f64 {
        match self {
            AcctGatherEnergyType::Ipmi | AcctGatherEnergyType::PmCounters => node.energy_j(),
            AcctGatherEnergyType::Rapl => {
                node.energy_by_kind_j(DeviceKind::Cpu) + node.energy_by_kind_j(DeviceKind::Memory)
            }
        }
    }

    /// Read and degrade (noise + quantisation) one node's counter.
    pub fn sample_node_energy_j(&self, node: &Node, noise: &mut NoiseModel) -> f64 {
        noise.apply(self.read_node_energy_j(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::arch;

    #[test]
    fn config_names_match_slurm() {
        assert_eq!(AcctGatherEnergyType::Ipmi.config_name(), "acct_gather_energy/ipmi");
        assert_eq!(
            AcctGatherEnergyType::PmCounters.config_name(),
            "acct_gather_energy/pm_counters"
        );
        assert_eq!(AcctGatherEnergyType::Rapl.config_name(), "acct_gather_energy/rapl");
    }

    #[test]
    fn rapl_misses_gpu_energy() {
        let node = arch::cscs_a100().build();
        for g in node.gpus() {
            g.set_load(1.0);
        }
        node.advance(100.0);
        let full = AcctGatherEnergyType::PmCounters.read_node_energy_j(&node);
        let rapl = AcctGatherEnergyType::Rapl.read_node_energy_j(&node);
        assert!(
            rapl < full * 0.3,
            "RAPL ({rapl} J) should see far less than pm_counters ({full} J)"
        );
        assert!(!AcctGatherEnergyType::Rapl.covers_gpus());
        assert!(AcctGatherEnergyType::PmCounters.covers_gpus());
    }

    #[test]
    fn ipmi_is_noisy_but_unbiased() {
        let node = arch::lumi_g().build();
        node.advance(1000.0);
        let truth = node.energy_j();
        let mut noise = AcctGatherEnergyType::Ipmi.noise(1);
        let mut sum = 0.0;
        for _ in 0..200 {
            sum += AcctGatherEnergyType::Ipmi.sample_node_energy_j(&node, &mut noise);
        }
        let mean = sum / 200.0;
        assert!((mean - truth).abs() / truth < 0.01, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn pm_counters_quantises_to_joules() {
        let node = arch::lumi_g().build();
        node.advance(0.001); // sub-joule energy
        let mut noise = AcctGatherEnergyType::PmCounters.noise(0);
        let e = AcctGatherEnergyType::PmCounters.sample_node_energy_j(&node, &mut noise);
        assert_eq!(e, e.round());
    }
}
