//! The event model shared by every exporter.
//!
//! A [`Telemetry`](crate::Telemetry) sink records a flat, append-only stream
//! of [`Event`]s. Each event carries a globally monotonic sequence number
//! (assigned under a single shared atomic, so per-rank streams merge into one
//! total order), a microsecond timestamp relative to the sink's epoch, and
//! rank/thread tags. The JSONL exporter writes one event per line in exactly
//! this shape; the Chrome-trace exporter reshapes the same events into the
//! `traceEvents` format Perfetto understands.

/// What kind of event a record is.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A completed span: a named interval with identity and parentage.
    Span {
        /// Unique span id within the sink.
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A sampled value (Chrome counter track).
    Gauge {
        /// The sampled value.
        value: f64,
    },
    /// A monotonic running total (Chrome counter track).
    Counter {
        /// The running total at the time of the event.
        value: f64,
    },
}

impl EventKind {
    /// The `kind` tag used in the JSONL encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Span { .. } => "span",
            EventKind::Instant => "instant",
            EventKind::Gauge { .. } => "gauge",
            EventKind::Counter { .. } => "counter",
        }
    }
}

/// One record in the telemetry stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Globally monotonic sequence number (total order across ranks).
    pub seq: u64,
    /// Start time in microseconds since the sink's epoch.
    pub ts_us: u64,
    /// Rank tag (0 for single-rank runs).
    pub rank: u32,
    /// Small per-process thread tag (not the OS thread id).
    pub thread: u32,
    /// Category, e.g. `"stage"`, `"health"`, `"power"`, `"autotune"`.
    pub cat: &'static str,
    /// Event name, e.g. a stage label or gauge name.
    pub name: String,
    /// Numeric key/value payload.
    pub args: Vec<(String, f64)>,
    /// The kind-specific payload.
    pub kind: EventKind,
}

impl Event {
    /// Encode the event as one JSON object on a single line (no trailing
    /// newline). This is the JSONL stream format.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push('{');
        push_kv_u64(&mut s, "seq", self.seq);
        s.push(',');
        push_kv_u64(&mut s, "ts_us", self.ts_us);
        s.push(',');
        push_kv_u64(&mut s, "rank", u64::from(self.rank));
        s.push(',');
        push_kv_u64(&mut s, "thread", u64::from(self.thread));
        s.push(',');
        push_kv_str(&mut s, "cat", self.cat);
        s.push(',');
        push_kv_str(&mut s, "name", &self.name);
        s.push(',');
        push_kv_str(&mut s, "kind", self.kind.tag());
        match &self.kind {
            EventKind::Span { id, parent, dur_us } => {
                s.push(',');
                push_kv_u64(&mut s, "id", *id);
                if let Some(p) = parent {
                    s.push(',');
                    push_kv_u64(&mut s, "parent", *p);
                }
                s.push(',');
                push_kv_u64(&mut s, "dur_us", *dur_us);
            }
            EventKind::Instant => {}
            EventKind::Gauge { value } | EventKind::Counter { value } => {
                s.push(',');
                push_kv_f64(&mut s, "value", *value);
            }
        }
        if !self.args.is_empty() {
            s.push_str(",\"args\":{");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_kv_f64_owned_key(&mut s, k, *v);
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// Decode one JSONL line back into an [`Event`]. Returns `None` when the
    /// line is not a well-formed event object.
    pub fn from_jsonl(line: &str) -> Option<Event> {
        let value = crate::json::parse(line).ok()?;
        let obj = value.as_object()?;
        let kind_tag = obj.get("kind")?.as_str()?;
        let kind = match kind_tag {
            "span" => EventKind::Span {
                id: obj.get("id")?.as_f64()? as u64,
                parent: obj.get("parent").and_then(|p| p.as_f64()).map(|p| p as u64),
                dur_us: obj.get("dur_us")?.as_f64()? as u64,
            },
            "instant" => EventKind::Instant,
            "gauge" => EventKind::Gauge {
                value: obj.get("value")?.as_f64()?,
            },
            "counter" => EventKind::Counter {
                value: obj.get("value")?.as_f64()?,
            },
            _ => return None,
        };
        let mut args = Vec::new();
        if let Some(a) = obj.get("args").and_then(|a| a.as_object()) {
            for (k, v) in a {
                args.push((k.clone(), v.as_f64()?));
            }
        }
        Some(Event {
            seq: obj.get("seq")?.as_f64()? as u64,
            ts_us: obj.get("ts_us")?.as_f64()? as u64,
            rank: obj.get("rank")?.as_f64()? as u32,
            thread: obj.get("thread")?.as_f64()? as u32,
            cat: cat_static(obj.get("cat")?.as_str()?),
            name: obj.get("name")?.as_str()?.to_string(),
            args,
            kind,
        })
    }
}

/// Intern a decoded category string into the small set of `'static` categories
/// the sinks emit. Unknown categories map to `"other"` — the decoder is only
/// used by validators and round-trip tests, which compare known categories.
fn cat_static(cat: &str) -> &'static str {
    for known in ["step", "stage", "health", "sim", "power", "autotune", "comm", "meta"] {
        if cat == known {
            return known;
        }
    }
    "other"
}

/// Escape a string for inclusion in a JSON document.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` so it survives a JSON round trip (`NaN`/`inf` are not
/// representable in JSON; they encode as `null` and decode as absent).
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on an integral f64 prints no decimal point; that is still
        // valid JSON and parses back as the same number.
        s
    } else {
        "null".to_string()
    }
}

fn push_kv_u64(s: &mut String, key: &str, value: u64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&value.to_string());
}

fn push_kv_f64(s: &mut String, key: &str, value: f64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&format_f64(value));
}

fn push_kv_f64_owned_key(s: &mut String, key: &str, value: f64) {
    s.push('"');
    s.push_str(&escape_json(key));
    s.push_str("\":");
    s.push_str(&format_f64(value));
}

fn push_kv_str(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":\"");
    s.push_str(&escape_json(value));
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> Event {
        Event {
            seq: 7,
            ts_us: 1234,
            rank: 2,
            thread: 1,
            cat: "stage",
            name: "MomentumEnergy".to_string(),
            args: vec![("step".to_string(), 3.0)],
            kind: EventKind::Span {
                id: 11,
                parent: Some(10),
                dur_us: 456,
            },
        }
    }

    #[test]
    fn jsonl_round_trips_span() {
        let e = sample_span();
        let line = e.to_jsonl();
        let back = Event::from_jsonl(&line).expect("parse");
        assert_eq!(back, e);
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let mut e = sample_span();
        for kind in [
            EventKind::Instant,
            EventKind::Gauge { value: -1.5e-7 },
            EventKind::Counter { value: 42.0 },
            EventKind::Span {
                id: 1,
                parent: None,
                dur_us: 0,
            },
        ] {
            e.kind = kind.clone();
            let back = Event::from_jsonl(&e.to_jsonl()).expect("parse");
            assert_eq!(back.kind, kind);
            assert_eq!(back, e);
        }
    }

    #[test]
    fn names_with_quotes_and_newlines_survive() {
        let mut e = sample_span();
        e.name = "weird \"label\"\nwith\tescapes\\".to_string();
        let back = Event::from_jsonl(&e.to_jsonl()).expect("parse");
        assert_eq!(back.name, e.name);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Event::from_jsonl("").is_none());
        assert!(Event::from_jsonl("{\"seq\":1}").is_none());
        assert!(Event::from_jsonl("not json at all").is_none());
    }
}
