//! End-of-run aggregation of the event stream into plain rows.
//!
//! The `analysis` crate renders these rows as its `Table` type (text, CSV,
//! markdown); keeping the aggregation here and the rendering there means the
//! human-readable summary and the machine-readable trace are views of the
//! same events and cannot drift apart.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;

/// Aggregate of all spans sharing one `(category, name)` key.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRow {
    /// Span category (`"stage"`, `"power"`, ...).
    pub cat: String,
    /// Span name (stage label, region label, ...).
    pub name: String,
    /// Number of completed spans.
    pub calls: u64,
    /// Total wall-clock seconds across calls.
    pub total_s: f64,
    /// Mean microseconds per call.
    pub mean_us: f64,
    /// Longest single call in microseconds.
    pub max_us: u64,
    /// Total of the spans' `energy_j` args (0 when absent — only the `pmt`
    /// power bridge attaches energies).
    pub energy_j: f64,
    /// Number of distinct ranks the spans came from.
    pub ranks: usize,
}

/// Aggregate spans by `(cat, name)`, in sorted key order.
pub fn span_rows(events: &[Event]) -> Vec<SpanRow> {
    struct Acc {
        calls: u64,
        total_us: u64,
        max_us: u64,
        energy_j: f64,
        ranks: std::collections::BTreeSet<u32>,
    }
    let mut by_key: BTreeMap<(String, String), Acc> = BTreeMap::new();
    for e in events {
        let EventKind::Span { dur_us, .. } = e.kind else {
            continue;
        };
        let acc = by_key.entry((e.cat.to_string(), e.name.clone())).or_insert_with(|| Acc {
            calls: 0,
            total_us: 0,
            max_us: 0,
            energy_j: 0.0,
            ranks: std::collections::BTreeSet::new(),
        });
        acc.calls += 1;
        acc.total_us += dur_us;
        acc.max_us = acc.max_us.max(dur_us);
        acc.ranks.insert(e.rank);
        if let Some((_, j)) = e.args.iter().find(|(k, _)| k == "energy_j") {
            acc.energy_j += j;
        }
    }
    by_key
        .into_iter()
        .map(|((cat, name), acc)| SpanRow {
            cat,
            name,
            calls: acc.calls,
            total_s: acc.total_us as f64 / 1e6,
            mean_us: acc.total_us as f64 / acc.calls as f64,
            max_us: acc.max_us,
            energy_j: acc.energy_j,
            ranks: acc.ranks.len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: &'static str, name: &str, rank: u32, dur_us: u64, energy: Option<f64>) -> Event {
        Event {
            seq: 0,
            ts_us: 0,
            rank,
            thread: 0,
            cat,
            name: name.to_string(),
            args: energy.map(|j| ("energy_j".to_string(), j)).into_iter().collect(),
            kind: EventKind::Span {
                id: 0,
                parent: None,
                dur_us,
            },
        }
    }

    #[test]
    fn rows_aggregate_by_category_and_name() {
        let events = vec![
            span("stage", "XMass", 0, 100, None),
            span("stage", "XMass", 1, 300, None),
            span("power", "XMass", 0, 150, Some(2.0)),
            Event {
                kind: EventKind::Instant,
                ..span("sim", "tick", 0, 0, None)
            },
        ];
        let rows = span_rows(&events);
        assert_eq!(rows.len(), 2);
        let power = &rows[0];
        assert_eq!((power.cat.as_str(), power.name.as_str()), ("power", "XMass"));
        assert_eq!(power.energy_j, 2.0);
        let stage = &rows[1];
        assert_eq!(stage.calls, 2);
        assert_eq!(stage.total_s, 400e-6);
        assert_eq!(stage.mean_us, 200.0);
        assert_eq!(stage.max_us, 300);
        assert_eq!(stage.ranks, 2);
    }

    #[test]
    fn non_span_events_are_ignored() {
        let e = Event {
            kind: EventKind::Gauge { value: 1.0 },
            ..span("health", "dt", 0, 0, None)
        };
        assert!(span_rows(&[e]).is_empty());
    }
}
