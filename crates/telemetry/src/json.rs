//! A minimal recursive-descent JSON parser.
//!
//! The workspace ships no `serde_json` (offline vendor policy), yet the
//! telemetry layer must *validate* the traces it emits — the CI smoke job and
//! the schema round-trip tests parse the Chrome-trace output back and check
//! its structure. This parser supports the full JSON value grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) and nothing more:
//! no serialisation framework, no zero-copy cleverness.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; key order is not preserved (sorted map).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience: member lookup on objects (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing whitespace is allowed; any other
/// trailing content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept and combine when valid,
                            // substitute U+FFFD otherwise.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        Some(simple) => {
                            out.push(match simple {
                                b'"' => '"',
                                b'\\' => '\\',
                                b'/' => '/',
                                b'b' => '\u{8}',
                                b'f' => '\u{c}',
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                _ => return Err(self.err("invalid escape sequence")),
                            });
                            self.pos += 1;
                        }
                        None => return Err(self.err("unterminated escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries are valid).
                    let start = self.pos;
                    let s = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..]) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parse exactly four hex digits starting at `self.pos`; leaves `self.pos`
    /// one past the last digit.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.bytes[self.pos] {
                c @ b'0'..=b'9' => u32::from(c - b'0'),
                c @ b'a'..=b'f' => u32::from(c - b'a') + 10,
                c @ b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{"e":null}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn resolves_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}"));
    }

    #[test]
    fn resolves_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_unicode_content() {
        let v = parse("{\"π\":\"naïve ✓\"}").unwrap();
        assert_eq!(v.get("π").unwrap().as_str(), Some("naïve ✓"));
    }
}
