//! Structured tracing and metrics for the energy-aware SPH workspace.
//!
//! Three pieces, mirroring the shape of production tracing stacks but with
//! zero dependencies (the crate sits below everything else in the workspace):
//!
//! 1. **Spans** — hierarchical named intervals with ids/parents and
//!    rank/thread tags. [`Telemetry::span`] returns a RAII guard; the
//!    completed interval is recorded when the guard drops. The disabled path
//!    is a single relaxed atomic load returning an inert guard (proven by the
//!    `disabled_span_overhead` self-test and the release-mode
//!    `telemetry_overhead` integration test).
//! 2. **Metrics** — a [`MetricsRegistry`] of monotonic counters, gauges and
//!    fixed-bucket histograms with typed `Arc` handles.
//! 3. **Exporters** — an append-only JSONL event stream
//!    ([`Telemetry::flush`]), a Chrome-trace/Perfetto JSON writer
//!    ([`trace::chrome_trace_json`], openable at `ui.perfetto.dev`), and
//!    plaintext summary tables rendered by the `analysis` crate from
//!    [`summary::span_rows`] / [`MetricsRegistry::snapshot`].
//!
//! Per-rank streams share one sink: every recorded event takes its sequence
//! number from a single shared atomic, so a 4-rank step interleaves into one
//! strictly monotonic total order (asserted by the `telemetry_trace`
//! integration tests).
//!
//! The `SPHSIM_TRACE=<path>` environment hook ([`from_env`]) resolves once,
//! like `SPHSIM_THREADS` in `sphsim::parallel`, and equips the sink with a
//! Chrome trace at `<path>` plus a JSONL sibling at `<path>.jsonl`.

pub mod event;
pub mod json;
pub mod metrics;
pub mod summary;
pub mod trace;

pub use event::{Event, EventKind};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};

use std::cell::RefCell;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Buffered events plus exporter state, behind the sink's single mutex.
#[derive(Default)]
struct SinkState {
    events: Vec<Event>,
    /// How many of `events` have already been appended to the JSONL stream.
    jsonl_flushed: usize,
    jsonl_path: Option<PathBuf>,
    chrome_path: Option<PathBuf>,
}

/// A telemetry sink: span recorder, metrics registry and exporter state.
///
/// Cheap to share (`Arc<Telemetry>`); all methods take `&self`. One sink is
/// shared by every rank of a distributed run.
pub struct Telemetry {
    enabled: AtomicBool,
    seq: AtomicU64,
    next_span_id: AtomicU64,
    epoch: Instant,
    metrics: MetricsRegistry,
    state: Mutex<SinkState>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// An enabled sink with no file exporters attached.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            next_span_id: AtomicU64::new(1),
            epoch: Instant::now(),
            metrics: MetricsRegistry::new(),
            state: Mutex::new(SinkState::default()),
        }
    }

    /// A sink that starts disabled; [`Telemetry::set_enabled`] turns it on.
    pub fn disabled() -> Self {
        let t = Self::new();
        t.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Attach a Chrome-trace JSON exporter (rewritten on every flush).
    pub fn with_chrome_trace(self, path: impl Into<PathBuf>) -> Self {
        self.state.lock().unwrap().chrome_path = Some(path.into());
        self
    }

    /// Attach an append-only JSONL exporter (appended on every flush).
    pub fn with_jsonl(self, path: impl Into<PathBuf>) -> Self {
        self.state.lock().unwrap().jsonl_path = Some(path.into());
        self
    }

    /// Whether recording is on. The hot-path check instrumented code performs.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Microseconds since the sink's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The metrics registry of this sink.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Open a span. When the sink is disabled this is a single relaxed atomic
    /// load and returns an inert guard — no allocation, no lock, no clock
    /// read. When enabled, the completed interval is recorded when the
    /// returned guard drops.
    #[inline]
    pub fn span(self: &Arc<Self>, cat: &'static str, name: &str, rank: u32) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard(None);
        }
        self.span_enabled(cat, name, rank)
    }

    /// The enabled slow path of [`Telemetry::span`], kept out of line so the
    /// disabled path stays branch-plus-return.
    fn span_enabled(self: &Arc<Self>, cat: &'static str, name: &str, rank: u32) -> SpanGuard {
        let id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        SpanGuard(Some(ActiveSpan {
            sink: Arc::clone(self),
            cat,
            name: name.to_string(),
            rank,
            thread: thread_tag(),
            id,
            parent,
            start_us: self.now_us(),
            args: Vec::new(),
        }))
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, cat: &'static str, name: &str, rank: u32, args: &[(&str, f64)]) {
        if !self.enabled() {
            return;
        }
        let ts_us = self.now_us();
        self.record(Event {
            seq: 0,
            ts_us,
            rank,
            thread: thread_tag(),
            cat,
            name: name.to_string(),
            args: args.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            kind: EventKind::Instant,
        });
    }

    /// Set the registry gauge `name` and record a gauge event (a Chrome
    /// counter-track sample).
    pub fn gauge(&self, cat: &'static str, name: &str, rank: u32, value: f64) {
        if !self.enabled() {
            return;
        }
        self.metrics.gauge(name).set(value);
        let ts_us = self.now_us();
        self.record(Event {
            seq: 0,
            ts_us,
            rank,
            thread: thread_tag(),
            cat,
            name: name.to_string(),
            args: Vec::new(),
            kind: EventKind::Gauge { value },
        });
    }

    /// Record a counter-track sample for a running total (the registry
    /// counter itself is updated by the caller through its typed handle).
    pub fn counter_sample(&self, cat: &'static str, name: &str, rank: u32, value: f64) {
        if !self.enabled() {
            return;
        }
        let ts_us = self.now_us();
        self.record(Event {
            seq: 0,
            ts_us,
            rank,
            thread: thread_tag(),
            cat,
            name: name.to_string(),
            args: Vec::new(),
            kind: EventKind::Counter { value },
        });
    }

    /// Record a completed interval directly (used by the `pmt` power-region
    /// bridge, whose intervals are measured by the meter's own clock). The
    /// span is timestamped `[now - dur, now]` on the sink's timeline.
    pub fn bridge_span(&self, cat: &'static str, name: &str, rank: u32, dur_s: f64, args: &[(&str, f64)]) {
        if !self.enabled() {
            return;
        }
        let dur_us = (dur_s.max(0.0) * 1e6).round() as u64;
        let now = self.now_us();
        let id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        self.record(Event {
            seq: 0,
            ts_us: now.saturating_sub(dur_us),
            rank,
            thread: thread_tag(),
            cat,
            name: name.to_string(),
            args: args.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            kind: EventKind::Span {
                id,
                parent: None,
                dur_us,
            },
        });
    }

    /// Append an event to the buffer, assigning its global sequence number.
    /// The sequence atomic is shared by every rank holding this sink, which
    /// is what makes merged per-rank streams totally ordered.
    fn record(&self, mut event: Event) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.state.lock().unwrap().events.push(event);
    }

    /// A copy of every event recorded so far, in record order (which is also
    /// strictly increasing `seq` order).
    pub fn events_snapshot(&self) -> Vec<Event> {
        self.state.lock().unwrap().events.clone()
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.state.lock().unwrap().events.len()
    }

    /// Flush to the attached exporters: append any new events to the JSONL
    /// stream and rewrite the Chrome trace. A no-op when no exporter is
    /// attached. Errors are reported once to stderr rather than panicking
    /// mid-simulation.
    pub fn flush(&self) {
        let mut state = self.state.lock().unwrap();
        let state = &mut *state;
        if let Some(path) = state.jsonl_path.clone() {
            if state.jsonl_flushed < state.events.len() {
                let mut chunk = String::new();
                for e in &state.events[state.jsonl_flushed..] {
                    chunk.push_str(&e.to_jsonl());
                    chunk.push('\n');
                }
                match OpenOptions::new().create(true).append(true).open(&path) {
                    Ok(mut f) => {
                        if f.write_all(chunk.as_bytes()).is_ok() {
                            state.jsonl_flushed = state.events.len();
                        }
                    }
                    Err(err) => {
                        warn_once(&format!("telemetry: cannot append {}: {err}", path.display()));
                    }
                }
            }
        }
        if let Some(path) = state.chrome_path.clone() {
            let doc = trace::chrome_trace_json(&state.events);
            if let Err(err) = std::fs::write(&path, doc) {
                warn_once(&format!("telemetry: cannot write {}: {err}", path.display()));
            }
        }
    }
}

/// Emit a stderr warning at most once per distinct message.
fn warn_once(message: &str) {
    static SEEN: OnceLock<Mutex<std::collections::BTreeSet<String>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(std::collections::BTreeSet::new()));
    if seen.lock().unwrap().insert(message.to_string()) {
        eprintln!("warning: {message}");
    }
}

thread_local! {
    /// Per-thread stack of open span ids, for parent linkage.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Small per-thread tag, assigned on first use.
    static THREAD_TAG: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
}

/// Process-wide source of small thread tags.
static NEXT_THREAD_TAG: AtomicU32 = AtomicU32::new(0);

/// The small integer tag of the calling thread (0 for the first thread that
/// records telemetry, 1 for the next, ...). Stable for the thread's lifetime.
pub fn thread_tag() -> u32 {
    THREAD_TAG.with(|tag| {
        let t = tag.get();
        if t != u32::MAX {
            return t;
        }
        let t = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
        tag.set(t);
        t
    })
}

/// The live half of a [`SpanGuard`].
struct ActiveSpan {
    sink: Arc<Telemetry>,
    cat: &'static str,
    name: String,
    rank: u32,
    thread: u32,
    id: u64,
    parent: Option<u64>,
    start_us: u64,
    args: Vec<(String, f64)>,
}

/// RAII guard for an open span; records the completed interval on drop.
/// Inert (a single `Option::None`) when the sink was disabled at open time.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attach a numeric argument to the span (no-op on inert guards).
    pub fn arg(&mut self, key: &str, value: f64) {
        if let Some(active) = &mut self.0 {
            active.args.push((key.to_string(), value));
        }
    }

    /// Whether this guard will record anything on drop.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(active.id), "span drop order inverted");
            if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        let end_us = active.sink.now_us();
        active.sink.record(Event {
            seq: 0,
            ts_us: active.start_us,
            rank: active.rank,
            thread: active.thread,
            cat: active.cat,
            name: active.name,
            args: active.args,
            kind: EventKind::Span {
                id: active.id,
                parent: active.parent,
                dur_us: end_us.saturating_sub(active.start_us),
            },
        });
    }
}

/// Resolve the `SPHSIM_TRACE` environment hook **once** per process (the
/// `SPHSIM_THREADS` pattern): when set to a non-empty path, every simulation
/// constructed without an explicit sink shares this one, writing a Chrome
/// trace to `<path>` and a JSONL stream to `<path>.jsonl`.
pub fn from_env() -> Option<Arc<Telemetry>> {
    static GLOBAL: OnceLock<Option<Arc<Telemetry>>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let path = std::env::var("SPHSIM_TRACE").ok().filter(|p| !p.is_empty())?;
            Some(Arc::new(sink_for_trace_path(Path::new(&path))))
        })
        .clone()
}

/// Build the sink [`from_env`] would build for `path`, without consulting the
/// environment: Chrome trace at `path`, JSONL stream at `path.jsonl`.
pub fn sink_for_trace_path(path: &Path) -> Telemetry {
    let mut jsonl = path.as_os_str().to_owned();
    jsonl.push(".jsonl");
    Telemetry::new().with_chrome_trace(path).with_jsonl(PathBuf::from(jsonl))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_link_parents() {
        let t = Arc::new(Telemetry::new());
        {
            let _outer = t.span("step", "Step", 0);
            {
                let mut inner = t.span("stage", "FindNeighbors", 0);
                inner.arg("n", 100.0);
            }
            let _sibling = t.span("stage", "XMass", 0);
        }
        let events = t.events_snapshot();
        assert_eq!(events.len(), 3);
        // Drop order: inner, sibling, outer.
        let inner = &events[0];
        let sibling = &events[1];
        let outer = &events[2];
        let id_of = |e: &Event| match e.kind {
            EventKind::Span { id, .. } => id,
            _ => panic!("not a span"),
        };
        let parent_of = |e: &Event| match e.kind {
            EventKind::Span { parent, .. } => parent,
            _ => panic!("not a span"),
        };
        assert_eq!(outer.name, "Step");
        assert_eq!(parent_of(outer), None);
        assert_eq!(parent_of(inner), Some(id_of(outer)));
        assert_eq!(parent_of(sibling), Some(id_of(outer)));
        assert_eq!(inner.args, vec![("n".to_string(), 100.0)]);
    }

    #[test]
    fn sequence_numbers_are_strictly_monotonic_across_threads() {
        let t = Arc::new(Telemetry::new());
        std::thread::scope(|scope| {
            for rank in 0..4u32 {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for i in 0..50 {
                        t.instant("sim", "tick", rank, &[("i", f64::from(i))]);
                    }
                });
            }
        });
        let events = t.events_snapshot();
        assert_eq!(events.len(), 200);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        let expected: Vec<u64> = (0..200).collect();
        assert_eq!(seqs, expected, "seq numbers must be dense and unique");
        for rank in 0..4u32 {
            assert!(events.iter().any(|e| e.rank == rank), "missing rank {rank}");
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let t = Arc::new(Telemetry::disabled());
        {
            let mut g = t.span("stage", "XMass", 0);
            g.arg("ignored", 1.0);
            assert!(!g.is_recording());
        }
        t.instant("sim", "tick", 0, &[]);
        t.gauge("health", "dt", 0, 1.0);
        t.counter_sample("comm", "msgs", 0, 1.0);
        t.bridge_span("power", "XMass", 0, 0.5, &[]);
        assert_eq!(t.event_count(), 0);
        // The registry gauge is also untouched on the disabled path.
        assert!(t.metrics().snapshot().gauges.is_empty());
    }

    #[test]
    fn disabled_span_overhead_is_near_zero() {
        // The overhead self-test from the tentpole: the disabled span path
        // must be within noise of a bare relaxed-atomic check. We bound the
        // mean cost per disabled span at 250ns across one million calls —
        // orders of magnitude below a stage body, and loose enough for CI
        // machines under debug profiles.
        let t = Arc::new(Telemetry::disabled());
        const CALLS: u32 = 1_000_000;
        let start = Instant::now();
        for _ in 0..CALLS {
            let _g = t.span("stage", "MomentumEnergy", 0);
        }
        let per_call = start.elapsed().as_secs_f64() / f64::from(CALLS);
        assert_eq!(t.event_count(), 0);
        assert!(
            per_call < 250e-9,
            "disabled span path too slow: {:.1}ns per call",
            per_call * 1e9
        );
    }

    #[test]
    fn gauge_events_mirror_into_registry() {
        let t = Arc::new(Telemetry::new());
        t.gauge("health", "health.dt", 0, 2.5e-4);
        assert_eq!(t.metrics().snapshot().gauge("health.dt"), Some(2.5e-4));
        let events = t.events_snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Gauge { value: 2.5e-4 });
    }

    #[test]
    fn flush_appends_jsonl_and_rewrites_chrome() {
        let dir = std::env::temp_dir().join(format!("telemetry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let chrome = dir.join("t.json");
        let jsonl = dir.join("t.jsonl");
        let _ = std::fs::remove_file(&chrome);
        let _ = std::fs::remove_file(&jsonl);
        let t = Arc::new(Telemetry::new().with_chrome_trace(&chrome).with_jsonl(&jsonl));
        t.instant("sim", "a", 0, &[]);
        t.flush();
        t.instant("sim", "b", 1, &[]);
        t.flush();
        let lines: Vec<String> = std::fs::read_to_string(&jsonl).unwrap().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 2, "append-only JSONL must not duplicate events");
        assert!(Event::from_jsonl(&lines[0]).is_some());
        let doc = std::fs::read_to_string(&chrome).unwrap();
        let parsed = json::parse(&doc).unwrap();
        assert!(!parsed.get("traceEvents").unwrap().as_array().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
