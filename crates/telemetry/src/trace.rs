//! Chrome-trace / Perfetto exporter and validator.
//!
//! The exporter reshapes the flat [`Event`](crate::Event) stream into the
//! Chrome tracing `traceEvents` format: spans become complete (`"ph":"X"`)
//! events, gauges and counters become counter-track (`"ph":"C"`) samples,
//! instants become `"ph":"i"` markers. Ranks map to `pid` and thread tags to
//! `tid`, so a 4-rank run renders as four process lanes in `ui.perfetto.dev`.
//!
//! The validator parses a written trace back (via the vendored-free
//! [`crate::json`] parser) and summarises what it contains — the CI
//! `telemetry-smoke` job and the schema round-trip tests are built on it.

use crate::event::{escape_json, format_f64, Event, EventKind};
use std::collections::BTreeSet;

/// Render events as a complete Chrome-trace JSON document.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Name the process lanes after their ranks.
    let ranks: BTreeSet<u32> = events.iter().map(|e| e.rank).collect();
    for rank in ranks {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        ));
    }
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        push_trace_event(&mut out, e);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn push_trace_event(out: &mut String, e: &Event) {
    out.push_str("{\"name\":\"");
    out.push_str(&escape_json(&e.name));
    out.push_str("\",\"cat\":\"");
    out.push_str(e.cat);
    out.push('"');
    match &e.kind {
        EventKind::Span { id, parent, dur_us } => {
            out.push_str(&format!(",\"ph\":\"X\",\"ts\":{},\"dur\":{}", e.ts_us, dur_us));
            push_common(out, e);
            out.push_str(&format!(",\"args\":{{\"seq\":{},\"span_id\":{}", e.seq, id));
            if let Some(p) = parent {
                out.push_str(&format!(",\"parent\":{p}"));
            }
            push_args(out, &e.args);
            out.push_str("}}");
        }
        EventKind::Instant => {
            out.push_str(&format!(",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}", e.ts_us));
            push_common(out, e);
            out.push_str(&format!(",\"args\":{{\"seq\":{}", e.seq));
            push_args(out, &e.args);
            out.push_str("}}");
        }
        EventKind::Gauge { value } | EventKind::Counter { value } => {
            out.push_str(&format!(",\"ph\":\"C\",\"ts\":{}", e.ts_us));
            push_common(out, e);
            out.push_str(&format!(",\"args\":{{\"value\":{}}}}}", format_f64(*value)));
        }
    }
}

fn push_common(out: &mut String, e: &Event) {
    out.push_str(&format!(",\"pid\":{},\"tid\":{}", e.rank, e.thread));
}

fn push_args(out: &mut String, args: &[(String, f64)]) {
    for (k, v) in args {
        out.push_str(&format!(",\"{}\":{}", escape_json(k), format_f64(*v)));
    }
}

/// What a parsed Chrome trace contains — the validator's digest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDigest {
    /// Distinct span names (complete `"X"` events), sorted.
    pub span_names: Vec<String>,
    /// Distinct counter-track names, sorted.
    pub counter_names: Vec<String>,
    /// Distinct pids (ranks) seen on non-metadata events, sorted.
    pub ranks: Vec<u32>,
    /// Sequence numbers of all events that carry one, in document order.
    pub seqs: Vec<u64>,
    /// Total non-metadata events.
    pub events: usize,
}

impl TraceDigest {
    /// True when every `seq` is strictly greater than its predecessor after
    /// sorting by `seq` — i.e. sequence numbers are unique (the merge
    /// invariant for multi-rank streams).
    pub fn seqs_strictly_monotonic(&self) -> bool {
        let mut sorted = self.seqs.clone();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] < w[1])
    }
}

/// Parse a Chrome-trace JSON document and digest it. Errors describe what is
/// structurally wrong (the smoke job surfaces them verbatim).
pub fn validate_chrome_trace(doc: &str) -> Result<TraceDigest, String> {
    let value = crate::json::parse(doc).map_err(|e| e.to_string())?;
    let events = value
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut digest = TraceDigest::default();
    let mut span_names = BTreeSet::new();
    let mut counter_names = BTreeSet::new();
    let mut ranks = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let obj = e.as_object().ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("event {i} has no ph"))?;
        let name = obj
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("event {i} has no name"))?;
        if ph == "M" {
            continue;
        }
        digest.events += 1;
        let pid = obj
            .get("pid")
            .and_then(|p| p.as_f64())
            .ok_or_else(|| format!("event {i} has no pid"))?;
        ranks.insert(pid as u32);
        match ph {
            "X" => {
                if obj.get("ts").and_then(|t| t.as_f64()).is_none() || obj.get("dur").and_then(|d| d.as_f64()).is_none()
                {
                    return Err(format!("span event {i} ({name}) lacks ts/dur"));
                }
                span_names.insert(name.to_string());
            }
            "C" => {
                counter_names.insert(name.to_string());
            }
            "i" => {}
            other => return Err(format!("event {i} has unexpected ph {other:?}")),
        }
        if let Some(seq) = e.get("args").and_then(|a| a.get("seq")).and_then(|s| s.as_f64()) {
            digest.seqs.push(seq as u64);
        }
    }
    digest.span_names = span_names.into_iter().collect();
    digest.counter_names = counter_names.into_iter().collect();
    digest.ranks = ranks.into_iter().collect();
    Ok(digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events_fixture() -> Vec<Event> {
        vec![
            Event {
                seq: 0,
                ts_us: 10,
                rank: 0,
                thread: 0,
                cat: "step",
                name: "Step".to_string(),
                args: vec![("step".to_string(), 0.0)],
                kind: EventKind::Span {
                    id: 1,
                    parent: None,
                    dur_us: 90,
                },
            },
            Event {
                seq: 1,
                ts_us: 20,
                rank: 1,
                thread: 1,
                cat: "stage",
                name: "FindNeighbors".to_string(),
                args: vec![],
                kind: EventKind::Span {
                    id: 2,
                    parent: Some(1),
                    dur_us: 30,
                },
            },
            Event {
                seq: 2,
                ts_us: 50,
                rank: 0,
                thread: 0,
                cat: "health",
                name: "health.dt".to_string(),
                args: vec![],
                kind: EventKind::Gauge { value: 1e-3 },
            },
            Event {
                seq: 3,
                ts_us: 60,
                rank: 1,
                thread: 1,
                cat: "sim",
                name: "reorder".to_string(),
                args: vec![("step".to_string(), 4.0)],
                kind: EventKind::Instant,
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips_through_validator() {
        let doc = chrome_trace_json(&events_fixture());
        let digest = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(digest.span_names, vec!["FindNeighbors".to_string(), "Step".to_string()]);
        assert_eq!(digest.counter_names, vec!["health.dt".to_string()]);
        assert_eq!(digest.ranks, vec![0, 1]);
        assert_eq!(digest.events, 4);
        assert!(digest.seqs_strictly_monotonic());
    }

    #[test]
    fn empty_stream_is_still_a_valid_document() {
        let doc = chrome_trace_json(&[]);
        let digest = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(digest.events, 0);
        assert!(digest.seqs_strictly_monotonic());
    }

    #[test]
    fn validator_rejects_structural_damage() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn duplicate_seqs_fail_the_merge_invariant() {
        let mut events = events_fixture();
        events[1].seq = 0;
        let doc = chrome_trace_json(&events);
        let digest = validate_chrome_trace(&doc).unwrap();
        assert!(!digest.seqs_strictly_monotonic());
    }

    #[test]
    fn span_names_with_special_characters_survive() {
        let mut events = events_fixture();
        events[0].name = "weird \"stage\"".to_string();
        let doc = chrome_trace_json(&events);
        let digest = validate_chrome_trace(&doc).unwrap();
        assert!(digest.span_names.iter().any(|n| n == "weird \"stage\""));
    }
}
