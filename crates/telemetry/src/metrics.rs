//! The metrics registry: monotonic counters, gauges and fixed-bucket
//! histograms with typed, lock-free handles.
//!
//! A handle (`Arc<Counter>` etc.) is fetched once per call site via the
//! get-or-create accessors and then updated with a single atomic operation —
//! the registry mutex is only touched at handle-creation time. Snapshots are
//! cheap, consistent-enough reads for end-of-run reporting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a last-write-wins sampled value.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The last value set.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram. Bucket `i` counts observations `< bounds[i]`
/// (cumulative-exclusive upper bounds); one extra overflow bucket counts
/// everything at or above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Sum of observations, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b <= value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count: self.total.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Bucket upper bounds (exclusive); the final count bucket is overflow.
    pub bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket (`bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → total.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Get-or-create registry of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created with `bounds` on first use.
    /// Later calls ignore `bounds` and return the existing histogram.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Snapshot every metric for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self.gauges.lock().unwrap().iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: self.histograms.lock().unwrap().iter().map(|(n, h)| h.snapshot(n)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("comm.gather.messages");
        let b = reg.counter("comm.gather.messages");
        a.inc();
        b.add(4);
        assert_eq!(reg.snapshot().counter("comm.gather.messages"), Some(5));
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("health.dt");
        g.set(1e-3);
        g.set(2e-3);
        assert_eq!(reg.snapshot().gauge("health.dt"), Some(2e-3));
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("neigh", &[10.0, 20.0, 40.0]);
        for v in [0.0, 9.9, 10.0, 15.0, 39.9, 40.0, 1e9] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("neigh").unwrap();
        assert_eq!(hs.counts, vec![2, 2, 1, 2]);
        assert_eq!(hs.count, 7);
        assert!((hs.mean() - (0.0 + 9.9 + 10.0 + 15.0 + 39.9 + 40.0 + 1e9) / 7.0).abs() < 1e-3);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = Arc::new(MetricsRegistry::new());
        let h = reg.histogram("x", &[0.5]);
        let c = reg.counter("c");
        let mut joins = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            let c = c.clone();
            joins.push(thread::spawn(move || {
                for i in 0..1000 {
                    h.observe(i as f64);
                    c.inc();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(4000));
        let hs = snap.histogram("x").unwrap();
        assert_eq!(hs.count, 4000);
        assert!((hs.sum - 4.0 * (999.0 * 1000.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[1.0, 1.0]);
    }
}
