//! Table emitters for the experiment binaries.
//!
//! Every experiment prints its series as an aligned plain-text table, a CSV
//! block (for plotting) and optionally markdown — so the regenerated rows can
//! be compared directly against the paper's tables and figure series.

use std::fmt::Write as _;

/// A simple table: header plus rows of strings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the column count does not match the header.
    pub fn add_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable values.
    pub fn add_display_row<D: std::fmt::Display>(&mut self, cells: &[D]) {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.add_row(&strings);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["system", "energy_mj"]);
        t.add_row(&["LUMI-G".to_string(), "24.4".to_string()]);
        t.add_display_row(&["CSCS-A100", "12.5"]);
        t
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let text = table().to_text();
        assert!(text.contains("Demo"));
        assert!(text.contains("LUMI-G"));
        assert!(text.contains("12.5"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn csv_rendering() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "system,energy_mj");
        assert_eq!(lines[1], "LUMI-G,24.4");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn markdown_rendering() {
        let md = table().to_markdown();
        assert!(md.contains("| system | energy_mj |"));
        assert!(md.contains("| LUMI-G | 24.4 |"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(&["only-one".to_string()]);
    }

    #[test]
    fn row_count_and_title() {
        let t = table();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "Demo");
    }
}
