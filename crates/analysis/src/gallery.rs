//! Scenario-gallery reporting: per-scenario validation and per-stage min-EDP
//! frequency tables.
//!
//! The `scenario_gallery` experiment sweeps every registered scenario — the
//! analytic validation check on the CPU propagator plus a governed
//! paper-scale campaign — and renders its results through these emitters, so
//! the gallery's output format lives beside the other figure/table pipelines
//! of this crate.

use crate::report::Table;

/// One scenario's analytic-validation outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioValidationRow {
    /// Scenario short name.
    pub scenario: String,
    /// The analytic observable checked.
    pub observable: String,
    /// Measured value.
    pub measured: f64,
    /// Analytic expectation.
    pub expected: f64,
    /// Inclusive acceptance band on the measured value.
    pub acceptance: (f64, f64),
    /// Whether the check passed.
    pub passed: bool,
}

/// One governed stage's tuning outcome for one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct StageFrequencyRow {
    /// Scenario short name.
    pub scenario: String,
    /// Pipeline-stage label.
    pub stage: String,
    /// Best (min-EDP) frequency found, in Hz.
    pub best_frequency_hz: f64,
    /// Scored observations the search consumed.
    pub observations: usize,
    /// Whether the stage's search converged.
    pub converged: bool,
}

/// One scenario's whole-loop energy/EDP summary under governance.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioEdpRow {
    /// Scenario short name.
    pub scenario: String,
    /// Main-loop energy of the governed run, in joules.
    pub energy_j: f64,
    /// Main-loop duration of the governed run, in seconds.
    pub time_s: f64,
    /// Main-loop energy of the nominal-frequency baseline, in joules.
    pub baseline_energy_j: f64,
    /// Main-loop duration of the nominal-frequency baseline, in seconds.
    pub baseline_time_s: f64,
}

impl ScenarioEdpRow {
    /// Governed EDP in J·s.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }

    /// Baseline EDP in J·s.
    pub fn baseline_edp(&self) -> f64 {
        self.baseline_energy_j * self.baseline_time_s
    }

    /// Governed EDP as a fraction of the nominal baseline (< 1 is a win).
    pub fn edp_ratio(&self) -> f64 {
        let baseline = self.baseline_edp();
        if baseline > 0.0 {
            self.edp() / baseline
        } else {
            f64::NAN
        }
    }
}

/// Render the validation outcomes of every scenario.
pub fn validation_table(rows: &[ScenarioValidationRow]) -> Table {
    let mut t = Table::new(
        "Scenario gallery: analytic validation",
        &["scenario", "observable", "measured", "expected", "accepted", "status"],
    );
    for r in rows {
        t.add_row(&[
            r.scenario.clone(),
            r.observable.clone(),
            format!("{:.4}", r.measured),
            format!("{:.4}", r.expected),
            format!("[{:.4}, {:.4}]", r.acceptance.0, r.acceptance.1),
            if r.passed { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    t
}

/// Render the per-stage min-EDP frequency table across scenarios.
pub fn stage_frequency_table(rows: &[StageFrequencyRow]) -> Table {
    let mut t = Table::new(
        "Scenario gallery: per-stage min-EDP frequency (online governor)",
        &["scenario", "stage", "best_frequency_MHz", "observations", "converged"],
    );
    for r in rows {
        t.add_row(&[
            r.scenario.clone(),
            r.stage.clone(),
            format!("{:.0}", r.best_frequency_hz / 1.0e6),
            r.observations.to_string(),
            r.converged.to_string(),
        ]);
    }
    t
}

/// Render the per-scenario whole-loop EDP summary.
pub fn scenario_edp_table(rows: &[ScenarioEdpRow]) -> Table {
    let mut t = Table::new(
        "Scenario gallery: governed vs nominal whole-loop EDP",
        &[
            "scenario",
            "energy_kJ",
            "time_s",
            "edp_kJs",
            "baseline_edp_kJs",
            "edp_ratio_%",
        ],
    );
    for r in rows {
        t.add_row(&[
            r.scenario.clone(),
            format!("{:.1}", r.energy_j / 1.0e3),
            format!("{:.1}", r.time_s),
            format!("{:.1}", r.edp() / 1.0e3),
            format!("{:.1}", r.baseline_edp() / 1.0e3),
            format!("{:.1}", r.edp_ratio() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_table_renders_status() {
        let rows = vec![
            ScenarioValidationRow {
                scenario: "Sedov".into(),
                observable: "shock radius".into(),
                measured: 0.31,
                expected: 0.30,
                acceptance: (0.2, 0.4),
                passed: true,
            },
            ScenarioValidationRow {
                scenario: "Noh".into(),
                observable: "density ratio".into(),
                measured: 2.0,
                expected: 1.0,
                acceptance: (0.75, 1.25),
                passed: false,
            },
        ];
        let t = validation_table(&rows);
        assert_eq!(t.row_count(), 2);
        let text = t.to_text();
        assert!(text.contains("PASS") && text.contains("FAIL"));
    }

    #[test]
    fn frequency_table_reports_megahertz() {
        let rows = vec![StageFrequencyRow {
            scenario: "KH".into(),
            stage: "MomentumEnergy".into(),
            best_frequency_hz: 1.305e9,
            observations: 12,
            converged: true,
        }];
        let t = stage_frequency_table(&rows);
        assert!(t.to_csv().contains("1305"));
    }

    #[test]
    fn edp_ratio_compares_against_baseline() {
        let row = ScenarioEdpRow {
            scenario: "Turb".into(),
            energy_j: 80.0,
            time_s: 10.0,
            baseline_energy_j: 100.0,
            baseline_time_s: 10.0,
        };
        assert!((row.edp_ratio() - 0.8).abs() < 1e-12);
        let t = scenario_edp_table(&[row]);
        assert_eq!(t.row_count(), 1);
    }
}
