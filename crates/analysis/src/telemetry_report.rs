//! Shared end-of-run summary emitters over telemetry data.
//!
//! The `telemetry` crate aggregates its event stream into plain rows
//! ([`telemetry::summary::span_rows`]) and metric snapshots
//! ([`telemetry::MetricsRegistry::snapshot`]); this module renders both as the
//! workspace's standard [`Table`] (text/CSV/markdown), so every binary prints
//! the *same* summary shape — `run_all`, `scenario_gallery`, `weak_scaling`
//! and the telemetry smoke all route through here instead of hand-rolling
//! `println!` columns.

use crate::report::Table;
use pmt::{DomainKind, FunctionAggregate};
use telemetry::summary::SpanRow;
use telemetry::{HistogramSnapshot, MetricsSnapshot};

/// Render aggregated span rows (one line per `(category, name)`).
pub fn span_table(title: &str, rows: &[SpanRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "cat", "name", "calls", "total_s", "mean_us", "max_us", "energy_J", "ranks",
        ],
    );
    for r in rows {
        t.add_row(&[
            r.cat.clone(),
            r.name.clone(),
            r.calls.to_string(),
            format!("{:.4}", r.total_s),
            format!("{:.1}", r.mean_us),
            r.max_us.to_string(),
            format!("{:.2}", r.energy_j),
            r.ranks.to_string(),
        ]);
    }
    t
}

/// Render the registry's gauges (final values), `None` when there are none.
pub fn gauge_table(title: &str, snapshot: &MetricsSnapshot) -> Option<Table> {
    if snapshot.gauges.is_empty() {
        return None;
    }
    let mut t = Table::new(title, &["gauge", "value"]);
    for (name, value) in &snapshot.gauges {
        t.add_row(&[name.clone(), format!("{value:.6e}")]);
    }
    Some(t)
}

/// Render the registry's monotonic counters, `None` when there are none.
pub fn counter_table(title: &str, snapshot: &MetricsSnapshot) -> Option<Table> {
    if snapshot.counters.is_empty() {
        return None;
    }
    let mut t = Table::new(title, &["counter", "total"]);
    for (name, value) in &snapshot.counters {
        t.add_row(&[name.clone(), value.to_string()]);
    }
    Some(t)
}

/// Render one histogram as a bucket table (upper bound → count).
pub fn histogram_table(hist: &HistogramSnapshot) -> Table {
    let mut t = Table::new(
        format!("{} (n = {}, mean = {:.2})", hist.name, hist.count, hist.mean()),
        &["le", "count"],
    );
    for (i, count) in hist.counts.iter().enumerate() {
        let le = match hist.bounds.get(i) {
            Some(b) => format!("{b}"),
            None => "+inf".to_string(),
        };
        t.add_row(&[le, count.to_string()]);
    }
    t
}

/// Every non-empty summary table for one finished run, in print order: spans,
/// gauges, counters, then one table per histogram.
pub fn telemetry_tables(title_prefix: &str, events: &[telemetry::Event], snapshot: &MetricsSnapshot) -> Vec<Table> {
    let mut tables = Vec::new();
    let rows = telemetry::summary::span_rows(events);
    if !rows.is_empty() {
        tables.push(span_table(&format!("{title_prefix}: spans"), &rows));
    }
    if let Some(t) = gauge_table(&format!("{title_prefix}: gauges"), snapshot) {
        tables.push(t);
    }
    if let Some(t) = counter_table(&format!("{title_prefix}: counters"), snapshot) {
        tables.push(t);
    }
    for hist in &snapshot.histograms {
        tables.push(histogram_table(hist));
    }
    tables
}

/// One rank's identity and per-stage measurement aggregates, as gathered at
/// the end of a distributed run.
pub struct RankStages {
    /// Rank id.
    pub rank: u32,
    /// Hostname the rank ran on.
    pub hostname: String,
    /// Particles owned at the end of the run.
    pub owned: usize,
    /// Ghosts held at the end of the run.
    pub ghosts: usize,
    /// Per-stage aggregates ([`pmt::aggregate_by_label`] of the rank's records).
    pub stages: Vec<FunctionAggregate>,
}

/// The per-rank per-stage energy table of the paper's §2 gathering: one row
/// per (rank, stage), rank identity shown once per block.
pub fn per_rank_stage_table(title: &str, ranks: &[RankStages]) -> Table {
    let mut t = Table::new(
        title,
        &["rank", "host", "owned", "ghosts", "stage", "time_s", "gpu_energy_J"],
    );
    for r in ranks {
        let mut first = true;
        for agg in &r.stages {
            let (rank, host, owned, ghosts) = if first {
                (
                    r.rank.to_string(),
                    r.hostname.clone(),
                    r.owned.to_string(),
                    r.ghosts.to_string(),
                )
            } else {
                (String::new(), String::new(), String::new(), String::new())
            };
            first = false;
            t.add_row(&[
                rank,
                host,
                owned,
                ghosts,
                agg.label.clone(),
                format!("{:.4}", agg.total_time_s),
                format!("{:.2}", agg.energy_by_kind(DomainKind::Gpu)),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use telemetry::Telemetry;

    fn populated_sink() -> Arc<Telemetry> {
        let t = Arc::new(Telemetry::new());
        {
            let _step = t.span("step", "Step", 0);
            let _stage = t.span("stage", "XMass", 0);
        }
        t.gauge("health", "health.dt", 0, 1e-3);
        t.metrics().counter("comm.gather.messages").add(4);
        t.metrics().histogram("health.neighbor_count", &[8.0, 64.0]).observe(30.0);
        t
    }

    #[test]
    fn telemetry_tables_cover_all_sections() {
        let sink = populated_sink();
        let tables = telemetry_tables("run", &sink.events_snapshot(), &sink.metrics().snapshot());
        let titles: Vec<&str> = tables.iter().map(|t| t.title()).collect();
        assert_eq!(tables.len(), 4, "spans + gauges + counters + 1 histogram: {titles:?}");
        let spans = &tables[0];
        let text = spans.to_text();
        assert!(text.contains("XMass") && text.contains("Step"));
        assert!(tables[1].to_text().contains("health.dt"));
        assert!(tables[2].to_text().contains("comm.gather.messages"));
        let hist = tables[3].to_text();
        assert!(hist.contains("+inf") && hist.contains("n = 1"));
    }

    #[test]
    fn empty_sink_renders_no_tables() {
        let sink = Arc::new(Telemetry::new());
        let tables = telemetry_tables("run", &sink.events_snapshot(), &sink.metrics().snapshot());
        assert!(tables.is_empty());
    }

    #[test]
    fn per_rank_stage_table_blocks_by_rank() {
        let agg = |label: &str| FunctionAggregate {
            label: label.to_string(),
            calls: 3,
            total_time_s: 0.5,
            energy_j: std::collections::BTreeMap::new(),
        };
        let ranks = vec![
            RankStages {
                rank: 0,
                hostname: "nid0".into(),
                owned: 100,
                ghosts: 20,
                stages: vec![agg("XMass"), agg("MomentumEnergy")],
            },
            RankStages {
                rank: 1,
                hostname: "nid1".into(),
                owned: 90,
                ghosts: 25,
                stages: vec![agg("XMass")],
            },
        ];
        let t = per_rank_stage_table("per-rank stages", &ranks);
        assert_eq!(t.row_count(), 3);
        let csv = t.to_csv();
        assert!(csv.contains("0,nid0,100,20,XMass"));
        assert!(csv.contains(",,,,MomentumEnergy"), "repeated rank identity is blanked");
        assert!(csv.contains("1,nid1,90,25,XMass"));
    }
}
