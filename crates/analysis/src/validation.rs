//! PMT-vs-Slurm validation (Figure 1).
//!
//! Slurm reports one energy figure per job measured from submission to
//! completion; the PMT instrumentation measures only the time-stepping loop and
//! only the devices it can see. The comparison therefore shows PMT slightly
//! *below* Slurm, with the gap dominated by the job/application setup phase —
//! the observation the paper uses to argue the difference is benign.

use cluster::RankMapping;
use pmt::{Domain, RankReport};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One PMT-vs-Slurm comparison point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PmtSlurmComparison {
    /// Number of GPU cards used by the job (the x-axis of Figure 1).
    pub gpu_cards: usize,
    /// Energy measured by the PMT instrumentation over the time-stepping loop,
    /// in joules.
    pub pmt_energy_j: f64,
    /// Energy reported by Slurm for the whole job, in joules.
    pub slurm_energy_j: f64,
}

impl PmtSlurmComparison {
    /// PMT / Slurm ratio (≤ 1 when PMT underestimates, as in the paper).
    pub fn ratio(&self) -> f64 {
        if self.slurm_energy_j <= 0.0 {
            return 0.0;
        }
        self.pmt_energy_j / self.slurm_energy_j
    }

    /// Relative underestimation of PMT with respect to Slurm, in percent.
    pub fn underestimation_percent(&self) -> f64 {
        100.0 * (1.0 - self.ratio())
    }
}

/// Total energy measured by PMT for one region label, applying the §2
/// de-duplication rules and summing the node-level domain (which is what the
/// Slurm number also represents).
pub fn pmt_node_level_energy(reports: &[RankReport], mapping: &RankMapping, label: &str) -> f64 {
    let mut seen_nodes: BTreeSet<usize> = BTreeSet::new();
    let mut total = 0.0;
    for report in reports {
        let Some(placement) = mapping.placement(report.rank) else {
            continue;
        };
        if !seen_nodes.insert(placement.node_index) {
            continue;
        }
        for record in report.records.iter().filter(|r| r.label == label) {
            total += record.energy(Domain::node());
        }
    }
    total
}

/// Total energy measured by PMT counting only the device-level domains
/// (GPU cards + CPU + memory, de-duplicated). This is what a deployment
/// without a node-level counter would report and is strictly below the
/// node-level value (it misses "Other" and PSU losses).
pub fn pmt_device_level_energy(reports: &[RankReport], mapping: &RankMapping, label: &str) -> f64 {
    let breakdown = crate::device_breakdown::device_breakdown(reports, mapping, label);
    breakdown.gpu_j + breakdown.cpu_j + breakdown.mem_j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_underestimation() {
        let c = PmtSlurmComparison {
            gpu_cards: 8,
            pmt_energy_j: 900.0,
            slurm_energy_j: 1000.0,
        };
        assert!((c.ratio() - 0.9).abs() < 1e-12);
        assert!((c.underestimation_percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_slurm_energy_is_safe() {
        let c = PmtSlurmComparison {
            gpu_cards: 1,
            pmt_energy_j: 10.0,
            slurm_energy_j: 0.0,
        };
        assert_eq!(c.ratio(), 0.0);
    }
}
