//! Per-function, per-device energy breakdown (Figure 3).
//!
//! For every instrumented function (pipeline stage) the breakdown reports the
//! energy attributed to the GPU, the CPU and the memory, applying the same
//! de-duplication rules as the device breakdown (cards once per card, node
//! counters once per node). Shares are normalised to the total energy of the
//! device across all functions, which is how the paper states, e.g., that
//! `MomentumEnergy` consumes 25.29 % of the A100 system's GPU energy but
//! 45.8 % on LUMI-G.

use cluster::RankMapping;
use pmt::{Domain, DomainKind, RankReport};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Energy of one function on each device class, in joules.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionDeviceEnergy {
    /// Function (stage) label.
    pub label: String,
    /// Summed call count across ranks.
    pub calls: u64,
    /// Summed duration in seconds (per-rank maximum per call is not tracked;
    /// this is the de-duplicated leader-rank duration sum).
    pub time_s: f64,
    /// GPU energy in joules.
    pub gpu_j: f64,
    /// CPU energy in joules.
    pub cpu_j: f64,
    /// Memory energy in joules.
    pub mem_j: f64,
}

impl FunctionDeviceEnergy {
    /// Total attributed energy of the function.
    pub fn total_j(&self) -> f64 {
        self.gpu_j + self.cpu_j + self.mem_j
    }
}

/// Per-function breakdown over a whole run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionBreakdown {
    /// One entry per function, in first-appearance order.
    pub functions: Vec<FunctionDeviceEnergy>,
}

impl FunctionBreakdown {
    /// Function entry by label.
    pub fn function(&self, label: &str) -> Option<&FunctionDeviceEnergy> {
        self.functions.iter().find(|f| f.label == label)
    }

    /// Total GPU energy across all functions.
    pub fn total_gpu_j(&self) -> f64 {
        self.functions.iter().map(|f| f.gpu_j).sum()
    }

    /// Total CPU energy across all functions.
    pub fn total_cpu_j(&self) -> f64 {
        self.functions.iter().map(|f| f.cpu_j).sum()
    }

    /// Share (0–100 %) of the total GPU energy consumed by one function.
    pub fn gpu_share_percent(&self, label: &str) -> f64 {
        let total = self.total_gpu_j();
        if total <= 0.0 {
            return 0.0;
        }
        100.0 * self.function(label).map(|f| f.gpu_j).unwrap_or(0.0) / total
    }

    /// Share (0–100 %) of the total CPU energy consumed by one function.
    pub fn cpu_share_percent(&self, label: &str) -> f64 {
        let total = self.total_cpu_j();
        if total <= 0.0 {
            return 0.0;
        }
        100.0 * self.function(label).map(|f| f.cpu_j).unwrap_or(0.0) / total
    }

    /// Labels ordered by descending total energy.
    pub fn labels_by_energy(&self) -> Vec<String> {
        let mut labels: Vec<(String, f64)> = self.functions.iter().map(|f| (f.label.clone(), f.total_j())).collect();
        labels.sort_by(|a, b| b.1.total_cmp(&a.1));
        labels.into_iter().map(|(l, _)| l).collect()
    }
}

/// Compute the per-function breakdown from per-rank reports.
///
/// `exclude` lists region labels that are not functions (e.g. the whole-loop
/// region) and must be skipped.
pub fn function_breakdown(reports: &[RankReport], mapping: &RankMapping, exclude: &[&str]) -> FunctionBreakdown {
    let mut order: Vec<String> = Vec::new();
    let mut map: BTreeMap<String, FunctionDeviceEnergy> = BTreeMap::new();
    let mut seen_cards: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut seen_nodes: BTreeSet<usize> = BTreeSet::new();

    for report in reports {
        let Some(placement) = mapping.placement(report.rank) else {
            continue;
        };
        let count_card = seen_cards.insert((placement.node_index, placement.gpu_card));
        let count_node = seen_nodes.insert(placement.node_index);
        for record in &report.records {
            if exclude.contains(&record.label.as_str()) {
                continue;
            }
            if !map.contains_key(&record.label) {
                order.push(record.label.clone());
            }
            let entry = map.entry(record.label.clone()).or_insert_with(|| FunctionDeviceEnergy {
                label: record.label.clone(),
                ..Default::default()
            });
            if count_node {
                entry.calls += 1;
                entry.time_s += record.duration_s();
                entry.cpu_j += record.energy_by_kind(DomainKind::Cpu);
                entry.mem_j += record.energy(Domain::memory());
            }
            if count_card {
                entry.gpu_j += record.energy(Domain::gpu_card(placement.gpu_card as u32));
                entry.gpu_j += record.energy(Domain::gpu(placement.gpu_die as u32));
            }
        }
    }

    FunctionBreakdown {
        functions: order.into_iter().map(|l| map.remove(&l).unwrap()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Cluster;
    use hwmodel::arch::SystemKind;
    use pmt::MeasurementRecord;

    fn record(label: &str, rank: u32, card: u32, gpu: f64, cpu: f64) -> MeasurementRecord {
        let mut energy = BTreeMap::new();
        energy.insert(Domain::gpu_card(card), gpu);
        energy.insert(Domain::cpu(0), cpu);
        energy.insert(Domain::node(), gpu + cpu + 10.0);
        MeasurementRecord {
            label: label.to_string(),
            rank,
            iteration: Some(0),
            start_s: 0.0,
            end_s: 1.0,
            energy_j: energy,
        }
    }

    fn setup(system: SystemKind, nodes: usize) -> (Vec<RankReport>, RankMapping) {
        let cluster = Cluster::new(system, nodes);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        let reports = mapping
            .placements()
            .iter()
            .map(|p| RankReport {
                rank: p.rank,
                hostname: p.hostname.clone(),
                records: vec![
                    record("MomentumEnergy", p.rank, p.gpu_card as u32, 100.0, 10.0),
                    record("XMass", p.rank, p.gpu_card as u32, 40.0, 5.0),
                    record("TimeSteppingLoop", p.rank, p.gpu_card as u32, 140.0, 15.0),
                ],
            })
            .collect();
        (reports, mapping)
    }

    #[test]
    fn functions_are_aggregated_with_dedup() {
        let (reports, mapping) = setup(SystemKind::CscsA100, 1);
        let fb = function_breakdown(&reports, &mapping, &["TimeSteppingLoop"]);
        assert_eq!(fb.functions.len(), 2);
        let me = fb.function("MomentumEnergy").unwrap();
        // 4 cards à 100 J.
        assert!((me.gpu_j - 400.0).abs() < 1e-9);
        // CPU counted once per node.
        assert!((me.cpu_j - 10.0).abs() < 1e-9);
        assert!(fb.function("TimeSteppingLoop").is_none());
    }

    #[test]
    fn lumi_gcd_sharing_not_double_counted() {
        let (reports, mapping) = setup(SystemKind::LumiG, 1);
        let fb = function_breakdown(&reports, &mapping, &[]);
        let me = fb.function("MomentumEnergy").unwrap();
        // 4 cards (8 ranks) à 100 J -> 400 J, not 800 J.
        assert!((me.gpu_j - 400.0).abs() < 1e-9);
    }

    #[test]
    fn shares_are_relative_to_device_totals() {
        let (reports, mapping) = setup(SystemKind::CscsA100, 2);
        let fb = function_breakdown(&reports, &mapping, &["TimeSteppingLoop"]);
        let share = fb.gpu_share_percent("MomentumEnergy");
        assert!((share - 100.0 * 100.0 / 140.0).abs() < 1e-6);
        let cpu_share = fb.cpu_share_percent("XMass");
        assert!((cpu_share - 100.0 * 5.0 / 15.0).abs() < 1e-6);
        assert_eq!(fb.labels_by_energy()[0], "MomentumEnergy");
    }

    #[test]
    fn empty_reports_give_empty_breakdown() {
        let cluster = Cluster::new(SystemKind::MiniHpc, 1);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        let fb = function_breakdown(&[], &mapping, &[]);
        assert!(fb.functions.is_empty());
        assert_eq!(fb.gpu_share_percent("MomentumEnergy"), 0.0);
    }
}
