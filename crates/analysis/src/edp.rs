//! Energy-delay product analysis (Figures 4 and 5).
//!
//! The paper quantifies the frequency-scaling trade-off with the energy-delay
//! product `EDP = E · T`, normalised to the run at the nominal GPU compute
//! frequency (1410 MHz on the A100 nodes).

use serde::{Deserialize, Serialize};

/// One point of a frequency sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdpPoint {
    /// GPU compute frequency in Hz.
    pub frequency_hz: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Time-to-solution in seconds.
    pub time_s: f64,
}

impl EdpPoint {
    /// Energy-delay product in J·s.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }

    /// Energy-delay-squared product (EDDP/ED²P) in J·s².
    pub fn ed2p(&self) -> f64 {
        self.energy_j * self.time_s * self.time_s
    }
}

/// Normalise an EDP sweep to the point measured at `baseline_hz` (the nominal
/// frequency). Returns `(frequency_hz, edp / edp_baseline)` pairs in the input
/// order. Points are matched to the baseline within 1 kHz.
pub fn normalized_edp_series(points: &[EdpPoint], baseline_hz: f64) -> Vec<(f64, f64)> {
    let baseline = points
        .iter()
        .find(|p| (p.frequency_hz - baseline_hz).abs() < 1.0e3)
        .or_else(|| {
            points
                .iter()
                .max_by(|a, b| a.frequency_hz.partial_cmp(&b.frequency_hz).unwrap())
        });
    let Some(baseline) = baseline else {
        return Vec::new();
    };
    let base_edp = baseline.edp();
    if base_edp <= 0.0 {
        return Vec::new();
    }
    points.iter().map(|p| (p.frequency_hz, p.edp() / base_edp)).collect()
}

/// The frequency (in Hz) with the lowest EDP in a sweep.
pub fn best_edp_frequency(points: &[EdpPoint]) -> Option<f64> {
    points
        .iter()
        .min_by(|a, b| a.edp().partial_cmp(&b.edp()).unwrap())
        .map(|p| p.frequency_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<EdpPoint> {
        vec![
            EdpPoint {
                frequency_hz: 1410.0e6,
                energy_j: 1000.0,
                time_s: 100.0,
            },
            EdpPoint {
                frequency_hz: 1200.0e6,
                energy_j: 900.0,
                time_s: 105.0,
            },
            EdpPoint {
                frequency_hz: 1005.0e6,
                energy_j: 820.0,
                time_s: 115.0,
            },
        ]
    }

    #[test]
    fn edp_is_energy_times_time() {
        let p = sweep()[0];
        assert_eq!(p.edp(), 100_000.0);
        assert_eq!(p.ed2p(), 10_000_000.0);
    }

    #[test]
    fn normalisation_uses_the_nominal_point() {
        let series = normalized_edp_series(&sweep(), 1410.0e6);
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 1.0).abs() < 1e-12);
        assert!(series[1].1 < 1.0, "down-scaled EDP should improve in this sweep");
        assert!((series[2].1 - 820.0 * 115.0 / 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn missing_baseline_falls_back_to_highest_frequency() {
        let series = normalized_edp_series(&sweep(), 1700.0e6);
        assert!((series[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_frequency_minimises_edp() {
        assert_eq!(best_edp_frequency(&sweep()), Some(1005.0e6));
        assert_eq!(best_edp_frequency(&[]), None);
    }

    #[test]
    fn empty_or_degenerate_inputs() {
        assert!(normalized_edp_series(&[], 1410.0e6).is_empty());
        let zero = vec![EdpPoint {
            frequency_hz: 1410.0e6,
            energy_j: 0.0,
            time_s: 0.0,
        }];
        assert!(normalized_edp_series(&zero, 1410.0e6).is_empty());
    }
}
