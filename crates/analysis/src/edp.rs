//! Energy-delay product analysis (Figures 4 and 5).
//!
//! The paper quantifies the frequency-scaling trade-off with the energy-delay
//! product `EDP = E · T`, normalised to the run at the nominal GPU compute
//! frequency (1410 MHz on the A100 nodes).

use serde::{Deserialize, Serialize};

/// One point of a frequency sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdpPoint {
    /// GPU compute frequency in Hz.
    pub frequency_hz: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Time-to-solution in seconds.
    pub time_s: f64,
}

impl EdpPoint {
    /// Energy-delay product in J·s.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }

    /// Energy-delay-squared product (EDDP/ED²P) in J·s².
    pub fn ed2p(&self) -> f64 {
        self.energy_j * self.time_s * self.time_s
    }
}

/// Failure modes of [`normalized_edp_series`].
#[derive(Clone, Debug, PartialEq)]
pub enum EdpError {
    /// The sweep contained no points.
    EmptySweep,
    /// The baseline point's EDP is zero or negative, so normalisation is
    /// undefined. Carries the offending point's frequency and EDP.
    NonPositiveBaseline {
        /// Frequency of the baseline point, in Hz.
        frequency_hz: f64,
        /// Its (non-positive) energy-delay product, in J·s.
        edp: f64,
    },
}

impl std::fmt::Display for EdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdpError::EmptySweep => write!(f, "cannot normalise an empty EDP sweep"),
            EdpError::NonPositiveBaseline { frequency_hz, edp } => write!(
                f,
                "baseline point at {:.1} MHz has non-positive EDP {edp}",
                frequency_hz / 1.0e6
            ),
        }
    }
}

impl std::error::Error for EdpError {}

/// Normalise an EDP sweep to the point measured at `baseline_hz` (the nominal
/// frequency). Returns `(frequency_hz, edp / edp_baseline)` pairs in the input
/// order.
///
/// The baseline is the sweep point *nearest* to `baseline_hz`, so sweeps whose
/// grids come from [`DvfsModel::f_step_hz`](hwmodel::DvfsModel) still match
/// even when the requested baseline sits between grid points (the old
/// behaviour silently fell back to the highest frequency whenever the 1 kHz
/// tolerance missed).
pub fn normalized_edp_series(points: &[EdpPoint], baseline_hz: f64) -> Result<Vec<(f64, f64)>, EdpError> {
    let baseline = points
        .iter()
        .min_by(|a, b| {
            let da = (a.frequency_hz - baseline_hz).abs();
            let db = (b.frequency_hz - baseline_hz).abs();
            da.total_cmp(&db)
        })
        .ok_or(EdpError::EmptySweep)?;
    let base_edp = baseline.edp();
    if base_edp <= 0.0 {
        return Err(EdpError::NonPositiveBaseline {
            frequency_hz: baseline.frequency_hz,
            edp: base_edp,
        });
    }
    Ok(points.iter().map(|p| (p.frequency_hz, p.edp() / base_edp)).collect())
}

/// The frequency (in Hz) with the lowest EDP in a sweep.
pub fn best_edp_frequency(points: &[EdpPoint]) -> Option<f64> {
    points.iter().min_by(|a, b| a.edp().total_cmp(&b.edp())).map(|p| p.frequency_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<EdpPoint> {
        vec![
            EdpPoint {
                frequency_hz: 1410.0e6,
                energy_j: 1000.0,
                time_s: 100.0,
            },
            EdpPoint {
                frequency_hz: 1200.0e6,
                energy_j: 900.0,
                time_s: 105.0,
            },
            EdpPoint {
                frequency_hz: 1005.0e6,
                energy_j: 820.0,
                time_s: 115.0,
            },
        ]
    }

    #[test]
    fn edp_is_energy_times_time() {
        let p = sweep()[0];
        assert_eq!(p.edp(), 100_000.0);
        assert_eq!(p.ed2p(), 10_000_000.0);
    }

    #[test]
    fn normalisation_uses_the_nominal_point() {
        let series = normalized_edp_series(&sweep(), 1410.0e6).unwrap();
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 1.0).abs() < 1e-12);
        assert!(series[1].1 < 1.0, "down-scaled EDP should improve in this sweep");
        assert!((series[2].1 - 820.0 * 115.0 / 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn missing_baseline_matches_nearest_point() {
        // 1700 MHz is outside the sweep; the nearest point (1410 MHz) is used.
        let series = normalized_edp_series(&sweep(), 1700.0e6).unwrap();
        assert!((series[0].1 - 1.0).abs() < 1e-12);
        // A baseline between grid points matches the nearest, not the highest.
        let series = normalized_edp_series(&sweep(), 1190.0e6).unwrap();
        assert!((series[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_matching_survives_model_generated_grids() {
        use hwmodel::DvfsModel;
        // Points on the exact A100 grid; the requested baseline is the grid
        // nominal, which the old 1 kHz tolerance also matched — but a baseline
        // 7 MHz off-grid now still matches the nearest grid point.
        let model = DvfsModel::nvidia_a100();
        let points: Vec<EdpPoint> = model
            .supported_range(1305.0e6, model.f_max_hz)
            .into_iter()
            .map(|f| EdpPoint {
                frequency_hz: f,
                energy_j: 1000.0,
                time_s: 100.0,
            })
            .collect();
        let series = normalized_edp_series(&points, 1403.0e6).unwrap();
        assert_eq!(series.len(), points.len());
        assert!(series.iter().all(|(_, n)| (n - 1.0).abs() < 1e-12));
    }

    #[test]
    fn best_frequency_minimises_edp() {
        assert_eq!(best_edp_frequency(&sweep()), Some(1005.0e6));
        assert_eq!(best_edp_frequency(&[]), None);
    }

    #[test]
    fn empty_or_degenerate_inputs() {
        assert_eq!(normalized_edp_series(&[], 1410.0e6), Err(EdpError::EmptySweep));
        let zero = vec![EdpPoint {
            frequency_hz: 1410.0e6,
            energy_j: 0.0,
            time_s: 0.0,
        }];
        assert!(matches!(
            normalized_edp_series(&zero, 1410.0e6),
            Err(EdpError::NonPositiveBaseline { .. })
        ));
    }
}
