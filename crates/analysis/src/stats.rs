//! Small statistics helpers used across the analysis modules.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Minimum; 0 for an empty slice.
pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min).pipe_finite()
}

/// Maximum; 0 for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max).pipe_finite()
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Normalise every value to the first element (percent of baseline).
/// Returns an empty vector if the first element is zero or missing.
pub fn normalize_to_first(values: &[f64]) -> Vec<f64> {
    match values.first() {
        Some(&first) if first != 0.0 => values.iter().map(|v| v / first).collect(),
        _ => Vec::new(),
    }
}

/// Convert a slice of absolute values into percentages of their sum.
pub fn as_percentages(values: &[f64]) -> Vec<f64> {
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| 100.0 * v / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&v) - 2.5).abs() < 1e-12);
        assert!((std_dev(&v) - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(min(&v), 1.0);
        assert_eq!(max(&v), 4.0);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert!(normalize_to_first(&[]).is_empty());
        assert!(as_percentages(&[]).is_empty());
    }

    #[test]
    fn normalisation() {
        let v = normalize_to_first(&[4.0, 2.0, 8.0]);
        assert_eq!(v, vec![1.0, 0.5, 2.0]);
        assert!(normalize_to_first(&[0.0, 1.0]).is_empty());
    }

    #[test]
    fn percentages_sum_to_100() {
        let p = as_percentages(&[1.0, 3.0]);
        assert!((p[0] - 25.0).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(as_percentages(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
