//! Per-device energy attribution (Figure 2).
//!
//! Implements the measurement-accounting rules of the paper's §2:
//!
//! * GPU energy comes from the card-level counters (`accelN` / `pm_counters`);
//!   on MI250X two ranks drive the two GCDs of one card, so the card counter is
//!   counted **once per card**, not once per rank;
//! * CPU, memory and node counters are identical on every rank of a node, so
//!   they are counted **once per node**;
//! * "Other" is calculated by subtracting GPU, CPU and memory from the
//!   node-level energy. On systems without a memory sensor (CSCS-A100) the
//!   memory energy is therefore folded into "Other", as in the paper.

use cluster::RankMapping;
use pmt::{Domain, DomainKind, RankReport};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Energy attributed to each device class across the whole job, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceBreakdown {
    /// GPU energy (cards, de-duplicated).
    pub gpu_j: f64,
    /// CPU package energy (per node, de-duplicated).
    pub cpu_j: f64,
    /// Memory energy (per node, de-duplicated; 0 when the platform exposes no
    /// memory sensor).
    pub mem_j: f64,
    /// Everything else: node − (GPU + CPU + MEM).
    pub other_j: f64,
    /// Node-level total energy.
    pub node_j: f64,
}

impl DeviceBreakdown {
    /// Sum of the four attributed categories (equals `node_j` by construction,
    /// up to sensor noise).
    pub fn attributed_total_j(&self) -> f64 {
        self.gpu_j + self.cpu_j + self.mem_j + self.other_j
    }

    /// Percentages `[GPU, CPU, MEM, Other]` of the attributed total.
    pub fn percentages(&self) -> [f64; 4] {
        let total = self.attributed_total_j();
        if total <= 0.0 {
            return [0.0; 4];
        }
        [
            100.0 * self.gpu_j / total,
            100.0 * self.cpu_j / total,
            100.0 * self.mem_j / total,
            100.0 * self.other_j / total,
        ]
    }

    /// Total in megajoules (the unit of the paper's Figure 2 caption).
    pub fn total_mj(&self) -> f64 {
        self.node_j / 1.0e6
    }
}

/// Compute the device breakdown for one region label (typically the
/// time-stepping loop region) from per-rank reports.
///
/// `label` selects which records are aggregated (e.g. `"TimeSteppingLoop"`);
/// pass `None` to aggregate every record except whole-loop duplicates is not
/// supported — prefer an explicit label.
pub fn device_breakdown(reports: &[RankReport], mapping: &RankMapping, label: &str) -> DeviceBreakdown {
    let mut breakdown = DeviceBreakdown::default();
    let mut seen_nodes: BTreeSet<usize> = BTreeSet::new();
    let mut seen_cards: BTreeSet<(usize, usize)> = BTreeSet::new();

    for report in reports {
        let Some(placement) = mapping.placement(report.rank) else {
            continue;
        };
        let records: Vec<_> = report.records.iter().filter(|r| r.label == label).collect();
        if records.is_empty() {
            continue;
        }

        // Card-level GPU energy: count each physical card once.
        if seen_cards.insert((placement.node_index, placement.gpu_card)) {
            for r in &records {
                breakdown.gpu_j += r.energy(Domain::gpu_card(placement.gpu_card as u32));
                // Die-granularity back-ends (NVML/ROCm) report per-die domains:
                // count this rank's own die.
                breakdown.gpu_j += r.energy(Domain::gpu(placement.gpu_die as u32));
            }
        }

        // Node-level counters: count each node once.
        if seen_nodes.insert(placement.node_index) {
            for r in &records {
                breakdown.cpu_j += r.energy_by_kind(DomainKind::Cpu);
                breakdown.mem_j += r.energy(Domain::memory());
                breakdown.node_j += r.energy(Domain::node());
            }
        }
    }

    breakdown.other_j = (breakdown.node_j - breakdown.gpu_j - breakdown.cpu_j - breakdown.mem_j).max(0.0);
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Cluster;
    use hwmodel::arch::SystemKind;
    use pmt::MeasurementRecord;
    use std::collections::BTreeMap;

    /// Build synthetic reports: every rank of a node reports the same node/cpu/mem
    /// energy and its card's energy — exactly what the pm_counters sensor yields.
    fn synthetic_reports(system: SystemKind, n_nodes: usize) -> (Vec<RankReport>, RankMapping) {
        let cluster = Cluster::new(system, n_nodes);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        let mut reports = Vec::new();
        for p in mapping.placements() {
            let mut energy = BTreeMap::new();
            energy.insert(Domain::node(), 1000.0);
            energy.insert(Domain::cpu(0), 100.0);
            if cluster.node(p.node_index).spec().has_memory_sensor {
                energy.insert(Domain::memory(), 50.0);
            }
            energy.insert(
                Domain::gpu_card(p.gpu_card as u32),
                700.0 / cluster.node(0).spec().gpu_cards() as f64,
            );
            let record = MeasurementRecord {
                label: "TimeSteppingLoop".to_string(),
                rank: p.rank,
                iteration: None,
                start_s: 0.0,
                end_s: 10.0,
                energy_j: energy,
            };
            reports.push(RankReport {
                rank: p.rank,
                hostname: p.hostname.clone(),
                records: vec![record],
            });
        }
        (reports, mapping)
    }

    #[test]
    fn node_counters_counted_once_per_node() {
        let (reports, mapping) = synthetic_reports(SystemKind::CscsA100, 2);
        let b = device_breakdown(&reports, &mapping, "TimeSteppingLoop");
        // 2 nodes × 1000 J node-level, not 8 ranks × 1000 J.
        assert!((b.node_j - 2000.0).abs() < 1e-9);
        assert!((b.cpu_j - 200.0).abs() < 1e-9);
    }

    #[test]
    fn lumi_cards_not_double_counted() {
        let (reports, mapping) = synthetic_reports(SystemKind::LumiG, 1);
        let b = device_breakdown(&reports, &mapping, "TimeSteppingLoop");
        // 4 cards à 175 J each = 700 J, even though 8 ranks carry card records.
        assert!((b.gpu_j - 700.0).abs() < 1e-9, "gpu {}", b.gpu_j);
        assert!((b.mem_j - 50.0).abs() < 1e-9);
        // Other = 1000 - 700 - 100 - 50.
        assert!((b.other_j - 150.0).abs() < 1e-9);
        assert!((b.attributed_total_j() - b.node_j).abs() < 1e-9);
    }

    #[test]
    fn missing_memory_sensor_folds_into_other() {
        let (reports, mapping) = synthetic_reports(SystemKind::CscsA100, 1);
        let b = device_breakdown(&reports, &mapping, "TimeSteppingLoop");
        assert_eq!(b.mem_j, 0.0);
        assert!((b.other_j - (1000.0 - 700.0 - 100.0)).abs() < 1e-9);
    }

    #[test]
    fn percentages_sum_to_100() {
        let (reports, mapping) = synthetic_reports(SystemKind::LumiG, 2);
        let b = device_breakdown(&reports, &mapping, "TimeSteppingLoop");
        let p = b.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!(p[0] > 50.0, "GPU should dominate: {p:?}");
    }

    #[test]
    fn unknown_label_gives_empty_breakdown() {
        let (reports, mapping) = synthetic_reports(SystemKind::CscsA100, 1);
        let b = device_breakdown(&reports, &mapping, "NoSuchRegion");
        assert_eq!(b, DeviceBreakdown::default());
        assert_eq!(b.percentages(), [0.0; 4]);
    }
}
