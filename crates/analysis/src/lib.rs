//! # energy-analysis — post-hoc analysis of application energy measurements
//!
//! The paper stores per-rank measurement records during the run and analyses
//! them afterwards ("post-hoc analysis ... to avoid perturbing the actual
//! simulation", §2). This crate is that analysis layer:
//!
//! * [`device_breakdown`] — per-device energy attribution with the §2 rules:
//!   GPU *card* counters are counted once per card even when two ranks share an
//!   MI250X card, per-node counters (CPU, memory, node) are counted once per
//!   node, and "Other" is the node remainder (Figure 2);
//! * [`function_breakdown`] — per-function, per-device energy shares
//!   (Figure 3);
//! * [`edp`] — energy-delay products and normalised frequency sweeps
//!   (Figures 4 and 5);
//! * [`validation`] — PMT-vs-Slurm comparison (Figure 1);
//! * [`gallery`] — scenario-gallery emitters: per-scenario analytic
//!   validation and per-stage min-EDP frequency tables;
//! * [`report`] — plain-text/CSV/markdown table emitters used by the
//!   experiment binaries;
//! * [`telemetry_report`] — the shared end-of-run telemetry summary tables
//!   (span aggregates, gauges/counters/histograms, per-rank stage energies);
//! * [`stats`] — small statistics helpers.

pub mod device_breakdown;
pub mod edp;
pub mod function_breakdown;
pub mod gallery;
pub mod report;
pub mod stats;
pub mod telemetry_report;
pub mod validation;

pub use device_breakdown::DeviceBreakdown;
pub use edp::{normalized_edp_series, EdpError, EdpPoint};
pub use function_breakdown::{FunctionBreakdown, FunctionDeviceEnergy};
pub use gallery::{ScenarioEdpRow, ScenarioValidationRow, StageFrequencyRow};
pub use report::Table;
pub use telemetry_report::{per_rank_stage_table, span_table, telemetry_tables, RankStages};
pub use validation::PmtSlurmComparison;
