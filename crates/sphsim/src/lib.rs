//! # sphsim — an SPH-EXA-like smoothed particle hydrodynamics mini-framework
//!
//! This crate is the simulation substrate of the reproduction: an SPH code with
//! the same pipeline structure, the same named time-stepping stages and the
//! same profiling hooks as SPH-EXA, so that the measurement methodology of the
//! paper can be applied to it unchanged.
//!
//! Three execution paths share the same stage names and instrumentation:
//!
//! * the **CPU reference propagator** ([`propagator::Simulation`]) runs real
//!   SPH physics (octree, density, grad-h, momentum/energy, gravity, stirring)
//!   at laptop-scale particle counts and validates the physics and hooks. Its
//!   hot path is flat: Morton-sorted SoA particle storage, CSR neighbour
//!   lists and a reusable [`workspace::StepWorkspace`] make the per-step
//!   neighbour pipeline allocation-free after warm-up;
//! * the **distributed propagator** ([`distributed::DistributedSimulation`])
//!   shards the same real physics across `cluster::Comm` ranks along the
//!   Morton curve — per-step halo exchange, migration and re-balancing inside
//!   `DomainDecompAndSync`, a global Courant timestep via `allreduce_min`,
//!   and per-rank per-stage energy gathering à la the paper's §2;
//! * the **paper-scale campaign executor** ([`gpu_offload::run_campaign`])
//!   offloads each stage to the simulated GPUs of the `hwmodel`/`cluster`
//!   crates through a calibrated per-stage workload model ([`workload`]),
//!   measures every rank with the `pmt` toolkit and accounts the job with the
//!   `slurm` crate — producing everything Figures 1–5 need.

pub mod boundary;
pub mod celllist;
pub mod distributed;
pub mod domain;
pub mod gpu_offload;
pub mod init;
pub mod kernels;
pub mod morton;
pub mod observables;
pub mod octree;
pub mod parallel;
pub mod particle;
pub mod physics;
pub mod propagator;
pub mod scenario;
pub mod stages;
pub mod workload;
pub mod workspace;

pub use boundary::{dx_periodic, Boundary, MinImage};
pub use celllist::{CellGrid, CELL_LIST_CUTOFF, POLYDISPERSITY_LIMIT};
pub use distributed::{
    run_distributed, run_distributed_campaign, run_distributed_traced, run_distributed_with_transport,
    DistributedCampaignConfig, DistributedCampaignResult, DistributedRankReport, DistributedSimulation, OverlapStats,
    ShardResult,
};
pub use domain::DomainMap;
pub use gpu_offload::{
    run_campaign, run_campaign_governed, run_campaign_with_observers, CampaignConfig, CampaignResult, MAIN_LOOP_LABEL,
};
pub use octree::Octree;
pub use particle::ParticleSet;
pub use physics::neighbors::NeighborLists;
pub use physics::timestep::TimestepBins;
pub use propagator::{Simulation, StepSummary, DEFAULT_REORDER_INTERVAL};
pub use scenario::{CostScale, Scenario, ScenarioRef, ScenarioRegistry, ValidationCheck};
pub use workspace::{NeighborBuildStats, NeighborBuilder, StepWorkspace};
// Backward-compat shim only — new code uses the scenario registry instead.
pub use scenario::TestCase;
pub use stages::SphStage;
