//! SPH smoothing kernels.
//!
//! The cubic B-spline kernel (Monaghan & Lattanzio 1985) in 3D with compact
//! support `2h`, plus its radial derivative. The kernel is normalised so that
//! `∫ W(r, h) d³r = 1`, which the property tests verify numerically.

use std::f64::consts::PI;

/// Compact support radius of the cubic spline kernel, in units of `h`.
pub const KERNEL_SUPPORT: f64 = 2.0;

/// Number of `f64` lanes the pair kernels process per chunk: each kernel
/// splits its CSR row into `LANE_WIDTH`-wide chunks, gathers the neighbour
/// SoA fields into fixed-width stack buffers, runs a fixed-trip-count
/// compute loop over them (the shape the autovectorizer handles best), and
/// accumulates the per-lane terms *in row order* — so the totals stay
/// bit-identical to a straight scalar loop over the row.
pub const LANE_WIDTH: usize = 8;

/// Lane-geometry probe: the shared front half of every pair kernel —
/// squared distance, square root, scale by `1/h` — over one fixed-width
/// chunk. `#[no_mangle]`/`#[inline(never)]` pin it as a discrete symbol so
/// the `simd_lanes` smoke test can disassemble it and assert the release
/// build emits packed-double instructions (i.e. the lane layout actually
/// vectorizes on the default target, rather than silently going scalar).
#[no_mangle]
#[inline(never)]
pub fn sphsim_lane_probe_q(
    dx: &[f64; LANE_WIDTH],
    dy: &[f64; LANE_WIDTH],
    dz: &[f64; LANE_WIDTH],
    inv_h: f64,
    out: &mut [f64; LANE_WIDTH],
) {
    for k in 0..LANE_WIDTH {
        out[k] = (dx[k] * dx[k] + dy[k] * dy[k] + dz[k] * dz[k]).sqrt() * inv_h;
    }
}

/// Cubic-spline kernel value `W(r, h)` in 3D.
pub fn w_cubic(r: f64, h: f64) -> f64 {
    debug_assert!(h > 0.0);
    let sigma = 1.0 / (PI * h * h * h);
    let q = r / h;
    if q < 1.0 {
        sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q)
    } else if q < 2.0 {
        sigma * 0.25 * (2.0 - q).powi(3)
    } else {
        0.0
    }
}

/// Dimensionless radial-derivative shape factor of the cubic spline:
/// `dW/dr (r, h) = dw_shape(r/h) / (π h⁴)`. Exposed so hot kernels can hoist
/// the `1/(π h⁴)` scale out of their pair loops while still sharing the one
/// polynomial definition with [`dw_cubic`].
#[inline]
pub fn dw_shape(q: f64) -> f64 {
    if q < 1.0 {
        -3.0 * q + 2.25 * q * q
    } else if q < 2.0 {
        let t = 2.0 - q;
        -0.75 * t * t
    } else {
        0.0
    }
}

/// Radial derivative `dW/dr (r, h)` of the cubic-spline kernel in 3D.
pub fn dw_cubic(r: f64, h: f64) -> f64 {
    debug_assert!(h > 0.0);
    dw_shape(r / h) / (PI * h * h * h * h)
}

/// Kernel gradient `∇W` for the displacement `(dx, dy, dz)` with `r = |dx|`.
/// Returns the zero vector at `r = 0` (self-contribution).
pub fn grad_w_cubic(dx: f64, dy: f64, dz: f64, h: f64) -> (f64, f64, f64) {
    let r = (dx * dx + dy * dy + dz * dz).sqrt();
    if r < 1e-12 * h {
        return (0.0, 0.0, 0.0);
    }
    let dw = dw_cubic(r, h);
    (dw * dx / r, dw * dy / r, dw * dz / r)
}

/// Derivative of the kernel with respect to `h` at fixed `r` (used by grad-h
/// normalisation terms): `∂W/∂h = -(3 W + r ∂W/∂r) / h` for a 3D kernel of the
/// form `h⁻³ f(r/h)`.
pub fn dwdh_cubic(r: f64, h: f64) -> f64 {
    -(3.0 * w_cubic(r, h) + r * dw_cubic(r, h)) / h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically integrate `W` over its support with spherical shells.
    fn integral(h: f64) -> f64 {
        let n = 4000;
        let rmax = KERNEL_SUPPORT * h;
        let dr = rmax / n as f64;
        let mut sum = 0.0;
        for i in 0..n {
            let r = (i as f64 + 0.5) * dr;
            sum += 4.0 * PI * r * r * w_cubic(r, h) * dr;
        }
        sum
    }

    #[test]
    fn kernel_is_normalised() {
        for &h in &[0.1, 1.0, 3.7] {
            let integ = integral(h);
            assert!((integ - 1.0).abs() < 1e-3, "∫W = {integ} for h = {h}");
        }
    }

    #[test]
    fn kernel_has_compact_support() {
        assert_eq!(w_cubic(2.01, 1.0), 0.0);
        assert_eq!(dw_cubic(2.01, 1.0), 0.0);
        assert!(w_cubic(1.99, 1.0) > 0.0);
    }

    #[test]
    fn kernel_peaks_at_origin_and_decreases() {
        let h = 1.0;
        let w0 = w_cubic(0.0, h);
        let mut prev = w0;
        for i in 1..=20 {
            let w = w_cubic(0.1 * i as f64, h);
            assert!(w <= prev + 1e-12, "kernel should be non-increasing");
            prev = w;
        }
        assert!(w0 > 0.3, "W(0,1) = 1/pi ≈ 0.318");
    }

    #[test]
    fn derivative_is_negative_inside_support() {
        for i in 1..20 {
            let r = 0.1 * i as f64;
            assert!(dw_cubic(r, 1.0) <= 0.0, "dW/dr must be ≤ 0 at r = {r}");
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1.3;
        for &r in &[0.2, 0.7, 1.1, 1.7] {
            let eps = 1e-6;
            let fd = (w_cubic(r + eps, h) - w_cubic(r - eps, h)) / (2.0 * eps);
            let an = dw_cubic(r, h);
            assert!((fd - an).abs() < 1e-5, "r={r}: fd {fd} vs analytic {an}");
        }
    }

    #[test]
    fn gradient_points_away_from_neighbour() {
        // For a neighbour in +x, dW/dr < 0 so the gradient points in -x... wait:
        // grad = dW/dr * (dx/r); with dx > 0 and dW/dr < 0 the x-component is negative.
        let (gx, gy, gz) = grad_w_cubic(0.5, 0.0, 0.0, 1.0);
        assert!(gx < 0.0);
        assert_eq!(gy, 0.0);
        assert_eq!(gz, 0.0);
        // Zero displacement gives a zero gradient.
        assert_eq!(grad_w_cubic(0.0, 0.0, 0.0, 1.0), (0.0, 0.0, 0.0));
    }

    #[test]
    fn lane_probe_matches_the_scalar_expression() {
        let dx = [0.1, -0.2, 0.3, 0.0, 1.5, -0.7, 0.05, 2.0];
        let dy = [0.0, 0.4, -0.1, 0.0, 0.2, 0.9, -0.6, 1.0];
        let dz = [0.3, 0.1, 0.0, 0.0, -1.1, 0.3, 0.2, -0.5];
        let inv_h = 1.0 / 1.3;
        let mut out = [0.0; LANE_WIDTH];
        sphsim_lane_probe_q(&dx, &dy, &dz, inv_h, &mut out);
        for k in 0..LANE_WIDTH {
            let expect = (dx[k] * dx[k] + dy[k] * dy[k] + dz[k] * dz[k]).sqrt() * inv_h;
            assert_eq!(out[k].to_bits(), expect.to_bits(), "lane {k}");
        }
    }

    #[test]
    fn dwdh_matches_finite_difference() {
        let r = 0.8;
        for &h in &[0.9, 1.4] {
            let eps = 1e-6;
            let fd = (w_cubic(r, h + eps) - w_cubic(r, h - eps)) / (2.0 * eps);
            let an = dwdh_cubic(r, h);
            assert!((fd - an).abs() < 1e-4, "h={h}: fd {fd} vs analytic {an}");
        }
    }
}
