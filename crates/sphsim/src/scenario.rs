//! The pluggable scenario subsystem.
//!
//! A [`Scenario`] bundles everything a workload needs to run on both execution
//! paths of this crate: a name, initial conditions for the CPU reference
//! propagator, stage gating (self-gravity, stirring), per-stage cost scaling
//! for the paper-scale workload model, Table-1-style sizing parameters, and an
//! **analytic validation check** — a small real simulation whose outcome is
//! compared against a closed-form observable (shock-front radius, upstream
//! density profile, linear growth rate, ...).
//!
//! The paper measures only its two production cases; the [`ScenarioRegistry`]
//! opens that set. Six scenarios ship built in (Turb, Evr, Sedov, Noh, KH,
//! Gresho — the box cases on genuinely periodic boundaries)
//! and downstream code can add its own without touching this crate — either
//! into an owned [`ScenarioRegistry`] or, through [`register`], into the
//! process-wide registry that every consumer ([`get`], the campaign executor,
//! the `scenario_gallery` sweep) reads. The old closed `TestCase` enum
//! survives only as a backward-compat shim at the bottom of this module.

use crate::boundary::Boundary;
use crate::init::evrard::evrard_sphere;
use crate::init::gresho::{gresho_chan, gresho_peak_speed, GRESHO_V_PEAK};
use crate::init::kelvin_helmholtz::{kelvin_helmholtz, kh_growth_rate, kh_mode_amplitude};
use crate::init::noh::{noh_preshock_density, noh_sphere, NOH_RHO0};
use crate::init::sedov::{sedov_blast, sedov_shock_radius, SEDOV_E0, SEDOV_RHO0};
use crate::init::turbulence::{turbulence_box, TARGET_MACH};
use crate::observables::{rms_mach_number, EnergyBudget};
use crate::particle::ParticleSet;
use crate::propagator::Simulation;
use crate::stages::SphStage;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Shared handle to a scenario (what configs, registries and simulations hold).
pub type ScenarioRef = Arc<dyn Scenario>;

/// Per-stage scaling of the workload model's baseline per-particle costs.
///
/// Scaling flops and bytes *independently* lets a scenario shift a stage's
/// arithmetic intensity — which moves that stage's min-EDP frequency, the
/// generalisation of the paper's compute- vs memory-bound Figure 5 contrast.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostScale {
    /// Multiplier on the stage's flops per particle.
    pub flops: f64,
    /// Multiplier on the stage's device-memory bytes per particle.
    pub bytes: f64,
}

impl CostScale {
    /// The neutral scaling (the calibrated Table-1 baseline).
    pub const UNIT: CostScale = CostScale { flops: 1.0, bytes: 1.0 };

    /// Scale flops and bytes by the same factor (intensity-preserving).
    pub fn uniform(factor: f64) -> Self {
        Self {
            flops: factor,
            bytes: factor,
        }
    }
}

/// Result of a scenario's analytic validation run.
#[derive(Clone, Debug)]
pub struct ValidationCheck {
    /// Short name of the scenario that produced the check.
    pub scenario: String,
    /// What was measured.
    pub observable: &'static str,
    /// Measured value.
    pub measured: f64,
    /// Analytic expectation.
    pub expected: f64,
    /// Inclusive acceptance band `[lo, hi]` on the measured value.
    pub acceptance: (f64, f64),
    /// Free-form context (resolution, end time, ...).
    pub detail: String,
}

impl ValidationCheck {
    /// True when the measured value is finite and inside the acceptance band.
    pub fn passed(&self) -> bool {
        self.measured.is_finite() && self.measured >= self.acceptance.0 && self.measured <= self.acceptance.1
    }
}

impl fmt::Display for ValidationCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} = {:.4} (analytic {:.4}, accepted [{:.4}, {:.4}]) — {}",
            self.scenario,
            self.observable,
            self.measured,
            self.expected,
            self.acceptance.0,
            self.acceptance.1,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// A simulation scenario: workload mix, initial conditions, sizing and an
/// analytic validation observable.
pub trait Scenario: Send + Sync {
    /// Full human-readable name (e.g. "Sedov–Taylor Blast Wave").
    fn name(&self) -> &'static str;

    /// Short name used in figures, job names and registry lookups ("Sedov").
    fn short_name(&self) -> &'static str;

    /// Particles per GPU (die) for paper-scale campaign sizing.
    fn particles_per_gpu(&self) -> f64;

    /// Global particle-count options (Table-1-style ladder), in particles.
    fn global_particle_options(&self) -> Vec<f64>;

    /// Number of timesteps of a production run.
    fn timesteps(&self) -> u64 {
        100
    }

    /// Whether the scenario computes self-gravity (enables the `Gravity` stage).
    fn has_gravity(&self) -> bool {
        false
    }

    /// Whether the scenario applies stirring (enables the `Turbulence` stage).
    fn has_stirring(&self) -> bool {
        false
    }

    /// Boundary condition of the scenario's box. Defaults to [`Boundary::Open`];
    /// box scenarios (shear layers, stirred turbulence, equilibrium vortices)
    /// override this with a periodic box so neighbourhoods, kernels, Morton
    /// keys and the distributed ghost exchange all wrap around. Both
    /// propagators stamp this onto the particle set at construction.
    fn boundary(&self) -> Boundary {
        Boundary::Open
    }

    /// Per-stage scaling of the workload model's baseline costs.
    fn stage_cost_scale(&self, stage: SphStage) -> CostScale {
        let _ = stage;
        CostScale::UNIT
    }

    /// Build initial conditions with approximately `n_target` particles for
    /// the CPU reference propagator. Deterministic for a given `seed`.
    fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet;

    /// Run a small CPU-propagator simulation and compare an analytic
    /// observable against its closed-form expectation.
    fn validate(&self) -> ValidationCheck;

    /// The pipeline stages executed every timestep for this scenario.
    fn pipeline(&self) -> Vec<SphStage> {
        SphStage::all()
            .into_iter()
            .filter(|s| match s {
                SphStage::Gravity => self.has_gravity(),
                SphStage::Turbulence => self.has_stirring(),
                _ => true,
            })
            .collect()
    }

    /// Labels of the pipeline stages — the region labels a per-stage DVFS
    /// governor should be configured with.
    fn stage_labels(&self) -> Vec<&'static str> {
        self.pipeline().into_iter().map(|s| s.label()).collect()
    }
}

impl fmt::Debug for dyn Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scenario({})", self.short_name())
    }
}

fn cube_side(n_target: usize) -> usize {
    ((n_target.max(8) as f64).cbrt().round() as usize).max(2)
}

/// Advance `sim` until `t_end` (bounded by `max_steps`) and return the time
/// actually reached.
fn run_until(sim: &mut Simulation, t_end: f64, max_steps: u64) -> f64 {
    let mut steps = 0;
    while sim.time() < t_end && steps < max_steps {
        sim.step();
        steps += 1;
    }
    sim.time()
}

// ---------------------------------------------------------------------------
// Built-in scenarios
// ---------------------------------------------------------------------------

/// Subsonic turbulence in a periodic box (stirred, no self-gravity) — Table 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubsonicTurbulence;

impl Scenario for SubsonicTurbulence {
    fn name(&self) -> &'static str {
        "Subsonic Turbulence"
    }

    fn short_name(&self) -> &'static str {
        "Turb"
    }

    fn particles_per_gpu(&self) -> f64 {
        150.0e6
    }

    fn global_particle_options(&self) -> Vec<f64> {
        [0.6, 1.2, 2.4, 4.9, 7.4, 9.2, 14.7].iter().map(|b| b * 1.0e9).collect()
    }

    fn has_stirring(&self) -> bool {
        true
    }

    fn boundary(&self) -> Boundary {
        Boundary::unit_box()
    }

    fn stage_cost_scale(&self, stage: SphStage) -> CostScale {
        // Periodic box: every support sphere crossing a face is searched at
        // its wrapped images too — extra tree-traversal arithmetic and extra
        // gather traffic on the neighbour stage (see `workload`).
        match stage {
            SphStage::FindNeighbors => CostScale {
                flops: 1.05,
                bytes: 1.1,
            },
            _ => CostScale::UNIT,
        }
    }

    fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
        turbulence_box(cube_side(n_target), seed)
    }

    fn validate(&self) -> ValidationCheck {
        // The ICs seed the box at exactly Mach 0.3 and the driver keeps
        // stirring it; now that the box is genuinely periodic (no vacuum to
        // expand into, no cooling from free surfaces) the RMS Mach number
        // must stay subsonic *and rise clearly above the seeded value*. The
        // floor sits above TARGET_MACH on purpose: a broken (never-applied)
        // stirring driver leaves the flow at the seeded Mach or below, so
        // mere IC preservation cannot pass this check.
        let mut sim = Simulation::from_scenario(Arc::new(SubsonicTurbulence), 512, 11);
        let reached = run_until(&mut sim, 0.3, 12);
        let mach = rms_mach_number(sim.particles());
        ValidationCheck {
            scenario: self.short_name().to_string(),
            observable: "rms Mach number under stirring",
            measured: mach,
            expected: TARGET_MACH,
            acceptance: (1.3 * TARGET_MACH, 3.0 * TARGET_MACH),
            detail: format!("512 particles, t = {reached:.3}, seeded at Mach {TARGET_MACH}"),
        }
    }
}

/// Evrard collapse (self-gravitating gas sphere, no stirring) — Table 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvrardCollapse;

impl Scenario for EvrardCollapse {
    fn name(&self) -> &'static str {
        "Evrard Collapse"
    }

    fn short_name(&self) -> &'static str {
        "Evr"
    }

    fn particles_per_gpu(&self) -> f64 {
        80.0e6
    }

    fn global_particle_options(&self) -> Vec<f64> {
        [0.6, 1.2, 2.4, 3.2, 4.8, 7.7].iter().map(|b| b * 1.0e9).collect()
    }

    fn has_gravity(&self) -> bool {
        true
    }

    fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
        evrard_sphere(n_target.max(8), seed)
    }

    fn validate(&self) -> ValidationCheck {
        // Total energy (kinetic + internal + potential) is conserved while the
        // sphere collapses and converts potential energy into heat.
        let mut sim = Simulation::from_scenario(Arc::new(EvrardCollapse), 600, 12);
        sim.step(); // density/EOS are defined only after the first step
        let start = EnergyBudget::of(sim.particles(), true, 0.02);
        for _ in 0..10 {
            sim.step();
        }
        let end = EnergyBudget::of(sim.particles(), true, 0.02);
        let drift = end.relative_drift(&start);
        ValidationCheck {
            scenario: self.short_name().to_string(),
            observable: "relative total-energy drift over the collapse",
            measured: drift,
            expected: 0.0,
            acceptance: (0.0, 0.25),
            detail: format!("600 particles, 10 steps, E {:.4} -> {:.4}", start.total(), end.total()),
        }
    }
}

/// Sedov–Taylor blast wave: point energy deposition in a cold uniform medium.
#[derive(Clone, Copy, Debug, Default)]
pub struct SedovTaylor;

impl Scenario for SedovTaylor {
    fn name(&self) -> &'static str {
        "Sedov-Taylor Blast Wave"
    }

    fn short_name(&self) -> &'static str {
        "Sedov"
    }

    fn particles_per_gpu(&self) -> f64 {
        125.0e6
    }

    fn global_particle_options(&self) -> Vec<f64> {
        [0.5, 1.0, 2.0, 4.0, 8.0].iter().map(|b| b * 1.0e9).collect()
    }

    fn stage_cost_scale(&self, stage: SphStage) -> CostScale {
        // A strong shock keeps the artificial-viscosity machinery hot and adds
        // arithmetic to the pairwise momentum/energy kernel, while the density
        // contrast behind the front deepens the neighbour-search traversal.
        match stage {
            SphStage::MomentumEnergy => CostScale {
                flops: 1.25,
                bytes: 1.05,
            },
            SphStage::AVSwitches => CostScale { flops: 1.6, bytes: 1.2 },
            SphStage::FindNeighbors => CostScale {
                flops: 1.05,
                bytes: 1.15,
            },
            _ => CostScale::UNIT,
        }
    }

    fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
        sedov_blast(cube_side(n_target), seed)
    }

    fn validate(&self) -> ValidationCheck {
        // The shock front must sit at the self-similar radius
        // R(t) = ξ₀ (E₀ t² / ρ₀)^{1/5}. The front is located as the
        // density-weighted radius of the outward-streaming particles, which is
        // robust at kernel-smoothed laptop resolutions.
        let mut sim = Simulation::from_scenario(Arc::new(SedovTaylor), 2744, 13);
        let t_end = run_until(&mut sim, 0.05, 120);
        let p = sim.particles();
        let mut weighted_r = 0.0;
        let mut weight = 0.0;
        for i in 0..p.len() {
            let dx = p.x[i] - 0.5;
            let dy = p.y[i] - 0.5;
            let dz = p.z[i] - 0.5;
            let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-9);
            let v_r = (p.vx[i] * dx + p.vy[i] * dy + p.vz[i] * dz) / r;
            // The swept-up shell carries essentially all the radial momentum.
            let w = (p.m[i] * v_r).max(0.0);
            weighted_r += w * r;
            weight += w;
        }
        let measured = if weight > 0.0 { weighted_r / weight } else { f64::NAN };
        let expected = sedov_shock_radius(SEDOV_E0, SEDOV_RHO0, t_end);
        ValidationCheck {
            scenario: self.short_name().to_string(),
            observable: "shock-front radius vs Sedov similarity law",
            measured,
            expected,
            acceptance: (0.6 * expected, 1.4 * expected),
            detail: format!("2744 particles, t = {t_end:.4}"),
        }
    }
}

/// Noh implosion: cold uniform inflow forming a central accretion shock.
#[derive(Clone, Copy, Debug, Default)]
pub struct NohImplosion;

impl Scenario for NohImplosion {
    fn name(&self) -> &'static str {
        "Noh Implosion"
    }

    fn short_name(&self) -> &'static str {
        "Noh"
    }

    fn particles_per_gpu(&self) -> f64 {
        100.0e6
    }

    fn global_particle_options(&self) -> Vec<f64> {
        [0.4, 0.8, 1.6, 3.2, 6.4].iter().map(|b| b * 1.0e9).collect()
    }

    fn stage_cost_scale(&self, stage: SphStage) -> CostScale {
        // Extreme central clustering: neighbour search and density gathers
        // become scattered, deep-traversal and therefore memory-heavy, and the
        // domain decomposition re-sorts a strongly skewed key distribution.
        match stage {
            SphStage::FindNeighbors => CostScale { flops: 1.2, bytes: 1.5 },
            SphStage::XMass => CostScale {
                flops: 1.05,
                bytes: 1.3,
            },
            SphStage::DomainDecompAndSync => CostScale { flops: 1.0, bytes: 1.2 },
            SphStage::AVSwitches => CostScale { flops: 1.4, bytes: 1.1 },
            _ => CostScale::UNIT,
        }
    }

    fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
        noh_sphere(n_target.max(8), seed)
    }

    fn validate(&self) -> ValidationCheck {
        // Ahead of the accretion shock the flow is smooth and exactly solvable:
        // ρ(r, t) = ρ₀ (1 + t/r)². Compare the SPH density against it in a
        // mid-radius shell that the shock (at r = t/3) has not yet reached.
        let mut sim = Simulation::from_scenario(Arc::new(NohImplosion), 3000, 14);
        let t_end = run_until(&mut sim, 0.15, 40);
        let p = sim.particles();
        let mut ratio_sum = 0.0;
        let mut count = 0usize;
        for i in 0..p.len() {
            let r = (p.x[i].powi(2) + p.y[i].powi(2) + p.z[i].powi(2)).sqrt();
            if (0.2..0.3).contains(&r) && p.rho[i] > 0.0 {
                ratio_sum += p.rho[i] / noh_preshock_density(NOH_RHO0, t_end, r);
                count += 1;
            }
        }
        let measured = if count > 0 { ratio_sum / count as f64 } else { f64::NAN };
        ValidationCheck {
            scenario: self.short_name().to_string(),
            observable: "pre-shock density vs exact upstream profile (ratio)",
            measured,
            expected: 1.0,
            acceptance: (0.75, 1.25),
            detail: format!("3000 particles, t = {t_end:.4}, shell r in [0.2, 0.3), {count} particles"),
        }
    }
}

/// Kelvin–Helmholtz shear instability: counter-streaming slabs with a seeded
/// interface perturbation.
#[derive(Clone, Copy, Debug, Default)]
pub struct KelvinHelmholtz;

impl Scenario for KelvinHelmholtz {
    fn name(&self) -> &'static str {
        "Kelvin-Helmholtz Shear"
    }

    fn short_name(&self) -> &'static str {
        "KH"
    }

    fn particles_per_gpu(&self) -> f64 {
        120.0e6
    }

    fn global_particle_options(&self) -> Vec<f64> {
        [0.5, 1.1, 2.2, 4.4, 8.8].iter().map(|b| b * 1.0e9).collect()
    }

    fn stage_cost_scale(&self, stage: SphStage) -> CostScale {
        // A subsonic mixing flow leans on the velocity-derivative machinery:
        // div/curl estimates and grad-h terms do extra arithmetic per
        // neighbour, with near-baseline memory traffic. The periodic box
        // additionally charges the neighbour stage for wrapped-image queries
        // of every face-crossing support sphere (see `workload`).
        match stage {
            SphStage::IADVelocityDivCurl => CostScale {
                flops: 1.15,
                bytes: 1.0,
            },
            SphStage::NormalizationGradh => CostScale { flops: 1.1, bytes: 1.0 },
            SphStage::FindNeighbors => CostScale {
                flops: 1.05,
                bytes: 1.1,
            },
            _ => CostScale::UNIT,
        }
    }

    fn boundary(&self) -> Boundary {
        Boundary::unit_box()
    }

    fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
        kelvin_helmholtz(cube_side(n_target).max(8), seed)
    }

    fn validate(&self) -> ValidationCheck {
        // In inviscid linear theory the seeded sin(kx) mode grows at
        // σ = kΔv/2; at lattice resolutions SPH damping cancels that growth
        // almost exactly (Agertz et al. 2007), leaving a neutrally
        // *persistent* oscillating mode. What is checkable — and brutally
        // sensitive to the boundary handling — is amplitude retention
        // through a shear time: with periodic wrap the envelope-weighted
        // mode keeps ≈ 0.9 of its seed; with open faces (or a broken image
        // search / wrap-seam ghost exchange) the slabs decompress off the
        // box and the mode collapses to ≈ 0.2 within a fraction of a
        // crossing. The late-window amplitude is averaged over steps so the
        // standing acoustic oscillation of the seed cannot alias the check.
        let mut sim = Simulation::from_scenario(Arc::new(KelvinHelmholtz), 2744, 15);
        let a0 = kh_mode_amplitude(sim.particles());
        run_until(&mut sim, 0.7, 40);
        let mut sum = 0.0;
        let mut samples = 0usize;
        while sim.time() < 1.2 && samples < 30 {
            sim.step();
            sum += kh_mode_amplitude(sim.particles());
            samples += 1;
        }
        let t_end = sim.time();
        let late = if samples > 0 { sum / samples as f64 } else { f64::NAN };
        let measured = if a0 > 0.0 { late / a0 } else { f64::NAN };
        ValidationCheck {
            scenario: self.short_name().to_string(),
            observable: "KH mode amplitude retention over a shear time (periodic confinement)",
            measured,
            expected: 1.0,
            acceptance: (0.5, 1.5),
            detail: format!(
                "2744 particles, t = {t_end:.4}, amplitude {a0:.5} -> {late:.5} \
                 (inviscid growth rate {:.3} fully damped at this resolution)",
                kh_growth_rate()
            ),
        }
    }
}

/// Gresho–Chan vortex: a rotating gas column in exact hydrostatic balance
/// inside a fully periodic box — the registry's first scenario whose
/// correctness is *only* attainable with working periodicity (an open box
/// loses its pressure confinement and blows the equilibrium apart within a
/// few sound crossings).
#[derive(Clone, Copy, Debug, Default)]
pub struct GreshoChan;

impl Scenario for GreshoChan {
    fn name(&self) -> &'static str {
        "Gresho-Chan Vortex"
    }

    fn short_name(&self) -> &'static str {
        "Gresho"
    }

    fn particles_per_gpu(&self) -> f64 {
        110.0e6
    }

    fn global_particle_options(&self) -> Vec<f64> {
        [0.5, 1.0, 2.0, 4.0].iter().map(|b| b * 1.0e9).collect()
    }

    fn boundary(&self) -> Boundary {
        Boundary::unit_box()
    }

    fn stage_cost_scale(&self, stage: SphStage) -> CostScale {
        // An equilibrium vortex is all about pressure-gradient accuracy: the
        // grad-h normalisation and pairwise momentum kernel carry extra
        // arithmetic, while the periodic neighbour search pays for the image
        // queries of every face-crossing support sphere with extra traffic.
        match stage {
            SphStage::MomentumEnergy => CostScale {
                flops: 1.15,
                bytes: 1.0,
            },
            SphStage::NormalizationGradh => CostScale {
                flops: 1.2,
                bytes: 1.05,
            },
            SphStage::FindNeighbors => CostScale { flops: 1.1, bytes: 1.2 },
            _ => CostScale::UNIT,
        }
    }

    fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
        gresho_chan(cube_side(n_target).max(8), seed)
    }

    fn validate(&self) -> ValidationCheck {
        // The vortex is a steady state: the azimuthal velocity peak (v = 1 at
        // r = 0.2) must survive the run. SPH's artificial viscosity diffuses
        // the peak somewhat at laptop resolution, so the check accepts a
        // bounded decay — but an open box (or a broken wrap) dumps the
        // confining background pressure and destroys the profile entirely,
        // which is what makes this scenario the periodicity canary.
        let mut sim = Simulation::from_scenario(Arc::new(GreshoChan), 2744, 16);
        let v0 = gresho_peak_speed(sim.particles());
        let t_end = run_until(&mut sim, 0.1, 20);
        let v1 = gresho_peak_speed(sim.particles());
        let measured = if v0 > 0.0 { v1 / v0 } else { f64::NAN };
        ValidationCheck {
            scenario: self.short_name().to_string(),
            observable: "peak azimuthal velocity retention of the equilibrium vortex",
            measured,
            expected: 1.0,
            acceptance: (0.8, 1.1),
            detail: format!("2744 particles, t = {t_end:.4}, peak v_phi {v0:.4} -> {v1:.4} (seeded {GRESHO_V_PEAK})"),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// An ordered, name-addressable collection of scenarios.
pub struct ScenarioRegistry {
    order: Vec<ScenarioRef>,
    by_name: BTreeMap<String, ScenarioRef>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            order: Vec::new(),
            by_name: BTreeMap::new(),
        }
    }

    /// A registry holding the six built-in scenarios, in Table-1-first order.
    pub fn builtin() -> Self {
        let mut r = Self::new();
        r.register(Arc::new(SubsonicTurbulence));
        r.register(Arc::new(EvrardCollapse));
        r.register(Arc::new(SedovTaylor));
        r.register(Arc::new(NohImplosion));
        r.register(Arc::new(KelvinHelmholtz));
        r.register(Arc::new(GreshoChan));
        r
    }

    /// Register a scenario under its short and full names (case-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if another scenario already claimed one of the names — silent
    /// shadowing would make registry lookups order-dependent.
    pub fn register(&mut self, scenario: ScenarioRef) {
        let mut keys = vec![scenario.short_name().to_lowercase(), scenario.name().to_lowercase()];
        // A scenario whose short and full names coincide claims one key, not a
        // spurious self-conflict.
        keys.dedup();
        for key in keys {
            let previous = self.by_name.insert(key.clone(), Arc::clone(&scenario));
            assert!(
                previous.is_none(),
                "scenario name {key:?} registered twice — scenario names must be unique"
            );
        }
        self.order.push(scenario);
    }

    /// Look up a scenario by short or full name, case-insensitively.
    pub fn get(&self, name: &str) -> Option<ScenarioRef> {
        self.by_name.get(&name.trim().to_lowercase()).cloned()
    }

    /// Every registered scenario, in registration order.
    pub fn scenarios(&self) -> &[ScenarioRef] {
        &self.order
    }

    /// Short names of every registered scenario, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.order.iter().map(|s| s.short_name()).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// The process-wide registry
// ---------------------------------------------------------------------------

fn global_registry() -> &'static RwLock<ScenarioRegistry> {
    static GLOBAL: OnceLock<RwLock<ScenarioRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(ScenarioRegistry::builtin()))
}

/// Look up a scenario in the process-wide registry by (short or full) name,
/// case-insensitively. The six built-in scenarios are always present;
/// [`register`] adds more.
pub fn get(name: &str) -> Option<ScenarioRef> {
    global_registry().read().expect("scenario registry poisoned").get(name)
}

/// Register a scenario in the process-wide registry, so that *every*
/// downstream consumer — name lookups, the campaign executor, the
/// `scenario_gallery` sweep — picks it up without further plumbing.
///
/// # Panics
///
/// Panics if another scenario already claimed one of the names (see
/// [`ScenarioRegistry::register`]).
pub fn register(scenario: ScenarioRef) {
    global_registry()
        .write()
        .expect("scenario registry poisoned")
        .register(scenario);
}

/// Every scenario in the process-wide registry, in registration order.
pub fn all() -> Vec<ScenarioRef> {
    global_registry()
        .read()
        .expect("scenario registry poisoned")
        .scenarios()
        .to_vec()
}

/// Short names of every scenario in the process-wide registry.
pub fn names() -> Vec<&'static str> {
    global_registry().read().expect("scenario registry poisoned").names()
}

// ---------------------------------------------------------------------------
// Backward-compat shim
// ---------------------------------------------------------------------------

/// The closed two-case enum this crate used to expose. **Shim**: new code
/// should look scenarios up in the registry instead ([`get`]); the enum and
/// its original accessors survive, delegating to the registry scenarios, so
/// pre-registry callers keep compiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TestCase {
    /// Subsonic turbulence in a periodic box (stirred, no self-gravity).
    SubsonicTurbulence,
    /// Evrard collapse (self-gravitating gas sphere, no stirring).
    EvrardCollapse,
}

impl TestCase {
    /// The registry scenario this enum value maps onto.
    pub fn scenario(&self) -> ScenarioRef {
        match self {
            TestCase::SubsonicTurbulence => Arc::new(SubsonicTurbulence),
            TestCase::EvrardCollapse => Arc::new(EvrardCollapse),
        }
    }

    /// Short name as used in the paper's figures ("Turb" / "Evr").
    pub fn short_name(&self) -> &'static str {
        self.scenario().short_name()
    }

    /// Full name.
    pub fn name(&self) -> &'static str {
        self.scenario().name()
    }

    /// Particles per GPU (die) used in the paper's production runs (Table 1).
    pub fn particles_per_gpu(&self) -> f64 {
        self.scenario().particles_per_gpu()
    }

    /// Global particle-count options listed in Table 1.
    pub fn global_particle_options(&self) -> Vec<f64> {
        self.scenario().global_particle_options()
    }

    /// Number of timesteps used in the production runs (`-s 100`).
    pub fn timesteps(&self) -> u64 {
        self.scenario().timesteps()
    }

    /// Whether the scenario computes self-gravity.
    pub fn has_gravity(&self) -> bool {
        self.scenario().has_gravity()
    }

    /// Whether the scenario applies turbulence stirring.
    pub fn has_stirring(&self) -> bool {
        self.scenario().has_stirring()
    }

    /// The pipeline stages executed every timestep for this scenario.
    pub fn pipeline(&self) -> Vec<SphStage> {
        self.scenario().pipeline()
    }

    /// Labels of the pipeline stages executed every timestep.
    pub fn stage_labels(&self) -> Vec<&'static str> {
        self.scenario().stage_labels()
    }

    /// Both legacy test cases.
    pub fn all() -> [TestCase; 2] {
        [TestCase::SubsonicTurbulence, TestCase::EvrardCollapse]
    }
}

impl From<TestCase> for ScenarioRef {
    fn from(case: TestCase) -> ScenarioRef {
        case.scenario()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_six_builtin_scenarios() {
        let registry = ScenarioRegistry::builtin();
        assert_eq!(registry.len(), 6);
        assert_eq!(registry.names(), vec!["Turb", "Evr", "Sedov", "Noh", "KH", "Gresho"]);
        for name in ["Turb", "Evr", "Sedov", "Noh", "KH", "Gresho"] {
            assert!(registry.get(name).is_some(), "missing {name}");
        }
        assert!(registry.get("NotAScenario").is_none());
    }

    #[test]
    fn box_scenarios_are_periodic_and_the_rest_open() {
        let registry = ScenarioRegistry::builtin();
        for name in ["Turb", "KH", "Gresho"] {
            assert_eq!(
                registry.get(name).unwrap().boundary(),
                Boundary::unit_box(),
                "{name} must run in a periodic unit box"
            );
        }
        for name in ["Evr", "Sedov", "Noh"] {
            assert_eq!(registry.get(name).unwrap().boundary(), Boundary::Open, "{name}");
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_accepts_full_names() {
        let registry = ScenarioRegistry::builtin();
        assert_eq!(registry.get("sedov").unwrap().short_name(), "Sedov");
        assert_eq!(registry.get("NOH").unwrap().short_name(), "Noh");
        assert_eq!(registry.get("Evrard Collapse").unwrap().short_name(), "Evr");
        assert_eq!(registry.get("Gresho-Chan Vortex").unwrap().short_name(), "Gresho");
        assert_eq!(get("kh").unwrap().short_name(), "KH");
    }

    #[test]
    fn table1_parameters_are_preserved() {
        let turb = get("Turb").unwrap();
        let evr = get("Evr").unwrap();
        assert_eq!(turb.particles_per_gpu(), 150.0e6);
        assert_eq!(evr.particles_per_gpu(), 80.0e6);
        assert_eq!(turb.timesteps(), 100);
        assert_eq!(turb.global_particle_options().len(), 7);
        assert_eq!(evr.global_particle_options().len(), 6);
        assert!((turb.global_particle_options()[6] - 14.7e9).abs() < 1.0);
    }

    #[test]
    fn pipelines_gate_gravity_and_stirring() {
        let turb = get("Turb").unwrap().pipeline();
        let evr = get("Evr").unwrap().pipeline();
        assert!(turb.contains(&SphStage::Turbulence));
        assert!(!turb.contains(&SphStage::Gravity));
        assert!(evr.contains(&SphStage::Gravity));
        assert!(!evr.contains(&SphStage::Turbulence));
        // The non-Table-1 cases run neither gravity nor stirring.
        for name in ["Sedov", "Noh", "KH", "Gresho"] {
            let pipeline = get(name).unwrap().pipeline();
            assert!(!pipeline.contains(&SphStage::Gravity), "{name}");
            assert!(!pipeline.contains(&SphStage::Turbulence), "{name}");
            assert!(pipeline.contains(&SphStage::MomentumEnergy), "{name}");
        }
    }

    #[test]
    fn every_scenario_produces_valid_initial_conditions() {
        for scenario in ScenarioRegistry::builtin().scenarios() {
            let p = scenario.initial_conditions(600, 42);
            assert!(p.len() >= 300, "{}: only {} particles", scenario.short_name(), p.len());
            assert!(p.is_consistent());
            assert!(p.total_mass() > 0.0);
            for i in 0..p.len() {
                assert!(
                    p.x[i].is_finite() && p.vx[i].is_finite() && p.u[i].is_finite() && p.h[i] > 0.0,
                    "{}: bad particle {i}",
                    scenario.short_name()
                );
            }
            // Determinism.
            let q = scenario.initial_conditions(600, 42);
            assert_eq!(p.x, q.x, "{}", scenario.short_name());
        }
    }

    #[test]
    fn cost_scales_differ_per_scenario_and_stay_positive() {
        let sedov = get("Sedov").unwrap();
        let noh = get("Noh").unwrap();
        let turb = get("Turb").unwrap();
        // Sedov skews AVSwitches towards arithmetic, Noh skews FindNeighbors
        // towards memory — per-stage min-EDP frequencies now differ per case.
        assert!(sedov.stage_cost_scale(SphStage::AVSwitches).flops > 1.0);
        let noh_fn = noh.stage_cost_scale(SphStage::FindNeighbors);
        assert!(noh_fn.bytes > noh_fn.flops);
        assert_eq!(turb.stage_cost_scale(SphStage::MomentumEnergy), CostScale::UNIT);
        for scenario in ScenarioRegistry::builtin().scenarios() {
            for stage in SphStage::all() {
                let scale = scenario.stage_cost_scale(stage);
                assert!(scale.flops > 0.0 && scale.bytes > 0.0);
            }
        }
    }

    #[test]
    fn custom_scenarios_can_be_registered() {
        #[derive(Debug)]
        struct Custom;
        impl Scenario for Custom {
            fn name(&self) -> &'static str {
                "Custom Box"
            }
            fn short_name(&self) -> &'static str {
                "Custom"
            }
            fn particles_per_gpu(&self) -> f64 {
                1.0e6
            }
            fn global_particle_options(&self) -> Vec<f64> {
                vec![1.0e6]
            }
            fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
                turbulence_box(cube_side(n_target), seed)
            }
            fn validate(&self) -> ValidationCheck {
                ValidationCheck {
                    scenario: "Custom".to_string(),
                    observable: "trivial",
                    measured: 1.0,
                    expected: 1.0,
                    acceptance: (0.5, 1.5),
                    detail: String::new(),
                }
            }
        }
        let mut registry = ScenarioRegistry::builtin();
        registry.register(Arc::new(Custom));
        assert_eq!(registry.len(), 7);
        assert_eq!(registry.get("custom").unwrap().short_name(), "Custom");
        assert!(registry.get("Custom").unwrap().validate().passed());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut registry = ScenarioRegistry::builtin();
        registry.register(Arc::new(SedovTaylor));
    }

    #[test]
    fn identical_short_and_full_names_register_cleanly() {
        #[derive(Debug)]
        struct MonoName;
        impl Scenario for MonoName {
            fn name(&self) -> &'static str {
                "Mono"
            }
            fn short_name(&self) -> &'static str {
                "Mono"
            }
            fn particles_per_gpu(&self) -> f64 {
                1.0e6
            }
            fn global_particle_options(&self) -> Vec<f64> {
                vec![1.0e6]
            }
            fn initial_conditions(&self, n_target: usize, seed: u64) -> ParticleSet {
                turbulence_box(cube_side(n_target), seed)
            }
            fn validate(&self) -> ValidationCheck {
                ValidationCheck {
                    scenario: "Mono".to_string(),
                    observable: "trivial",
                    measured: 1.0,
                    expected: 1.0,
                    acceptance: (0.5, 1.5),
                    detail: String::new(),
                }
            }
        }
        let mut registry = ScenarioRegistry::builtin();
        // One scenario claiming the same key twice is not a conflict.
        registry.register(Arc::new(MonoName));
        assert_eq!(registry.get("mono").unwrap().short_name(), "Mono");
        assert_eq!(registry.len(), 7);
    }

    #[test]
    fn validation_check_pass_logic() {
        let mut check = ValidationCheck {
            scenario: "X".to_string(),
            observable: "obs",
            measured: 1.0,
            expected: 1.0,
            acceptance: (0.8, 1.2),
            detail: String::new(),
        };
        assert!(check.passed());
        assert!(check.to_string().contains("PASS"));
        check.measured = 1.3;
        assert!(!check.passed());
        check.measured = f64::NAN;
        assert!(!check.passed());
    }

    #[test]
    fn testcase_shim_maps_onto_the_registry() {
        assert_eq!(TestCase::SubsonicTurbulence.scenario().short_name(), "Turb");
        assert_eq!(TestCase::EvrardCollapse.scenario().short_name(), "Evr");
        let as_ref: ScenarioRef = TestCase::EvrardCollapse.into();
        assert!(as_ref.has_gravity());
        assert_eq!(TestCase::all().len(), 2);
    }
}
