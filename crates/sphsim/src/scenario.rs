//! Simulation scenarios from the paper's Table 1.

use crate::stages::SphStage;
use serde::{Deserialize, Serialize};

/// The two production test cases of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestCase {
    /// Subsonic turbulence in a periodic box (stirred, no self-gravity).
    SubsonicTurbulence,
    /// Evrard collapse (self-gravitating gas sphere, no stirring).
    EvrardCollapse,
}

impl TestCase {
    /// Short name as used in the paper's figures ("Turb" / "Evr").
    pub fn short_name(&self) -> &'static str {
        match self {
            TestCase::SubsonicTurbulence => "Turb",
            TestCase::EvrardCollapse => "Evr",
        }
    }

    /// Full name.
    pub fn name(&self) -> &'static str {
        match self {
            TestCase::SubsonicTurbulence => "Subsonic Turbulence",
            TestCase::EvrardCollapse => "Evrard Collapse",
        }
    }

    /// Particles per GPU (die) used in the paper's production runs (Table 1).
    pub fn particles_per_gpu(&self) -> f64 {
        match self {
            TestCase::SubsonicTurbulence => 150.0e6,
            TestCase::EvrardCollapse => 80.0e6,
        }
    }

    /// Global particle-count options listed in Table 1 (billions → particles).
    pub fn global_particle_options(&self) -> Vec<f64> {
        let billions: &[f64] = match self {
            TestCase::SubsonicTurbulence => &[0.6, 1.2, 2.4, 4.9, 7.4, 9.2, 14.7],
            TestCase::EvrardCollapse => &[0.6, 1.2, 2.4, 3.2, 4.8, 7.7],
        };
        billions.iter().map(|b| b * 1.0e9).collect()
    }

    /// Number of timesteps used in the production runs (`-s 100`).
    pub fn timesteps(&self) -> u64 {
        100
    }

    /// Whether the scenario computes self-gravity.
    pub fn has_gravity(&self) -> bool {
        matches!(self, TestCase::EvrardCollapse)
    }

    /// Whether the scenario applies turbulence stirring.
    pub fn has_stirring(&self) -> bool {
        matches!(self, TestCase::SubsonicTurbulence)
    }

    /// The pipeline stages executed every timestep for this scenario.
    pub fn pipeline(&self) -> Vec<SphStage> {
        SphStage::all()
            .into_iter()
            .filter(|s| match s {
                SphStage::Gravity => self.has_gravity(),
                SphStage::Turbulence => self.has_stirring(),
                _ => true,
            })
            .collect()
    }

    /// Labels of the pipeline stages executed every timestep — the region
    /// labels a per-stage DVFS governor should be configured with.
    pub fn stage_labels(&self) -> Vec<&'static str> {
        self.pipeline().into_iter().map(|s| s.label()).collect()
    }

    /// Both test cases.
    pub fn all() -> [TestCase; 2] {
        [TestCase::SubsonicTurbulence, TestCase::EvrardCollapse]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        assert_eq!(TestCase::SubsonicTurbulence.particles_per_gpu(), 150.0e6);
        assert_eq!(TestCase::EvrardCollapse.particles_per_gpu(), 80.0e6);
        assert_eq!(TestCase::SubsonicTurbulence.timesteps(), 100);
        assert_eq!(TestCase::SubsonicTurbulence.global_particle_options().len(), 7);
        assert_eq!(TestCase::EvrardCollapse.global_particle_options().len(), 6);
        assert!((TestCase::SubsonicTurbulence.global_particle_options()[6] - 14.7e9).abs() < 1.0);
    }

    #[test]
    fn pipelines_differ_between_cases() {
        let turb = TestCase::SubsonicTurbulence.pipeline();
        let evr = TestCase::EvrardCollapse.pipeline();
        assert!(turb.contains(&SphStage::Turbulence));
        assert!(!turb.contains(&SphStage::Gravity));
        assert!(evr.contains(&SphStage::Gravity));
        assert!(!evr.contains(&SphStage::Turbulence));
        assert!(turb.contains(&SphStage::MomentumEnergy) && evr.contains(&SphStage::MomentumEnergy));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TestCase::SubsonicTurbulence.short_name(), "Turb");
        assert_eq!(TestCase::EvrardCollapse.short_name(), "Evr");
        assert_eq!(TestCase::EvrardCollapse.name(), "Evrard Collapse");
    }
}
