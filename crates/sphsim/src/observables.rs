//! Physical observables and conservation checks for the CPU reference runs.

use crate::particle::ParticleSet;
use crate::physics::gravity::potential_energy_direct;
use crate::physics::neighbors::NeighborLists;

/// Energy budget of a particle set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyBudget {
    /// Total kinetic energy.
    pub kinetic: f64,
    /// Total internal (thermal) energy.
    pub internal: f64,
    /// Gravitational potential energy (0 when self-gravity is off).
    pub potential: f64,
}

impl EnergyBudget {
    /// Compute the budget; include gravity when `with_gravity` is set.
    pub fn of(particles: &ParticleSet, with_gravity: bool, softening: f64) -> Self {
        Self {
            kinetic: particles.kinetic_energy(),
            internal: particles.internal_energy(),
            potential: if with_gravity {
                potential_energy_direct(particles, softening)
            } else {
                0.0
            },
        }
    }

    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.internal + self.potential
    }

    /// Relative drift of the total energy with respect to a reference budget.
    pub fn relative_drift(&self, reference: &EnergyBudget) -> f64 {
        let scale = reference.total().abs().max(1e-12);
        (self.total() - reference.total()).abs() / scale
    }
}

/// Summary statistics of a CSR neighbour-list build: `(min, mean, max)` row
/// widths per particle, excluding the particle itself. Reported by the
/// step-throughput benchmark and useful as a resolution sanity check.
///
/// Note: rows are *symmetrised* — a row also contains partners outside the
/// particle's own `2h` support whose support reaches back — so these stats
/// can exceed the `ParticleSet::neighbor_count` diagnostic, which counts
/// own-support neighbours only (the quantity smoothing-length control uses).
/// On near-uniform `h` the two agree.
pub fn neighbor_count_stats(lists: &NeighborLists) -> (usize, f64, usize) {
    if lists.is_empty() {
        return (0, 0.0, 0);
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut total = 0usize;
    for i in 0..lists.len() {
        let c = lists.count(i).saturating_sub(1);
        min = min.min(c);
        max = max.max(c);
        total += c;
    }
    (min, total as f64 / lists.len() as f64, max)
}

/// Root-mean-square Mach number of the flow assuming a uniform sound speed
/// taken from the particle data.
pub fn rms_mach_number(particles: &ParticleSet) -> f64 {
    if particles.is_empty() {
        return 0.0;
    }
    let v_rms = (2.0 * particles.kinetic_energy() / particles.total_mass().max(1e-30)).sqrt();
    let c_mean: f64 = particles.c.iter().sum::<f64>() / particles.len() as f64;
    if c_mean <= 0.0 {
        0.0
    } else {
        v_rms / c_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;

    #[test]
    fn budget_sums_components() {
        let p = lattice_cube(3, 1.0, 1.0, 1.2);
        let b = EnergyBudget::of(&p, true, 0.05);
        assert!(b.kinetic.abs() < 1e-12);
        assert!(b.internal > 0.0);
        assert!(b.potential < 0.0);
        assert!((b.total() - (b.kinetic + b.internal + b.potential)).abs() < 1e-12);
    }

    #[test]
    fn drift_of_identical_budgets_is_zero() {
        let p = lattice_cube(3, 1.0, 1.0, 1.2);
        let a = EnergyBudget::of(&p, false, 0.0);
        let b = a;
        assert_eq!(a.relative_drift(&b), 0.0);
    }

    #[test]
    fn neighbor_stats_summarise_the_csr_lists() {
        let mut p = lattice_cube(5, 1.0, 1.0, 1.2);
        let tree = crate::physics::neighbors::build_tree(&p, 16);
        let nl = crate::physics::neighbors::find_neighbors(&mut p, &tree);
        let (min, mean, max) = neighbor_count_stats(&nl);
        assert!(min <= mean.round() as usize && mean.round() as usize <= max);
        assert!((mean - nl.mean_count()).abs() < 1e-12);
        assert!(max > 0);
        assert_eq!(neighbor_count_stats(&NeighborLists::default()), (0, 0.0, 0));
    }

    #[test]
    fn mach_number_zero_for_static_gas() {
        let mut p = lattice_cube(3, 1.0, 1.0, 1.2);
        p.c = vec![1.0; p.len()];
        assert_eq!(rms_mach_number(&p), 0.0);
        for v in p.vx.iter_mut() {
            *v = 0.5;
        }
        assert!((rms_mach_number(&p) - 0.5).abs() < 1e-9);
    }
}
