//! The CPU reference propagator: a real (small-scale) SPH time-stepping loop
//! with the same named stages and the same profiling hooks as the paper-scale
//! runs.
//!
//! This is what validates the physics (energy conservation, collapse dynamics)
//! and what demonstrates the instrumentation on an actually executing code; the
//! billion-particle campaigns use the workload model in [`crate::gpu_offload`].

use crate::observables::neighbor_count_stats;
use crate::particle::ParticleSet;
use crate::physics::avswitches::{update_av_switches, update_av_switches_binned};
use crate::physics::density::{
    compute_density, compute_density_rows, update_smoothing_length, update_smoothing_length_rows,
};
use crate::physics::eos::{apply_eos, apply_eos_rows};
use crate::physics::gradh::{compute_gradh, compute_gradh_rows};
use crate::physics::gravity::{add_gravity, add_gravity_rows, potential_energy_direct, DEFAULT_THETA};
use crate::physics::iad::{compute_div_curl, compute_div_curl_rows};
use crate::physics::momentum::{compute_momentum_energy, compute_momentum_energy_rows};
use crate::physics::timestep::{courant_timestep, update_quantities, update_quantities_binned, TimestepBins};
use crate::physics::turbulence::TurbulenceDriver;
use crate::scenario::{self, ScenarioRef};
use crate::stages::SphStage;
use crate::workspace::StepWorkspace;
use pmt::ProfilingHooks;
use std::sync::Arc;
use telemetry::Telemetry;

/// Bucket bounds of the `health.neighbor_count` histogram (CSR row widths).
pub(crate) const NEIGHBOR_HISTOGRAM_BOUNDS: [f64; 9] = [8.0, 16.0, 32.0, 48.0, 64.0, 96.0, 128.0, 192.0, 256.0];

/// Bucket bounds of the `health.dt_bins` occupancy histogram: one bucket per
/// power-of-two timestep rung (rung `k` lands in bucket `k`; rungs past 7
/// share the overflow bucket).
pub(crate) const DT_BINS_HISTOGRAM_BOUNDS: [f64; 8] = [0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5];

/// Default number of timesteps between Morton re-sorts of the particle
/// storage (see [`Simulation::with_reorder_interval`]).
pub const DEFAULT_REORDER_INTERVAL: u64 = 8;

/// Maximum octree leaf size used by the propagator (and by the distributed
/// propagator, which must mirror it exactly for the single-vs-multi-rank
/// agreement gate to hold).
pub(crate) const MAX_LEAF_SIZE: usize = 32;

/// Shared physics defaults of both propagators. The distributed shards reuse
/// these verbatim: any drift between the two would surface as a per-particle
/// divergence in the rank-agreement tests, masquerading as a decomposition
/// bug.
pub(crate) const DEFAULT_TARGET_NEIGHBORS: f64 = 60.0;
/// Upper bound on the Courant timestep.
pub(crate) const DEFAULT_MAX_DT: f64 = 0.05;
/// Gravitational softening length.
pub(crate) const DEFAULT_SOFTENING: f64 = 0.02;
/// `last_dt` seed used by the AV-switch relaxation on the first step.
pub(crate) const DEFAULT_INITIAL_DT: f64 = 1e-3;

/// The stirring driver used by both propagators for stirred scenarios.
pub(crate) fn default_turbulence_driver() -> TurbulenceDriver {
    TurbulenceDriver::new(1.0, 0.8, 42)
}

/// Summary of one completed timestep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepSummary {
    /// Step index (0-based, value after the step completed).
    pub step: u64,
    /// Timestep size used.
    pub dt: f64,
    /// Simulation time after the step.
    pub time: f64,
    /// Total energy (kinetic + internal [+ potential]) after the step.
    pub total_energy: f64,
}

/// Conserved-quantity reference captured after the first completed step; the
/// per-step health gauges report drift relative to these values.
#[derive(Clone, Copy, Debug)]
pub(crate) struct HealthBaseline {
    pub(crate) energy: f64,
    pub(crate) mass: f64,
    pub(crate) momentum: [f64; 3],
    /// Σ m·|v| — the scale momentum drift is normalised by (total momentum is
    /// often ~0 by symmetry, so a relative-to-|P₀| drift would blow up).
    pub(crate) momentum_scale: f64,
}

/// Total momentum and its magnitude scale Σ m·|v| of a particle set.
pub(crate) fn momentum_and_scale(p: &ParticleSet) -> ([f64; 3], f64) {
    let mut mom = [0.0f64; 3];
    let mut scale = 0.0f64;
    for i in 0..p.len() {
        mom[0] += p.m[i] * p.vx[i];
        mom[1] += p.m[i] * p.vy[i];
        mom[2] += p.m[i] * p.vz[i];
        scale += p.m[i] * (p.vx[i] * p.vx[i] + p.vy[i] * p.vy[i] + p.vz[i] * p.vz[i]).sqrt();
    }
    (mom, scale)
}

/// A real SPH simulation running on the CPU.
pub struct Simulation {
    particles: ParticleSet,
    scenario: ScenarioRef,
    driver: Option<TurbulenceDriver>,
    hooks: Option<ProfilingHooks>,
    telemetry: Option<Arc<Telemetry>>,
    health_baseline: Option<HealthBaseline>,
    workspace: StepWorkspace,
    /// `origin[current] = original`: construction-order index of the particle
    /// currently stored in each slot (identity until the first Morton reorder).
    origin: Vec<u32>,
    /// `position[original] = current`: inverse of `origin`.
    position: Vec<u32>,
    reorder_interval: u64,
    /// Individual-timestep state; `None` runs the global-dt scheme (the
    /// bit-pinned reference path). See [`Simulation::with_timestep_bins`].
    timestep_bins: Option<TimestepBins>,
    /// Active-row scratch of the binned substep (reused across substeps).
    active_rows: Vec<u32>,
    /// Per-rung row scratch of the binned AV-switch update.
    rung_rows: Vec<u32>,
    time: f64,
    step: u64,
    last_dt: f64,
    target_neighbors: f64,
    max_dt: f64,
    softening: f64,
}

impl Simulation {
    /// Create a simulation of `scenario` over an existing particle set. The
    /// scenario's [`crate::boundary::Boundary`] is stamped onto the particle
    /// set, so the whole pipeline (neighbour search, pair kernels, Morton
    /// keys, position wrapping) agrees on the box geometry.
    pub fn new(scenario: ScenarioRef, mut particles: ParticleSet) -> Self {
        particles.boundary = scenario.boundary();
        let driver = scenario.has_stirring().then(default_turbulence_driver);
        let identity: Vec<u32> = (0..particles.len() as u32).collect();
        Self {
            particles,
            scenario,
            driver,
            hooks: None,
            telemetry: telemetry::from_env(),
            health_baseline: None,
            workspace: StepWorkspace::new(),
            origin: identity.clone(),
            position: identity,
            reorder_interval: DEFAULT_REORDER_INTERVAL,
            timestep_bins: None,
            active_rows: Vec::new(),
            rung_rows: Vec::new(),
            time: 0.0,
            step: 0,
            last_dt: DEFAULT_INITIAL_DT,
            target_neighbors: DEFAULT_TARGET_NEIGHBORS,
            max_dt: DEFAULT_MAX_DT,
            softening: DEFAULT_SOFTENING,
        }
    }

    /// Create a simulation from a scenario's own initial-condition generator
    /// with approximately `n_target` particles.
    pub fn from_scenario(scenario: ScenarioRef, n_target: usize, seed: u64) -> Self {
        let particles = scenario.initial_conditions(n_target, seed);
        Self::new(scenario, particles)
    }

    /// A small Evrard-collapse run with roughly `n` particles.
    pub fn evrard(n: usize, seed: u64) -> Self {
        Self::from_scenario(scenario::get("Evr").expect("built-in scenario"), n, seed)
    }

    /// A small subsonic-turbulence run with `n³` particles.
    pub fn turbulence(n_per_dim: usize, seed: u64) -> Self {
        Self::from_scenario(
            scenario::get("Turb").expect("built-in scenario"),
            n_per_dim * n_per_dim * n_per_dim,
            seed,
        )
    }

    /// Attach measurement hooks (the PMT instrumentation of the paper).
    pub fn with_hooks(mut self, hooks: ProfilingHooks) -> Self {
        self.hooks = Some(hooks);
        self
    }

    /// Attach a telemetry sink: every pipeline stage of [`Simulation::step`]
    /// emits a `"stage"` span nested under a per-step `"Step"` span, and each
    /// completed step publishes the simulation-health gauges
    /// (`health.energy_drift`, `health.momentum_drift`, `health.mass_drift`,
    /// `health.dt`, the `health.neighbor_count` histogram) plus `sim.reorder`
    /// events. Overrides the `SPHSIM_TRACE` environment hook picked up by
    /// [`Simulation::new`].
    ///
    /// When the sink is disabled the per-stage cost is one relaxed atomic
    /// load (enforced ≤ 2% of step time by the `telemetry_overhead` test).
    pub fn with_telemetry(mut self, sink: Arc<Telemetry>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// The attached telemetry sink, if any (explicit or via `SPHSIM_TRACE`).
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Register a region observer (e.g. an `autotune` DVFS governor) on the
    /// attached hooks' meter, so every pipeline stage of [`Simulation::step`]
    /// runs under its control.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Simulation::with_hooks`]: without hooks no
    /// stage regions exist for the observer to govern.
    pub fn with_region_observer(self, observer: std::sync::Arc<dyn pmt::RegionObserver>) -> Self {
        let hooks = self
            .hooks
            .as_ref()
            .expect("attach hooks (with_hooks) before registering a region observer");
        hooks.meter().add_region_observer(observer);
        self
    }

    /// Set how often (in steps) the particle storage is re-sorted into Morton
    /// order inside `DomainDecompAndSync`; `0` disables reordering entirely
    /// (particles stay in construction order). Defaults to
    /// [`DEFAULT_REORDER_INTERVAL`].
    pub fn with_reorder_interval(mut self, every_n_steps: u64) -> Self {
        self.reorder_interval = every_n_steps;
        self
    }

    /// Enable individual (block) timesteps with `n_bins` power-of-two rungs:
    /// each particle is assigned a rung `k` with `dt_k = dt_base / 2^k` from
    /// its local Courant criterion, neighbouring rungs are limited to differ
    /// by at most one level, and each [`Simulation::step`] call advances one
    /// hierarchical substep — only the particles whose rung is active get the
    /// full density/gradh/IAD/momentum update, everyone else just drifts.
    ///
    /// `n_bins <= 1` keeps the global-dt scheme, bit-identical to not calling
    /// this at all (pinned by the conservation-digest tests).
    pub fn with_timestep_bins(mut self, n_bins: usize) -> Self {
        self.timestep_bins = (n_bins > 1).then(|| TimestepBins::new(n_bins));
        self
    }

    /// The individual-timestep state, when enabled via
    /// [`Simulation::with_timestep_bins`].
    pub fn timestep_bins(&self) -> Option<&TimestepBins> {
        self.timestep_bins.as_ref()
    }

    /// Construction-order index of the particle currently stored in slot
    /// `current`. Identity until the first Morton reorder.
    pub fn original_index_of(&self, current: usize) -> usize {
        self.origin[current] as usize
    }

    /// Current storage slot of the particle that was constructed as index
    /// `original` — how externally-held indices (scenario validation,
    /// observables) stay correct across Morton reorders.
    pub fn current_index_of(&self, original: usize) -> usize {
        self.position[original] as usize
    }

    /// The whole slot → construction-order map (`[current] = original`).
    pub fn original_indices(&self) -> &[u32] {
        &self.origin
    }

    /// The attached profiling hooks, if any.
    pub fn hooks(&self) -> Option<&ProfilingHooks> {
        self.hooks.as_ref()
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &ScenarioRef {
        &self.scenario
    }

    /// The particle data.
    pub fn particles(&self) -> &ParticleSet {
        &self.particles
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Total energy: kinetic + internal, plus gravitational potential for
    /// self-gravitating runs.
    pub fn total_energy(&self) -> f64 {
        let mut e = self.particles.kinetic_energy() + self.particles.internal_energy();
        if self.scenario.has_gravity() {
            e += potential_energy_direct(&self.particles, self.softening);
        }
        e
    }

    /// Wrap a stage body in the pmt power region (when hooks are attached)
    /// and a telemetry `"stage"` span (when a sink is attached). With a
    /// disabled sink the span cost is a single relaxed atomic load.
    fn instrument<R>(
        hooks: &Option<ProfilingHooks>,
        telemetry: &Option<Arc<Telemetry>>,
        label: &str,
        f: impl FnOnce() -> R,
    ) -> R {
        let _span = telemetry.as_ref().map(|t| t.span("stage", label, 0));
        match hooks {
            Some(h) => h.instrument(label, f),
            None => f(),
        }
    }

    /// Fail loudly — naming the offending stage — if a stage left a non-finite
    /// value in the particle state. A bare `NaN` would otherwise surface many
    /// stages later as an opaque panic (or, worse, as silently wrong energy
    /// attribution in the measurement pipeline).
    fn assert_finite_after(&self, stage: SphStage) {
        let p = &self.particles;
        for i in 0..p.len() {
            let finite = p.x[i].is_finite()
                && p.y[i].is_finite()
                && p.z[i].is_finite()
                && p.vx[i].is_finite()
                && p.vy[i].is_finite()
                && p.vz[i].is_finite()
                && p.h[i].is_finite()
                && p.rho[i].is_finite()
                && p.u[i].is_finite()
                && p.p[i].is_finite()
                && p.c[i].is_finite()
                && p.omega[i].is_finite()
                && p.div_v[i].is_finite()
                && p.curl_v[i].is_finite()
                && p.alpha[i].is_finite()
                && p.ax[i].is_finite()
                && p.ay[i].is_finite()
                && p.az[i].is_finite()
                && p.du[i].is_finite();
            assert!(
                finite,
                "stage {} produced a non-finite quantity for particle {i} at step {} of scenario {} \
                 (pos=({}, {}, {}), v=({}, {}, {}), a=({}, {}, {}), rho={}, u={}, du={})",
                stage.label(),
                self.step,
                self.scenario.short_name(),
                p.x[i],
                p.y[i],
                p.z[i],
                p.vx[i],
                p.vy[i],
                p.vz[i],
                p.ax[i],
                p.ay[i],
                p.az[i],
                p.rho[i],
                p.u[i],
                p.du[i],
            );
        }
    }

    /// Execute one timestep through the full named pipeline.
    ///
    /// With individual timesteps enabled ([`Simulation::with_timestep_bins`])
    /// one call advances one hierarchical *substep* — the summary's `dt` is
    /// the substep size `dt_base / 2^k_deep`, and a full cycle of
    /// `2^k_deep` calls advances time by `dt_base`.
    pub fn step(&mut self) -> StepSummary {
        if self.timestep_bins.is_some() {
            return self.step_binned();
        }
        let hooks = self.hooks.clone();
        if let Some(h) = &hooks {
            h.set_iteration(Some(self.step));
        }
        let tel = self.telemetry.clone();
        let step_span = tel.as_ref().map(|t| {
            let mut span = t.span("step", "Step", 0);
            span.arg("step", self.step as f64);
            span
        });

        // DomainDecompAndSync: wrap positions back into a periodic box, every
        // `reorder_interval` steps sort the particle storage into Morton
        // order (so octree leaves and CSR neighbour rows cover contiguous
        // memory), then (re)build the global tree into the workspace's node
        // arena — the single-rank equivalent of domain decomposition + halo
        // sync. The interval decision is made here, before any Morton-key
        // work, so non-reorder steps skip key generation entirely.
        let reorder_due = self.reorder_interval > 0 && self.step.is_multiple_of(self.reorder_interval);
        {
            let ws = &mut self.workspace;
            let particles = &mut self.particles;
            let origin = &mut self.origin;
            Self::instrument(&hooks, &tel, SphStage::DomainDecompAndSync.label(), || {
                ws.domain_sync(particles, origin, reorder_due, MAX_LEAF_SIZE);
            });
        }
        if reorder_due {
            for (current, &original) in self.origin.iter().enumerate() {
                self.position[original as usize] = current as u32;
            }
        }

        {
            let ws = &mut self.workspace;
            let particles = &mut self.particles;
            Self::instrument(&hooks, &tel, SphStage::FindNeighbors.label(), || {
                ws.find_neighbors(particles)
            });
        }
        self.assert_finite_after(SphStage::FindNeighbors);
        let neighbors = self.workspace.neighbors();

        Self::instrument(&hooks, &tel, SphStage::XMass.label(), || {
            compute_density(&mut self.particles, neighbors);
            update_smoothing_length(&mut self.particles, self.target_neighbors);
        });
        self.assert_finite_after(SphStage::XMass);

        Self::instrument(&hooks, &tel, SphStage::NormalizationGradh.label(), || {
            compute_gradh(&mut self.particles, neighbors)
        });
        self.assert_finite_after(SphStage::NormalizationGradh);

        Self::instrument(&hooks, &tel, SphStage::EquationOfState.label(), || {
            apply_eos(&mut self.particles)
        });
        self.assert_finite_after(SphStage::EquationOfState);

        Self::instrument(&hooks, &tel, SphStage::IADVelocityDivCurl.label(), || {
            compute_div_curl(&mut self.particles, neighbors)
        });
        self.assert_finite_after(SphStage::IADVelocityDivCurl);

        let last_dt = self.last_dt;
        Self::instrument(&hooks, &tel, SphStage::AVSwitches.label(), || {
            update_av_switches(&mut self.particles, last_dt)
        });
        self.assert_finite_after(SphStage::AVSwitches);

        Self::instrument(&hooks, &tel, SphStage::MomentumEnergy.label(), || {
            compute_momentum_energy(&mut self.particles, neighbors)
        });
        self.assert_finite_after(SphStage::MomentumEnergy);

        if self.scenario.has_gravity() {
            let tree = self.workspace.tree();
            Self::instrument(&hooks, &tel, SphStage::Gravity.label(), || {
                add_gravity(&mut self.particles, tree, DEFAULT_THETA, self.softening)
            });
            self.assert_finite_after(SphStage::Gravity);
        }

        if let Some(driver) = &self.driver {
            let time = self.time;
            Self::instrument(&hooks, &tel, SphStage::Turbulence.label(), || {
                driver.apply(&mut self.particles, time)
            });
            self.assert_finite_after(SphStage::Turbulence);
        }

        let dt = Self::instrument(&hooks, &tel, SphStage::Timestep.label(), || {
            courant_timestep(&self.particles, self.max_dt)
        });
        assert!(
            dt.is_finite() && dt > 0.0,
            "stage {} produced an invalid timestep {dt} at step {} of scenario {}",
            SphStage::Timestep.label(),
            self.step,
            self.scenario.short_name()
        );

        Self::instrument(&hooks, &tel, SphStage::UpdateQuantities.label(), || {
            update_quantities(&mut self.particles, dt)
        });
        self.assert_finite_after(SphStage::UpdateQuantities);

        self.time += dt;
        self.step += 1;
        self.last_dt = dt;
        let summary = StepSummary {
            step: self.step,
            dt,
            time: self.time,
            total_energy: self.total_energy(),
        };
        drop(step_span);
        self.emit_step_telemetry(&summary, reorder_due);
        summary
    }

    /// One hierarchical substep of the individual-timestep scheme.
    ///
    /// At a *cycle start* (`phase == 0`) every particle is active: the full
    /// pipeline runs, the cycle is re-planned from the global Courant minimum,
    /// rungs are reassigned and limited (`|k_i − k_j| ≤ 1` across neighbour
    /// rows) and the deepest rung fixes the substep `dt_sub = dt_base /
    /// 2^k_deep`. *Mid-cycle* only the rows whose rung is active are rebuilt
    /// (subset CSR over the fresh tree) and re-accelerated; frozen particles
    /// keep their accelerations and just drift. Stage labels and telemetry
    /// match the global-dt pipeline, so traces and power measurements stay
    /// comparable across the two schemes.
    fn step_binned(&mut self) -> StepSummary {
        let mut bins = self.timestep_bins.take().expect("step_binned requires bins");
        let mut active = std::mem::take(&mut self.active_rows);
        let mut rung_rows = std::mem::take(&mut self.rung_rows);

        let hooks = self.hooks.clone();
        if let Some(h) = &hooks {
            h.set_iteration(Some(self.step));
        }
        let tel = self.telemetry.clone();
        let step_span = tel.as_ref().map(|t| {
            let mut span = t.span("step", "Step", 0);
            span.arg("step", self.step as f64);
            span
        });

        let n = self.particles.len();
        let sync = bins.at_cycle_start();
        // Morton reorders are paced by *cycles*, not substeps (a deep cycle
        // would otherwise re-sort 2^k_deep times per dt_base), and only at a
        // cycle start — mid-cycle the frozen particles' CSR rows must stay
        // aligned with their stale accelerations.
        let reorder_due = sync && self.reorder_interval > 0 && bins.cycles().is_multiple_of(self.reorder_interval);
        {
            let ws = &mut self.workspace;
            let particles = &mut self.particles;
            let origin = &mut self.origin;
            Self::instrument(&hooks, &tel, SphStage::DomainDecompAndSync.label(), || {
                ws.domain_sync(particles, origin, reorder_due, MAX_LEAF_SIZE);
            });
        }
        if reorder_due {
            for (current, &original) in self.origin.iter().enumerate() {
                self.position[original as usize] = current as u32;
            }
        }

        // The active set of this substep. At a cycle start everyone is active
        // (phase 0 activates every rung); mid-cycle it is the rows whose rung
        // divides the phase. Rows ascend — the subset CSR builders need that.
        if sync {
            active.clear();
            active.extend(0..n as u32);
        } else {
            bins.collect_active_rows(&self.particles, n, &mut active);
        }

        {
            let ws = &mut self.workspace;
            let particles = &mut self.particles;
            let rows = &active;
            Self::instrument(&hooks, &tel, SphStage::FindNeighbors.label(), || {
                if sync {
                    ws.find_neighbors(particles);
                } else {
                    ws.find_neighbors_rows(particles, rows);
                }
            });
        }
        self.assert_finite_after(SphStage::FindNeighbors);
        let neighbors = self.workspace.neighbors();

        Self::instrument(&hooks, &tel, SphStage::XMass.label(), || {
            compute_density_rows(&mut self.particles, neighbors, &active);
            update_smoothing_length_rows(&mut self.particles, self.target_neighbors, &active);
        });
        self.assert_finite_after(SphStage::XMass);

        Self::instrument(&hooks, &tel, SphStage::NormalizationGradh.label(), || {
            compute_gradh_rows(&mut self.particles, neighbors, &active)
        });
        self.assert_finite_after(SphStage::NormalizationGradh);

        Self::instrument(&hooks, &tel, SphStage::EquationOfState.label(), || {
            apply_eos_rows(&mut self.particles, &active)
        });
        self.assert_finite_after(SphStage::EquationOfState);

        Self::instrument(&hooks, &tel, SphStage::IADVelocityDivCurl.label(), || {
            compute_div_curl_rows(&mut self.particles, neighbors, &active)
        });
        self.assert_finite_after(SphStage::IADVelocityDivCurl);

        // The AV switch relaxes alpha over the time since the particle's last
        // kick — its own rung dt, not the substep dt. Before the first plan
        // (dt_base == 0) the helper falls back to the global-dt seed exactly
        // as the legacy first step does.
        {
            let particles = &mut self.particles;
            let last_dt = self.last_dt;
            let rows = &active;
            let rung_scratch = &mut rung_rows;
            let b = &bins;
            Self::instrument(&hooks, &tel, SphStage::AVSwitches.label(), || {
                update_av_switches_binned(particles, b, last_dt, rows, rung_scratch)
            });
        }
        self.assert_finite_after(SphStage::AVSwitches);

        Self::instrument(&hooks, &tel, SphStage::MomentumEnergy.label(), || {
            compute_momentum_energy_rows(&mut self.particles, neighbors, &active)
        });
        self.assert_finite_after(SphStage::MomentumEnergy);

        if self.scenario.has_gravity() {
            let tree = self.workspace.tree();
            Self::instrument(&hooks, &tel, SphStage::Gravity.label(), || {
                add_gravity_rows(&mut self.particles, tree, DEFAULT_THETA, self.softening, &active)
            });
            self.assert_finite_after(SphStage::Gravity);
        }

        if let Some(driver) = &self.driver {
            let time = self.time;
            Self::instrument(&hooks, &tel, SphStage::Turbulence.label(), || {
                driver.apply_rows(&mut self.particles, time, &active)
            });
            self.assert_finite_after(SphStage::Turbulence);
        }

        let dt = {
            let particles = &mut self.particles;
            let ws = &self.workspace;
            let max_dt = self.max_dt;
            let rows = &active;
            let b = &mut bins;
            Self::instrument(&hooks, &tel, SphStage::Timestep.label(), || {
                if sync {
                    let dt_min = courant_timestep(particles, max_dt);
                    b.plan(dt_min, max_dt);
                    b.assign_rungs(particles, n);
                    while b.limiter_round(particles, ws.neighbors(), n) {}
                    b.seal(b.max_rung(particles, n));
                } else {
                    b.deepen(particles, rows);
                }
                b.dt_sub()
            })
        };
        assert!(
            dt.is_finite() && dt > 0.0,
            "stage {} produced an invalid timestep {dt} at step {} of scenario {}",
            SphStage::Timestep.label(),
            self.step,
            self.scenario.short_name()
        );

        Self::instrument(&hooks, &tel, SphStage::UpdateQuantities.label(), || {
            update_quantities_binned(&mut self.particles, &bins)
        });
        self.assert_finite_after(SphStage::UpdateQuantities);

        self.time += dt;
        self.step += 1;
        self.last_dt = dt;
        let summary = StepSummary {
            step: self.step,
            dt,
            time: self.time,
            total_energy: self.total_energy(),
        };
        drop(step_span);
        self.emit_bins_telemetry(&bins, sync);
        self.emit_step_telemetry(&summary, reorder_due);
        bins.advance();

        self.timestep_bins = Some(bins);
        self.active_rows = active;
        self.rung_rows = rung_rows;
        summary
    }

    /// Publish the per-substep bin diagnostics: the `health.dt_bins` rung
    /// occupancy histogram every substep, plus a `sim.timestep` instant and
    /// the `sim.timestep.events` counter whenever a new cycle was planned.
    /// The flush rides on [`Simulation::emit_step_telemetry`], which runs
    /// right after. No-op without an enabled sink.
    fn emit_bins_telemetry(&mut self, bins: &TimestepBins, planned: bool) {
        let Some(tel) = &self.telemetry else {
            return;
        };
        if !tel.enabled() {
            return;
        }
        let rank = 0;
        // One observation per particle at its rung's bucket index.
        let histogram = tel.metrics().histogram("health.dt_bins", &DT_BINS_HISTOGRAM_BOUNDS);
        let n = self.particles.len();
        for &k in &self.particles.rung[..n] {
            histogram.observe(k as f64);
        }
        if planned {
            tel.instant(
                "sim",
                "timestep",
                rank,
                &[
                    ("k_deep", bins.k_deep() as f64),
                    ("dt_base", bins.dt_base()),
                    ("cycle_len", bins.cycle_len() as f64),
                ],
            );
            tel.metrics().counter("sim.timestep.events").inc();
        }
    }

    /// Publish the per-step simulation-health gauges and flush the exporters.
    /// No-op without an enabled sink.
    fn emit_step_telemetry(&mut self, summary: &StepSummary, reordered: bool) {
        let Some(tel) = &self.telemetry else {
            return;
        };
        if !tel.enabled() {
            return;
        }
        let rank = 0;
        let mass = self.particles.total_mass();
        let (momentum, momentum_scale) = momentum_and_scale(&self.particles);
        let baseline = *self.health_baseline.get_or_insert(HealthBaseline {
            energy: summary.total_energy,
            mass,
            momentum,
            momentum_scale,
        });
        let momentum_drift = {
            let d = [
                momentum[0] - baseline.momentum[0],
                momentum[1] - baseline.momentum[1],
                momentum[2] - baseline.momentum[2],
            ];
            let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            norm / baseline.momentum_scale.max(momentum_scale).max(1e-12)
        };
        tel.gauge("health", "health.total_energy", rank, summary.total_energy);
        tel.gauge(
            "health",
            "health.energy_drift",
            rank,
            (summary.total_energy - baseline.energy).abs() / baseline.energy.abs().max(1e-12),
        );
        tel.gauge(
            "health",
            "health.mass_drift",
            rank,
            (mass - baseline.mass).abs() / baseline.mass.abs().max(1e-12),
        );
        tel.gauge("health", "health.momentum_drift", rank, momentum_drift);
        tel.gauge("health", "health.dt", rank, summary.dt);
        let lists = self.workspace.neighbors();
        let (min, mean, max) = neighbor_count_stats(lists);
        tel.gauge("health", "health.neighbor_mean", rank, mean);
        tel.gauge("health", "health.neighbor_min", rank, min as f64);
        tel.gauge("health", "health.neighbor_max", rank, max as f64);
        let histogram = tel.metrics().histogram("health.neighbor_count", &NEIGHBOR_HISTOGRAM_BOUNDS);
        for i in 0..lists.len() {
            histogram.observe(lists.count(i).saturating_sub(1) as f64);
        }
        if reordered {
            tel.instant("sim", "reorder", rank, &[("step", (summary.step - 1) as f64)]);
            tel.metrics().counter("sim.reorder.events").inc();
        }
        let build = self.workspace.neighbor_build_stats();
        tel.gauge("health", "health.cell_occupancy", rank, build.mean_occupancy);
        tel.gauge("health", "health.neighbor_rows", rank, build.rows as f64);
        tel.instant(
            "sim",
            "neighbors",
            rank,
            &[("rows", build.rows as f64), ("cells", build.occupied_cells as f64)],
        );
        tel.metrics().counter("sim.neighbors.events").inc();
        tel.flush();
    }

    /// Run `n` timesteps and return the per-step summaries.
    pub fn run(&mut self, n: u64) -> Vec<StepSummary> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioRegistry;

    #[test]
    fn evrard_sphere_collapses_and_heats() {
        let mut sim = Simulation::evrard(600, 1);
        let e0_internal = sim.particles().internal_energy();
        let summaries = sim.run(15);
        assert_eq!(sim.step_count(), 15);
        assert!(sim.time() > 0.0);
        // Gravity should accelerate particles inwards -> kinetic energy appears.
        assert!(sim.particles().kinetic_energy() > 0.0);
        // Compression heats the gas.
        assert!(sim.particles().internal_energy() >= e0_internal * 0.99);
        // Timesteps are positive and bounded by the configured cap — not a
        // magic number that would silently diverge from DEFAULT_MAX_DT.
        assert!(summaries.iter().all(|s| s.dt > 0.0 && s.dt <= DEFAULT_MAX_DT));
    }

    #[test]
    fn evrard_total_energy_is_roughly_conserved() {
        let mut sim = Simulation::evrard(500, 2);
        // Let the state settle one step (density/EOS defined after first step).
        sim.step();
        let e_start = sim.total_energy();
        sim.run(10);
        let e_end = sim.total_energy();
        let scale = e_start.abs().max(1e-3);
        let drift = (e_end - e_start).abs() / scale;
        assert!(drift < 0.25, "energy drift {drift} too large ({e_start} -> {e_end})");
    }

    #[test]
    fn turbulence_box_stays_subsonic_and_stirred() {
        let mut sim = Simulation::turbulence(6, 3);
        sim.run(5);
        let p = sim.particles();
        let v_rms = (2.0 * p.kinetic_energy() / p.total_mass()).sqrt();
        assert!(v_rms > 0.0);
        assert!(v_rms < 1.5, "flow should stay subsonic-ish, v_rms = {v_rms}");
        assert_eq!(sim.scenario().short_name(), "Turb");
    }

    #[test]
    fn traced_step_emits_stage_spans_and_health_gauges() {
        let sink = Arc::new(Telemetry::new());
        let scenario = crate::scenario::get("Sedov").unwrap();
        let mut sim = Simulation::from_scenario(scenario.clone(), 400, 7).with_telemetry(Arc::clone(&sink));
        sim.run(2);
        let events = sink.events_snapshot();
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events.iter().filter(|e| e.cat == "step" && e.name == "Step").count(), 2);
        for stage in scenario.pipeline() {
            assert_eq!(
                events.iter().filter(|e| e.cat == "stage" && e.name == stage.label()).count(),
                2,
                "stage {} must be spanned once per step",
                stage.label()
            );
        }
        let snapshot = sink.metrics().snapshot();
        for gauge in [
            "health.total_energy",
            "health.energy_drift",
            "health.mass_drift",
            "health.momentum_drift",
            "health.dt",
            "health.neighbor_mean",
            "health.neighbor_min",
            "health.neighbor_max",
            "health.cell_occupancy",
            "health.neighbor_rows",
        ] {
            assert_eq!(
                events.iter().filter(|e| e.name == gauge).count(),
                2,
                "gauge {gauge} must be sampled once per step"
            );
        }
        // The neighbour-build instant and its counter fire every step.
        assert_eq!(
            events.iter().filter(|e| e.cat == "sim" && e.name == "neighbors").count(),
            2
        );
        assert_eq!(snapshot.counter("sim.neighbors.events"), Some(2));
        let hist = snapshot.histogram("health.neighbor_count").expect("histogram present");
        assert_eq!(hist.count, 2 * sim.particles().len() as u64);
        // First-step drift against the first-step baseline is identically 0.
        let first_drift = events
            .iter()
            .find(|e| e.name == "health.energy_drift")
            .and_then(|e| match e.kind {
                telemetry::EventKind::Gauge { value } => Some(value),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_drift, 0.0);
    }

    #[test]
    fn disabled_sink_adds_no_events_to_a_step() {
        let sink = Arc::new(Telemetry::disabled());
        let scenario = crate::scenario::get("Sedov").unwrap();
        let mut sim = Simulation::from_scenario(scenario, 300, 7).with_telemetry(Arc::clone(&sink));
        sim.run(2);
        assert_eq!(sink.event_count(), 0);
        assert!(sink.metrics().snapshot().histograms.is_empty());
    }

    #[test]
    fn one_step_over_every_registered_scenario_stays_finite() {
        // The per-stage non-finite guard must stay silent on valid ICs for
        // every scenario in the registry — including registrations this crate
        // has never seen, which is exactly what makes the guard trustworthy.
        for scenario in ScenarioRegistry::builtin().scenarios() {
            let mut sim = Simulation::from_scenario(scenario.clone(), 400, 7);
            let summary = sim.step();
            assert!(summary.dt > 0.0, "{}", scenario.short_name());
            assert!(summary.total_energy.is_finite(), "{}", scenario.short_name());
        }
    }

    #[test]
    #[should_panic(expected = "produced a non-finite quantity")]
    fn corrupted_state_panics_with_the_offending_stage_name() {
        let mut sim = Simulation::turbulence(6, 4);
        // Inject a NaN as if a kernel had misbehaved; the next step's guard
        // must catch it and name the stage instead of propagating it.
        let mut particles = sim.particles().clone();
        particles.u[0] = f64::NAN;
        sim = Simulation::new(sim.scenario().clone(), particles);
        sim.step();
    }

    #[test]
    fn morton_reorder_keeps_the_index_maps_consistent() {
        // Tag every particle through its mass (masses never evolve), with a
        // perturbation far too small to affect the dynamics.
        let scenario = crate::scenario::get("Turb").unwrap();
        let mut particles = scenario.initial_conditions(400, 3);
        for (i, m) in particles.m.iter_mut().enumerate() {
            *m *= 1.0 + 1e-12 * i as f64;
        }
        let tags = particles.m.clone();
        let mut sim = Simulation::new(scenario, particles).with_reorder_interval(1);
        sim.run(3);
        let p = sim.particles();
        let n = p.len();
        let mut seen = vec![false; n];
        for current in 0..n {
            let original = sim.original_index_of(current);
            assert!(!seen[original], "origin map is not a permutation");
            seen[original] = true;
            assert_eq!(sim.current_index_of(original), current);
            assert_eq!(p.m[current], tags[original]);
        }
    }

    #[test]
    fn disabling_reorder_keeps_construction_order() {
        let mut sim = Simulation::evrard(400, 6).with_reorder_interval(0);
        sim.run(2);
        assert!((0..400).all(|i| sim.original_index_of(i) == i && sim.current_index_of(i) == i));
    }

    #[test]
    fn region_observer_governs_cpu_pipeline_stages() {
        use pmt::backends::DummySensor;
        use pmt::{Domain, PowerMeter, RegionObserver};
        use std::sync::{Arc, Mutex};

        struct Counter(Mutex<usize>);
        impl RegionObserver for Counter {
            fn on_region_start(&self, _label: &str, _time_s: f64) {
                *self.0.lock().unwrap() += 1;
            }
            fn on_region_end(&self, _record: &pmt::MeasurementRecord) {}
        }

        let meter = Arc::new(PowerMeter::builder().sensor(DummySensor::new(Domain::gpu(0), 100.0)).build());
        let counter = Arc::new(Counter(Mutex::new(0)));
        let mut sim = Simulation::turbulence(6, 4)
            .with_hooks(ProfilingHooks::new(meter))
            .with_region_observer(counter.clone());
        sim.step();
        let stages = crate::scenario::get("Turb").unwrap().pipeline().len();
        assert_eq!(*counter.0.lock().unwrap(), stages);
        assert!(sim.hooks().is_some());
    }

    #[test]
    fn hooks_record_every_pipeline_stage() {
        use pmt::backends::DummySensor;
        use pmt::clock::ManualClock;
        use pmt::{Domain, PowerMeter};
        use std::sync::Arc;

        let clock = ManualClock::new();
        let meter = Arc::new(
            PowerMeter::builder()
                .sensor(DummySensor::new(Domain::gpu(0), 100.0))
                .clock(clock.clone())
                .build(),
        );
        let hooks = ProfilingHooks::new(meter.clone());
        let mut sim = Simulation::turbulence(6, 4).with_hooks(hooks);
        sim.run(2);
        let records = meter.records();
        let labels: std::collections::BTreeSet<String> = records.iter().map(|r| r.label.clone()).collect();
        for stage in crate::scenario::get("Turb").unwrap().pipeline() {
            assert!(labels.contains(stage.label()), "missing record for {}", stage.label());
        }
        // Two steps -> two records per stage.
        let me_count = records.iter().filter(|r| r.label == "MomentumEnergy").count();
        assert_eq!(me_count, 2);
        assert!(records.iter().any(|r| r.iteration == Some(1)));
    }

    // -- individual (block) timesteps ---------------------------------------

    #[test]
    fn one_timestep_bin_is_the_global_scheme_bitwise() {
        // `with_timestep_bins(1)` must not even enter the binned driver: the
        // evolution stays bit-identical to the untouched global-dt path.
        let scenario = crate::scenario::get("Sedov").unwrap();
        let mut plain = Simulation::from_scenario(scenario.clone(), 400, 7);
        let mut binned = Simulation::from_scenario(scenario, 400, 7).with_timestep_bins(1);
        assert!(binned.timestep_bins().is_none());
        for _ in 0..4 {
            let a = plain.step();
            let b = binned.step();
            assert_eq!(a, b);
        }
        let (p, q) = (plain.particles(), binned.particles());
        for i in 0..p.len() {
            assert_eq!(p.x[i].to_bits(), q.x[i].to_bits());
            assert_eq!(p.vx[i].to_bits(), q.vx[i].to_bits());
            assert_eq!(p.u[i].to_bits(), q.u[i].to_bits());
        }
    }

    #[test]
    fn binned_sedov_runs_hierarchical_cycles() {
        let scenario = crate::scenario::get("Sedov").unwrap();
        let mut sim = Simulation::from_scenario(scenario, 400, 7).with_timestep_bins(4);
        let mut planned_cycles = 0u64;
        for _ in 0..12 {
            let was_sync = sim.timestep_bins().unwrap().at_cycle_start();
            let s = sim.step();
            let bins = sim.timestep_bins().unwrap();
            // Every substep advances by the sealed substep dt of its cycle.
            assert_eq!(s.dt, bins.dt_sub());
            assert!(s.dt > 0.0 && s.dt <= DEFAULT_MAX_DT);
            assert!(s.total_energy.is_finite());
            if was_sync {
                planned_cycles += 1;
                // Right after a plan, the neighbour-rung limiter must hold
                // over the freshly built full CSR rows.
                let p = sim.particles();
                let nl = sim.workspace.neighbors();
                for i in 0..p.len() {
                    for &j in nl.neighbors(i) {
                        assert!(
                            (p.rung[i] as i32 - p.rung[j as usize] as i32).abs() <= 1,
                            "limiter violated between {i} and {j}"
                        );
                    }
                }
            }
        }
        assert!(planned_cycles >= 1);
        // A blast wave has a genuine timestep contrast: the cycle must
        // actually use more than one rung (otherwise the whole scheme
        // degenerated to global stepping and the test is vacuous).
        let bins = sim.timestep_bins().unwrap();
        assert!(bins.k_deep() >= 1, "Sedov should populate at least two rungs");
        assert_eq!(sim.step_count(), 12);
    }

    #[test]
    fn binned_step_emits_the_bin_telemetry() {
        let sink = Arc::new(Telemetry::new());
        let scenario = crate::scenario::get("Sedov").unwrap();
        let mut sim = Simulation::from_scenario(scenario.clone(), 400, 7)
            .with_telemetry(Arc::clone(&sink))
            .with_timestep_bins(4);
        // First step is a cycle start; run through at least one full cycle.
        let first_cycle = {
            sim.step();
            sim.timestep_bins().unwrap().cycle_len() as u64
        };
        for _ in 0..first_cycle {
            sim.step();
        }
        let steps = 1 + first_cycle;
        let events = sink.events_snapshot();
        // Stage spans keep the exact global-dt labels (traces comparable).
        for stage in scenario.pipeline() {
            assert_eq!(
                events.iter().filter(|e| e.cat == "stage" && e.name == stage.label()).count() as u64,
                steps,
                "stage {} must be spanned once per substep",
                stage.label()
            );
        }
        let snapshot = sink.metrics().snapshot();
        // The rung-occupancy histogram sees every particle every substep.
        let hist = snapshot.histogram("health.dt_bins").expect("dt_bins histogram");
        assert_eq!(hist.count, steps * sim.particles().len() as u64);
        // One planning event per cycle start (step 0 and the wrap-around).
        let planned = snapshot.counter("sim.timestep.events").expect("timestep counter");
        assert!(planned >= 2, "expected at least two planned cycles, saw {planned}");
        assert_eq!(
            events.iter().filter(|e| e.cat == "sim" && e.name == "timestep").count() as u64,
            planned
        );
    }
}
