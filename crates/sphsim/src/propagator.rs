//! The CPU reference propagator: a real (small-scale) SPH time-stepping loop
//! with the same named stages and the same profiling hooks as the paper-scale
//! runs.
//!
//! This is what validates the physics (energy conservation, collapse dynamics)
//! and what demonstrates the instrumentation on an actually executing code; the
//! billion-particle campaigns use the workload model in [`crate::gpu_offload`].

use crate::init::{evrard::evrard_sphere, turbulence::turbulence_box};
use crate::octree::Octree;
use crate::particle::ParticleSet;
use crate::physics::avswitches::update_av_switches;
use crate::physics::density::{compute_density, update_smoothing_length};
use crate::physics::eos::apply_eos;
use crate::physics::gradh::compute_gradh;
use crate::physics::gravity::{add_gravity, potential_energy_direct, DEFAULT_THETA};
use crate::physics::iad::compute_div_curl;
use crate::physics::momentum::compute_momentum_energy;
use crate::physics::neighbors::{build_tree, find_neighbors, NeighborLists};
use crate::physics::timestep::{courant_timestep, update_quantities};
use crate::physics::turbulence::TurbulenceDriver;
use crate::scenario::TestCase;
use crate::stages::SphStage;
use pmt::ProfilingHooks;

/// Summary of one completed timestep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepSummary {
    /// Step index (0-based, value after the step completed).
    pub step: u64,
    /// Timestep size used.
    pub dt: f64,
    /// Simulation time after the step.
    pub time: f64,
    /// Total energy (kinetic + internal [+ potential]) after the step.
    pub total_energy: f64,
}

/// A real SPH simulation running on the CPU.
pub struct Simulation {
    particles: ParticleSet,
    case: TestCase,
    driver: Option<TurbulenceDriver>,
    hooks: Option<ProfilingHooks>,
    time: f64,
    step: u64,
    last_dt: f64,
    target_neighbors: f64,
    max_dt: f64,
    softening: f64,
}

impl Simulation {
    /// Create a simulation over an existing particle set.
    pub fn new(case: TestCase, particles: ParticleSet) -> Self {
        let driver = case.has_stirring().then(|| TurbulenceDriver::new(1.0, 0.8, 42));
        Self {
            particles,
            case,
            driver,
            hooks: None,
            time: 0.0,
            step: 0,
            last_dt: 1e-3,
            target_neighbors: 60.0,
            max_dt: 0.05,
            softening: 0.02,
        }
    }

    /// A small Evrard-collapse run with roughly `n` particles.
    pub fn evrard(n: usize, seed: u64) -> Self {
        Self::new(TestCase::EvrardCollapse, evrard_sphere(n, seed))
    }

    /// A small subsonic-turbulence run with `n³` particles.
    pub fn turbulence(n_per_dim: usize, seed: u64) -> Self {
        Self::new(TestCase::SubsonicTurbulence, turbulence_box(n_per_dim, seed))
    }

    /// Attach measurement hooks (the PMT instrumentation of the paper).
    pub fn with_hooks(mut self, hooks: ProfilingHooks) -> Self {
        self.hooks = Some(hooks);
        self
    }

    /// Register a region observer (e.g. an `autotune` DVFS governor) on the
    /// attached hooks' meter, so every pipeline stage of [`Simulation::step`]
    /// runs under its control.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Simulation::with_hooks`]: without hooks no
    /// stage regions exist for the observer to govern.
    pub fn with_region_observer(self, observer: std::sync::Arc<dyn pmt::RegionObserver>) -> Self {
        let hooks = self
            .hooks
            .as_ref()
            .expect("attach hooks (with_hooks) before registering a region observer");
        hooks.meter().add_region_observer(observer);
        self
    }

    /// The attached profiling hooks, if any.
    pub fn hooks(&self) -> Option<&ProfilingHooks> {
        self.hooks.as_ref()
    }

    /// The test case being simulated.
    pub fn case(&self) -> TestCase {
        self.case
    }

    /// The particle data.
    pub fn particles(&self) -> &ParticleSet {
        &self.particles
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Total energy: kinetic + internal, plus gravitational potential for
    /// self-gravitating runs.
    pub fn total_energy(&self) -> f64 {
        let mut e = self.particles.kinetic_energy() + self.particles.internal_energy();
        if self.case.has_gravity() {
            e += potential_energy_direct(&self.particles, self.softening);
        }
        e
    }

    fn instrument<R>(hooks: &Option<ProfilingHooks>, label: &str, f: impl FnOnce() -> R) -> R {
        match hooks {
            Some(h) => h.instrument(label, f),
            None => f(),
        }
    }

    /// Execute one timestep through the full named pipeline.
    pub fn step(&mut self) -> StepSummary {
        let hooks = self.hooks.clone();
        if let Some(h) = &hooks {
            h.set_iteration(Some(self.step));
        }

        // DomainDecompAndSync: (re)build the global tree — the single-rank
        // equivalent of domain decomposition + halo sync.
        let tree: Octree = Self::instrument(&hooks, SphStage::DomainDecompAndSync.label(), || {
            build_tree(&self.particles, 32)
        });

        let neighbors: NeighborLists = Self::instrument(&hooks, SphStage::FindNeighbors.label(), || {
            find_neighbors(&mut self.particles, &tree)
        });

        Self::instrument(&hooks, SphStage::XMass.label(), || {
            compute_density(&mut self.particles, &neighbors);
            update_smoothing_length(&mut self.particles, self.target_neighbors);
        });

        Self::instrument(&hooks, SphStage::NormalizationGradh.label(), || {
            compute_gradh(&mut self.particles, &neighbors)
        });

        Self::instrument(&hooks, SphStage::EquationOfState.label(), || {
            apply_eos(&mut self.particles)
        });

        Self::instrument(&hooks, SphStage::IADVelocityDivCurl.label(), || {
            compute_div_curl(&mut self.particles, &neighbors)
        });

        let last_dt = self.last_dt;
        Self::instrument(&hooks, SphStage::AVSwitches.label(), || {
            update_av_switches(&mut self.particles, last_dt)
        });

        Self::instrument(&hooks, SphStage::MomentumEnergy.label(), || {
            compute_momentum_energy(&mut self.particles, &neighbors)
        });

        if self.case.has_gravity() {
            Self::instrument(&hooks, SphStage::Gravity.label(), || {
                add_gravity(&mut self.particles, &tree, DEFAULT_THETA, self.softening)
            });
        }

        if let Some(driver) = &self.driver {
            let time = self.time;
            Self::instrument(&hooks, SphStage::Turbulence.label(), || {
                driver.apply(&mut self.particles, time)
            });
        }

        let dt = Self::instrument(&hooks, SphStage::Timestep.label(), || {
            courant_timestep(&self.particles, self.max_dt)
        });

        Self::instrument(&hooks, SphStage::UpdateQuantities.label(), || {
            update_quantities(&mut self.particles, dt)
        });

        self.time += dt;
        self.step += 1;
        self.last_dt = dt;
        StepSummary {
            step: self.step,
            dt,
            time: self.time,
            total_energy: self.total_energy(),
        }
    }

    /// Run `n` timesteps and return the per-step summaries.
    pub fn run(&mut self, n: u64) -> Vec<StepSummary> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evrard_sphere_collapses_and_heats() {
        let mut sim = Simulation::evrard(600, 1);
        let e0_internal = sim.particles().internal_energy();
        let summaries = sim.run(15);
        assert_eq!(sim.step_count(), 15);
        assert!(sim.time() > 0.0);
        // Gravity should accelerate particles inwards -> kinetic energy appears.
        assert!(sim.particles().kinetic_energy() > 0.0);
        // Compression heats the gas.
        assert!(sim.particles().internal_energy() >= e0_internal * 0.99);
        // Timesteps are positive and bounded.
        assert!(summaries.iter().all(|s| s.dt > 0.0 && s.dt <= 0.05));
    }

    #[test]
    fn evrard_total_energy_is_roughly_conserved() {
        let mut sim = Simulation::evrard(500, 2);
        // Let the state settle one step (density/EOS defined after first step).
        sim.step();
        let e_start = sim.total_energy();
        sim.run(10);
        let e_end = sim.total_energy();
        let scale = e_start.abs().max(1e-3);
        let drift = (e_end - e_start).abs() / scale;
        assert!(drift < 0.25, "energy drift {drift} too large ({e_start} -> {e_end})");
    }

    #[test]
    fn turbulence_box_stays_subsonic_and_stirred() {
        let mut sim = Simulation::turbulence(6, 3);
        sim.run(5);
        let p = sim.particles();
        let v_rms = (2.0 * p.kinetic_energy() / p.total_mass()).sqrt();
        assert!(v_rms > 0.0);
        assert!(v_rms < 1.5, "flow should stay subsonic-ish, v_rms = {v_rms}");
        assert_eq!(sim.case(), TestCase::SubsonicTurbulence);
    }

    #[test]
    fn region_observer_governs_cpu_pipeline_stages() {
        use pmt::backends::DummySensor;
        use pmt::{Domain, PowerMeter, RegionObserver};
        use std::sync::{Arc, Mutex};

        struct Counter(Mutex<usize>);
        impl RegionObserver for Counter {
            fn on_region_start(&self, _label: &str, _time_s: f64) {
                *self.0.lock().unwrap() += 1;
            }
            fn on_region_end(&self, _record: &pmt::MeasurementRecord) {}
        }

        let meter = Arc::new(PowerMeter::builder().sensor(DummySensor::new(Domain::gpu(0), 100.0)).build());
        let counter = Arc::new(Counter(Mutex::new(0)));
        let mut sim = Simulation::turbulence(5, 4)
            .with_hooks(ProfilingHooks::new(meter))
            .with_region_observer(counter.clone());
        sim.step();
        let stages = TestCase::SubsonicTurbulence.pipeline().len();
        assert_eq!(*counter.0.lock().unwrap(), stages);
        assert!(sim.hooks().is_some());
    }

    #[test]
    fn hooks_record_every_pipeline_stage() {
        use pmt::backends::DummySensor;
        use pmt::clock::ManualClock;
        use pmt::{Domain, PowerMeter};
        use std::sync::Arc;

        let clock = ManualClock::new();
        let meter = Arc::new(
            PowerMeter::builder()
                .sensor(DummySensor::new(Domain::gpu(0), 100.0))
                .clock(clock.clone())
                .build(),
        );
        let hooks = ProfilingHooks::new(meter.clone());
        let mut sim = Simulation::turbulence(5, 4).with_hooks(hooks);
        sim.run(2);
        let records = meter.records();
        let labels: std::collections::BTreeSet<String> = records.iter().map(|r| r.label.clone()).collect();
        for stage in TestCase::SubsonicTurbulence.pipeline() {
            assert!(labels.contains(stage.label()), "missing record for {}", stage.label());
        }
        // Two steps -> two records per stage.
        let me_count = records.iter().filter(|r| r.label == "MomentumEnergy").count();
        assert_eq!(me_count, 2);
        assert!(records.iter().any(|r| r.iteration == Some(1)));
    }
}
