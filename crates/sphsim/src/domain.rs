//! Domain decomposition and halo determination.
//!
//! SPH-EXA decomposes the global particle set across ranks along the Morton
//! space-filling curve (Cornerstone octree), then exchanges *halo* particles —
//! particles owned by another rank but within interaction range of the local
//! domain — before every force computation. This module provides a simplified
//! but functional version of both steps for the CPU-executed reference runs,
//! and the communication-volume estimates used by the workload model for the
//! paper-scale simulated runs.

use crate::boundary::{Boundary, MinImage};
use crate::kernels::KERNEL_SUPPORT;
use crate::morton;
use crate::particle::ParticleSet;

/// A Morton-range domain map shared by every rank of a distributed run.
///
/// The key space is anchored to a **fixed** bounding box (normally the box of
/// the initial conditions): positions that later drift outside are clamped by
/// the Morton encoding, so a particle's key — and therefore its owner — is a
/// pure function of its position and the map, never of which rank evaluates
/// it. `boundaries` has `n_ranks + 1` entries with `boundaries[0] = 0` and
/// `boundaries[n_ranks] = u64::MAX`; rank `r` owns the key range
/// `[boundaries[r], boundaries[r + 1])`.
#[derive(Clone, Debug, PartialEq)]
pub struct DomainMap {
    min: (f64, f64, f64),
    max: (f64, f64, f64),
    boundaries: Vec<u64>,
}

impl DomainMap {
    /// Build the map with equal-count splitters from the sorted Morton codes
    /// of `particles`. Deterministic: every rank that evaluates this over the
    /// same particle set derives the same map.
    ///
    /// The key space anchors to the particles' **periodic box** when their
    /// boundary is periodic (so wrapped coordinates key consistently — a
    /// particle crossing the wrap seam re-keys to the far end of the curve),
    /// and to the bounding box of the initial conditions otherwise.
    pub fn new(particles: &ParticleSet, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1);
        let (min, max) = match particles.boundary {
            Boundary::Periodic { box_min, box_max } => (box_min, box_max),
            Boundary::Open => particles.bounding_box(),
        };
        let mut codes = morton::encode_all(&particles.x, &particles.y, &particles.z, min, max);
        codes.sort_unstable();
        let mut map = Self {
            min,
            max,
            boundaries: Vec::new(),
        };
        map.boundaries = Self::splitters(&codes, n_ranks);
        map
    }

    fn splitters(sorted_codes: &[u64], n_ranks: usize) -> Vec<u64> {
        let n = sorted_codes.len();
        let mut boundaries = Vec::with_capacity(n_ranks + 1);
        boundaries.push(0);
        for r in 1..n_ranks {
            boundaries.push(if n == 0 {
                u64::MAX
            } else {
                sorted_codes[r * n / n_ranks]
            });
        }
        boundaries.push(u64::MAX);
        boundaries
    }

    /// Number of ranks the map splits the key space across.
    pub fn n_ranks(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The fixed bounding box anchoring the key space.
    pub fn bounds(&self) -> ((f64, f64, f64), (f64, f64, f64)) {
        (self.min, self.max)
    }

    /// The rank boundaries in Morton-key space (`n_ranks + 1` entries).
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// Morton key of a position (clamped into the fixed box).
    pub fn code_of(&self, pos: (f64, f64, f64)) -> u64 {
        morton::encode_position(pos, self.min, self.max)
    }

    /// The rank owning a Morton key.
    pub fn owner_of_code(&self, code: u64) -> usize {
        let upper = &self.boundaries[1..self.boundaries.len() - 1];
        upper.partition_point(|&b| b <= code)
    }

    /// The rank owning a position.
    pub fn owner_of(&self, pos: (f64, f64, f64)) -> usize {
        self.owner_of_code(self.code_of(pos))
    }

    /// Recompute equal-count splitters from the *sorted* Morton codes of the
    /// current global particle distribution, keeping the fixed box. Every rank
    /// must call this with the same codes (e.g. after an allgather) so the
    /// rebalanced map stays identical across the world.
    pub fn rebalance(&mut self, sorted_codes: &[u64]) {
        debug_assert!(sorted_codes.windows(2).all(|w| w[0] <= w[1]), "codes must be sorted");
        self.boundaries = Self::splitters(sorted_codes, self.n_ranks());
    }
}

/// True when particles `i` and `j` interact: `r_ij ≤ 2·max(h_i, h_j)`,
/// evaluated with the same minimum-image squared-distance comparison the
/// neighbour search uses (so pairs across a periodic wrap seam count). This
/// is the pair relation the halo exchange must cover — it is symmetric by
/// construction, so ghost sets are symmetric across rank pairs.
pub fn pair_interacts(particles: &ParticleSet, i: usize, j: usize) -> bool {
    let mi = MinImage::of(&particles.boundary);
    let r2 = mi.dist_sq(
        particles.x[i] - particles.x[j],
        particles.y[i] - particles.y[j],
        particles.z[i] - particles.z[j],
    );
    let si = KERNEL_SUPPORT * particles.h[i];
    let sj = KERNEL_SUPPORT * particles.h[j];
    r2 <= si * si || r2 <= sj * sj
}

/// The exact ghost set `G(a → b)`: particles owned by rank `a` that interact
/// with at least one particle owned by rank `b` (in `b`'s row order — i.e.
/// sorted by `a`'s owned order). Symmetric across pairs in the sense that
/// every interacting cross-rank pair `(i, j)` puts `i` into `G(a → b)` *and*
/// `j` into `G(b → a)` — the invariant the decomposition tests pin down.
pub fn exact_ghosts(particles: &ParticleSet, owned: &[Vec<usize>], a: usize, b: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if a == b {
        return out;
    }
    for &i in &owned[a] {
        if owned[b].iter().any(|&j| pair_interacts(particles, i, j)) {
            out.push(i);
        }
    }
    out
}

/// The result of decomposing a particle set across ranks.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Owned particle indices per rank (into the original global set).
    pub owned: Vec<Vec<usize>>,
    /// Morton-code boundaries between ranks (length = ranks + 1).
    pub boundaries: Vec<u64>,
}

impl Decomposition {
    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.owned.len()
    }

    /// Total number of particles assigned.
    pub fn total_particles(&self) -> usize {
        self.owned.iter().map(|o| o.len()).sum()
    }

    /// Maximum load imbalance: `max_rank_count / mean_rank_count`.
    pub fn imbalance(&self) -> f64 {
        if self.owned.is_empty() || self.total_particles() == 0 {
            return 1.0;
        }
        let mean = self.total_particles() as f64 / self.n_ranks() as f64;
        let max = self.owned.iter().map(|o| o.len()).max().unwrap_or(0) as f64;
        max / mean
    }
}

/// Decompose `particles` across `n_ranks` by splitting the Morton-sorted order
/// into (near-)equal contiguous chunks — the space-filling-curve partitioning
/// used by Cornerstone.
pub fn decompose(particles: &ParticleSet, n_ranks: usize) -> Decomposition {
    assert!(n_ranks >= 1);
    let n = particles.len();
    let (min, max) = particles.bounding_box();
    let codes = morton::encode_all(&particles.x, &particles.y, &particles.z, min, max);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| codes[i]);

    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
    let mut boundaries = Vec::with_capacity(n_ranks + 1);
    boundaries.push(0u64);
    for (rank_idx, owned_rank) in owned.iter_mut().enumerate() {
        let start = rank_idx * n / n_ranks;
        let end = (rank_idx + 1) * n / n_ranks;
        owned_rank.extend_from_slice(&order[start..end]);
        let boundary_code = if end < n { codes[order[end]] } else { u64::MAX };
        boundaries.push(boundary_code);
    }
    Decomposition { owned, boundaries }
}

/// Find the halo particles a rank needs: particles owned by *other* ranks that
/// lie within `search_radius` of any particle owned by `rank`.
///
/// This brute-force implementation is meant for the modest particle counts of
/// the CPU reference runs and for validating the communication-volume model.
pub fn find_halos(
    particles: &ParticleSet,
    decomposition: &Decomposition,
    rank: usize,
    search_radius: f64,
) -> Vec<usize> {
    assert!(rank < decomposition.n_ranks());
    let own = &decomposition.owned[rank];
    if own.is_empty() {
        return Vec::new();
    }
    // Bounding box of the rank's domain, inflated by the search radius.
    let mut min = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &i in own {
        min.0 = min.0.min(particles.x[i]);
        min.1 = min.1.min(particles.y[i]);
        min.2 = min.2.min(particles.z[i]);
        max.0 = max.0.max(particles.x[i]);
        max.1 = max.1.max(particles.y[i]);
        max.2 = max.2.max(particles.z[i]);
    }
    min = (min.0 - search_radius, min.1 - search_radius, min.2 - search_radius);
    max = (max.0 + search_radius, max.1 + search_radius, max.2 + search_radius);

    let mut halos = Vec::new();
    for (other_rank, owned) in decomposition.owned.iter().enumerate() {
        if other_rank == rank {
            continue;
        }
        for &i in owned {
            let p = (particles.x[i], particles.y[i], particles.z[i]);
            if p.0 >= min.0 && p.0 <= max.0 && p.1 >= min.1 && p.1 <= max.1 && p.2 >= min.2 && p.2 <= max.2 {
                halos.push(i);
            }
        }
    }
    halos
}

/// Estimate the number of halo particles per rank for a cube of `n_per_rank`
/// particles with `mean_neighbors` interaction partners — the surface-to-volume
/// model used to size the communication workload of `DomainDecompAndSync` in
/// the paper-scale runs.
pub fn estimated_halo_count(n_per_rank: f64, mean_neighbors: f64) -> f64 {
    if n_per_rank <= 0.0 {
        return 0.0;
    }
    // Particles per edge of the rank's cube.
    let per_edge = n_per_rank.cbrt();
    // The halo shell is ~one smoothing-sphere deep on each of the 6 faces.
    let shell_depth = (mean_neighbors.max(1.0)).cbrt();
    6.0 * per_edge * per_edge * shell_depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_particles(n: usize, seed: u64) -> ParticleSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = ParticleSet::with_capacity(n);
        for _ in 0..n {
            p.push(
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                0.0,
                0.0,
                0.0,
                1.0 / n as f64,
                0.05,
                1.0,
            );
        }
        p
    }

    #[test]
    fn decomposition_partitions_all_particles() {
        let p = random_particles(1000, 1);
        let d = decompose(&p, 7);
        assert_eq!(d.n_ranks(), 7);
        assert_eq!(d.total_particles(), 1000);
        let mut seen = vec![false; 1000];
        for owned in &d.owned {
            for &i in owned {
                assert!(!seen[i], "particle {i} owned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn decomposition_is_balanced() {
        let p = random_particles(4096, 2);
        let d = decompose(&p, 8);
        assert!(d.imbalance() < 1.01, "imbalance {}", d.imbalance());
        assert_eq!(d.boundaries.len(), 9);
    }

    #[test]
    fn ranks_own_spatially_compact_regions() {
        let p = random_particles(2000, 3);
        let d = decompose(&p, 4);
        // The average intra-rank pairwise distance should be clearly smaller
        // than the global average (locality of the space-filling curve).
        let spread = |indices: &[usize]| -> f64 {
            let n = indices.len().min(100);
            let mut sum = 0.0;
            let mut count = 0.0;
            for a in 0..n {
                for b in (a + 1)..n {
                    let i = indices[a];
                    let j = indices[b];
                    sum += ((p.x[i] - p.x[j]).powi(2) + (p.y[i] - p.y[j]).powi(2) + (p.z[i] - p.z[j]).powi(2)).sqrt();
                    count += 1.0;
                }
            }
            sum / count
        };
        let global: Vec<usize> = (0..2000).collect();
        let global_spread = spread(&global);
        let rank_spread = spread(&d.owned[0]);
        assert!(rank_spread < global_spread, "{rank_spread} !< {global_spread}");
    }

    #[test]
    fn halos_come_from_other_ranks_only() {
        let p = random_particles(1500, 4);
        let d = decompose(&p, 3);
        let halos = find_halos(&p, &d, 1, 0.1);
        assert!(!halos.is_empty());
        let own: std::collections::HashSet<usize> = d.owned[1].iter().copied().collect();
        assert!(halos.iter().all(|i| !own.contains(i)));
    }

    #[test]
    fn halo_count_grows_with_radius() {
        let p = random_particles(1500, 5);
        let d = decompose(&p, 3);
        let small = find_halos(&p, &d, 0, 0.02).len();
        let large = find_halos(&p, &d, 0, 0.2).len();
        assert!(large > small);
    }

    #[test]
    fn single_rank_has_no_halos() {
        let p = random_particles(200, 6);
        let d = decompose(&p, 1);
        assert!(find_halos(&p, &d, 0, 0.5).is_empty());
        assert!((d.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn domain_map_is_deterministic_and_balanced() {
        let p = random_particles(4000, 11);
        let map = DomainMap::new(&p, 8);
        assert_eq!(map.n_ranks(), 8);
        assert_eq!(
            map,
            DomainMap::new(&p, 8),
            "map must be a pure function of the particle set"
        );
        assert_eq!(map.boundaries().len(), 9);
        assert!(map.boundaries().windows(2).all(|w| w[0] <= w[1]));
        let mut counts = [0usize; 8];
        for i in 0..p.len() {
            counts[map.owner_of((p.x[i], p.y[i], p.z[i]))] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 4000);
        let mean = 4000.0 / 8.0;
        assert!(counts.iter().all(|&c| (c as f64) < 1.2 * mean && (c as f64) > 0.8 * mean));
    }

    #[test]
    fn domain_map_clamps_escaped_positions() {
        let p = random_particles(100, 12);
        let map = DomainMap::new(&p, 4);
        // A particle far outside the fixed box still has a well-defined owner:
        // the first or last rank, depending on the side it escaped to.
        assert_eq!(map.owner_of((-100.0, -100.0, -100.0)), 0);
        assert_eq!(map.owner_of((100.0, 100.0, 100.0)), 3);
    }

    #[test]
    fn rebalance_restores_equal_counts() {
        let p = random_particles(2000, 13);
        let mut map = DomainMap::new(&p, 4);
        // Squash everything into one octant: the old splitters become badly
        // unbalanced for the squashed distribution.
        let squashed: Vec<(f64, f64, f64)> = (0..p.len()).map(|i| (p.x[i] * 0.3, p.y[i] * 0.3, p.z[i] * 0.3)).collect();
        let count_for = |m: &DomainMap| {
            let mut counts = [0usize; 4];
            for &pos in &squashed {
                counts[m.owner_of(pos)] += 1;
            }
            counts
        };
        let before = count_for(&map);
        assert!(
            *before.iter().max().unwrap() > 700,
            "squashing should unbalance: {before:?}"
        );
        let mut codes: Vec<u64> = squashed.iter().map(|&pos| map.code_of(pos)).collect();
        codes.sort_unstable();
        map.rebalance(&codes);
        let after = count_for(&map);
        assert!(
            after.iter().all(|&c| (400..=600).contains(&c)),
            "rebalance should roughly equalise: {after:?}"
        );
    }

    #[test]
    fn exact_ghost_sets_cover_every_cross_rank_interaction() {
        let p = random_particles(800, 14);
        let d = decompose(&p, 2);
        let g01 = exact_ghosts(&p, &d.owned, 0, 1);
        let g10 = exact_ghosts(&p, &d.owned, 1, 0);
        assert!(!g01.is_empty() && !g10.is_empty());
        assert!(exact_ghosts(&p, &d.owned, 1, 1).is_empty());
        for &i in &d.owned[0] {
            for &j in &d.owned[1] {
                if pair_interacts(&p, i, j) {
                    assert!(g01.contains(&i));
                    assert!(g10.contains(&j));
                }
            }
        }
    }

    #[test]
    fn halo_estimate_scales_sublinearly() {
        let small = estimated_halo_count(1.0e6, 100.0);
        let large = estimated_halo_count(8.0e6, 100.0);
        // 8x the volume -> 4x the surface.
        assert!((large / small - 4.0).abs() < 0.2);
        assert_eq!(estimated_halo_count(0.0, 100.0), 0.0);
    }
}
