//! Per-stage workload model for GPU-offloaded, paper-scale runs.
//!
//! The paper's production runs use 80–150 million particles per GPU — far more
//! than can be time-stepped for real on a laptop. Following the substitution
//! rule documented in `DESIGN.md`, the large-scale campaigns instead *model*
//! each pipeline stage as a [`KernelWorkload`] (flops, bytes, launches,
//! parallelism) derived from per-particle costs, and execute it on the
//! simulated GPUs of `hwmodel`, which turn it into a duration and a power draw.
//!
//! The per-particle costs are calibrated against the relative per-function
//! times/energies reported in the paper (Figures 3 and 5): `MomentumEnergy`
//! dominates, `IADVelocityDivCurl` and `XMass` follow, `DomainDecompAndSync` is
//! memory/communication-bound. The per-vendor `port_factor` captures the
//! paper's observation that `MomentumEnergy` is relatively more expensive on
//! the AMD GPUs (45.8 % of GPU energy on LUMI-G vs 25.3 % on the A100 system),
//! i.e. the HIP port is less optimised than the CUDA path.

use crate::scenario::Scenario;
use crate::stages::SphStage;
use hwmodel::gpu::GpuVendor;
use hwmodel::kernel::KernelWorkload;

/// Mean SPH neighbour count assumed by the cost model.
pub const MEAN_NEIGHBORS: f64 = 100.0;

/// Per-particle cost of one pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageCost {
    /// Floating-point operations per particle per call.
    pub flops_per_particle: f64,
    /// Bytes of device-memory traffic per particle per call.
    pub bytes_per_particle: f64,
    /// Number of kernel launches per call.
    pub launches: u32,
    /// Bytes sent over the network per *halo* particle (0 for compute stages).
    pub network_bytes_per_halo_particle: f64,
}

/// Baseline (well-optimised CUDA) per-particle costs of each stage.
pub fn stage_cost(stage: SphStage) -> StageCost {
    use SphStage::*;
    // Costs reflect the neighbour-gather nature of SPH on GPUs *after the
    // flat-path refactor*: neighbour lists are CSR (two-pass count + fill into
    // reusable buffers, no per-particle list headers) and the particle storage
    // is Morton-sorted every few steps, so every major kernel streams its
    // ~100 neighbours' worth of particle data from spatially local memory
    // instead of gathering across the whole array. Relative to the pre-CSR
    // costs this trims per-particle memory traffic on all neighbour-gather
    // stages (FindNeighbors 2500 → 1900 B, XMass 2500 → 2100 B, Gradh
    // 2000 → 1700 B, IAD 2500 → 2150 B, MomentumEnergy 3000 → 2400 B) while
    // leaving arithmetic essentially unchanged — raising their arithmetic
    // intensity, which is why MomentumEnergy and IADVelocityDivCurl remain the
    // stages that benefit least from clock down-scaling in Figure 5.
    // The cell-list neighbour search (Morton-bucketed 27-cell stencil sweep
    // replacing the per-particle octree query at production sizes) cuts
    // FindNeighbors again, 3500 → 3000 flops (no tree-descent distance
    // tests against interior nodes) and 1900 → 1700 B (one packed SoA pass
    // over the stencil instead of pointer-chasing leaf blocks); the stage
    // stays compute-leaning (AI ≈ 1.76) because the candidate-pair distance
    // tests dominate either way.
    // DomainDecompAndSync absorbs the amortised Morton re-sort of the 21 SoA
    // fields (one gather + scatter every DEFAULT_REORDER_INTERVAL steps) on
    // top of the key sort and halo exchange; it stays almost purely memory-
    // and network-bound. (The reorder-interval check is hoisted above the
    // key recompute, so non-reorder steps contribute no key-generation
    // traffic to the amortised figure — and the periodic position wrap is a
    // streaming O(N) pass folded into the same budget.)
    //
    // Periodic boundaries do NOT change these baselines: the minimum-image
    // map in the pair kernels is a few fused multiplies per pair (amortised
    // into the existing flop counts), while the real periodic surcharge —
    // wrapped-image tree queries for every support sphere crossing a box
    // face, and wrap-seam ghosts in the halo exchange — scales with the
    // box's surface-to-volume ratio and is charged per scenario through
    // `Scenario::stage_cost_scale` (see the FindNeighbors scales of the
    // periodic box scenarios).
    let (flops, bytes, launches, net) = match stage {
        DomainDecompAndSync => (900.0, 3_300.0, 12, 220.0),
        FindNeighbors => (3_000.0, 1_700.0, 4, 0.0),
        XMass => (5_000.0, 2_100.0, 2, 0.0),
        NormalizationGradh => (3_000.0, 1_700.0, 2, 0.0),
        EquationOfState => (60.0, 120.0, 1, 0.0),
        IADVelocityDivCurl => (10_000.0, 2_150.0, 3, 0.0),
        AVSwitches => (800.0, 600.0, 1, 0.0),
        MomentumEnergy => (15_000.0, 2_400.0, 3, 0.0),
        Gravity => (6_000.0, 1_500.0, 4, 24.0),
        Turbulence => (700.0, 400.0, 1, 0.0),
        Timestep => (40.0, 100.0, 2, 8.0),
        UpdateQuantities => (120.0, 800.0, 1, 0.0),
    };
    StageCost {
        flops_per_particle: flops,
        bytes_per_particle: bytes,
        launches,
        network_bytes_per_halo_particle: net,
    }
}

/// Extra-work factor of the GPU port of a stage on a given vendor relative to
/// the well-optimised baseline (1.0 = fully optimised).
pub fn port_factor(stage: SphStage, vendor: GpuVendor) -> f64 {
    match vendor {
        GpuVendor::Nvidia => 1.0,
        GpuVendor::Amd => match stage {
            SphStage::MomentumEnergy => 3.0,
            SphStage::IADVelocityDivCurl => 2.0,
            SphStage::FindNeighbors => 1.8,
            SphStage::Gravity => 1.8,
            SphStage::XMass | SphStage::NormalizationGradh => 1.5,
            _ => 1.3,
        },
    }
}

/// CPU busy fraction (driver, MPI progress, host-side orchestration) while a
/// stage executes on the GPU.
pub fn cpu_load_during(stage: SphStage) -> f64 {
    if stage.is_communication() {
        0.30
    } else {
        0.06
    }
}

/// Memory-bandwidth utilisation of the host DRAM while a stage executes.
pub fn memory_load_during(stage: SphStage) -> f64 {
    if stage.is_communication() {
        0.35
    } else {
        0.10
    }
}

/// Network utilisation while a stage executes.
pub fn network_load_during(stage: SphStage) -> f64 {
    if stage.is_communication() {
        0.80
    } else {
        0.05
    }
}

/// Shared workload assembly: baseline stage costs, vendor port factor, and a
/// [`CostScale`] skew applied to flops and bytes independently.
fn build_stage_workload(
    stage: SphStage,
    particles_per_rank: f64,
    vendor: GpuVendor,
    scale: crate::scenario::CostScale,
) -> KernelWorkload {
    assert!(particles_per_rank > 0.0);
    let cost = stage_cost(stage);
    // A less optimised port wastes both arithmetic *and* memory traffic
    // (uncoalesced accesses, redundant gathers), so the factor applies to both.
    let factor = port_factor(stage, vendor);
    KernelWorkload::new(
        stage.label(),
        cost.flops_per_particle * factor * scale.flops * particles_per_rank,
        cost.bytes_per_particle * factor * scale.bytes * particles_per_rank,
    )
    .with_parallelism(particles_per_rank)
    .with_launches(cost.launches)
}

/// Build the device workload of one stage for one rank owning
/// `particles_per_rank` particles on a GPU of the given vendor, at the
/// calibrated Table-1 baseline costs.
pub fn stage_workload(stage: SphStage, particles_per_rank: f64, vendor: GpuVendor) -> KernelWorkload {
    build_stage_workload(stage, particles_per_rank, vendor, crate::scenario::CostScale::UNIT)
}

/// Build the device workload of one stage for a specific scenario: the
/// baseline costs scaled by the scenario's per-stage
/// [`CostScale`](crate::scenario::CostScale). Because flops and bytes scale
/// independently, a scenario can shift a stage's arithmetic intensity — and
/// with it the stage's min-EDP frequency, generalising the paper's
/// compute- vs memory-bound observation beyond the Table-1 pair.
pub fn scenario_stage_workload(
    scenario: &dyn Scenario,
    stage: SphStage,
    particles_per_rank: f64,
    vendor: GpuVendor,
) -> KernelWorkload {
    build_stage_workload(stage, particles_per_rank, vendor, scenario.stage_cost_scale(stage))
}

/// Estimated bytes each rank sends over the network during one call of a
/// communication stage.
pub fn stage_network_bytes(stage: SphStage, particles_per_rank: f64) -> f64 {
    let cost = stage_cost(stage);
    if cost.network_bytes_per_halo_particle <= 0.0 {
        return 0.0;
    }
    let halos = crate::domain::estimated_halo_count(particles_per_rank, MEAN_NEIGHBORS);
    halos * cost.network_bytes_per_halo_particle
}

/// Effective node-to-node network bandwidth assumed for communication stages,
/// in bytes/second (a Slingshot-class NIC shared by the ranks of a node).
pub const NETWORK_BANDWIDTH: f64 = 20.0e9;

/// Per-collective latency added to every communication stage, in seconds.
pub const COMM_LATENCY_PER_STEP: f64 = 2.0e-3;

/// Time a rank spends in network communication for one call of `stage`.
pub fn stage_comm_time(stage: SphStage, particles_per_rank: f64, n_ranks: usize) -> f64 {
    let bytes = stage_network_bytes(stage, particles_per_rank);
    if bytes <= 0.0 {
        return 0.0;
    }
    let log_ranks = (n_ranks.max(2) as f64).log2();
    bytes / NETWORK_BANDWIDTH + COMM_LATENCY_PER_STEP * log_ranks
}

/// Total per-particle flop cost of one whole timestep (all stages of the
/// scenario, NVIDIA baseline, scenario cost scaling applied) — a sanity
/// metric used in tests and docs.
pub fn flops_per_particle_per_step(scenario: &dyn Scenario) -> f64 {
    scenario
        .pipeline()
        .into_iter()
        .map(|s| stage_cost(s).flops_per_particle * scenario.stage_cost_scale(s).flops)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn momentum_energy_is_the_most_expensive_compute_stage() {
        let me = stage_cost(SphStage::MomentumEnergy).flops_per_particle;
        for stage in SphStage::all() {
            if stage != SphStage::MomentumEnergy {
                assert!(
                    stage_cost(stage).flops_per_particle <= me,
                    "{stage:?} exceeds MomentumEnergy"
                );
            }
        }
    }

    #[test]
    fn domain_sync_is_memory_and_network_bound() {
        let c = stage_cost(SphStage::DomainDecompAndSync);
        assert!(c.bytes_per_particle > c.flops_per_particle);
        assert!(c.network_bytes_per_halo_particle > 0.0);
        assert!(stage_comm_time(SphStage::DomainDecompAndSync, 1.0e8, 16) > 0.0);
        assert_eq!(stage_comm_time(SphStage::MomentumEnergy, 1.0e8, 16), 0.0);
    }

    #[test]
    fn amd_port_factor_penalises_momentum_energy_most() {
        let me = port_factor(SphStage::MomentumEnergy, GpuVendor::Amd);
        for stage in SphStage::all() {
            assert!(port_factor(stage, GpuVendor::Nvidia) == 1.0);
            if stage != SphStage::MomentumEnergy {
                assert!(port_factor(stage, GpuVendor::Amd) <= me);
            }
        }
        assert!(me > 2.0);
    }

    #[test]
    fn csr_era_costs_keep_gather_stages_compute_leaning() {
        // After the CSR + Morton refactor the neighbour-gather stages run at
        // a higher arithmetic intensity (flops/byte) than before, while the
        // sort/halo stage stays firmly memory-bound.
        let ai = |s: SphStage| {
            let c = stage_cost(s);
            c.flops_per_particle / c.bytes_per_particle
        };
        assert!(ai(SphStage::MomentumEnergy) > 5.0);
        assert!(ai(SphStage::IADVelocityDivCurl) > 4.0);
        assert!(ai(SphStage::FindNeighbors) > 1.5);
        assert!(ai(SphStage::DomainDecompAndSync) < 0.5);
    }

    #[test]
    fn workload_scales_linearly_with_particles() {
        let small = stage_workload(SphStage::XMass, 1.0e6, GpuVendor::Nvidia);
        let large = stage_workload(SphStage::XMass, 4.0e6, GpuVendor::Nvidia);
        assert!((large.flops / small.flops - 4.0).abs() < 1e-9);
        assert!((large.bytes / small.bytes - 4.0).abs() < 1e-9);
        assert_eq!(small.launches, large.launches);
        assert_eq!(small.name, "XMass");
    }

    #[test]
    fn whole_step_cost_is_tens_of_kiloflops_per_particle() {
        let registry = crate::scenario::ScenarioRegistry::builtin();
        let turb = flops_per_particle_per_step(registry.get("Turb").unwrap().as_ref());
        let evr = flops_per_particle_per_step(registry.get("Evr").unwrap().as_ref());
        assert!((20_000.0..120_000.0).contains(&turb), "turbulence {turb}");
        assert!(evr > turb, "gravity makes Evrard steps more expensive per particle");
        for scenario in registry.scenarios() {
            let flops = flops_per_particle_per_step(scenario.as_ref());
            assert!(
                (20_000.0..150_000.0).contains(&flops),
                "{}: {flops}",
                scenario.short_name()
            );
        }
    }

    #[test]
    fn scenario_cost_scaling_shifts_arithmetic_intensity() {
        let registry = crate::scenario::ScenarioRegistry::builtin();
        let evr = registry.get("Evr").unwrap();
        let noh = registry.get("Noh").unwrap();
        let baseline = scenario_stage_workload(evr.as_ref(), SphStage::FindNeighbors, 1.0e6, GpuVendor::Nvidia);
        let clustered = scenario_stage_workload(noh.as_ref(), SphStage::FindNeighbors, 1.0e6, GpuVendor::Nvidia);
        // Noh's central clustering costs more of everything...
        assert!(clustered.flops > baseline.flops);
        assert!(clustered.bytes > baseline.bytes);
        // ...but disproportionately more memory traffic: the stage becomes
        // more memory-bound (lower flops/byte) than the Table-1 baseline.
        assert!(clustered.flops / clustered.bytes < baseline.flops / baseline.bytes);
        // The unit scale (Evrard keeps FindNeighbors at the calibrated
        // baseline — open box, no image-query surcharge) reproduces the
        // baseline workload exactly.
        let plain = stage_workload(SphStage::FindNeighbors, 1.0e6, GpuVendor::Nvidia);
        assert_eq!(baseline.flops, plain.flops);
        assert_eq!(baseline.bytes, plain.bytes);
    }

    #[test]
    fn periodic_scenarios_charge_the_neighbour_stage_for_image_queries() {
        // Every periodic box scenario pays a FindNeighbors surcharge (wrapped
        // image queries + wrap-seam ghosts), skewed towards memory traffic;
        // the open scenarios keep their calibrated baselines un-skewed by
        // periodicity (Sedov/Noh have their own physics-driven scales).
        let registry = crate::scenario::ScenarioRegistry::builtin();
        for scenario in registry.scenarios() {
            let scale = scenario.stage_cost_scale(SphStage::FindNeighbors);
            if scenario.boundary().is_periodic() {
                assert!(
                    scale.flops > 1.0 && scale.bytes > 1.0,
                    "{}: periodic box must charge FindNeighbors for image queries",
                    scenario.short_name()
                );
                assert!(
                    scale.bytes >= scale.flops,
                    "{}: the image surcharge is gather-traffic-leaning",
                    scenario.short_name()
                );
            }
        }
        let evr = registry.get("Evr").unwrap();
        assert_eq!(
            evr.stage_cost_scale(SphStage::FindNeighbors),
            crate::scenario::CostScale::UNIT
        );
    }

    #[test]
    fn loads_are_fractions() {
        for stage in SphStage::all() {
            for load in [
                cpu_load_during(stage),
                memory_load_during(stage),
                network_load_during(stage),
            ] {
                assert!((0.0..=1.0).contains(&load));
            }
        }
    }

    #[test]
    fn comm_time_grows_with_rank_count_and_size() {
        let base = stage_comm_time(SphStage::DomainDecompAndSync, 1.0e8, 8);
        let more_ranks = stage_comm_time(SphStage::DomainDecompAndSync, 1.0e8, 64);
        let more_particles = stage_comm_time(SphStage::DomainDecompAndSync, 4.0e8, 8);
        assert!(more_ranks > base);
        assert!(more_particles > base);
    }
}
