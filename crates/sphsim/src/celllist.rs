//! Cell-list neighbour search — the large-`n` fast path of `FindNeighbors`.
//!
//! The octree query costs a tree descent per particle; at bench scale that
//! walk (not the distance math) dominates the stage. A **cell list** removes
//! it: particles are binned into a uniform grid whose cell side is at least
//! the largest interaction radius (`KERNEL_SUPPORT · h_max`), so every
//! neighbour of a particle lives in the 27-cell stencil around its own cell
//! and the per-particle query becomes a flat sweep over a handful of packed
//! coordinate runs.
//!
//! The sweep emits the *final symmetric* CSR rows in a single pass: a cell
//! side ≥ the largest support radius means the stencil contains every `j`
//! with `d² ≤ r_i²` **or** `d² ≤ r_j²`, so the union test replaces the
//! octree builder's separate symmetrisation pass (its extras arrays stay
//! empty here). Membership decisions evaluate the identical expressions the
//! octree leaf test and the symmetrisation pass use — the open path sums
//! `dx² + dy² + dz²` in the same order, the periodic path goes through the
//! same [`MinImage::dist_sq`] — and `MinImage::map` is odd (per-axis `round`
//! is odd, negation and multiplication are exact), so evaluating in the
//! `j − i` direction is bit-identical to every other pass. The two builders
//! therefore produce the same row *sets* (row order differs: stencil-scan
//! here, tree-traversal there), which the `celllist_equivalence` suite pins
//! on every registered scenario.
//!
//! The grid anchors to the periodic box when the set's boundary is periodic
//! (stencil indices wrap; distances are minimum-image) and to the bounding
//! box otherwise. All buffers are owned by the grid and reused across steps:
//! after a warm-up step both the rebuild and the CSR emit are allocation-free
//! (covered by the `alloc_free_neighbors` counting-allocator gate).
//!
//! The octree remains the general path: gravity still needs it, and a grid
//! is only worth building when smoothing lengths are fairly uniform — above
//! [`POLYDISPERSITY_LIMIT`] (or on an empty set) [`CellGrid::rebuild`]
//! declines and the caller falls back to the octree builder.

use crate::boundary::{Boundary, MinImage};
use crate::kernels::KERNEL_SUPPORT;
use crate::particle::ParticleSet;
use crate::physics::neighbors::{finish_csr, NeighborLists, NeighborScratch, SERIAL_CUTOFF};

/// Below this particle count the octree query is already cheap and the
/// [`crate::workspace::StepWorkspace`] `Auto` policy keeps using it; the grid
/// only pays off once there are enough particles to amortise its rebuild.
pub const CELL_LIST_CUTOFF: usize = 1024;

/// Above this `h_max / h_min` ratio a uniform grid sized by `h_max` scans far
/// more candidates than the adaptive octree prunes, so
/// [`CellGrid::rebuild`] declines and the caller falls back to the octree.
pub const POLYDISPERSITY_LIMIT: f64 = 2.0;

/// Safety margin on the minimum cell side, so ulp-level rounding in the
/// binning arithmetic can never push a true neighbour out of the stencil.
const SIDE_MARGIN: f64 = 1.0 + 1e-9;

/// A uniform spatial grid over the particle set, rebuilt once per step and
/// swept by [`find_neighbors_cells_into`]. Owns every buffer it needs
/// (counting-sort arrays plus packed per-entry coordinates), so steady-state
/// rebuilds allocate nothing.
#[derive(Debug, Default)]
pub struct CellGrid {
    /// Grid dimensions (cells per axis).
    dims: (usize, usize, usize),
    /// Lower corner the binning anchors to (periodic box min, or bounding
    /// box min for open sets).
    lo: (f64, f64, f64),
    /// Inverse cell side per axis (`0` on a degenerate axis).
    inv_cell: (f64, f64, f64),
    /// Whether stencil indices wrap (periodic boundary).
    periodic: bool,
    /// CSR cell starts into `entries` (`total_cells + 1` entries).
    starts: Vec<u32>,
    /// Counting-sort write cursors (scratch, one per cell).
    cursor: Vec<u32>,
    /// Cell index of each particle (scratch, one per particle).
    cell_of: Vec<u32>,
    /// Particle indices grouped by cell (counting-sort output).
    entries: Vec<u32>,
    /// Packed coordinates in `entries` order, so the sweep reads them as
    /// contiguous runs instead of gathering through `entries`.
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    /// Packed squared support radius `(KERNEL_SUPPORT · h_j)²` in `entries`
    /// order — the exact expression the octree symmetrisation pass squares,
    /// so the union membership test is bit-compatible.
    pr2: Vec<f64>,
    /// Max of `pr2` over each cell's entries (`0` for empty cells): the
    /// largest reach *into* the cell any of its particles has, used to prune
    /// whole stencil cells that can touch neither `r_i` nor any `r_j`.
    cell_pr2_max: Vec<f64>,
    /// All smoothing lengths bit-identical: `r_i² == r_j²` for every pair, so
    /// the union membership test collapses to the own-support test and the
    /// sweep skips the `pr2` loads entirely.
    uniform_h: bool,
    /// Number of non-empty cells after the last rebuild.
    occupied: usize,
}

impl CellGrid {
    /// Fresh (empty) grid; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of grid cells after the last successful rebuild.
    pub fn total_cells(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Number of non-empty cells after the last successful rebuild.
    pub fn occupied_cells(&self) -> usize {
        self.occupied
    }

    /// Mean particles per *occupied* cell after the last successful rebuild.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupied == 0 {
            0.0
        } else {
            self.entries.len() as f64 / self.occupied as f64
        }
    }

    /// Re-bin the particle set into the grid. Returns `false` — leaving the
    /// grid unusable and the caller on the octree path — when the set is
    /// empty or the smoothing lengths are too polydisperse for a uniform
    /// grid ([`POLYDISPERSITY_LIMIT`]).
    ///
    /// # Panics
    ///
    /// Panics when `2 · KERNEL_SUPPORT · h_max` reaches a periodic box edge:
    /// the minimum-image convention is ambiguous there (the same condition
    /// the octree query asserts per particle).
    pub fn rebuild(&mut self, particles: &ParticleSet) -> bool {
        let n = particles.len();
        if n == 0 {
            return false;
        }
        let mut h_min = f64::INFINITY;
        let mut h_max = 0.0f64;
        for &h in &particles.h {
            h_min = h_min.min(h);
            h_max = h_max.max(h);
        }
        if h_min <= 0.0 || !h_min.is_finite() || h_max / h_min > POLYDISPERSITY_LIMIT {
            return false;
        }
        self.uniform_h = h_min == h_max;
        let side_min = KERNEL_SUPPORT * h_max * SIDE_MARGIN;
        let (lo, extent, periodic) = match particles.boundary {
            Boundary::Periodic { box_min, box_max } => {
                let lx = box_max.0 - box_min.0;
                let ly = box_max.1 - box_min.1;
                let lz = box_max.2 - box_min.2;
                let min_edge = lx.min(ly).min(lz);
                assert!(
                    2.0 * KERNEL_SUPPORT * h_max < min_edge,
                    "interaction diameter {} reaches the periodic box edge {} — the minimum-image \
                     convention is ambiguous; shrink the smoothing length or grow the box",
                    2.0 * KERNEL_SUPPORT * h_max,
                    min_edge
                );
                (box_min, (lx, ly, lz), true)
            }
            Boundary::Open => {
                let (min, max) = particles.bounding_box();
                (min, (max.0 - min.0, max.1 - min.1, max.2 - min.2), false)
            }
        };
        let dim = |l: f64| ((l / side_min).floor() as usize).max(1);
        let (mut gx, mut gy, mut gz) = (dim(extent.0), dim(extent.1), dim(extent.2));
        // Cap the grid at O(n) cells: on very dilute sets halve the largest
        // dimension until the cell arrays stay proportional to the particle
        // count. Halving only *grows* cells, so the stencil stays sufficient.
        while gx * gy * gz > 4 * n + 1024 {
            if gx >= gy && gx >= gz {
                gx = (gx / 2).max(1);
            } else if gy >= gz {
                gy = (gy / 2).max(1);
            } else {
                gz = (gz / 2).max(1);
            }
        }
        let inv = |l: f64, g: usize| {
            let cell = l / g as f64;
            if cell > 0.0 {
                1.0 / cell
            } else {
                0.0
            }
        };
        self.dims = (gx, gy, gz);
        self.lo = lo;
        self.inv_cell = (inv(extent.0, gx), inv(extent.1, gy), inv(extent.2, gz));
        self.periodic = periodic;

        // Counting sort: bin, prefix-sum, scatter.
        let total = gx * gy * gz;
        self.cell_of.clear();
        self.cell_of.resize(n, 0);
        self.starts.clear();
        self.starts.resize(total + 1, 0);
        for i in 0..n {
            let (cx, cy, cz) = self.cell_coords(particles.x[i], particles.y[i], particles.z[i]);
            let c = (cz * gy + cy) * gx + cx;
            self.cell_of[i] = c as u32;
            self.starts[c + 1] += 1;
        }
        for c in 0..total {
            self.starts[c + 1] += self.starts[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..total]);
        self.entries.clear();
        self.entries.resize(n, 0);
        for (i, &c) in self.cell_of.iter().enumerate() {
            let c = c as usize;
            self.entries[self.cursor[c] as usize] = i as u32;
            self.cursor[c] += 1;
        }

        // Pack coordinates and squared supports in entries order.
        self.px.clear();
        self.px.resize(n, 0.0);
        self.py.clear();
        self.py.resize(n, 0.0);
        self.pz.clear();
        self.pz.resize(n, 0.0);
        self.pr2.clear();
        self.pr2.resize(n, 0.0);
        for (slot, &e) in self.entries.iter().enumerate() {
            let j = e as usize;
            self.px[slot] = particles.x[j];
            self.py[slot] = particles.y[j];
            self.pz[slot] = particles.z[j];
            let support_j = KERNEL_SUPPORT * particles.h[j];
            self.pr2[slot] = support_j * support_j;
        }
        self.cell_pr2_max.clear();
        self.cell_pr2_max.resize(total, 0.0);
        for c in 0..total {
            let (s, e) = (self.starts[c] as usize, self.starts[c + 1] as usize);
            let mut m = 0.0f64;
            for &r2 in &self.pr2[s..e] {
                m = m.max(r2);
            }
            self.cell_pr2_max[c] = m;
        }
        self.occupied = (0..total).filter(|&c| self.starts[c + 1] > self.starts[c]).count();
        true
    }

    /// Per-axis cell coordinates of a position. Periodic axes wrap the index
    /// (a particle binned one-off across the seam lands in the adjacent cell,
    /// which the ±1 stencil still covers); open axes clamp into range.
    #[inline]
    fn cell_coords(&self, xi: f64, yi: f64, zi: f64) -> (usize, usize, usize) {
        let axis = |v: f64, lo: f64, inv: f64, g: usize| -> usize {
            let t = ((v - lo) * inv).floor() as i64;
            if self.periodic {
                t.rem_euclid(g as i64) as usize
            } else {
                t.clamp(0, g as i64 - 1) as usize
            }
        };
        (
            axis(xi, self.lo.0, self.inv_cell.0, self.dims.0),
            axis(yi, self.lo.1, self.inv_cell.1, self.dims.1),
            axis(zi, self.lo.2, self.inv_cell.2, self.dims.2),
        )
    }

    /// [`Self::cell_coords`] plus the in-cell fractional position per axis
    /// (cell units, relative to the *returned* index), from which the sweep
    /// derives lower-bound distances to the adjacent stencil slabs. Outside
    /// a clamped open grid the fraction runs out of `[0, 1)`; the gap
    /// arithmetic tolerates that (negative gaps clamp to zero).
    #[inline]
    #[allow(clippy::type_complexity)] // a coordinate triple and its fractions
    fn cell_coords_frac(&self, xi: f64, yi: f64, zi: f64) -> ((usize, usize, usize), (f64, f64, f64)) {
        let axis = |v: f64, lo: f64, inv: f64, g: usize| -> (usize, f64) {
            let tf = (v - lo) * inv;
            let t = tf.floor() as i64;
            if self.periodic {
                (t.rem_euclid(g as i64) as usize, tf - t as f64)
            } else {
                let idx = t.clamp(0, g as i64 - 1);
                (idx as usize, tf - idx as f64)
            }
        };
        let (cx, fx) = axis(xi, self.lo.0, self.inv_cell.0, self.dims.0);
        let (cy, fy) = axis(yi, self.lo.1, self.inv_cell.1, self.dims.1);
        let (cz, fz) = axis(zi, self.lo.2, self.inv_cell.2, self.dims.2);
        ((cx, cy, cz), (fx, fy, fz))
    }
}

/// Conservative shrink applied to the squared cell-gap lower bound before
/// the prune comparison, so ulp-level rounding in the gap arithmetic can
/// never discard a cell holding a true boundary-distance neighbour.
const PRUNE_SLACK: f64 = 1.0 - 1e-9;

/// Candidate-scan batch width: distances for this many packed slots are
/// computed branch-free into a stack buffer before the accept loop runs, so
/// the compiler can vectorise the arithmetic over the contiguous SoA runs.
const SCAN_LANES: usize = 8;

/// The up-to-3 distinct cell indices of the ±1 stencil along one axis, each
/// with a lower bound on the axis distance from the query position to that
/// cell's slab (`0` for the own cell): periodic axes wrap (and deduplicate
/// when the axis has ≤ 2 cells, keeping the smaller gap), open axes drop
/// out-of-range offsets. `frac` is the in-cell fraction from
/// [`CellGrid::cell_coords_frac`]; `cell` the cell side (`0` on a degenerate
/// axis disables the bound).
#[inline]
fn stencil_axis(c: usize, g: usize, periodic: bool, frac: f64, cell: f64) -> ([usize; 3], [f64; 3], usize) {
    let mut out = [0usize; 3];
    let mut gap = [0.0f64; 3];
    let mut m = 0usize;
    let mut d = -1i64;
    while d <= 1 {
        let t = c as i64 + d;
        let slab_gap = match d {
            -1 => (frac * cell).max(0.0),
            1 => ((1.0 - frac) * cell).max(0.0),
            _ => 0.0,
        };
        d += 1;
        let idx = if periodic {
            t.rem_euclid(g as i64) as usize
        } else if t < 0 || t >= g as i64 {
            continue;
        } else {
            t as usize
        };
        match out[..m].iter().position(|&o| o == idx) {
            Some(p) => gap[p] = gap[p].min(slab_gap),
            None => {
                out[m] = idx;
                gap[m] = slab_gap;
                m += 1;
            }
        }
    }
    (out, gap, m)
}

/// Sweep worker: emit the final symmetric CSR row of every particle of the
/// block into `row`, recording the union row size in `counts` and the
/// own-support neighbour count (self excluded — the same quantity the octree
/// builder's gather pass records) in `diag`. The block is either the
/// contiguous particle range starting at `first` (full build,
/// `rows_block` empty) or an explicit slice of particle indices (subset
/// build — the active rows of an individual-timestep substep).
#[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
#[inline(always)] // must inline into the AVX2 wrapper to compile at that width
fn gather_cell_rows<const PERIODIC: bool, const UNIFORM: bool>(
    grid: &CellGrid,
    mi: &MinImage,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    h: &[f64],
    first: usize,
    rows_block: &[u32],
    counts: &mut [u32],
    diag: &mut [u32],
    row: &mut Vec<u32>,
    avx512: bool,
) {
    let _ = avx512; // only read on x86_64
    row.clear();
    let (gx, gy, _) = grid.dims;
    let cell_side = |inv: f64| if inv > 0.0 { 1.0 / inv } else { 0.0 };
    let (csx, csy, csz) = (
        cell_side(grid.inv_cell.0),
        cell_side(grid.inv_cell.1),
        cell_side(grid.inv_cell.2),
    );
    let mut ld2 = [0.0f64; SCAN_LANES];
    for (k, (count, diag)) in counts.iter_mut().zip(diag.iter_mut()).enumerate() {
        let i = if rows_block.is_empty() {
            first + k
        } else {
            rows_block[k] as usize
        };
        let (xi, yi, zi) = (x[i], y[i], z[i]);
        let radius = KERNEL_SUPPORT * h[i];
        let ri2 = radius * radius;
        let ((cx, cy, cz), (fx, fy, fz)) = grid.cell_coords_frac(xi, yi, zi);
        let (sx, gpx, mx) = stencil_axis(cx, grid.dims.0, PERIODIC, fx, csx);
        let (sy, gpy, my) = stencil_axis(cy, grid.dims.1, PERIODIC, fy, csy);
        let (sz, gpz, mz) = stencil_axis(cz, grid.dims.2, PERIODIC, fz, csz);
        let before = row.len();
        let mut own = 0u32;
        for (az, gz) in sz[..mz].iter().zip(&gpz) {
            for (ay, gy_) in sy[..my].iter().zip(&gpy) {
                let base = (az * gy + ay) * gx;
                let gap_zy = gz * gz + gy_ * gy_;
                for (ax, gx_) in sx[..mx].iter().zip(&gpx) {
                    let c = base + ax;
                    // Cell prune: `gap` lower-bounds the distance from `i` to
                    // any point of this stencil cell (exact geometric slab
                    // gaps, valid under index wrapping because the stencil
                    // cell *is* the geometrically adjacent slab). If even
                    // that bound exceeds both `r_i` and the longest reach of
                    // the cell's own particles, no candidate in it can pass
                    // the union test. The slack keeps the bound conservative
                    // against rounding in the gap arithmetic.
                    let d2min = gap_zy + gx_ * gx_;
                    let threshold = ri2.max(grid.cell_pr2_max[c]);
                    if d2min * PRUNE_SLACK > threshold {
                        continue;
                    }
                    let s = grid.starts[c] as usize;
                    let e = grid.starts[c + 1] as usize;
                    // Candidate scan. On AVX-512 hosts the open-boundary
                    // path drops into a compress-store kernel (the distance
                    // test and the "pack accepted ids contiguously" step are
                    // single instructions there). The portable path batches
                    // the distance arithmetic into lanes (contiguous packed
                    // runs, no data-dependent branch), then pushes
                    // qualifying entries in slot order via a compaction
                    // store — push unconditionally, then truncate away a
                    // reject — so the unpredictable accept decision becomes
                    // a length update instead of a mispredicted branch.
                    // Inclusion arithmetic is identical to the
                    // octree leaf test (open: same summation order;
                    // periodic: the same minimum-image expression, whose
                    // oddness makes the j − i direction bit-equivalent).
                    // With bit-uniform smoothing lengths `r_j² == r_i²`, so
                    // the union test collapses to the own-support compare
                    // and the `pr2` lane is never read.
                    #[cfg(target_arch = "x86_64")]
                    if !PERIODIC && avx512 {
                        // SAFETY: `avx512` is only true when runtime feature
                        // detection reported AVX512F+VL support on this CPU.
                        own += unsafe { scan_cell_open_avx512::<UNIFORM>(grid, s, e, xi, yi, zi, ri2, row) };
                        continue;
                    }
                    let mut slot = s;
                    while slot + SCAN_LANES <= e {
                        for (l, d2) in ld2.iter_mut().enumerate() {
                            let dx = grid.px[slot + l] - xi;
                            let dy = grid.py[slot + l] - yi;
                            let dz = grid.pz[slot + l] - zi;
                            *d2 = if PERIODIC {
                                mi.dist_sq(dx, dy, dz)
                            } else {
                                dx * dx + dy * dy + dz * dz
                            };
                        }
                        for (l, &d2) in ld2.iter().enumerate() {
                            let in_own = d2 <= ri2;
                            let keep = if UNIFORM {
                                in_own
                            } else {
                                in_own || d2 <= grid.pr2[slot + l]
                            };
                            let base = row.len();
                            row.push(grid.entries[slot + l]);
                            row.truncate(base + keep as usize);
                            own += in_own as u32;
                        }
                        slot += SCAN_LANES;
                    }
                    for slot in slot..e {
                        let dx = grid.px[slot] - xi;
                        let dy = grid.py[slot] - yi;
                        let dz = grid.pz[slot] - zi;
                        let d2 = if PERIODIC {
                            mi.dist_sq(dx, dy, dz)
                        } else {
                            dx * dx + dy * dy + dz * dz
                        };
                        let in_own = d2 <= ri2;
                        let keep = if UNIFORM {
                            in_own
                        } else {
                            in_own || d2 <= grid.pr2[slot]
                        };
                        let base = row.len();
                        row.push(grid.entries[slot]);
                        row.truncate(base + keep as usize);
                        own += in_own as u32;
                    }
                }
            }
        }
        *count = (row.len() - before) as u32;
        *diag = own.saturating_sub(1);
    }
}

/// AVX-512 candidate scan of one open-boundary stencil cell: the distance
/// test runs eight doubles per compare and `vpcompressd` packs the accepted
/// ids contiguously in one instruction — the hardware form of the portable
/// path's compaction store. The arithmetic is plain IEEE sub/mul/add in the
/// scalar association order `(dx² + dy²) + dz²` with no FMA contraction, and
/// mask-compression preserves lane order, so the emitted row bytes are
/// identical to the portable path's.
///
/// Returns the own-support hit count (self included, like the portable scan).
///
/// # Safety
/// The caller must have verified at runtime that the CPU supports AVX512F
/// and AVX512VL.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
#[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
unsafe fn scan_cell_open_avx512<const UNIFORM: bool>(
    grid: &CellGrid,
    s: usize,
    e: usize,
    xi: f64,
    yi: f64,
    zi: f64,
    ri2: f64,
    row: &mut Vec<u32>,
) -> u32 {
    use std::arch::x86_64::*;
    row.reserve(e - s);
    let (vxi, vyi, vzi, vri2) = (
        _mm512_set1_pd(xi),
        _mm512_set1_pd(yi),
        _mm512_set1_pd(zi),
        _mm512_set1_pd(ri2),
    );
    let mut own = 0u32;
    let mut len = row.len();
    let mut slot = s;
    while slot + 8 <= e {
        // SAFETY: `slot + 8 <= e` and the packed lanes are `n >= e` long, so
        // every (unaligned) load below stays in bounds; the `reserve(e - s)`
        // above leaves room past `len` for every candidate of this cell, and
        // compress-store writes exactly `keep.count_ones()` packed elements.
        unsafe {
            let px = _mm512_loadu_pd(grid.px.as_ptr().add(slot));
            let py = _mm512_loadu_pd(grid.py.as_ptr().add(slot));
            let pz = _mm512_loadu_pd(grid.pz.as_ptr().add(slot));
            let dx = _mm512_sub_pd(px, vxi);
            let dy = _mm512_sub_pd(py, vyi);
            let dz = _mm512_sub_pd(pz, vzi);
            let d2 = _mm512_add_pd(
                _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)),
                _mm512_mul_pd(dz, dz),
            );
            let m_own = _mm512_cmp_pd_mask::<_CMP_LE_OQ>(d2, vri2);
            own += m_own.count_ones();
            let keep = if UNIFORM {
                m_own
            } else {
                let vpr2 = _mm512_loadu_pd(grid.pr2.as_ptr().add(slot));
                m_own | _mm512_cmp_pd_mask::<_CMP_LE_OQ>(d2, vpr2)
            };
            let ids = _mm256_loadu_si256(grid.entries.as_ptr().add(slot) as *const __m256i);
            _mm256_mask_compressstoreu_epi32(row.as_mut_ptr().add(len) as *mut _, keep, ids);
            len += keep.count_ones() as usize;
        }
        slot += 8;
    }
    // SAFETY: `len` grew only by elements compress-stored into reserved
    // capacity above.
    unsafe { row.set_len(len) };
    for slot in slot..e {
        let dx = grid.px[slot] - xi;
        let dy = grid.py[slot] - yi;
        let dz = grid.pz[slot] - zi;
        let d2 = dx * dx + dy * dy + dz * dz;
        let in_own = d2 <= ri2;
        let keep = if UNIFORM {
            in_own
        } else {
            in_own || d2 <= grid.pr2[slot]
        };
        let base = row.len();
        row.push(grid.entries[slot]);
        row.truncate(base + keep as usize);
        own += in_own as u32;
    }
    own
}

/// AVX2 instantiation of [`gather_cell_rows`]: the body is the same code,
/// but the widened target feature lets the autovectorizer run the candidate
/// d² lanes four doubles per instruction instead of baseline SSE2 pairs.
/// Per-lane arithmetic stays plain IEEE mul/add (no contraction), so the
/// emitted rows are bit-identical to the portable path — the specialization
/// only changes how many lanes retire per cycle.
///
/// # Safety
/// The caller must have verified at runtime that the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
unsafe fn gather_cell_rows_avx2<const PERIODIC: bool, const UNIFORM: bool>(
    grid: &CellGrid,
    mi: &MinImage,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    h: &[f64],
    first: usize,
    rows_block: &[u32],
    counts: &mut [u32],
    diag: &mut [u32],
    row: &mut Vec<u32>,
    avx512: bool,
) {
    gather_cell_rows::<PERIODIC, UNIFORM>(grid, mi, x, y, z, h, first, rows_block, counts, diag, row, avx512);
}

/// `SPHSIM_FORCE_PORTABLE_SWEEP` pins the sweep to the portable scalar path
/// regardless of CPU features — the lever the cross-implementation
/// equivalence test uses to cover the portable path on wide-SIMD hosts. Read
/// once and cached so the warm path stays allocation-free.
#[cfg(target_arch = "x86_64")]
fn force_portable_sweep() -> bool {
    static FORCE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("SPHSIM_FORCE_PORTABLE_SWEEP").is_some())
}

/// Pick the widest sweep instantiation the running CPU supports. The choice
/// only affects vector width, never results: both instantiations execute the
/// identical per-candidate arithmetic.
#[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
#[inline]
fn gather_cell_rows_dispatch<const PERIODIC: bool, const UNIFORM: bool>(
    simd: (bool, bool),
    grid: &CellGrid,
    mi: &MinImage,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    h: &[f64],
    first: usize,
    rows_block: &[u32],
    counts: &mut [u32],
    diag: &mut [u32],
    row: &mut Vec<u32>,
) {
    let (avx2, avx512) = simd;
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when runtime feature detection
        // reported AVX2 support on this CPU.
        unsafe {
            gather_cell_rows_avx2::<PERIODIC, UNIFORM>(
                grid, mi, x, y, z, h, first, rows_block, counts, diag, row, avx512,
            )
        };
        return;
    }
    let _ = avx2;
    gather_cell_rows::<PERIODIC, UNIFORM>(grid, mi, x, y, z, h, first, rows_block, counts, diag, row, avx512);
}

/// Build the CSR neighbour lists by sweeping the cell grid — the cell-list
/// counterpart of [`crate::physics::neighbors::find_neighbors_into`], writing
/// through the same [`NeighborScratch`] buffers and producing the same row
/// *sets* (each row here is already the symmetric union, so the octree
/// builder's symmetrisation extras stay empty).
///
/// The grid must have been [`CellGrid::rebuild`]-ed on this particle set.
pub fn find_neighbors_cells_into(
    particles: &mut ParticleSet,
    grid: &CellGrid,
    out: &mut NeighborLists,
    scratch: &mut NeighborScratch,
) {
    let n = particles.len();
    assert_eq!(
        particles.neighbor_count.len(),
        n,
        "particle set inconsistent: neighbor_count lane out of sync"
    );
    scratch.counts.clear();
    scratch.counts.resize(n, 0);
    out.offsets.clear();
    out.offsets.resize(n + 1, 0);
    let threads = if n < SERIAL_CUTOFF {
        1
    } else {
        scratch.threads.min(n).max(1)
    };
    let chunk = n.div_ceil(threads).max(1);
    let blocks = n.div_ceil(chunk);
    if scratch.rows.len() < blocks {
        scratch.rows.resize_with(blocks, Vec::new);
    }
    let mi = MinImage::of(&particles.boundary);
    let periodic = !mi.is_identity();
    let (x, y, z, h) = (&particles.x, &particles.y, &particles.z, &particles.h);

    // Single gather pass: each block's rows are already the symmetric union
    // (the stencil sees every j with d² ≤ r_i² or d² ≤ r_j²), with the
    // neighbour-count diagnostic recorded alongside.
    {
        let count_chunks = scratch.counts.chunks_mut(chunk);
        let diag_chunks = particles.neighbor_count.chunks_mut(chunk);
        let row_bufs = scratch.rows.iter_mut();
        let uniform = grid.uniform_h;
        #[cfg(target_arch = "x86_64")]
        let simd = if force_portable_sweep() {
            (false, false)
        } else {
            (
                std::arch::is_x86_feature_detected!("avx2"),
                std::arch::is_x86_feature_detected!("avx512f") && std::arch::is_x86_feature_detected!("avx512vl"),
            )
        };
        #[cfg(not(target_arch = "x86_64"))]
        let simd = (false, false);
        let dispatch = |t: usize, counts: &mut [u32], diag: &mut [u32], row: &mut Vec<u32>, mi: &MinImage| match (
            periodic, uniform,
        ) {
            (true, true) => {
                gather_cell_rows_dispatch::<true, true>(simd, grid, mi, x, y, z, h, t * chunk, &[], counts, diag, row)
            }
            (true, false) => {
                gather_cell_rows_dispatch::<true, false>(simd, grid, mi, x, y, z, h, t * chunk, &[], counts, diag, row)
            }
            (false, true) => {
                gather_cell_rows_dispatch::<false, true>(simd, grid, mi, x, y, z, h, t * chunk, &[], counts, diag, row)
            }
            (false, false) => {
                gather_cell_rows_dispatch::<false, false>(simd, grid, mi, x, y, z, h, t * chunk, &[], counts, diag, row)
            }
        };
        if threads == 1 {
            for (t, ((counts, diag), row)) in count_chunks.zip(diag_chunks).zip(row_bufs).enumerate() {
                dispatch(t, counts, diag, row, &mi);
            }
        } else {
            std::thread::scope(|scope| {
                for (t, ((counts, diag), row)) in count_chunks.zip(diag_chunks).zip(row_bufs).enumerate() {
                    let mi = &mi;
                    let dispatch = &dispatch;
                    scope.spawn(move || dispatch(t, counts, diag, row, mi));
                }
            });
        }
    }

    // No symmetrisation pass: the union rows are final. Zero the extras so
    // the shared offsets/fill tail sees empty per-row extra ranges.
    scratch.extras_flat.clear();
    scratch.extra_starts.clear();
    scratch.extra_starts.resize(n + 1, 0);
    finish_csr(out, scratch, n, chunk, blocks);
}

/// [`find_neighbors_cells_into`] restricted to a sorted subset of rows — the
/// cell-list counterpart of
/// [`crate::physics::neighbors::find_neighbors_rows_into`], sweeping only the
/// requested rows' stencils. `out` still covers the full particle set (rows
/// off the subset come out zero-length) and the neighbour-count diagnostic is
/// refreshed only at the subset's slots.
///
/// The grid must have been [`CellGrid::rebuild`]-ed on this particle set.
pub fn find_neighbors_cells_rows_into(
    particles: &mut ParticleSet,
    grid: &CellGrid,
    rows: &[u32],
    out: &mut NeighborLists,
    scratch: &mut NeighborScratch,
) {
    let n = particles.len();
    let m = rows.len();
    assert_eq!(
        particles.neighbor_count.len(),
        n,
        "particle set inconsistent: neighbor_count lane out of sync"
    );
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "subset rows must ascend");
    debug_assert!(rows.last().is_none_or(|&i| (i as usize) < n), "subset row out of range");
    scratch.counts.clear();
    scratch.counts.resize(m, 0);
    scratch.diag.clear();
    scratch.diag.resize(m, 0);
    out.offsets.clear();
    out.offsets.resize(n + 1, 0);
    let threads = if m < SERIAL_CUTOFF {
        1
    } else {
        scratch.threads.min(m).max(1)
    };
    let chunk = m.div_ceil(threads).max(1);
    let blocks = m.div_ceil(chunk);
    if scratch.rows.len() < blocks {
        scratch.rows.resize_with(blocks, Vec::new);
    }
    let mi = MinImage::of(&particles.boundary);
    let periodic = !mi.is_identity();
    let (x, y, z, h) = (&particles.x, &particles.y, &particles.z, &particles.h);
    {
        let count_chunks = scratch.counts.chunks_mut(chunk);
        let diag_chunks = scratch.diag.chunks_mut(chunk);
        let row_chunks = rows.chunks(chunk);
        let row_bufs = scratch.rows.iter_mut();
        let uniform = grid.uniform_h;
        #[cfg(target_arch = "x86_64")]
        let simd = if force_portable_sweep() {
            (false, false)
        } else {
            (
                std::arch::is_x86_feature_detected!("avx2"),
                std::arch::is_x86_feature_detected!("avx512f") && std::arch::is_x86_feature_detected!("avx512vl"),
            )
        };
        #[cfg(not(target_arch = "x86_64"))]
        let simd = (false, false);
        let dispatch =
            |rows_block: &[u32], counts: &mut [u32], diag: &mut [u32], row: &mut Vec<u32>, mi: &MinImage| match (
                periodic, uniform,
            ) {
                (true, true) => gather_cell_rows_dispatch::<true, true>(
                    simd, grid, mi, x, y, z, h, 0, rows_block, counts, diag, row,
                ),
                (true, false) => gather_cell_rows_dispatch::<true, false>(
                    simd, grid, mi, x, y, z, h, 0, rows_block, counts, diag, row,
                ),
                (false, true) => gather_cell_rows_dispatch::<false, true>(
                    simd, grid, mi, x, y, z, h, 0, rows_block, counts, diag, row,
                ),
                (false, false) => gather_cell_rows_dispatch::<false, false>(
                    simd, grid, mi, x, y, z, h, 0, rows_block, counts, diag, row,
                ),
            };
        if threads == 1 {
            for (((counts, diag), rows_block), row) in count_chunks.zip(diag_chunks).zip(row_chunks).zip(row_bufs) {
                dispatch(rows_block, counts, diag, row, &mi);
            }
        } else {
            std::thread::scope(|scope| {
                for (((counts, diag), rows_block), row) in count_chunks.zip(diag_chunks).zip(row_chunks).zip(row_bufs) {
                    let mi = &mi;
                    let dispatch = &dispatch;
                    scope.spawn(move || dispatch(rows_block, counts, diag, row, mi));
                }
            });
        }
    }
    crate::physics::neighbors::finish_subset_csr(out, scratch, rows, n, blocks, &mut particles.neighbor_count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;
    use crate::physics::neighbors::{build_tree, find_neighbors};

    fn cell_rows(p: &mut ParticleSet) -> NeighborLists {
        let mut grid = CellGrid::new();
        assert!(grid.rebuild(p), "grid rebuild should accept this set");
        let mut out = NeighborLists::default();
        let mut scratch = NeighborScratch::new();
        find_neighbors_cells_into(p, &grid, &mut out, &mut scratch);
        out
    }

    fn sorted_rows(nl: &NeighborLists) -> Vec<Vec<u32>> {
        (0..nl.len())
            .map(|i| {
                let mut r = nl.neighbors(i).to_vec();
                r.sort_unstable();
                r
            })
            .collect()
    }

    #[test]
    fn open_lattice_matches_the_octree_builder() {
        let mut a = lattice_cube(6, 1.0, 1.0, 1.2);
        let mut b = a.clone();
        let tree = build_tree(&a, 16);
        let octree_nl = find_neighbors(&mut a, &tree);
        let cell_nl = cell_rows(&mut b);
        assert_eq!(sorted_rows(&cell_nl), sorted_rows(&octree_nl));
        assert_eq!(a.neighbor_count, b.neighbor_count);
    }

    #[test]
    fn periodic_lattice_matches_the_octree_builder() {
        let mut a = lattice_cube(6, 1.0, 1.0, 1.2);
        a.boundary = Boundary::unit_box();
        let mut b = a.clone();
        let tree = build_tree(&a, 16);
        let octree_nl = find_neighbors(&mut a, &tree);
        let cell_nl = cell_rows(&mut b);
        assert_eq!(sorted_rows(&cell_nl), sorted_rows(&octree_nl));
        assert_eq!(a.neighbor_count, b.neighbor_count);
    }

    #[test]
    fn polydisperse_h_declines_the_grid() {
        let mut p = lattice_cube(4, 1.0, 1.0, 1.2);
        p.h[0] *= 3.0;
        let mut grid = CellGrid::new();
        assert!(!grid.rebuild(&p), "h_max/h_min > {POLYDISPERSITY_LIMIT} must decline");
    }

    #[test]
    fn empty_set_declines_the_grid() {
        let p = ParticleSet::default();
        let mut grid = CellGrid::new();
        assert!(!grid.rebuild(&p));
    }

    #[test]
    fn grid_reports_occupancy() {
        let mut p = lattice_cube(6, 1.0, 1.0, 1.2);
        p.boundary = Boundary::unit_box();
        let mut grid = CellGrid::new();
        assert!(grid.rebuild(&p));
        assert!(grid.total_cells() >= 1);
        assert!(grid.occupied_cells() >= 1);
        assert!(grid.occupied_cells() <= grid.total_cells());
        assert!(grid.mean_occupancy() > 0.0);
        // Every particle is binned exactly once.
        let mut seen: Vec<u32> = grid.entries.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..p.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn subset_sweep_matches_the_full_sweep_rows() {
        // Mildly non-uniform h inside the grid's limit, periodic box: the
        // subset sweep must emit byte-identical rows for the requested subset
        // (same stencil order) and empty rows elsewhere.
        let mut a = lattice_cube(6, 1.0, 1.0, 1.2);
        a.boundary = Boundary::unit_box();
        for (i, h) in a.h.iter_mut().enumerate() {
            *h *= 1.0 + 0.3 * ((i % 5) as f64) / 5.0;
        }
        let mut b = a.clone();
        let full = cell_rows(&mut a);
        let mut grid = CellGrid::new();
        assert!(grid.rebuild(&b));
        let rows: Vec<u32> = (0..b.len() as u32).filter(|i| i % 4 != 2).collect();
        let mut out = NeighborLists::default();
        let mut scratch = NeighborScratch::new();
        b.neighbor_count.fill(u32::MAX);
        find_neighbors_cells_rows_into(&mut b, &grid, &rows, &mut out, &mut scratch);
        let mut cursor = 0usize;
        for i in 0..b.len() {
            if cursor < rows.len() && rows[cursor] as usize == i {
                cursor += 1;
                assert_eq!(out.neighbors(i), full.neighbors(i), "subset sweep row {i}");
                assert_eq!(b.neighbor_count[i], a.neighbor_count[i]);
            } else {
                assert_eq!(out.count(i), 0, "off-subset row {i} must be empty");
                assert_eq!(b.neighbor_count[i], u32::MAX);
            }
        }
    }

    #[test]
    fn mildly_nonuniform_h_still_matches_the_octree_builder() {
        // Perturb h inside the polydispersity limit so one-sided pairs exist:
        // the union test must reproduce the octree's symmetrised rows.
        let mut a = lattice_cube(5, 1.0, 1.0, 1.2);
        for (i, h) in a.h.iter_mut().enumerate() {
            *h *= 1.0 + 0.6 * ((i % 7) as f64) / 7.0;
        }
        let mut b = a.clone();
        let tree = build_tree(&a, 8);
        let octree_nl = find_neighbors(&mut a, &tree);
        let cell_nl = cell_rows(&mut b);
        assert_eq!(sorted_rows(&cell_nl), sorted_rows(&octree_nl));
        assert_eq!(a.neighbor_count, b.neighbor_count);
    }
}
