//! Morton (Z-order) codes.
//!
//! SPH-EXA's Cornerstone octree keys particles by 3D Morton codes; the domain
//! decomposition then splits the sorted key range across ranks so that each
//! rank owns a compact region of space. This module provides 63-bit Morton
//! codes (21 bits per dimension) over a caller-supplied bounding box.

/// Number of bits per dimension in a Morton code.
pub const MORTON_BITS: u32 = 21;

/// Spread the lower 21 bits of `v` so that there are two zero bits between
/// every original bit.
fn spread_bits(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread_bits`].
fn compact_bits(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00f;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ff;
    x = (x ^ (x >> 16)) & 0x1f00000000ffff;
    x = (x ^ (x >> 32)) & 0x1f_ffff;
    x
}

/// Encode integer cell coordinates (each < 2²¹) into a Morton code.
pub fn encode_cells(ix: u64, iy: u64, iz: u64) -> u64 {
    debug_assert!(ix < (1 << MORTON_BITS) && iy < (1 << MORTON_BITS) && iz < (1 << MORTON_BITS));
    spread_bits(ix) | (spread_bits(iy) << 1) | (spread_bits(iz) << 2)
}

/// Decode a Morton code back into integer cell coordinates.
pub fn decode_cells(code: u64) -> (u64, u64, u64) {
    (compact_bits(code), compact_bits(code >> 1), compact_bits(code >> 2))
}

/// Map a position inside `[min, max]³` (component-wise) to a Morton code.
/// Positions outside the box are clamped.
///
/// The box is divided into a uniform grid of `2²¹` equal-width cells per
/// dimension: `floor(t · 2²¹)` clamped to `2²¹ − 1`, so a position exactly at
/// `max` lands in the last *full-width* cell. (A previous version divided by
/// `2²¹ − 1` intervals while still allowing index `2²¹ − 1`, which gave the
/// boundary cell zero width and every other cell a slightly skewed extent.)
pub fn encode_position(pos: (f64, f64, f64), min: (f64, f64, f64), max: (f64, f64, f64)) -> u64 {
    let cells = 1u64 << MORTON_BITS;
    let to_cell = |p: f64, lo: f64, hi: f64| -> u64 {
        if hi <= lo {
            return 0;
        }
        let t = ((p - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * cells as f64).floor() as u64).min(cells - 1)
    };
    encode_cells(
        to_cell(pos.0, min.0, max.0),
        to_cell(pos.1, min.1, max.1),
        to_cell(pos.2, min.2, max.2),
    )
}

/// Compute Morton codes for a whole particle set given its bounding box.
pub fn encode_all(x: &[f64], y: &[f64], z: &[f64], min: (f64, f64, f64), max: (f64, f64, f64)) -> Vec<u64> {
    (0..x.len()).map(|i| encode_position((x[i], y[i], z[i]), min, max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_round_trip() {
        for &(x, y, z) in &[
            (0u64, 0, 0),
            (1, 2, 3),
            (100, 2000, 30000),
            (2_097_151, 2_097_151, 2_097_151),
        ] {
            let code = encode_cells(x, y, z);
            assert_eq!(decode_cells(code), (x, y, z));
        }
    }

    #[test]
    fn origin_maps_to_zero() {
        let min = (0.0, 0.0, 0.0);
        let max = (1.0, 1.0, 1.0);
        assert_eq!(encode_position((0.0, 0.0, 0.0), min, max), 0);
    }

    #[test]
    fn codes_are_monotone_along_axes_at_origin() {
        let min = (0.0, 0.0, 0.0);
        let max = (1.0, 1.0, 1.0);
        let a = encode_position((0.1, 0.0, 0.0), min, max);
        let b = encode_position((0.4, 0.0, 0.0), min, max);
        assert!(b > a);
    }

    #[test]
    fn out_of_box_positions_clamp() {
        let min = (0.0, 0.0, 0.0);
        let max = (1.0, 1.0, 1.0);
        let inside = encode_position((1.0, 1.0, 1.0), min, max);
        let outside = encode_position((5.0, 9.0, 2.0), min, max);
        assert_eq!(inside, outside);
    }

    #[test]
    fn boundary_cells_have_uniform_width() {
        let min = (0.0, 0.0, 0.0);
        let max = (1.0, 1.0, 1.0);
        let cells = 1u64 << MORTON_BITS;
        let cell_of = |x: f64| decode_cells(encode_position((x, 0.0, 0.0), min, max)).0;
        // The grid is uniform: t * 2^21 floored, so the midpoint starts cell
        // 2^20 exactly and the first cell boundary sits at 1/2^21.
        assert_eq!(cell_of(0.5), cells / 2);
        assert_eq!(cell_of(0.5 - 1e-9), cells / 2 - 1);
        assert_eq!(cell_of(1.0 / cells as f64), 1);
        assert_eq!(cell_of(0.5 / cells as f64), 0);
        // The position exactly at max maps into the last cell — which has the
        // same width as every other cell, not a zero-width boundary sliver.
        assert_eq!(cell_of(1.0), cells - 1);
        let last_cell_start = (cells - 1) as f64 / cells as f64;
        assert_eq!(cell_of(last_cell_start), cells - 1);
        assert_eq!(cell_of(last_cell_start - 1e-9), cells - 2);
    }

    #[test]
    fn locality_nearby_points_share_prefix() {
        let min = (0.0, 0.0, 0.0);
        let max = (1.0, 1.0, 1.0);
        let a = encode_position((0.5, 0.5, 0.5), min, max);
        let b = encode_position((0.5001, 0.5001, 0.5001), min, max);
        let c = encode_position((0.95, 0.1, 0.9), min, max);
        // Nearby points should differ in fewer leading bits than distant points.
        let diff_ab = (a ^ b).leading_zeros();
        let diff_ac = (a ^ c).leading_zeros();
        assert!(diff_ab >= diff_ac);
    }

    #[test]
    fn encode_all_matches_scalar() {
        let x = vec![0.1, 0.9];
        let y = vec![0.2, 0.8];
        let z = vec![0.3, 0.7];
        let min = (0.0, 0.0, 0.0);
        let max = (1.0, 1.0, 1.0);
        let codes = encode_all(&x, &y, &z, min, max);
        assert_eq!(codes[0], encode_position((0.1, 0.2, 0.3), min, max));
        assert_eq!(codes[1], encode_position((0.9, 0.8, 0.7), min, max));
    }

    #[test]
    fn degenerate_box_does_not_panic() {
        let min = (1.0, 1.0, 1.0);
        let max = (1.0, 2.0, 2.0);
        let code = encode_position((1.0, 1.5, 1.5), min, max);
        let (ix, _, _) = decode_cells(code);
        assert_eq!(ix, 0);
    }
}
