//! Particle storage.
//!
//! Structure-of-arrays layout, as used by SPH-EXA and every performance-minded
//! particle code: one contiguous `Vec<f64>` per field, so that kernels stream
//! through memory and parallel chunking is trivial.

use crate::boundary::Boundary;

/// Structure-of-arrays particle set.
#[derive(Clone, Debug, Default)]
pub struct ParticleSet {
    /// Boundary condition of the box the particles live in. Travels with the
    /// set so every consumer — neighbour search, pair kernels, Morton keys,
    /// domain decomposition — agrees on the same geometry.
    pub boundary: Boundary,
    /// Position, x component.
    pub x: Vec<f64>,
    /// Position, y component.
    pub y: Vec<f64>,
    /// Position, z component.
    pub z: Vec<f64>,
    /// Velocity, x component.
    pub vx: Vec<f64>,
    /// Velocity, y component.
    pub vy: Vec<f64>,
    /// Velocity, z component.
    pub vz: Vec<f64>,
    /// Particle masses.
    pub m: Vec<f64>,
    /// Smoothing lengths.
    pub h: Vec<f64>,
    /// Densities.
    pub rho: Vec<f64>,
    /// Specific internal energies.
    pub u: Vec<f64>,
    /// Pressures.
    pub p: Vec<f64>,
    /// Sound speeds.
    pub c: Vec<f64>,
    /// Grad-h normalisation terms (Omega).
    pub omega: Vec<f64>,
    /// Velocity divergence.
    pub div_v: Vec<f64>,
    /// Velocity curl magnitude.
    pub curl_v: Vec<f64>,
    /// Artificial-viscosity switch per particle.
    pub alpha: Vec<f64>,
    /// Acceleration, x component.
    pub ax: Vec<f64>,
    /// Acceleration, y component.
    pub ay: Vec<f64>,
    /// Acceleration, z component.
    pub az: Vec<f64>,
    /// Rate of change of internal energy.
    pub du: Vec<f64>,
    /// Number of neighbours within the particle's **own** `2h` support
    /// (diagnostic; what smoothing-length control consumes). Since the CSR
    /// builder symmetrises its rows, a row can hold *more* entries than this
    /// count — partners whose larger support reaches back — so do not equate
    /// the diagnostic with the row width; see `physics::neighbors`.
    pub neighbor_count: Vec<u32>,
    /// Individual-timestep rung `k`: the particle advances on
    /// `dt = dt_base / 2^k` (see `physics::timestep::TimestepBins`). `0` for
    /// every particle when block timesteps are disabled — the global-dt path
    /// never reads the lane. Travels with the particle through reorders,
    /// migration and ghost exchange, because the neighbour-rung limiter and
    /// the active-set schedule are defined over it.
    pub rung: Vec<u8>,
}

/// Reusable scratch buffers for [`ParticleSet::reorder_with`] (one `f64`
/// lane, one `u32` lane and one `u8` lane — the permuted field is built here
/// and then swapped in, so a steady-state reorder allocates nothing).
#[derive(Clone, Debug, Default)]
pub struct ReorderScratch {
    f: Vec<f64>,
    u: Vec<u32>,
    b: Vec<u8>,
}

impl ParticleSet {
    /// Create an empty particle set with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::default();
        s.reserve(n);
        s
    }

    /// Reserve capacity in every field.
    pub fn reserve(&mut self, n: usize) {
        self.x.reserve(n);
        self.y.reserve(n);
        self.z.reserve(n);
        self.vx.reserve(n);
        self.vy.reserve(n);
        self.vz.reserve(n);
        self.m.reserve(n);
        self.h.reserve(n);
        self.rho.reserve(n);
        self.u.reserve(n);
        self.p.reserve(n);
        self.c.reserve(n);
        self.omega.reserve(n);
        self.div_v.reserve(n);
        self.curl_v.reserve(n);
        self.alpha.reserve(n);
        self.ax.reserve(n);
        self.ay.reserve(n);
        self.az.reserve(n);
        self.du.reserve(n);
        self.neighbor_count.reserve(n);
        self.rung.reserve(n);
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if the set holds no particles.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Append one particle with position, velocity, mass, smoothing length and
    /// internal energy; derived fields start at zero.
    #[allow(clippy::too_many_arguments)]
    pub fn push(&mut self, x: f64, y: f64, z: f64, vx: f64, vy: f64, vz: f64, m: f64, h: f64, u: f64) {
        self.x.push(x);
        self.y.push(y);
        self.z.push(z);
        self.vx.push(vx);
        self.vy.push(vy);
        self.vz.push(vz);
        self.m.push(m);
        self.h.push(h);
        self.u.push(u);
        self.rho.push(0.0);
        self.p.push(0.0);
        self.c.push(0.0);
        self.omega.push(1.0);
        self.div_v.push(0.0);
        self.curl_v.push(0.0);
        self.alpha.push(1.0);
        self.ax.push(0.0);
        self.ay.push(0.0);
        self.az.push(0.0);
        self.du.push(0.0);
        self.neighbor_count.push(0);
        self.rung.push(0);
    }

    /// Verify that every field has the same length (structure invariant).
    pub fn is_consistent(&self) -> bool {
        let n = self.len();
        [
            self.y.len(),
            self.z.len(),
            self.vx.len(),
            self.vy.len(),
            self.vz.len(),
            self.m.len(),
            self.h.len(),
            self.rho.len(),
            self.u.len(),
            self.p.len(),
            self.c.len(),
            self.omega.len(),
            self.div_v.len(),
            self.curl_v.len(),
            self.alpha.len(),
            self.ax.len(),
            self.ay.len(),
            self.az.len(),
            self.du.len(),
            self.neighbor_count.len(),
            self.rung.len(),
        ]
        .iter()
        .all(|&l| l == n)
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.m.iter().sum()
    }

    /// Total kinetic energy `Σ ½ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        (0..self.len())
            .map(|i| 0.5 * self.m[i] * (self.vx[i].powi(2) + self.vy[i].powi(2) + self.vz[i].powi(2)))
            .sum()
    }

    /// Total internal energy `Σ m u`.
    pub fn internal_energy(&self) -> f64 {
        (0..self.len()).map(|i| self.m[i] * self.u[i]).sum()
    }

    /// Axis-aligned bounding box `((xmin,ymin,zmin),(xmax,ymax,zmax))`.
    pub fn bounding_box(&self) -> ((f64, f64, f64), (f64, f64, f64)) {
        let mut min = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for i in 0..self.len() {
            min.0 = min.0.min(self.x[i]);
            min.1 = min.1.min(self.y[i]);
            min.2 = min.2.min(self.z[i]);
            max.0 = max.0.max(self.x[i]);
            max.1 = max.1.max(self.y[i]);
            max.2 = max.2.max(self.z[i]);
        }
        (min, max)
    }

    /// Number of per-particle SoA fields (20 × `f64`, the `u32`
    /// neighbour-count diagnostic and the `u8` timestep rung).
    pub const fn field_count() -> usize {
        22
    }

    /// Resident bytes of the particle payload: the sum over all SoA fields at
    /// the current length (capacity slack excluded). Reported by the
    /// step-throughput benchmark.
    pub fn memory_bytes(&self) -> usize {
        let n = self.len();
        (Self::field_count() - 2) * n * std::mem::size_of::<f64>()
            + n * std::mem::size_of::<u32>()
            + n * std::mem::size_of::<u8>()
    }

    /// Apply the permutation `perm` to every field: after the call, slot `k`
    /// holds the particle that was previously at `perm[k]`. Used by the
    /// propagator to sort the storage into Morton order.
    pub fn reorder(&mut self, perm: &[u32]) {
        self.reorder_with(perm, &mut ReorderScratch::default());
    }

    /// [`ParticleSet::reorder`] through caller-owned scratch buffers, so a
    /// steady-state reorder performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len()` differs from the particle count (and, in debug
    /// builds, if `perm` is not a permutation of `0..len`).
    pub fn reorder_with(&mut self, perm: &[u32], scratch: &mut ReorderScratch) {
        let n = self.len();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        scratch.f.resize(n, 0.0);
        scratch.u.resize(n, 0);
        #[cfg(debug_assertions)]
        {
            // Validate that `perm` is a permutation through the (about to be
            // overwritten) u32 scratch lane — no allocation even in debug.
            scratch.u.fill(0);
            for &p in perm {
                assert!(
                    std::mem::replace(&mut scratch.u[p as usize], 1) == 0,
                    "index {p} repeated in permutation"
                );
            }
        }
        for field in [
            &mut self.x,
            &mut self.y,
            &mut self.z,
            &mut self.vx,
            &mut self.vy,
            &mut self.vz,
            &mut self.m,
            &mut self.h,
            &mut self.rho,
            &mut self.u,
            &mut self.p,
            &mut self.c,
            &mut self.omega,
            &mut self.div_v,
            &mut self.curl_v,
            &mut self.alpha,
            &mut self.ax,
            &mut self.ay,
            &mut self.az,
            &mut self.du,
        ] {
            for (dst, &src) in scratch.f.iter_mut().zip(perm) {
                *dst = field[src as usize];
            }
            std::mem::swap(field, &mut scratch.f);
        }
        for (dst, &src) in scratch.u.iter_mut().zip(perm) {
            *dst = self.neighbor_count[src as usize];
        }
        std::mem::swap(&mut self.neighbor_count, &mut scratch.u);
        scratch.b.resize(n, 0);
        for (dst, &src) in scratch.b.iter_mut().zip(perm) {
            *dst = self.rung[src as usize];
        }
        std::mem::swap(&mut self.rung, &mut scratch.b);
    }

    /// Extract the particles at `indices` into a new set, copying the *full*
    /// per-particle state — every SoA lane, including accelerations, energy
    /// rates and the neighbour-count diagnostic. Used by the domain
    /// decomposition to shard, migrate and ghost particles without losing
    /// state mid-pipeline.
    pub fn gather(&self, indices: &[usize]) -> ParticleSet {
        let mut out = ParticleSet::with_capacity(indices.len());
        out.boundary = self.boundary;
        for &i in indices {
            out.push_copy_of(self, i);
        }
        out
    }

    /// Append a full copy of particle `i` of `src` (every SoA lane).
    pub fn push_copy_of(&mut self, src: &ParticleSet, i: usize) {
        self.push(
            src.x[i], src.y[i], src.z[i], src.vx[i], src.vy[i], src.vz[i], src.m[i], src.h[i], src.u[i],
        );
        let j = self.len() - 1;
        self.rho[j] = src.rho[i];
        self.p[j] = src.p[i];
        self.c[j] = src.c[i];
        self.omega[j] = src.omega[i];
        self.div_v[j] = src.div_v[i];
        self.curl_v[j] = src.curl_v[i];
        self.alpha[j] = src.alpha[i];
        self.ax[j] = src.ax[i];
        self.ay[j] = src.ay[i];
        self.az[j] = src.az[i];
        self.du[j] = src.du[i];
        self.neighbor_count[j] = src.neighbor_count[i];
        self.rung[j] = src.rung[i];
    }

    /// Append a full copy of every particle of `other`.
    pub fn append_set(&mut self, other: &ParticleSet) {
        self.reserve(other.len());
        for i in 0..other.len() {
            self.push_copy_of(other, i);
        }
    }

    /// Shorten the set to its first `n` particles (every lane). No-op when the
    /// set is already at most `n` long. Used by the distributed propagator to
    /// drop the ghost tail before rebuilding it.
    pub fn truncate(&mut self, n: usize) {
        self.x.truncate(n);
        self.y.truncate(n);
        self.z.truncate(n);
        self.vx.truncate(n);
        self.vy.truncate(n);
        self.vz.truncate(n);
        self.m.truncate(n);
        self.h.truncate(n);
        self.rho.truncate(n);
        self.u.truncate(n);
        self.p.truncate(n);
        self.c.truncate(n);
        self.omega.truncate(n);
        self.div_v.truncate(n);
        self.curl_v.truncate(n);
        self.alpha.truncate(n);
        self.ax.truncate(n);
        self.ay.truncate(n);
        self.az.truncate(n);
        self.du.truncate(n);
        self.neighbor_count.truncate(n);
        self.rung.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ParticleSet {
        let mut p = ParticleSet::with_capacity(4);
        p.push(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 0.1, 1.5);
        p.push(1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 3.0, 0.1, 0.5);
        p.push(0.0, 1.0, 0.0, 0.0, 0.0, -1.0, 1.0, 0.1, 1.0);
        p
    }

    #[test]
    fn push_keeps_fields_consistent() {
        let p = sample_set();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.is_consistent());
    }

    #[test]
    fn energies_and_mass() {
        let p = sample_set();
        assert!((p.total_mass() - 6.0).abs() < 1e-12);
        // KE = 0.5*(2*1 + 3*4 + 1*1) = 0.5*15 = 7.5
        assert!((p.kinetic_energy() - 7.5).abs() < 1e-12);
        // IE = 2*1.5 + 3*0.5 + 1*1 = 5.5
        assert!((p.internal_energy() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_covers_all() {
        let p = sample_set();
        let (min, max) = p.bounding_box();
        assert_eq!(min, (0.0, 0.0, 0.0));
        assert_eq!(max, (1.0, 1.0, 0.0));
    }

    #[test]
    fn gather_extracts_subset() {
        let p = sample_set();
        let sub = p.gather(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.x[0], 0.0);
        assert_eq!(sub.y[0], 1.0);
        assert_eq!(sub.m[1], 2.0);
        assert!(sub.is_consistent());
    }

    #[test]
    fn gather_copies_the_full_state() {
        let mut p = sample_set();
        p.ax = vec![1.0, 2.0, 3.0];
        p.du = vec![-0.1, 0.2, -0.3];
        p.alpha = vec![0.3, 0.6, 0.9];
        p.neighbor_count = vec![4, 5, 6];
        p.rung = vec![0, 1, 2];
        let sub = p.gather(&[1, 2]);
        assert_eq!(sub.ax, vec![2.0, 3.0]);
        assert_eq!(sub.du, vec![0.2, -0.3]);
        assert_eq!(sub.alpha, vec![0.6, 0.9]);
        assert_eq!(sub.neighbor_count, vec![5, 6]);
        assert_eq!(sub.rung, vec![1, 2]);
    }

    #[test]
    fn append_and_truncate_round_trip() {
        let mut p = sample_set();
        p.ax = vec![1.0, 2.0, 3.0];
        p.rung = vec![2, 0, 1];
        let q = p.clone();
        let extra = p.gather(&[0, 1]);
        p.append_set(&extra);
        assert_eq!(p.len(), 5);
        assert!(p.is_consistent());
        assert_eq!(p.ax[3], 1.0);
        assert_eq!(p.rung[3], 2);
        p.truncate(3);
        assert_eq!(p.len(), 3);
        assert!(p.is_consistent());
        assert_eq!(p.x, q.x);
        assert_eq!(p.ax, q.ax);
        assert_eq!(p.neighbor_count, q.neighbor_count);
        assert_eq!(p.rung, q.rung);
    }

    #[test]
    fn reorder_permutes_every_field() {
        let mut p = sample_set();
        p.neighbor_count = vec![5, 6, 7];
        p.rung = vec![1, 2, 3];
        p.rho = vec![1.0, 2.0, 3.0];
        let q = p.clone();
        p.reorder(&[2, 0, 1]);
        assert!(p.is_consistent());
        for (k, &src) in [2usize, 0, 1].iter().enumerate() {
            assert_eq!(p.x[k], q.x[src]);
            assert_eq!(p.vy[k], q.vy[src]);
            assert_eq!(p.m[k], q.m[src]);
            assert_eq!(p.rho[k], q.rho[src]);
            assert_eq!(p.u[k], q.u[src]);
            assert_eq!(p.neighbor_count[k], q.neighbor_count[src]);
            assert_eq!(p.rung[k], q.rung[src]);
        }
        // Applying the inverse permutation restores the original order.
        p.reorder(&[1, 2, 0]);
        assert_eq!(p.x, q.x);
        assert_eq!(p.neighbor_count, q.neighbor_count);
        assert_eq!(p.rung, q.rung);
    }

    #[test]
    #[should_panic(expected = "permutation length mismatch")]
    fn reorder_rejects_wrong_length() {
        let mut p = sample_set();
        p.reorder(&[0, 1]);
    }

    #[test]
    fn field_count_and_memory_bytes() {
        let p = sample_set();
        assert_eq!(ParticleSet::field_count(), 22);
        // 3 particles × (20 f64 + 1 u32 + 1 u8).
        assert_eq!(p.memory_bytes(), 3 * (20 * 8 + 4 + 1));
        assert_eq!(ParticleSet::default().memory_bytes(), 0);
    }

    #[test]
    fn empty_set_behaves() {
        let p = ParticleSet::default();
        assert!(p.is_empty());
        assert_eq!(p.total_mass(), 0.0);
        assert_eq!(p.kinetic_energy(), 0.0);
        assert!(p.is_consistent());
    }
}
