//! Particle storage.
//!
//! Structure-of-arrays layout, as used by SPH-EXA and every performance-minded
//! particle code: one contiguous `Vec<f64>` per field, so that kernels stream
//! through memory and parallel chunking is trivial.

/// Structure-of-arrays particle set.
#[derive(Clone, Debug, Default)]
pub struct ParticleSet {
    /// Positions.
    pub x: Vec<f64>,
    /// Positions.
    pub y: Vec<f64>,
    /// Positions.
    pub z: Vec<f64>,
    /// Velocities.
    pub vx: Vec<f64>,
    /// Velocities.
    pub vy: Vec<f64>,
    /// Velocities.
    pub vz: Vec<f64>,
    /// Particle masses.
    pub m: Vec<f64>,
    /// Smoothing lengths.
    pub h: Vec<f64>,
    /// Densities.
    pub rho: Vec<f64>,
    /// Specific internal energies.
    pub u: Vec<f64>,
    /// Pressures.
    pub p: Vec<f64>,
    /// Sound speeds.
    pub c: Vec<f64>,
    /// Grad-h normalisation terms (Omega).
    pub omega: Vec<f64>,
    /// Velocity divergence.
    pub div_v: Vec<f64>,
    /// Velocity curl magnitude.
    pub curl_v: Vec<f64>,
    /// Artificial-viscosity switch per particle.
    pub alpha: Vec<f64>,
    /// Accelerations.
    pub ax: Vec<f64>,
    /// Accelerations.
    pub ay: Vec<f64>,
    /// Accelerations.
    pub az: Vec<f64>,
    /// Rate of change of internal energy.
    pub du: Vec<f64>,
    /// Number of neighbours found for each particle (diagnostic).
    pub neighbor_count: Vec<u32>,
}

impl ParticleSet {
    /// Create an empty particle set with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::default();
        s.reserve(n);
        s
    }

    /// Reserve capacity in every field.
    pub fn reserve(&mut self, n: usize) {
        self.x.reserve(n);
        self.y.reserve(n);
        self.z.reserve(n);
        self.vx.reserve(n);
        self.vy.reserve(n);
        self.vz.reserve(n);
        self.m.reserve(n);
        self.h.reserve(n);
        self.rho.reserve(n);
        self.u.reserve(n);
        self.p.reserve(n);
        self.c.reserve(n);
        self.omega.reserve(n);
        self.div_v.reserve(n);
        self.curl_v.reserve(n);
        self.alpha.reserve(n);
        self.ax.reserve(n);
        self.ay.reserve(n);
        self.az.reserve(n);
        self.du.reserve(n);
        self.neighbor_count.reserve(n);
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if the set holds no particles.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Append one particle with position, velocity, mass, smoothing length and
    /// internal energy; derived fields start at zero.
    #[allow(clippy::too_many_arguments)]
    pub fn push(&mut self, x: f64, y: f64, z: f64, vx: f64, vy: f64, vz: f64, m: f64, h: f64, u: f64) {
        self.x.push(x);
        self.y.push(y);
        self.z.push(z);
        self.vx.push(vx);
        self.vy.push(vy);
        self.vz.push(vz);
        self.m.push(m);
        self.h.push(h);
        self.u.push(u);
        self.rho.push(0.0);
        self.p.push(0.0);
        self.c.push(0.0);
        self.omega.push(1.0);
        self.div_v.push(0.0);
        self.curl_v.push(0.0);
        self.alpha.push(1.0);
        self.ax.push(0.0);
        self.ay.push(0.0);
        self.az.push(0.0);
        self.du.push(0.0);
        self.neighbor_count.push(0);
    }

    /// Verify that every field has the same length (structure invariant).
    pub fn is_consistent(&self) -> bool {
        let n = self.len();
        [
            self.y.len(),
            self.z.len(),
            self.vx.len(),
            self.vy.len(),
            self.vz.len(),
            self.m.len(),
            self.h.len(),
            self.rho.len(),
            self.u.len(),
            self.p.len(),
            self.c.len(),
            self.omega.len(),
            self.div_v.len(),
            self.curl_v.len(),
            self.alpha.len(),
            self.ax.len(),
            self.ay.len(),
            self.az.len(),
            self.du.len(),
            self.neighbor_count.len(),
        ]
        .iter()
        .all(|&l| l == n)
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.m.iter().sum()
    }

    /// Total kinetic energy `Σ ½ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        (0..self.len())
            .map(|i| 0.5 * self.m[i] * (self.vx[i].powi(2) + self.vy[i].powi(2) + self.vz[i].powi(2)))
            .sum()
    }

    /// Total internal energy `Σ m u`.
    pub fn internal_energy(&self) -> f64 {
        (0..self.len()).map(|i| self.m[i] * self.u[i]).sum()
    }

    /// Axis-aligned bounding box `((xmin,ymin,zmin),(xmax,ymax,zmax))`.
    pub fn bounding_box(&self) -> ((f64, f64, f64), (f64, f64, f64)) {
        let mut min = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for i in 0..self.len() {
            min.0 = min.0.min(self.x[i]);
            min.1 = min.1.min(self.y[i]);
            min.2 = min.2.min(self.z[i]);
            max.0 = max.0.max(self.x[i]);
            max.1 = max.1.max(self.y[i]);
            max.2 = max.2.max(self.z[i]);
        }
        (min, max)
    }

    /// Extract the particles at `indices` into a new set (used by the domain
    /// decomposition).
    pub fn gather(&self, indices: &[usize]) -> ParticleSet {
        let mut out = ParticleSet::with_capacity(indices.len());
        for &i in indices {
            out.push(
                self.x[i], self.y[i], self.z[i], self.vx[i], self.vy[i], self.vz[i], self.m[i], self.h[i], self.u[i],
            );
            let j = out.len() - 1;
            out.rho[j] = self.rho[i];
            out.p[j] = self.p[i];
            out.c[j] = self.c[i];
            out.omega[j] = self.omega[i];
            out.div_v[j] = self.div_v[i];
            out.curl_v[j] = self.curl_v[i];
            out.alpha[j] = self.alpha[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ParticleSet {
        let mut p = ParticleSet::with_capacity(4);
        p.push(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 0.1, 1.5);
        p.push(1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 3.0, 0.1, 0.5);
        p.push(0.0, 1.0, 0.0, 0.0, 0.0, -1.0, 1.0, 0.1, 1.0);
        p
    }

    #[test]
    fn push_keeps_fields_consistent() {
        let p = sample_set();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.is_consistent());
    }

    #[test]
    fn energies_and_mass() {
        let p = sample_set();
        assert!((p.total_mass() - 6.0).abs() < 1e-12);
        // KE = 0.5*(2*1 + 3*4 + 1*1) = 0.5*15 = 7.5
        assert!((p.kinetic_energy() - 7.5).abs() < 1e-12);
        // IE = 2*1.5 + 3*0.5 + 1*1 = 5.5
        assert!((p.internal_energy() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_covers_all() {
        let p = sample_set();
        let (min, max) = p.bounding_box();
        assert_eq!(min, (0.0, 0.0, 0.0));
        assert_eq!(max, (1.0, 1.0, 0.0));
    }

    #[test]
    fn gather_extracts_subset() {
        let p = sample_set();
        let sub = p.gather(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.x[0], 0.0);
        assert_eq!(sub.y[0], 1.0);
        assert_eq!(sub.m[1], 2.0);
        assert!(sub.is_consistent());
    }

    #[test]
    fn empty_set_behaves() {
        let p = ParticleSet::default();
        assert!(p.is_empty());
        assert_eq!(p.total_mass(), 0.0);
        assert_eq!(p.kinetic_energy(), 0.0);
        assert!(p.is_consistent());
    }
}
