//! Genuinely distributed SPH: one [`crate::propagator::Simulation`]-equivalent
//! shard per [`cluster::Comm`] rank.
//!
//! The paper's headline measurements are multi-rank: SPH-EXA decomposes the
//! global particle set along the Morton space-filling curve, exchanges halo
//! (ghost) particles before every force computation, agrees on a global
//! Courant timestep, and gathers per-rank energy measurements at the end of a
//! run (§2). [`DistributedSimulation`] reproduces that structure over the
//! mini-MPI communicator:
//!
//! * **`DomainDecompAndSync`** finally earns its name: each step drops the
//!   previous ghosts, migrates particles whose Morton key crossed a rank
//!   boundary, re-balances the [`crate::domain::DomainMap`] splitters when
//!   rank populations drift past a threshold, and exchanges a fresh ghost
//!   layer — every remote particle within interaction range (`2h` of either
//!   side) of the rank's owned set;
//! * **`FindNeighbors` … `AVSwitches`** run the unmodified single-rank kernels
//!   over the local set (owned + ghosts). Ghost rows come out locally
//!   incomplete, which is harmless: every ghost field consumed downstream is
//!   overwritten by its owner's value before use;
//! * **`MomentumEnergy`** first refreshes the mid-step ghost fields the
//!   momentum kernel reads (`ρ, h, P, c, Ω, α` — recomputed this step by each
//!   owner), then runs the kernel; owned results match the single-rank run to
//!   floating-point round-off;
//! * **`Gravity`** is long-range and cannot be ghosted: ranks allgather the
//!   global `(x, y, z, m)` arrays and evaluate the same Barnes–Hut tree
//!   every rank would build single-rank;
//! * **`Timestep`** reduces the Courant criterion over *owned* particles only
//!   (ghost accelerations are locally incomplete) and agrees globally through
//!   [`cluster::Comm::allreduce_min`].
//!
//! [`run_distributed`] drives one shard per rank on plain threads (the
//! physics-equivalence path used by the decomposition tests);
//! [`run_distributed_campaign`] additionally places each rank on a simulated
//! GPU die via [`cluster::RankMapping`], meters every stage per rank, and
//! gathers the per-rank reports into a [`DistributedCampaignResult`] — the
//! per-rank table of the paper's §2 gathering.

use crate::domain::DomainMap;
use crate::kernels::KERNEL_SUPPORT;
use crate::octree::Octree;
use crate::particle::ParticleSet;
use crate::physics::avswitches::{update_av_switches_binned, update_av_switches_rows};
use crate::physics::density::{compute_density_rows, update_smoothing_length_rows};
use crate::physics::eos::apply_eos_rows;
use crate::physics::gradh::compute_gradh_rows;
use crate::physics::gravity::potential_energy_slices;
use crate::physics::iad::compute_div_curl_rows;
use crate::physics::momentum::compute_momentum_energy_rows;
use crate::physics::timestep::{courant_timestep_prefix, update_quantities, update_quantities_binned, TimestepBins};
use crate::physics::turbulence::TurbulenceDriver;
use crate::propagator::{
    default_turbulence_driver, HealthBaseline, StepSummary, DEFAULT_INITIAL_DT, DEFAULT_MAX_DT, DEFAULT_SOFTENING,
    DEFAULT_TARGET_NEIGHBORS, DT_BINS_HISTOGRAM_BOUNDS, MAX_LEAF_SIZE, NEIGHBOR_HISTOGRAM_BOUNDS,
};
use crate::scenario::ScenarioRef;
use crate::stages::SphStage;
use crate::workspace::StepWorkspace;
use cluster::{
    Cluster, CollectiveKind, Comm, CommWorld, RankContext, RankMapping, RecvHandle, SendHandle, TransportKind, Wire,
    WireError, WireReader,
};
use pmt::{MeasurementRecord, ProfilingHooks, RankReport};
use std::collections::BTreeMap;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;
use telemetry::Telemetry;

/// Default load-imbalance threshold (`max_rank_count / mean_rank_count`)
/// beyond which the Morton splitters are recomputed.
pub const DEFAULT_REBALANCE_THRESHOLD: f64 = 1.25;

/// Full per-particle state shipped by migration and the ghost exchange.
#[derive(Clone, Debug)]
struct ParticleMsg {
    id: u32,
    x: f64,
    y: f64,
    z: f64,
    vx: f64,
    vy: f64,
    vz: f64,
    m: f64,
    h: f64,
    u: f64,
    rho: f64,
    p: f64,
    c: f64,
    omega: f64,
    div_v: f64,
    curl_v: f64,
    alpha: f64,
    /// Derivative state (`du`, acceleration). The global-dt scheme recomputes
    /// these for every particle every step before use, but under individual
    /// timesteps a frozen particle keeps its last kick's derivatives across
    /// substeps — migration must carry them or the migrated particle's state
    /// silently diverges from the single-rank trajectory.
    du: f64,
    ax: f64,
    ay: f64,
    az: f64,
    /// Individual-timestep rung. Migration must carry it (a particle keeps its
    /// kick schedule across rank boundaries mid-cycle) and the ghost exchange
    /// ships it so receivers can apply the neighbour-rung limiter and the
    /// active-set bookkeeping to ghost rows.
    rung: u8,
}

/// Mid-step refresh of the ghost fields the momentum kernel reads.
#[derive(Clone, Copy, Debug)]
struct GhostUpdate {
    rho: f64,
    h: f64,
    p: f64,
    c: f64,
    omega: f64,
    alpha: f64,
}

/// Per-rank geometry advertised before the halo exchange.
#[derive(Clone, Copy, Debug)]
struct RankMeta {
    min: (f64, f64, f64),
    max: (f64, f64, f64),
    h_max: f64,
    count: usize,
}

impl Wire for ParticleMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        for v in [
            self.x,
            self.y,
            self.z,
            self.vx,
            self.vy,
            self.vz,
            self.m,
            self.h,
            self.u,
            self.rho,
            self.p,
            self.c,
            self.omega,
            self.div_v,
            self.curl_v,
            self.alpha,
            self.du,
            self.ax,
            self.ay,
            self.az,
        ] {
            v.encode(out);
        }
        self.rung.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = u32::decode(r)?;
        let mut f = [0.0f64; 20];
        for slot in &mut f {
            *slot = f64::decode(r)?;
        }
        let rung = u8::decode(r)?;
        Ok(Self {
            id,
            x: f[0],
            y: f[1],
            z: f[2],
            vx: f[3],
            vy: f[4],
            vz: f[5],
            m: f[6],
            h: f[7],
            u: f[8],
            rho: f[9],
            p: f[10],
            c: f[11],
            omega: f[12],
            div_v: f[13],
            curl_v: f[14],
            alpha: f[15],
            du: f[16],
            ax: f[17],
            ay: f[18],
            az: f[19],
            rung,
        })
    }
    fn min_wire_size() -> usize {
        4 + 20 * 8 + 1
    }
}

impl Wire for GhostUpdate {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [self.rho, self.h, self.p, self.c, self.omega, self.alpha] {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            rho: f64::decode(r)?,
            h: f64::decode(r)?,
            p: f64::decode(r)?,
            c: f64::decode(r)?,
            omega: f64::decode(r)?,
            alpha: f64::decode(r)?,
        })
    }
    fn min_wire_size() -> usize {
        6 * 8
    }
}

impl Wire for RankMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.min.0, self.min.1, self.min.2, self.max.0, self.max.1, self.max.2, self.h_max,
        ] {
            v.encode(out);
        }
        self.count.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut f = [0.0f64; 7];
        for slot in &mut f {
            *slot = f64::decode(r)?;
        }
        Ok(Self {
            min: (f[0], f[1], f[2]),
            max: (f[3], f[4], f[5]),
            h_max: f[6],
            count: usize::decode(r)?,
        })
    }
    fn min_wire_size() -> usize {
        7 * 8 + 8
    }
}

/// Local newtype so the foreign `pmt::MeasurementRecord` can cross the wire
/// (the orphan rule forbids `impl cluster::Wire for pmt::MeasurementRecord`
/// here). The energy map travels as `(domain.to_string(), joules)` pairs —
/// [`pmt::Domain`] round-trips exactly through its `Display`/`FromStr` pair.
struct WireRecord(MeasurementRecord);

impl Wire for WireRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.label.encode(out);
        self.0.rank.encode(out);
        self.0.iteration.encode(out);
        self.0.start_s.encode(out);
        self.0.end_s.encode(out);
        let energy: Vec<(String, f64)> = self.0.energy_j.iter().map(|(d, &j)| (d.to_string(), j)).collect();
        energy.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let label = String::decode(r)?;
        let rank = u32::decode(r)?;
        let iteration = Option::<u64>::decode(r)?;
        let start_s = f64::decode(r)?;
        let end_s = f64::decode(r)?;
        let pairs = Vec::<(String, f64)>::decode(r)?;
        let mut energy_j = BTreeMap::new();
        for (name, joules) in pairs {
            let domain = pmt::Domain::from_str(&name).map_err(|_| WireError::Malformed("bad measurement domain"))?;
            energy_j.insert(domain, joules);
        }
        Ok(Self(MeasurementRecord {
            label,
            rank,
            iteration,
            start_s,
            end_s,
            energy_j,
        }))
    }
    fn min_wire_size() -> usize {
        // label len + rank + option tag + two f64 + energy len
        8 + 4 + 1 + 8 + 8 + 8
    }
}

impl Wire for DistributedRankReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rank.encode(out);
        self.hostname.encode(out);
        self.owned.encode(out);
        self.ghosts.encode(out);
        self.report.rank.encode(out);
        self.report.hostname.encode(out);
        (self.report.records.len() as u64).encode(out);
        for rec in &self.report.records {
            rec.label.encode(out);
            rec.rank.encode(out);
            rec.iteration.encode(out);
            rec.start_s.encode(out);
            rec.end_s.encode(out);
            let energy: Vec<(String, f64)> = rec.energy_j.iter().map(|(d, &j)| (d.to_string(), j)).collect();
            energy.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rank = u32::decode(r)?;
        let hostname = String::decode(r)?;
        let owned = usize::decode(r)?;
        let ghosts = usize::decode(r)?;
        let report_rank = u32::decode(r)?;
        let report_hostname = String::decode(r)?;
        let records = Vec::<WireRecord>::decode(r)?.into_iter().map(|w| w.0).collect();
        Ok(Self {
            rank,
            hostname,
            owned,
            ghosts,
            report: RankReport {
                rank: report_rank,
                hostname: report_hostname,
                records,
            },
        })
    }
    fn min_wire_size() -> usize {
        4 + 8 + 8 + 8 + 4 + 8 + 8
    }
}

/// Wall-clock accounting of the overlapped mid-step ghost exchange,
/// accumulated across a shard's steps.
///
/// Per multi-rank step: `posted_s` covers posting the nonblocking
/// sends/receives, `overlapped_s` is the interval the exchange spent in
/// flight underneath the interior-row momentum kernel, and `waited_s` is the
/// residual blocking wait once the interior rows ran out. A perfectly hidden
/// exchange has `waited_s ≈ 0`.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverlapStats {
    /// Seconds spent posting the nonblocking ghost exchange.
    pub posted_s: f64,
    /// Seconds the in-flight exchange was covered by interior-row compute.
    pub overlapped_s: f64,
    /// Seconds blocked in the completion wait after interior rows finished.
    pub waited_s: f64,
}

impl OverlapStats {
    /// Fraction of the exchange's total wall footprint hidden under compute:
    /// `overlapped / (posted + overlapped + waited)`. Zero before any
    /// multi-rank step ran.
    pub fn hidden_fraction(&self) -> f64 {
        let total = self.posted_s + self.overlapped_s + self.waited_s;
        if total <= 0.0 {
            return 0.0;
        }
        self.overlapped_s / total
    }

    /// Component-wise sum (for aggregating across ranks).
    pub fn merge(&mut self, other: &OverlapStats) {
        self.posted_s += other.posted_s;
        self.overlapped_s += other.overlapped_s;
        self.waited_s += other.waited_s;
    }
}

/// The in-flight mid-step ghost refresh: receives posted before sends, both
/// completed by [`DistributedSimulation::step`] only after the interior-row
/// momentum kernel has run.
struct GhostExchange {
    sends: Vec<SendHandle>,
    recvs: Vec<RecvHandle<Vec<GhostUpdate>>>,
}

/// The nonblocking owned-count exchange backing the next step's rebalance
/// decision: posted at the very end of step `k` (after the last collective of
/// the step), completed at the top of `sync` in step `k+1`. Ownership cannot
/// change in between, so the completed counts are exactly what a synchronous
/// allgather at the wait site would have produced.
struct PendingCounts {
    sends: Vec<SendHandle>,
    recvs: Vec<RecvHandle<usize>>,
}

impl PendingCounts {
    fn post(comm: &Comm, n_owned: usize) -> Self {
        let rank = comm.rank();
        let size = comm.size();
        let recvs = (0..size).filter(|&s| s != rank).map(|src| comm.irecv(src)).collect();
        let sends = (0..size).filter(|&d| d != rank).map(|dest| comm.isend(dest, n_owned)).collect();
        Self { sends, recvs }
    }

    fn complete(self, comm: &Comm, n_owned: usize) -> Vec<usize> {
        let mut counts = vec![0usize; comm.size()];
        counts[comm.rank()] = n_owned;
        for recv in self.recvs {
            let src = recv.src();
            counts[src] = recv.wait(comm).expect("peer died during the population exchange");
        }
        for send in self.sends {
            send.wait().expect("peer died during the population exchange");
        }
        counts
    }
}

/// One rank's shard of a distributed SPH run.
///
/// Every collective method ([`DistributedSimulation::step`],
/// [`DistributedSimulation::total_energy`]) must be called in lock-step by
/// all ranks of the communicator, exactly as with MPI.
pub struct DistributedSimulation {
    comm: Comm,
    scenario: ScenarioRef,
    /// Owned particles in slots `0..n_owned`, ghosts behind them.
    particles: ParticleSet,
    n_owned: usize,
    /// Global construction-order id of each local slot (owned + ghosts).
    ids: Vec<u32>,
    map: DomainMap,
    workspace: StepWorkspace,
    driver: Option<TurbulenceDriver>,
    hooks: Option<ProfilingHooks>,
    telemetry: Option<Arc<Telemetry>>,
    health_baseline: Option<HealthBaseline>,
    /// Per destination rank: the local owned indices sent as ghosts this step
    /// (reused by the mid-step field refresh, so both sides agree on order).
    send_lists: Vec<Vec<usize>>,
    /// Sorted union of the send lists: rows whose mid-step refresh fields ship
    /// to at least one peer, so they run every pre-momentum stage before the
    /// exchange is posted (reused buffer).
    exchange_rows: Vec<u32>,
    /// Complement of `exchange_rows` over all local rows — computed while the
    /// exchange is in flight (reused buffer).
    post_exchange_rows: Vec<u32>,
    /// Scratch flags backing the partition above (reused buffer).
    row_is_exported: Vec<bool>,
    /// Ghost-tail block length per source rank, recorded by the last halo
    /// exchange — the binned mid-step refresh needs the block extents to skip
    /// frozen ghost slots while draining the (filtered) update streams.
    ghost_counts: Vec<usize>,
    /// Individual-timestep state; `None` runs the global-dt scheme.
    timestep_bins: Option<TimestepBins>,
    /// Active owned rows of the current binned substep (reused buffer).
    active_rows: Vec<u32>,
    /// Per-rung row scratch of the binned AV-switch update (reused buffer).
    rung_rows: Vec<u32>,
    /// Active rows whose CSR row stays clear of ghost slots (reused buffer).
    active_interior_rows: Vec<u32>,
    /// Active rows whose CSR row reads at least one ghost slot (reused buffer).
    active_halo_rows: Vec<u32>,
    /// Overlap accounting of the mid-step ghost exchange.
    overlap: OverlapStats,
    /// Background owned-count exchange feeding the next rebalance decision.
    pending_counts: Option<PendingCounts>,
    rebalance_threshold: f64,
    rebalance_count: u64,
    time: f64,
    step: u64,
    last_dt: f64,
    target_neighbors: f64,
    max_dt: f64,
    softening: f64,
}

impl DistributedSimulation {
    /// Shard `global` (the full construction-order particle set, identical on
    /// every rank) across the communicator along the Morton curve. The
    /// scenario's boundary is stamped onto the set first, so the Morton key
    /// space anchors to the periodic box when there is one and every shard
    /// inherits the same geometry (mirroring the single-rank propagator).
    pub fn new(comm: Comm, scenario: ScenarioRef, mut global: ParticleSet) -> Self {
        global.boundary = scenario.boundary();
        let map = DomainMap::new(&global, comm.size());
        let rank = comm.rank();
        let mine: Vec<usize> = (0..global.len())
            .filter(|&i| map.owner_of((global.x[i], global.y[i], global.z[i])) == rank)
            .collect();
        let particles = global.gather(&mine);
        let ids: Vec<u32> = mine.iter().map(|&i| i as u32).collect();
        let driver = scenario.has_stirring().then(default_turbulence_driver);
        let size = comm.size();
        Self {
            comm,
            scenario,
            n_owned: particles.len(),
            particles,
            ids,
            map,
            workspace: StepWorkspace::new(),
            driver,
            hooks: None,
            // `from_env` hands every rank the *same* `Arc`, so the enablement
            // decision (and the collective health reduction it gates) stays in
            // lock-step across the world.
            telemetry: telemetry::from_env(),
            health_baseline: None,
            send_lists: vec![Vec::new(); size],
            exchange_rows: Vec::new(),
            post_exchange_rows: Vec::new(),
            row_is_exported: Vec::new(),
            ghost_counts: vec![0; size],
            timestep_bins: None,
            active_rows: Vec::new(),
            rung_rows: Vec::new(),
            active_interior_rows: Vec::new(),
            active_halo_rows: Vec::new(),
            overlap: OverlapStats::default(),
            pending_counts: None,
            rebalance_threshold: DEFAULT_REBALANCE_THRESHOLD,
            rebalance_count: 0,
            time: 0.0,
            step: 0,
            last_dt: DEFAULT_INITIAL_DT,
            target_neighbors: DEFAULT_TARGET_NEIGHBORS,
            max_dt: DEFAULT_MAX_DT,
            softening: DEFAULT_SOFTENING,
        }
    }

    /// Shard a scenario's initial conditions (generated deterministically and
    /// identically on every rank) with approximately `n_target` particles in
    /// total.
    pub fn from_scenario(comm: Comm, scenario: ScenarioRef, n_target: usize, seed: u64) -> Self {
        let global = scenario.initial_conditions(n_target, seed);
        Self::new(comm, scenario, global)
    }

    /// Attach per-stage measurement hooks (this rank's PMT instrumentation).
    pub fn with_hooks(mut self, hooks: ProfilingHooks) -> Self {
        self.hooks = Some(hooks);
        self
    }

    /// Attach a telemetry sink. **Collective contract:** every rank of the
    /// communicator must attach the *same* `Arc` (or none of them any) —
    /// the per-step health gauges reduce conserved quantities globally, and a
    /// rank skipping that collective would deadlock the world. Sharing one
    /// sink is also what merges the per-rank streams into one totally ordered
    /// trace ([`run_distributed_traced`] wires this up for you).
    pub fn with_telemetry(mut self, sink: Arc<Telemetry>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Register a region observer (e.g. an `autotune` DVFS governor for this
    /// rank's GPU die) on the attached hooks' meter.
    ///
    /// # Panics
    ///
    /// Panics if called before [`DistributedSimulation::with_hooks`].
    pub fn with_region_observer(self, observer: std::sync::Arc<dyn pmt::RegionObserver>) -> Self {
        let hooks = self
            .hooks
            .as_ref()
            .expect("attach hooks (with_hooks) before registering a region observer");
        hooks.meter().add_region_observer(observer);
        self
    }

    /// Set the load-imbalance threshold that triggers a splitter re-balance.
    /// Values `<= 1` re-balance every step; `f64::INFINITY` disables it.
    pub fn with_rebalance_threshold(mut self, threshold: f64) -> Self {
        self.rebalance_threshold = threshold;
        self
    }

    /// Enable individual (block) timesteps with `n_bins` power-of-two rungs
    /// (see [`crate::propagator::Simulation::with_timestep_bins`]). Collective
    /// contract: every rank of the communicator must pass the same `n_bins` —
    /// the cycle plan, the limiter rounds and the per-substep collectives are
    /// all agreed globally, and a rank on a different scheme would deadlock.
    /// `n_bins <= 1` keeps the global-dt scheme untouched.
    pub fn with_timestep_bins(mut self, n_bins: usize) -> Self {
        self.timestep_bins = (n_bins > 1).then(|| TimestepBins::new(n_bins));
        self
    }

    /// The individual-timestep state, when enabled.
    pub fn timestep_bins(&self) -> Option<&TimestepBins> {
        self.timestep_bins.as_ref()
    }

    /// This rank's communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &ScenarioRef {
        &self.scenario
    }

    /// Number of particles this rank currently owns.
    pub fn n_owned(&self) -> usize {
        self.n_owned
    }

    /// Number of ghost particles currently held (valid after a step).
    pub fn ghost_count(&self) -> usize {
        self.particles.len() - self.n_owned
    }

    /// Local particle storage: owned particles in `0..n_owned()`, ghosts after.
    pub fn particles(&self) -> &ParticleSet {
        &self.particles
    }

    /// Global construction-order id of each local slot (owned + ghosts).
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The current domain map.
    pub fn domain_map(&self) -> &DomainMap {
        &self.map
    }

    /// How many times the splitters were re-balanced so far.
    pub fn rebalance_count(&self) -> u64 {
        self.rebalance_count
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The attached profiling hooks, if any.
    pub fn hooks(&self) -> Option<&ProfilingHooks> {
        self.hooks.as_ref()
    }

    /// Wrap a stage body in the pmt power region (when hooks are attached)
    /// and a rank-tagged telemetry `"stage"` span (when a sink is attached).
    fn instrument<R>(
        hooks: &Option<ProfilingHooks>,
        telemetry: &Option<Arc<Telemetry>>,
        rank: u32,
        label: &str,
        f: impl FnOnce() -> R,
    ) -> R {
        let _span = telemetry.as_ref().map(|t| t.span("stage", label, rank));
        match hooks {
            Some(h) => h.instrument(label, f),
            None => f(),
        }
    }

    fn msg_of(&self, i: usize) -> ParticleMsg {
        let p = &self.particles;
        ParticleMsg {
            id: self.ids[i],
            x: p.x[i],
            y: p.y[i],
            z: p.z[i],
            vx: p.vx[i],
            vy: p.vy[i],
            vz: p.vz[i],
            m: p.m[i],
            h: p.h[i],
            u: p.u[i],
            rho: p.rho[i],
            p: p.p[i],
            c: p.c[i],
            omega: p.omega[i],
            div_v: p.div_v[i],
            curl_v: p.curl_v[i],
            alpha: p.alpha[i],
            du: p.du[i],
            ax: p.ax[i],
            ay: p.ay[i],
            az: p.az[i],
            rung: p.rung[i],
        }
    }

    /// Fail loudly — naming the offending stage — if a stage left a non-finite
    /// value in this rank's *owned* state (the mirror of the single-rank
    /// propagator's guard; ghost slots are checked by their owners, and a NaN
    /// caught here is caught before the next exchange ships it to a peer).
    fn assert_finite_owned(&self, stage: SphStage) {
        let p = &self.particles;
        for i in 0..self.n_owned {
            let finite = p.x[i].is_finite()
                && p.y[i].is_finite()
                && p.z[i].is_finite()
                && p.vx[i].is_finite()
                && p.vy[i].is_finite()
                && p.vz[i].is_finite()
                && p.h[i].is_finite()
                && p.rho[i].is_finite()
                && p.u[i].is_finite()
                && p.p[i].is_finite()
                && p.c[i].is_finite()
                && p.omega[i].is_finite()
                && p.div_v[i].is_finite()
                && p.curl_v[i].is_finite()
                && p.alpha[i].is_finite()
                && p.ax[i].is_finite()
                && p.ay[i].is_finite()
                && p.az[i].is_finite()
                && p.du[i].is_finite();
            assert!(
                finite,
                "stage {} produced a non-finite quantity for owned particle {i} (global id {}) \
                 on rank {} at step {} of scenario {}",
                stage.label(),
                self.ids[i],
                self.comm.rank(),
                self.step,
                self.scenario.short_name(),
            );
        }
    }

    fn push_msg(&mut self, msg: &ParticleMsg) {
        let p = &mut self.particles;
        p.push(msg.x, msg.y, msg.z, msg.vx, msg.vy, msg.vz, msg.m, msg.h, msg.u);
        let j = p.len() - 1;
        p.rho[j] = msg.rho;
        p.p[j] = msg.p;
        p.c[j] = msg.c;
        p.omega[j] = msg.omega;
        p.div_v[j] = msg.div_v;
        p.curl_v[j] = msg.curl_v;
        p.alpha[j] = msg.alpha;
        p.du[j] = msg.du;
        p.ax[j] = msg.ax;
        p.ay[j] = msg.ay;
        p.az[j] = msg.az;
        p.rung[j] = msg.rung;
        self.ids.push(msg.id);
    }

    /// Partition this step's rows for the overlapped exchange: `exchange_rows`
    /// is the sorted union of the send lists (rows whose refreshed fields a
    /// peer will read), `post_exchange_rows` its complement, and the
    /// workspace's interior/halo split classifies the momentum rows by
    /// whether their CSR row touches a ghost slot. All buffers are reused —
    /// the warm path stays allocation-free.
    fn prepare_row_partition(&mut self) {
        let n = self.particles.len();
        self.row_is_exported.clear();
        self.row_is_exported.resize(n, false);
        for list in &self.send_lists {
            for &i in list {
                self.row_is_exported[i] = true;
            }
        }
        self.exchange_rows.clear();
        self.post_exchange_rows.clear();
        for (i, &exported) in self.row_is_exported.iter().enumerate() {
            if exported {
                self.exchange_rows.push(i as u32);
            } else {
                self.post_exchange_rows.push(i as u32);
            }
        }
        self.workspace.partition_rows(self.n_owned);
    }

    /// Accumulated overlap accounting of the mid-step ghost exchange.
    pub fn overlap_stats(&self) -> OverlapStats {
        self.overlap
    }

    /// The `DomainDecompAndSync` body: drop ghosts, migrate, re-balance,
    /// rebuild the ghost layer.
    fn sync(&mut self) {
        let rank = self.comm.rank();
        let size = self.comm.size();

        // Drop last step's ghost tail.
        self.particles.truncate(self.n_owned);
        self.ids.truncate(self.n_owned);

        // Wrap positions back into a periodic box *before* keying, so a
        // particle crossing the wrap seam re-keys to the far end of the
        // Morton curve and migrates to its new owner (and so the wrapped
        // coordinates every rank computes match the single-rank propagator's
        // bit for bit).
        self.particles.wrap_positions();

        // Morton keys of the owned particles in the shared (fixed-box) key
        // space; pure function of position, so every rank agrees on owners.
        let codes: Vec<u64> = (0..self.n_owned)
            .map(|i| {
                self.map
                    .code_of((self.particles.x[i], self.particles.y[i], self.particles.z[i]))
            })
            .collect();

        // Re-balance when populations drifted past the threshold. The
        // decision derives from the owned counts agreed across the world —
        // normally delivered by the background exchange posted at the end of
        // the previous step (ownership is frozen in between, so the values
        // match a synchronous allgather here); the first step, with nothing
        // in flight yet, falls back to the blocking collective.
        let counts = match self.pending_counts.take() {
            Some(pending) => pending.complete(&self.comm, self.n_owned),
            None => self.comm.allgather(self.n_owned),
        };
        let total: usize = counts.iter().sum();
        if size > 1 && total > 0 {
            let mean = total as f64 / size as f64;
            let max = counts.iter().copied().max().unwrap_or(0) as f64;
            if max > self.rebalance_threshold * mean {
                let mut all_codes: Vec<u64> = self.comm.allgather(codes.clone()).into_iter().flatten().collect();
                all_codes.sort_unstable();
                self.map.rebalance(&all_codes);
                self.rebalance_count += 1;
            }
        }

        // Migrate particles whose key now belongs to another rank. The
        // exchange is double-buffered: receives and sends are posted first,
        // the local keep-set compaction overlaps with the in-flight messages,
        // and the receives complete in source-rank order — the same incoming
        // order the old synchronous alltoall produced, so particle ordering
        // (and hence physics) is unchanged.
        let mut outgoing: Vec<Vec<ParticleMsg>> = vec![Vec::new(); size];
        let mut keep: Vec<usize> = Vec::with_capacity(self.n_owned);
        for (i, &code) in codes.iter().enumerate() {
            let dest = self.map.owner_of_code(code);
            if dest == rank {
                keep.push(i);
            } else {
                outgoing[dest].push(self.msg_of(i));
            }
        }
        if size > 1 {
            let migration_recvs: Vec<RecvHandle<Vec<ParticleMsg>>> =
                (0..size).filter(|&s| s != rank).map(|src| self.comm.irecv(src)).collect();
            let migration_sends: Vec<SendHandle> = (0..size)
                .filter(|&d| d != rank)
                .map(|dest| self.comm.isend(dest, std::mem::take(&mut outgoing[dest])))
                .collect();
            // Compact while the wires are busy.
            if keep.len() != self.n_owned {
                let kept_ids: Vec<u32> = keep.iter().map(|&i| self.ids[i]).collect();
                self.particles = self.particles.gather(&keep);
                self.ids = kept_ids;
            }
            for recv in migration_recvs {
                let msgs = recv.wait(&self.comm).expect("peer died during migration");
                for msg in &msgs {
                    self.push_msg(msg);
                }
            }
            for send in migration_sends {
                send.wait().expect("peer died during migration");
            }
            self.n_owned = self.particles.len();
        }

        // Advertise this rank's geometry, then build the send lists: particle
        // i goes to rank b when it can interact with *some* particle of b,
        // over-approximated as distance-to-bounding-box ≤ 2·max(h_i, h_max_b)
        // — measured *periodically* when the box wraps, so ghosts cross the
        // wrap seam (the per-axis image minimum never exceeds the true
        // minimum-image pair distance, keeping the superset guarantee). The
        // superset is harmless: extra ghosts fall outside every neighbour
        // search. Ghosts ship at their wrapped coordinates; the receiving
        // rank's periodic neighbour search and the min-image pair kernels
        // place them on whichever image interacts — including both sides at
        // once when a rank's domain touches both faces of an axis.
        let boundary = self.particles.boundary;
        let meta = {
            let (min, max) = bounding_box_prefix(&self.particles, self.n_owned);
            let h_max = self.particles.h[..self.n_owned].iter().copied().fold(0.0, f64::max);
            RankMeta {
                min,
                max,
                h_max,
                count: self.n_owned,
            }
        };
        let metas = self.comm.allgather(meta);
        for list in &mut self.send_lists {
            list.clear();
        }
        for (dest, dest_meta) in metas.iter().enumerate() {
            if dest == rank || dest_meta.count == 0 {
                continue;
            }
            for i in 0..self.n_owned {
                let pos = (self.particles.x[i], self.particles.y[i], self.particles.z[i]);
                let radius = KERNEL_SUPPORT * self.particles.h[i].max(dest_meta.h_max);
                if boundary.dist_sq_to_box(pos, dest_meta.min, dest_meta.max) <= radius * radius {
                    self.send_lists[dest].push(i);
                }
            }
        }
        let outgoing_ghosts: Vec<Vec<ParticleMsg>> = self
            .send_lists
            .iter()
            .map(|list| list.iter().map(|&i| self.msg_of(i)).collect())
            .collect();
        let incoming_ghosts = self.comm.alltoall(outgoing_ghosts);
        self.ghost_counts.clear();
        self.ghost_counts.extend(incoming_ghosts.iter().map(|msgs| msgs.len()));
        for msgs in &incoming_ghosts {
            for msg in msgs {
                self.push_msg(msg);
            }
        }
    }

    /// Execute one timestep in lock-step with every other rank.
    ///
    /// With individual timesteps enabled
    /// ([`DistributedSimulation::with_timestep_bins`]) one call advances one
    /// hierarchical *substep*, in lock-step: the cycle plan, rung limiting and
    /// the substep dt are agreed through collectives, so every rank takes the
    /// same branch on every substep.
    pub fn step(&mut self) -> StepSummary {
        if self.timestep_bins.is_some() {
            return self.step_binned();
        }
        let hooks = self.hooks.clone();
        if let Some(h) = &hooks {
            h.set_iteration(Some(self.step));
        }
        let tel = self.telemetry.clone();
        let rank_tag = self.comm.rank() as u32;
        let step_span = tel.as_ref().map(|t| {
            let mut span = t.span("step", "Step", rank_tag);
            span.arg("step", self.step as f64);
            span
        });
        let rebalances_before = self.rebalance_count;

        Self::instrument(&hooks, &tel, rank_tag, SphStage::DomainDecompAndSync.label(), || {
            self.sync();
            self.workspace.rebuild_tree(&self.particles, MAX_LEAF_SIZE);
        });

        {
            // Each rank's workspace applies the same builder policy as the
            // single-rank propagator (cell-list sweep at production sizes,
            // octree below the cutoff or under strong h polydispersity), so
            // the 1-rank ≡ N-rank agreement gate covers both builders.
            let ws = &mut self.workspace;
            let particles = &mut self.particles;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::FindNeighbors.label(), || {
                ws.find_neighbors(particles)
            });
        }
        self.assert_finite_owned(SphStage::FindNeighbors);

        // Split this step's rows so the mid-step ghost exchange can hide under
        // compute: exported rows (whose refreshed fields ship to a peer) run
        // every pre-momentum stage first, the exchange is posted nonblocking,
        // the remaining rows and then the interior momentum rows run while it
        // is in flight, and only the halo momentum rows wait for completion.
        // Every pre-momentum stage reads only static neighbour fields
        // (`x, v, m`) plus row-local state, so the two-pass execution is
        // value-identical to the single full pass.
        self.prepare_row_partition();
        let neighbors = self.workspace.neighbors();

        let target_neighbors = self.target_neighbors;
        let last_dt = self.last_dt;
        {
            let p = &mut self.particles;
            let rows: &[u32] = &self.exchange_rows;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::XMass.label(), || {
                compute_density_rows(p, neighbors, rows);
                update_smoothing_length_rows(p, target_neighbors, rows);
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::NormalizationGradh.label(), || {
                compute_gradh_rows(p, neighbors, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::EquationOfState.label(), || {
                apply_eos_rows(p, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::IADVelocityDivCurl.label(), || {
                compute_div_curl_rows(p, neighbors, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::AVSwitches.label(), || {
                update_av_switches_rows(p, last_dt, rows)
            });
        }

        // The exported rows now carry this step's final pre-momentum fields:
        // put them on the wire and keep computing underneath.
        let exchange = if self.comm.size() > 1 {
            let posted_at = Instant::now();
            let handles = {
                let comm = &self.comm;
                let send_lists = &self.send_lists;
                let p = &self.particles;
                Self::instrument(&hooks, &tel, rank_tag, "GhostExchangePost", || {
                    post_ghost_refresh(comm, send_lists, p)
                })
            };
            self.overlap.posted_s += posted_at.elapsed().as_secs_f64();
            Some((handles, Instant::now()))
        } else {
            None
        };

        {
            let p = &mut self.particles;
            let rows: &[u32] = &self.post_exchange_rows;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::XMass.label(), || {
                compute_density_rows(p, neighbors, rows);
                update_smoothing_length_rows(p, target_neighbors, rows);
            });
        }
        self.assert_finite_owned(SphStage::XMass);
        {
            let p = &mut self.particles;
            let rows: &[u32] = &self.post_exchange_rows;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::NormalizationGradh.label(), || {
                compute_gradh_rows(p, neighbors, rows)
            });
        }
        self.assert_finite_owned(SphStage::NormalizationGradh);
        {
            let p = &mut self.particles;
            let rows: &[u32] = &self.post_exchange_rows;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::EquationOfState.label(), || {
                apply_eos_rows(p, rows)
            });
        }
        self.assert_finite_owned(SphStage::EquationOfState);
        {
            let p = &mut self.particles;
            let rows: &[u32] = &self.post_exchange_rows;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::IADVelocityDivCurl.label(), || {
                compute_div_curl_rows(p, neighbors, rows)
            });
        }
        self.assert_finite_owned(SphStage::IADVelocityDivCurl);
        {
            let p = &mut self.particles;
            let rows: &[u32] = &self.post_exchange_rows;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::AVSwitches.label(), || {
                update_av_switches_rows(p, last_dt, rows)
            });
        }
        self.assert_finite_owned(SphStage::AVSwitches);

        {
            // Momentum in two halves around the exchange completion: interior
            // rows touch no ghost slot and run while the refresh is still in
            // flight; halo rows (and the ghost rows themselves) wait for the
            // refreshed ρ/h/P/c/Ω/α before reading them.
            let comm = &self.comm;
            let p = &mut self.particles;
            let ws = &self.workspace;
            let n_owned = self.n_owned;
            let overlap = &mut self.overlap;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::MomentumEnergy.label(), || {
                {
                    let _span = tel.as_ref().map(|t| t.span("stage", "MomentumInterior", rank_tag));
                    compute_momentum_energy_rows(p, neighbors, ws.interior_rows());
                }
                if let Some((handles, in_flight_since)) = exchange {
                    overlap.overlapped_s += in_flight_since.elapsed().as_secs_f64();
                    let _span = tel.as_ref().map(|t| t.span("stage", "GhostExchangeWait", rank_tag));
                    let wait_started = Instant::now();
                    complete_ghost_refresh(comm, p, n_owned, handles);
                    overlap.waited_s += wait_started.elapsed().as_secs_f64();
                }
                {
                    let _span = tel.as_ref().map(|t| t.span("stage", "MomentumHalo", rank_tag));
                    compute_momentum_energy_rows(p, neighbors, ws.halo_rows());
                }
            });
        }
        self.assert_finite_owned(SphStage::MomentumEnergy);

        if self.scenario.has_gravity() {
            let comm = &self.comm;
            let particles = &mut self.particles;
            let n_owned = self.n_owned;
            let softening = self.softening;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::Gravity.label(), || {
                add_gravity_global(comm, particles, n_owned, softening)
            });
            self.assert_finite_owned(SphStage::Gravity);
        }

        if let Some(driver) = &self.driver {
            let time = self.time;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::Turbulence.label(), || {
                driver.apply(&mut self.particles, time)
            });
            self.assert_finite_owned(SphStage::Turbulence);
        }

        let dt = Self::instrument(&hooks, &tel, rank_tag, SphStage::Timestep.label(), || {
            let local = courant_timestep_prefix(&self.particles, self.n_owned, self.max_dt);
            self.comm.allreduce_min(local)
        });
        assert!(
            dt.is_finite() && dt > 0.0,
            "stage {} produced an invalid timestep {dt} at step {} of scenario {}",
            SphStage::Timestep.label(),
            self.step,
            self.scenario.short_name()
        );

        Self::instrument(&hooks, &tel, rank_tag, SphStage::UpdateQuantities.label(), || {
            update_quantities(&mut self.particles, dt)
        });
        self.assert_finite_owned(SphStage::UpdateQuantities);

        self.time += dt;
        self.step += 1;
        self.last_dt = dt;
        let summary = StepSummary {
            step: self.step,
            dt,
            time: self.time,
            total_energy: self.total_energy(),
        };
        drop(step_span);
        self.emit_step_telemetry(&summary, self.rebalance_count > rebalances_before);
        // Post the owned counts feeding the next step's rebalance decision in
        // the background: the wait sits at the top of the next sync, and
        // ownership is frozen until then. Collectives between steps (say a
        // caller's total_energy) are safe to cross the in-flight handles —
        // the transport matches per (sender, message class), and these are
        // the only p2p messages live between steps.
        if self.comm.size() > 1 {
            self.pending_counts = Some(PendingCounts::post(&self.comm, self.n_owned));
        }
        summary
    }

    /// One hierarchical substep of the distributed individual-timestep scheme,
    /// in lock-step with every other rank.
    ///
    /// The full `DomainDecompAndSync` runs every substep — frozen particles
    /// drift too, so the ghost layer is re-shipped fresh (now carrying the
    /// owners' rungs) and migration stays live mid-cycle. Mid-cycle the pair
    /// stages rebuild and recompute only the *active* owned rows, and the
    /// mid-step ghost refresh is filtered to the active entries on both sides
    /// — sender and receiver derive activity from the same shipped rungs and
    /// the same globally agreed schedule, so the streams align without any
    /// extra header traffic. Cycle planning reduces the Courant minimum
    /// globally, the neighbour-rung limiter alternates local Jacobi rounds
    /// with ghost-rung exchanges until no rank reports a change, and the
    /// deepest rung is agreed by a max-reduction: every rank runs the same
    /// cycle, so every collective fires on every rank on every substep.
    fn step_binned(&mut self) -> StepSummary {
        let mut bins = self.timestep_bins.take().expect("step_binned requires bins");
        let mut active = std::mem::take(&mut self.active_rows);
        let mut rung_scratch = std::mem::take(&mut self.rung_rows);

        let hooks = self.hooks.clone();
        if let Some(h) = &hooks {
            h.set_iteration(Some(self.step));
        }
        let tel = self.telemetry.clone();
        let rank_tag = self.comm.rank() as u32;
        let step_span = tel.as_ref().map(|t| {
            let mut span = t.span("step", "Step", rank_tag);
            span.arg("step", self.step as f64);
            span
        });
        let rebalances_before = self.rebalance_count;
        let sync_start = bins.at_cycle_start();

        Self::instrument(&hooks, &tel, rank_tag, SphStage::DomainDecompAndSync.label(), || {
            self.sync();
            self.workspace.rebuild_tree(&self.particles, MAX_LEAF_SIZE);
        });

        // Active owned rows of this substep: everyone at a cycle start
        // (phase 0 activates every rung), otherwise the rows whose rung
        // divides the phase. Ascending — the subset CSR builders need that.
        if sync_start {
            active.clear();
            active.extend(0..self.n_owned as u32);
        } else {
            bins.collect_active_rows(&self.particles, self.n_owned, &mut active);
        }

        {
            let ws = &mut self.workspace;
            let particles = &mut self.particles;
            let rows: &[u32] = &active;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::FindNeighbors.label(), || {
                if sync_start {
                    ws.find_neighbors(particles);
                } else {
                    ws.find_neighbors_rows(particles, rows);
                }
            });
        }
        self.assert_finite_owned(SphStage::FindNeighbors);

        // Split the active rows for the overlapped exchange (exported first,
        // the rest while the wire is busy) and for the momentum completion
        // point (interior vs halo). Inactive rows must never reach a pair
        // kernel — a `_rows` kernel overwrites its rows' outputs, and
        // mid-cycle an inactive row's CSR row is empty.
        {
            let n = self.particles.len();
            self.row_is_exported.clear();
            self.row_is_exported.resize(n, false);
            for list in &self.send_lists {
                for &i in list {
                    self.row_is_exported[i] = true;
                }
            }
            self.exchange_rows.clear();
            self.post_exchange_rows.clear();
            self.active_interior_rows.clear();
            self.active_halo_rows.clear();
            let nl = self.workspace.neighbors();
            let n_owned = self.n_owned as u32;
            for &i in active.iter() {
                if self.row_is_exported[i as usize] {
                    self.exchange_rows.push(i);
                } else {
                    self.post_exchange_rows.push(i);
                }
                if nl.neighbors(i as usize).iter().any(|&j| j >= n_owned) {
                    self.active_halo_rows.push(i);
                } else {
                    self.active_interior_rows.push(i);
                }
            }
        }
        let neighbors = self.workspace.neighbors();

        let target_neighbors = self.target_neighbors;
        let last_dt = self.last_dt;
        {
            let p = &mut self.particles;
            let rows: &[u32] = &self.exchange_rows;
            let b = &bins;
            let scratch = &mut rung_scratch;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::XMass.label(), || {
                compute_density_rows(p, neighbors, rows);
                update_smoothing_length_rows(p, target_neighbors, rows);
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::NormalizationGradh.label(), || {
                compute_gradh_rows(p, neighbors, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::EquationOfState.label(), || {
                apply_eos_rows(p, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::IADVelocityDivCurl.label(), || {
                compute_div_curl_rows(p, neighbors, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::AVSwitches.label(), || {
                update_av_switches_binned(p, b, last_dt, rows, scratch)
            });
        }

        // The exported *active* rows now carry this substep's final
        // pre-momentum fields: put the filtered refresh on the wire and keep
        // computing underneath. Frozen exported rows didn't change this
        // substep — their ghost copies, shipped by this substep's sync, are
        // already current.
        let exchange = if self.comm.size() > 1 {
            let posted_at = Instant::now();
            let handles = {
                let comm = &self.comm;
                let send_lists = &self.send_lists;
                let p = &self.particles;
                let b = &bins;
                Self::instrument(&hooks, &tel, rank_tag, "GhostExchangePost", || {
                    post_ghost_refresh_filtered(comm, send_lists, p, |i| b.is_active(p.rung[i]))
                })
            };
            self.overlap.posted_s += posted_at.elapsed().as_secs_f64();
            Some((handles, Instant::now()))
        } else {
            None
        };

        {
            let p = &mut self.particles;
            let rows: &[u32] = &self.post_exchange_rows;
            let b = &bins;
            let scratch = &mut rung_scratch;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::XMass.label(), || {
                compute_density_rows(p, neighbors, rows);
                update_smoothing_length_rows(p, target_neighbors, rows);
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::NormalizationGradh.label(), || {
                compute_gradh_rows(p, neighbors, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::EquationOfState.label(), || {
                apply_eos_rows(p, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::IADVelocityDivCurl.label(), || {
                compute_div_curl_rows(p, neighbors, rows)
            });
            Self::instrument(&hooks, &tel, rank_tag, SphStage::AVSwitches.label(), || {
                update_av_switches_binned(p, b, last_dt, rows, scratch)
            });
        }
        self.assert_finite_owned(SphStage::XMass);
        self.assert_finite_owned(SphStage::AVSwitches);

        {
            let comm = &self.comm;
            let p = &mut self.particles;
            let n_owned = self.n_owned;
            let ghost_counts = &self.ghost_counts;
            let interior: &[u32] = &self.active_interior_rows;
            let halo: &[u32] = &self.active_halo_rows;
            let overlap = &mut self.overlap;
            let b = &bins;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::MomentumEnergy.label(), || {
                {
                    let _span = tel.as_ref().map(|t| t.span("stage", "MomentumInterior", rank_tag));
                    compute_momentum_energy_rows(p, neighbors, interior);
                }
                if let Some((handles, in_flight_since)) = exchange {
                    overlap.overlapped_s += in_flight_since.elapsed().as_secs_f64();
                    let _span = tel.as_ref().map(|t| t.span("stage", "GhostExchangeWait", rank_tag));
                    let wait_started = Instant::now();
                    complete_ghost_refresh_binned(comm, p, n_owned, ghost_counts, handles, b);
                    overlap.waited_s += wait_started.elapsed().as_secs_f64();
                }
                {
                    let _span = tel.as_ref().map(|t| t.span("stage", "MomentumHalo", rank_tag));
                    compute_momentum_energy_rows(p, neighbors, halo);
                }
            });
        }
        self.assert_finite_owned(SphStage::MomentumEnergy);

        if self.scenario.has_gravity() {
            let comm = &self.comm;
            let particles = &mut self.particles;
            let n_owned = self.n_owned;
            let softening = self.softening;
            let rows: &[u32] = &active;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::Gravity.label(), || {
                add_gravity_global_rows(comm, particles, n_owned, softening, rows)
            });
            self.assert_finite_owned(SphStage::Gravity);
        }

        if let Some(driver) = &self.driver {
            let time = self.time;
            let rows: &[u32] = &active;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::Turbulence.label(), || {
                driver.apply_rows(&mut self.particles, time, rows)
            });
            self.assert_finite_owned(SphStage::Turbulence);
        }

        let dt = {
            let comm = &self.comm;
            let ws = &self.workspace;
            let particles = &mut self.particles;
            let send_lists = &self.send_lists;
            let n_owned = self.n_owned;
            let max_dt = self.max_dt;
            let rows: &[u32] = &active;
            let b = &mut bins;
            Self::instrument(&hooks, &tel, rank_tag, SphStage::Timestep.label(), || {
                if sync_start {
                    let local = courant_timestep_prefix(particles, n_owned, max_dt);
                    let dt_min = comm.allreduce_min(local);
                    b.plan(dt_min, max_dt);
                    b.assign_rungs(particles, n_owned);
                    // Limiter to the global fixpoint: ship owned rungs onto
                    // peers' ghost slots, run one local raise-only round,
                    // stop when no rank changed anything. Raise-only and
                    // monotone, so the fixpoint is unique — the rank count
                    // cannot change the result, only how it is reached.
                    loop {
                        exchange_ghost_rungs(comm, send_lists, particles, n_owned);
                        let changed = b.limiter_round(particles, ws.neighbors(), n_owned);
                        if comm.allreduce_max(if changed { 1.0 } else { 0.0 }) == 0.0 {
                            break;
                        }
                    }
                    let k_deep = comm.allreduce_max(b.max_rung(particles, n_owned) as f64) as u32;
                    b.seal(k_deep);
                } else {
                    b.deepen(particles, rows);
                }
                b.dt_sub()
            })
        };
        assert!(
            dt.is_finite() && dt > 0.0,
            "stage {} produced an invalid timestep {dt} at step {} of scenario {}",
            SphStage::Timestep.label(),
            self.step,
            self.scenario.short_name()
        );

        Self::instrument(&hooks, &tel, rank_tag, SphStage::UpdateQuantities.label(), || {
            update_quantities_binned(&mut self.particles, &bins)
        });
        self.assert_finite_owned(SphStage::UpdateQuantities);

        self.time += dt;
        self.step += 1;
        self.last_dt = dt;
        let summary = StepSummary {
            step: self.step,
            dt,
            time: self.time,
            total_energy: self.total_energy(),
        };
        drop(step_span);
        self.emit_bins_telemetry(&bins, sync_start);
        self.emit_step_telemetry(&summary, self.rebalance_count > rebalances_before);
        bins.advance();
        if self.comm.size() > 1 {
            self.pending_counts = Some(PendingCounts::post(&self.comm, self.n_owned));
        }

        self.timestep_bins = Some(bins);
        self.active_rows = active;
        self.rung_rows = rung_scratch;
        summary
    }

    /// Per-substep bin diagnostics: every rank feeds its owned rungs into the
    /// shared `health.dt_bins` histogram; rank 0 additionally emits the
    /// `sim.timestep` instant and bumps `sim.timestep.events` when a new
    /// cycle was planned this substep. Not collective (pure sink writes); the
    /// flush rides on [`DistributedSimulation::emit_step_telemetry`], which
    /// runs right after.
    fn emit_bins_telemetry(&self, bins: &TimestepBins, planned: bool) {
        let Some(tel) = &self.telemetry else {
            return;
        };
        if !tel.enabled() {
            return;
        }
        let histogram = tel.metrics().histogram("health.dt_bins", &DT_BINS_HISTOGRAM_BOUNDS);
        for &k in &self.particles.rung[..self.n_owned] {
            histogram.observe(k as f64);
        }
        if self.comm.rank() == 0 && planned {
            tel.instant(
                "sim",
                "timestep",
                0,
                &[
                    ("k_deep", bins.k_deep() as f64),
                    ("dt_base", bins.dt_base()),
                    ("cycle_len", bins.cycle_len() as f64),
                ],
            );
            tel.metrics().counter("sim.timestep.events").inc();
        }
    }

    /// Publish the per-step health gauges. Global conserved quantities are
    /// agreed through one extra allgather — collective, but only executed when
    /// a sink is enabled, which every rank decides identically because they
    /// hold the same `Arc` (see [`DistributedSimulation::with_telemetry`]).
    /// Rank 0 emits the global gauges (same names as the single-rank
    /// propagator); every rank reports its own owned/ghost population and
    /// feeds its owned CSR rows into the shared neighbour histogram.
    fn emit_step_telemetry(&mut self, summary: &StepSummary, rebalanced: bool) {
        let Some(tel) = self.telemetry.clone() else {
            return;
        };
        if !tel.enabled() {
            return;
        }
        let rank = self.comm.rank();
        let rank_tag = rank as u32;
        let p = &self.particles;
        let mut local = [0.0f64; 5]; // mass, Px, Py, Pz, Σ m·|v| over owned
        for i in 0..self.n_owned {
            local[0] += p.m[i];
            local[1] += p.m[i] * p.vx[i];
            local[2] += p.m[i] * p.vy[i];
            local[3] += p.m[i] * p.vz[i];
            local[4] += p.m[i] * (p.vx[i] * p.vx[i] + p.vy[i] * p.vy[i] + p.vz[i] * p.vz[i]).sqrt();
        }
        let gathered = self.comm.allgather(local);
        let mut global = [0.0f64; 5];
        for block in &gathered {
            for (g, b) in global.iter_mut().zip(block) {
                *g += b;
            }
        }
        let (mass, momentum, momentum_scale) = (global[0], [global[1], global[2], global[3]], global[4]);
        let baseline = *self.health_baseline.get_or_insert(HealthBaseline {
            energy: summary.total_energy,
            mass,
            momentum,
            momentum_scale,
        });
        if rank == 0 {
            let momentum_drift = {
                let d = [
                    momentum[0] - baseline.momentum[0],
                    momentum[1] - baseline.momentum[1],
                    momentum[2] - baseline.momentum[2],
                ];
                let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                norm / baseline.momentum_scale.max(momentum_scale).max(1e-12)
            };
            tel.gauge("health", "health.total_energy", 0, summary.total_energy);
            tel.gauge(
                "health",
                "health.energy_drift",
                0,
                (summary.total_energy - baseline.energy).abs() / baseline.energy.abs().max(1e-12),
            );
            tel.gauge(
                "health",
                "health.mass_drift",
                0,
                (mass - baseline.mass).abs() / baseline.mass.abs().max(1e-12),
            );
            tel.gauge("health", "health.momentum_drift", 0, momentum_drift);
            tel.gauge("health", "health.dt", 0, summary.dt);
            if rebalanced {
                tel.instant("sim", "rebalance", 0, &[("step", (summary.step - 1) as f64)]);
                tel.metrics().counter("sim.rebalance.events").inc();
            }
        }
        tel.gauge("sim", &format!("sim.rank{rank}.owned"), rank_tag, self.n_owned as f64);
        tel.gauge(
            "sim",
            &format!("sim.rank{rank}.ghosts"),
            rank_tag,
            (self.particles.len() - self.n_owned) as f64,
        );
        let lists = self.workspace.neighbors();
        let histogram = tel.metrics().histogram("health.neighbor_count", &NEIGHBOR_HISTOGRAM_BOUNDS);
        for i in 0..self.n_owned.min(lists.len()) {
            histogram.observe(lists.count(i).saturating_sub(1) as f64);
        }
        if rank == 0 {
            tel.flush();
        }
    }

    /// Publish this rank's communication totals into the sink: one registry
    /// counter pair per collective kind (`comm.<kind>.messages` /
    /// `comm.<kind>.bytes`, summed across ranks sharing the sink) plus
    /// rank-tagged counter-track samples in the event stream. Call once at the
    /// end of a run — registry counters are monotonic, so calling it again
    /// would double-count. Not collective.
    pub fn publish_comm_stats(&self) {
        let Some(tel) = &self.telemetry else {
            return;
        };
        if !tel.enabled() {
            return;
        }
        let rank_tag = self.comm.rank() as u32;
        let snapshot = self.comm.stats();
        let backend = self.comm.transport_kind().label();
        for kind in CollectiveKind::all() {
            let row = snapshot.row(kind);
            if row.calls == 0 {
                continue;
            }
            let messages = format!("comm.{}.messages", kind.label());
            let bytes = format!("comm.{}.bytes", kind.label());
            tel.metrics().counter(&messages).add(row.messages);
            tel.metrics().counter(&bytes).add(row.bytes);
            tel.metrics().counter(&format!("comm.{}.calls", kind.label())).add(row.calls);
            tel.counter_sample("comm", &messages, rank_tag, row.messages as f64);
            tel.counter_sample("comm", &bytes, rank_tag, row.bytes as f64);
            // The same totals, attributed to the transport backend that moved
            // them — lets a trace distinguish shm from socket traffic.
            tel.metrics()
                .counter(&format!("comm.{backend}.{}.messages", kind.label()))
                .add(row.messages);
            tel.metrics()
                .counter(&format!("comm.{backend}.{}.bytes", kind.label()))
                .add(row.bytes);
            tel.metrics()
                .counter(&format!("comm.{backend}.{}.calls", kind.label()))
                .add(row.calls);
        }
        // Ghost-exchange overlap accounting: how much of the mid-step
        // exchange's wall footprint stayed hidden under interior-row compute.
        let overlap = self.overlap;
        if overlap.posted_s + overlap.overlapped_s + overlap.waited_s > 0.0 {
            tel.gauge("comm", "comm.overlap.posted_s", rank_tag, overlap.posted_s);
            tel.gauge("comm", "comm.overlap.overlapped_s", rank_tag, overlap.overlapped_s);
            tel.gauge("comm", "comm.overlap.waited_s", rank_tag, overlap.waited_s);
            tel.gauge("comm", "comm.overlap.hidden_frac", rank_tag, overlap.hidden_fraction());
        }
    }

    /// Run `n` timesteps and return the per-step summaries.
    pub fn run(&mut self, n: u64) -> Vec<StepSummary> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Global total energy: kinetic + internal (all-reduced over owned
    /// particles), plus gravitational potential for self-gravitating runs
    /// (pair-summed on rank 0 over gathered global state and broadcast).
    ///
    /// Collective: every rank must call this together.
    pub fn total_energy(&self) -> f64 {
        let n = self.n_owned;
        let p = &self.particles;
        let mut local = 0.0;
        for i in 0..n {
            local += 0.5 * p.m[i] * (p.vx[i].powi(2) + p.vy[i].powi(2) + p.vz[i].powi(2));
            local += p.m[i] * p.u[i];
        }
        let mut e = self.comm.allreduce_sum(local);
        if self.scenario.has_gravity() {
            // The O(N²) pair sum runs on rank 0 only (over gathered global
            // arrays) and the value is broadcast — every other rank doing the
            // same serial sum would just burn R× the work for an identical
            // result.
            let payload = (
                p.x[..n].to_vec(),
                p.y[..n].to_vec(),
                p.z[..n].to_vec(),
                p.m[..n].to_vec(),
            );
            let gathered = self.comm.gather(payload, 0);
            // Only the root produces a value: the closure runs on rank 0
            // alone, where the gather returned `Some`.
            e += self.comm.broadcast(0, || {
                let blocks = gathered.expect("rank 0 gathers every block");
                let mut x = Vec::new();
                let mut y = Vec::new();
                let mut z = Vec::new();
                let mut m = Vec::new();
                for (bx, by, bz, bm) in blocks {
                    x.extend_from_slice(&bx);
                    y.extend_from_slice(&by);
                    z.extend_from_slice(&bz);
                    m.extend_from_slice(&bm);
                }
                potential_energy_slices(&x, &y, &z, &m, self.softening)
            });
        }
        e
    }

    /// Consume the shard, returning its owned particles and their global ids
    /// (ghost tail dropped).
    pub fn into_shard(mut self) -> (Vec<u32>, ParticleSet) {
        self.particles.truncate(self.n_owned);
        self.ids.truncate(self.n_owned);
        (self.ids, self.particles)
    }
}

/// Axis-aligned bounding box of the first `n` particles.
fn bounding_box_prefix(p: &ParticleSet, n: usize) -> ((f64, f64, f64), (f64, f64, f64)) {
    let mut min = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for i in 0..n {
        min.0 = min.0.min(p.x[i]);
        min.1 = min.1.min(p.y[i]);
        min.2 = min.2.min(p.z[i]);
        max.0 = max.0.max(p.x[i]);
        max.1 = max.1.max(p.y[i]);
        max.2 = max.2.max(p.z[i]);
    }
    (min, max)
}

/// Post the mid-step ghost refresh without blocking: one receive per peer
/// (completed later in source-rank order — the order the ghost tail is stored
/// in) and one send per peer carrying the fields the momentum kernel reads,
/// in the exact send-list order of this step's halo exchange.
fn post_ghost_refresh(comm: &Comm, send_lists: &[Vec<usize>], particles: &ParticleSet) -> GhostExchange {
    post_ghost_refresh_filtered(comm, send_lists, particles, |_| true)
}

/// [`post_ghost_refresh`] restricted to the send-list entries `active`
/// accepts — the binned mid-step refresh ships only the rows kicked this
/// substep. Receivers skip the frozen ghost slots symmetrically
/// ([`complete_ghost_refresh_binned`]): both sides derive activity from the
/// same shipped rungs and the same globally agreed schedule, so the filtered
/// streams stay aligned without any extra header traffic.
fn post_ghost_refresh_filtered(
    comm: &Comm,
    send_lists: &[Vec<usize>],
    particles: &ParticleSet,
    active: impl Fn(usize) -> bool,
) -> GhostExchange {
    let rank = comm.rank();
    let size = comm.size();
    let recvs = (0..size).filter(|&s| s != rank).map(|src| comm.irecv(src)).collect();
    let sends = (0..size)
        .filter(|&d| d != rank)
        .map(|dest| {
            let updates: Vec<GhostUpdate> = send_lists[dest]
                .iter()
                .filter(|&&i| active(i))
                .map(|&i| GhostUpdate {
                    rho: particles.rho[i],
                    h: particles.h[i],
                    p: particles.p[i],
                    c: particles.c[i],
                    omega: particles.omega[i],
                    alpha: particles.alpha[i],
                })
                .collect();
            comm.isend(dest, updates)
        })
        .collect();
    GhostExchange { sends, recvs }
}

/// Complete a posted ghost refresh: drain the receives in source-rank order
/// onto the ghost tail, then reap the sends.
fn complete_ghost_refresh(comm: &Comm, particles: &mut ParticleSet, n_owned: usize, exchange: GhostExchange) {
    let mut slot = n_owned;
    for recv in exchange.recvs {
        let updates = recv.wait(comm).expect("peer died during the ghost refresh");
        for u in &updates {
            particles.rho[slot] = u.rho;
            particles.h[slot] = u.h;
            particles.p[slot] = u.p;
            particles.c[slot] = u.c;
            particles.omega[slot] = u.omega;
            particles.alpha[slot] = u.alpha;
            slot += 1;
        }
    }
    debug_assert_eq!(slot, particles.len(), "ghost refresh out of sync with the ghost tail");
    for send in exchange.sends {
        send.wait().expect("peer died during the ghost refresh");
    }
}

/// Complete a *filtered* ghost refresh posted by
/// [`post_ghost_refresh_filtered`]: walk each source rank's ghost block in
/// tail order (block extents recorded at sync time), write the next update
/// onto every slot whose rung is active this substep, and leave the frozen
/// slots untouched — their owners did not recompute this substep, so the
/// values shipped by this substep's sync are already current. The sender
/// filtered its list by the same rung activity, so the stream and the active
/// slots align entry for entry; the assertions catch any drift.
fn complete_ghost_refresh_binned(
    comm: &Comm,
    particles: &mut ParticleSet,
    n_owned: usize,
    ghost_counts: &[usize],
    exchange: GhostExchange,
    bins: &TimestepBins,
) {
    let mut slot = n_owned;
    for recv in exchange.recvs {
        let src = recv.src();
        let updates = recv.wait(comm).expect("peer died during the ghost refresh");
        let mut next = updates.iter();
        for _ in 0..ghost_counts[src] {
            if bins.is_active(particles.rung[slot]) {
                let u = next.next().expect("filtered ghost refresh under-ran its block");
                particles.rho[slot] = u.rho;
                particles.h[slot] = u.h;
                particles.p[slot] = u.p;
                particles.c[slot] = u.c;
                particles.omega[slot] = u.omega;
                particles.alpha[slot] = u.alpha;
            }
            slot += 1;
        }
        assert!(next.next().is_none(), "filtered ghost refresh over-ran its block");
    }
    debug_assert_eq!(slot, particles.len(), "ghost refresh out of sync with the ghost tail");
    for send in exchange.sends {
        send.wait().expect("peer died during the ghost refresh");
    }
}

/// Ship every rank's owned rungs onto its peers' ghost slots: send-list order
/// on the wire, source-rank block order on the ghost tail — the same
/// alignment the halo exchange established at sync. One call per limiter
/// round keeps the Jacobi iteration reading current neighbour rungs across
/// rank boundaries.
fn exchange_ghost_rungs(comm: &Comm, send_lists: &[Vec<usize>], particles: &mut ParticleSet, n_owned: usize) {
    if comm.size() <= 1 {
        return;
    }
    let outgoing: Vec<Vec<u8>> = send_lists
        .iter()
        .map(|list| list.iter().map(|&i| particles.rung[i]).collect())
        .collect();
    let incoming = comm.alltoall(outgoing);
    let mut slot = n_owned;
    for rungs in &incoming {
        for &k in rungs {
            particles.rung[slot] = k;
            slot += 1;
        }
    }
    debug_assert_eq!(slot, particles.len(), "rung exchange out of sync with the ghost tail");
}

/// Allgather the owned `(x, y, z, m)` arrays of every rank, concatenated in
/// rank order. Returns identical data on every rank.
fn allgather_positions_masses(
    comm: &Comm,
    p: &ParticleSet,
    n_owned: usize,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let payload = (
        p.x[..n_owned].to_vec(),
        p.y[..n_owned].to_vec(),
        p.z[..n_owned].to_vec(),
        p.m[..n_owned].to_vec(),
    );
    let gathered = comm.allgather(payload);
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut z = Vec::new();
    let mut m = Vec::new();
    for (gx, gy, gz, gm) in gathered {
        x.extend_from_slice(&gx);
        y.extend_from_slice(&gy);
        z.extend_from_slice(&gz);
        m.extend_from_slice(&gm);
    }
    (x, y, z, m)
}

/// Barnes–Hut gravity over the *global* particle distribution: allgather
/// positions and masses, build the global tree (identical on every rank, since
/// the gathered arrays are), and accelerate this rank's owned particles.
fn add_gravity_global(comm: &Comm, particles: &mut ParticleSet, n_owned: usize, softening: f64) {
    let (x, y, z, m) = allgather_positions_masses(comm, particles, n_owned);
    let tree = Octree::build(&x, &y, &z, &m, MAX_LEAF_SIZE);
    // Offset of this rank's block in the gathered arrays.
    let offsets = comm.allgather(n_owned);
    let my_start: usize = offsets[..comm.rank()].iter().sum();
    for i in 0..n_owned {
        let (gx, gy, gz) = tree.gravity_at(
            (particles.x[i], particles.y[i], particles.z[i]),
            crate::physics::gravity::DEFAULT_THETA,
            softening,
            &x,
            &y,
            &z,
            &m,
            my_start + i,
        );
        particles.ax[i] += gx;
        particles.ay[i] += gy;
        particles.az[i] += gz;
    }
}

/// [`add_gravity_global`] restricted to `rows` (the active owned rows of this
/// substep). The allgather and the global tree build still run on every rank
/// on every substep — the collective schedule must stay in lock-step
/// regardless of local activity — but only the given rows are accelerated;
/// frozen particles keep the acceleration of their own last kick.
fn add_gravity_global_rows(comm: &Comm, particles: &mut ParticleSet, n_owned: usize, softening: f64, rows: &[u32]) {
    let (x, y, z, m) = allgather_positions_masses(comm, particles, n_owned);
    let tree = Octree::build(&x, &y, &z, &m, MAX_LEAF_SIZE);
    let offsets = comm.allgather(n_owned);
    let my_start: usize = offsets[..comm.rank()].iter().sum();
    for &row in rows {
        let i = row as usize;
        debug_assert!(i < n_owned, "gravity rows must be owned rows");
        let (gx, gy, gz) = tree.gravity_at(
            (particles.x[i], particles.y[i], particles.z[i]),
            crate::physics::gravity::DEFAULT_THETA,
            softening,
            &x,
            &y,
            &z,
            &m,
            my_start + i,
        );
        particles.ax[i] += gx;
        particles.ay[i] += gy;
        particles.az[i] += gz;
    }
}

/// One rank's final state from [`run_distributed`].
pub struct ShardResult {
    /// Rank id.
    pub rank: usize,
    /// Global construction-order id of each owned particle.
    pub ids: Vec<u32>,
    /// The rank's owned particles (no ghosts).
    pub particles: ParticleSet,
    /// Per-step global summaries (identical on every rank up to round-off).
    pub summaries: Vec<StepSummary>,
    /// How many splitter re-balances this rank observed.
    pub rebalances: u64,
    /// Ghost-exchange overlap accounting accumulated over the run.
    pub overlap: OverlapStats,
}

/// Drive one [`DistributedSimulation`] shard per rank on plain threads and
/// return every rank's final shard. This is the hardware-free physics path —
/// the decomposition/equivalence tests and the CI smoke gate run through it.
pub fn run_distributed(
    scenario: ScenarioRef,
    n_ranks: usize,
    n_target: usize,
    seed: u64,
    steps: u64,
) -> Vec<ShardResult> {
    run_distributed_with_transport(scenario, n_ranks, n_target, seed, steps, TransportKind::Shm)
}

/// [`run_distributed`] over an explicit transport backend. `Socket` runs the
/// identical rank threads over real Unix-socket connections and the
/// hand-rolled wire codec — the transport-equivalence gate drives both
/// backends through here and requires bit-comparable physics.
pub fn run_distributed_with_transport(
    scenario: ScenarioRef,
    n_ranks: usize,
    n_target: usize,
    seed: u64,
    steps: u64,
    transport: TransportKind,
) -> Vec<ShardResult> {
    let comms = CommWorld::create_with(n_ranks, transport);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let scenario = scenario.clone();
                scope.spawn(move || {
                    let mut sim = DistributedSimulation::from_scenario(comm, scenario, n_target, seed);
                    let summaries = sim.run(steps);
                    let rebalances = sim.rebalance_count();
                    let overlap = sim.overlap_stats();
                    let (ids, particles) = sim.into_shard();
                    ShardResult {
                        rank,
                        ids,
                        particles,
                        summaries,
                        rebalances,
                        overlap,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    })
}

/// [`run_distributed`] with one shared telemetry sink attached to every rank:
/// per-rank `Step`/stage spans interleave into one totally ordered stream
/// (the shared sequence atomic), each rank publishes its communication totals
/// at the end, and the exporters are flushed once after the last rank joins.
pub fn run_distributed_traced(
    scenario: ScenarioRef,
    n_ranks: usize,
    n_target: usize,
    seed: u64,
    steps: u64,
    sink: Arc<Telemetry>,
) -> Vec<ShardResult> {
    let comms = CommWorld::create(n_ranks);
    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let scenario = scenario.clone();
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    let mut sim =
                        DistributedSimulation::from_scenario(comm, scenario, n_target, seed).with_telemetry(sink);
                    let summaries = sim.run(steps);
                    sim.publish_comm_stats();
                    let rebalances = sim.rebalance_count();
                    let overlap = sim.overlap_stats();
                    let (ids, particles) = sim.into_shard();
                    ShardResult {
                        rank,
                        ids,
                        particles,
                        summaries,
                        rebalances,
                        overlap,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });
    sink.flush();
    shards
}

/// Configuration of a metered multi-rank run.
#[derive(Clone, Debug)]
pub struct DistributedCampaignConfig {
    /// System architecture providing the GPU dies the ranks map onto.
    pub system: hwmodel::arch::SystemKind,
    /// Scenario to run.
    pub scenario: ScenarioRef,
    /// Number of ranks (= GPU dies used).
    pub n_ranks: usize,
    /// Owned particles per rank (weak scaling: total = `n_ranks · n_per_rank`).
    pub n_per_rank: usize,
    /// Number of timesteps.
    pub steps: u64,
    /// IC seed.
    pub seed: u64,
    /// Transport backend the ranks communicate over.
    pub transport: TransportKind,
}

/// One rank's gathered measurement, à la the paper's per-rank energy tables.
pub struct DistributedRankReport {
    /// Rank id.
    pub rank: u32,
    /// Hostname of the node the rank ran on.
    pub hostname: String,
    /// Particles owned at the end of the run.
    pub owned: usize,
    /// Ghosts held at the end of the run.
    pub ghosts: usize,
    /// The rank's full PMT report (per-stage records).
    pub report: RankReport,
}

/// Everything gathered from a metered multi-rank run.
pub struct DistributedCampaignResult {
    /// The configuration that produced this result.
    pub config: DistributedCampaignConfig,
    /// Per-rank reports in rank order (rank 0's §2-style gathering).
    pub per_rank: Vec<DistributedRankReport>,
    /// Per-step global summaries (from rank 0).
    pub summaries: Vec<StepSummary>,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_s: f64,
}

impl DistributedCampaignResult {
    /// Total particles owned across ranks at the end of the run.
    pub fn total_particles(&self) -> usize {
        self.per_rank.iter().map(|r| r.owned).sum()
    }

    /// Summed wall-time of one stage across steps, on its slowest rank.
    pub fn stage_time_slowest_rank_s(&self, label: &str) -> f64 {
        self.per_rank
            .iter()
            .map(|r| {
                r.report
                    .records
                    .iter()
                    .filter(|rec| rec.label == label)
                    .map(|rec| rec.duration_s())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Aggregate throughput of a set of stages: particles that complete the
    /// whole stage *group* per second of the group's summed wall-time, charged
    /// at the slowest rank (lock-step execution). One particle-step counts
    /// once no matter how many stages are in the group, so the number is
    /// comparable to a per-stage `particles/s` figure only when the group has
    /// one stage.
    pub fn stages_throughput_pps(&self, labels: &[&str]) -> f64 {
        let time: f64 = labels.iter().map(|l| self.stage_time_slowest_rank_s(l)).sum();
        if time <= 0.0 {
            return 0.0;
        }
        (self.total_particles() as f64) * (self.config.steps as f64) / time
    }
}

/// Run a metered distributed campaign: one rank per GPU die of a freshly built
/// [`Cluster`], each with its own per-stage meter (and whatever observers
/// `wire` attaches — e.g. a per-rank DVFS governor over the rank's die), then
/// gather every rank's report at rank 0 into a [`DistributedCampaignResult`].
///
/// `wire` runs once per rank, on that rank's thread, after the meter exists
/// and before the simulation starts.
pub fn run_distributed_campaign(
    config: &DistributedCampaignConfig,
    wire: impl Fn(&RankContext, &pmt::PowerMeter) + Sync,
) -> DistributedCampaignResult {
    assert!(config.n_ranks >= 1);
    let cluster = Cluster::with_gpu_dies(config.system, config.n_ranks);
    let mapping = RankMapping::one_rank_per_die_limited(&cluster, config.n_ranks);
    let start = std::time::Instant::now();
    let n_target = config.n_per_rank * config.n_ranks;
    let mut outcomes = cluster::run_ranks_with(&cluster, &mapping, config.transport, |ctx| {
        // The rank's die is busy for the duration of the run; its modelled
        // power (at whatever frequency an attached governor picks per stage)
        // is integrated over the wall clock by the per-rank meter.
        ctx.gpu.set_load(1.0);
        let meter = std::sync::Arc::new(
            pmt::PowerMeter::builder()
                .sensor(cluster::GpuDiePowerSensor::new(ctx.gpu.clone()))
                .rank(ctx.rank)
                .hostname(ctx.placement.hostname.clone())
                .build(),
        );
        wire(&ctx, &meter);
        let hooks = ProfilingHooks::new(meter.clone());
        let mut sim = DistributedSimulation::from_scenario(ctx.comm, config.scenario.clone(), n_target, config.seed)
            .with_hooks(hooks);
        let summaries = sim.run(config.steps);
        let payload = DistributedRankReport {
            rank: ctx.rank,
            hostname: ctx.placement.hostname.clone(),
            owned: sim.n_owned(),
            ghosts: sim.ghost_count(),
            report: meter.report(),
        };
        let gathered = sim.comm().gather(payload, 0);
        (gathered, summaries)
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let (gathered, summaries) = outcomes.remove(0);
    DistributedCampaignResult {
        config: config.clone(),
        per_rank: gathered.expect("rank 0 gathers every report"),
        summaries,
        elapsed_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn single_rank_distributed_run_matches_shard_bookkeeping() {
        let scenario = scenario::get("Sedov").unwrap();
        let shards = run_distributed(scenario, 1, 300, 3, 2);
        assert_eq!(shards.len(), 1);
        let shard = &shards[0];
        assert_eq!(shard.ids.len(), shard.particles.len());
        assert_eq!(shard.summaries.len(), 2);
        assert!(shard.summaries.iter().all(|s| s.dt > 0.0 && s.total_energy.is_finite()));
        // One rank owns every global id exactly once.
        let mut ids: Vec<u32> = shard.ids.clone();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(k, &id)| id as usize == k));
    }

    #[test]
    fn two_rank_run_partitions_and_exchanges_ghosts() {
        let scenario = scenario::get("Turb").unwrap();
        let comms = CommWorld::create(2);
        let outcomes: Vec<(usize, usize, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let scenario = scenario.clone();
                    s.spawn(move || {
                        let mut sim = DistributedSimulation::from_scenario(comm, scenario, 400, 5);
                        sim.run(2);
                        (sim.n_owned(), sim.ghost_count(), sim.step_count())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total_owned: usize = outcomes.iter().map(|&(o, _, _)| o).sum();
        // turbulence_box builds a cube of side round(cbrt(400)) ≈ 7 → 343.
        assert!(total_owned > 300, "total owned {total_owned}");
        assert!(outcomes.iter().all(|&(_, ghosts, _)| ghosts > 0), "no ghosts exchanged");
        assert!(outcomes.iter().all(|&(_, _, steps)| steps == 2));
    }

    #[test]
    fn hidden_fraction_is_zero_for_an_empty_accounting() {
        // Regression: overlapped / (posted + overlapped + waited) must not
        // produce NaN before any multi-rank step has accumulated time.
        let stats = OverlapStats::default();
        assert_eq!(stats.hidden_fraction(), 0.0);
        assert!(!stats.hidden_fraction().is_nan());
        // Degenerate-but-nonzero components still land in [0, 1].
        let busy = OverlapStats {
            posted_s: 0.0,
            overlapped_s: 2.0,
            waited_s: 0.0,
        };
        assert_eq!(busy.hidden_fraction(), 1.0);
        let blocked = OverlapStats {
            posted_s: 1.0,
            overlapped_s: 0.0,
            waited_s: 3.0,
        };
        assert_eq!(blocked.hidden_fraction(), 0.0);
    }

    #[test]
    fn two_rank_binned_run_stays_in_lockstep() {
        let scenario = scenario::get("Sedov").unwrap();
        let comms = CommWorld::create(2);
        let per_rank: Vec<Vec<StepSummary>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let scenario = scenario.clone();
                    s.spawn(move || {
                        let mut sim =
                            DistributedSimulation::from_scenario(comm, scenario, 300, 3).with_timestep_bins(4);
                        (0..8).map(|_| sim.step()).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The cycle plan is collective, so every rank must see the identical
        // sequence of substep dts and (collectively reduced) energies.
        assert_eq!(per_rank[0].len(), 8);
        for (a, b) in per_rank[0].iter().zip(&per_rank[1]) {
            assert_eq!(a.step, b.step);
            assert_eq!(a.dt.to_bits(), b.dt.to_bits(), "ranks disagree on a substep dt");
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.total_energy.to_bits(), b.total_energy.to_bits());
        }
        assert!(per_rank[0].iter().all(|s| s.dt > 0.0 && s.total_energy.is_finite()));
    }

    #[test]
    fn four_rank_traced_run_merges_into_one_ordered_stream() {
        let scenario = scenario::get("Sedov").unwrap();
        let sink = Arc::new(Telemetry::new());
        let shards = run_distributed_traced(scenario.clone(), 4, 500, 9, 2, Arc::clone(&sink));
        assert_eq!(shards.len(), 4);
        let events = sink.events_snapshot();

        // One totally ordered stream: record order == strictly increasing seq.
        assert!(
            events.windows(2).all(|w| w[0].seq < w[1].seq),
            "shared-sink events must be strictly seq-ordered"
        );

        // Every rank contributes a Step span and every pipeline stage span.
        for rank in 0..4u32 {
            assert!(
                events.iter().any(|e| e.cat == "step" && e.name == "Step" && e.rank == rank),
                "missing Step span for rank {rank}"
            );
            for stage in scenario.pipeline() {
                assert!(
                    events
                        .iter()
                        .any(|e| e.cat == "stage" && e.name == stage.label() && e.rank == rank),
                    "missing {} span for rank {rank}",
                    stage.label()
                );
            }
        }

        // Rank 0 published the global health gauges each step.
        let snapshot = sink.metrics().snapshot();
        for gauge in [
            "health.total_energy",
            "health.energy_drift",
            "health.mass_drift",
            "health.momentum_drift",
            "health.dt",
        ] {
            assert!(snapshot.gauge(gauge).is_some(), "missing gauge {gauge}");
            assert_eq!(
                events.iter().filter(|e| e.name == gauge).count(),
                2,
                "gauge {gauge} must be sampled once per step"
            );
        }
        // Every rank published its population and its comm totals.
        for rank in 0..4 {
            assert!(snapshot.gauge(&format!("sim.rank{rank}.owned")).is_some());
            assert!(snapshot.gauge(&format!("sim.rank{rank}.ghosts")).is_some());
        }
        assert!(
            snapshot.counter("comm.allgather.messages").unwrap_or(0) > 0,
            "comm totals must reach the registry"
        );
        let hist = snapshot
            .histogram("health.neighbor_count")
            .expect("neighbour histogram present");
        let total_owned: usize = shards.iter().map(|s| s.particles.len()).sum();
        assert_eq!(
            hist.count,
            2 * total_owned as u64,
            "one observation per owned particle per step"
        );
    }

    #[test]
    fn rebalance_triggers_when_threshold_is_tight() {
        let scenario = scenario::get("Sedov").unwrap();
        let comms = CommWorld::create(2);
        let rebalances: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let scenario = scenario.clone();
                    s.spawn(move || {
                        // Any imbalance at all re-splits: with threshold 1.0
                        // even a one-particle drift triggers.
                        let mut sim =
                            DistributedSimulation::from_scenario(comm, scenario, 300, 3).with_rebalance_threshold(1.0);
                        sim.run(3);
                        sim.rebalance_count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            rebalances.iter().all(|&r| r == rebalances[0]),
            "ranks disagree on rebalances"
        );
        assert!(rebalances[0] > 0, "tight threshold must trigger a rebalance");
    }
}
