//! Paper-scale campaign executor: the GPU-offloaded time-stepping loop over a
//! simulated cluster, with per-rank PMT instrumentation and Slurm accounting.
//!
//! The executor reproduces the measurement setup of the paper end to end:
//!
//! 1. a Slurm job is submitted over a cluster of simulated nodes — Slurm's
//!    energy window starts here;
//! 2. a setup phase runs with idle GPUs (job launch, building the simulation's
//!    data structures: the Morton key sort, the octree node arena and the CSR
//!    neighbour buffers that [`crate::workload`]'s per-stage flops/bytes
//!    assume);
//! 3. the time-stepping loop runs: every pipeline stage of every timestep is
//!    executed on every rank's GPU through the workload model, bracketed by
//!    PMT regions on that rank's meter (which reads `pm_counters`-equivalent
//!    node sensors, i.e. GPU **cards**, CPU package, memory, node);
//! 4. teardown runs, the job completes and `sacct` reports the job energy.
//!
//! The result carries everything the analysis crate needs for Figures 1–5.

use crate::scenario::ScenarioRef;
use crate::stages::SphStage;
use crate::workload::{
    cpu_load_during, memory_load_during, network_load_during, scenario_stage_workload, stage_comm_time,
};
use cluster::{Cluster, RankMapping, SimClockAdapter, SimNodeSensor};
use hwmodel::arch::SystemKind;
use pmt::{PowerMeter, RankReport, RegionObserver};
use slurm::{AcctGatherEnergyType, SlurmJob};
use std::sync::Arc;

/// Label of the region wrapping the whole time-stepping loop (what PMT reports
/// as the application energy in Figure 1).
pub const MAIN_LOOP_LABEL: &str = "TimeSteppingLoop";

/// Configuration of one paper-scale run.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// System architecture to run on.
    pub system: SystemKind,
    /// Scenario (workload mix), from the [`crate::scenario::ScenarioRegistry`].
    pub scenario: ScenarioRef,
    /// Number of MPI ranks (= GPU dies used).
    pub n_ranks: usize,
    /// Particles owned by each rank.
    pub particles_per_rank: f64,
    /// Number of timesteps.
    pub timesteps: u64,
    /// GPU compute frequency override in Hz (None = architecture nominal).
    pub gpu_frequency_hz: Option<f64>,
    /// Duration of the job setup phase in simulated seconds.
    pub setup_seconds: f64,
    /// Duration of the teardown phase in simulated seconds.
    pub teardown_seconds: f64,
    /// Slurm energy-accounting back-end.
    pub slurm_backend: AcctGatherEnergyType,
}

impl CampaignConfig {
    /// A configuration with the paper's defaults for the given system,
    /// scenario and rank count (particles per rank from the scenario's
    /// Table-1-style parameters, pm_counters accounting).
    pub fn paper_defaults(system: SystemKind, scenario: ScenarioRef, n_ranks: usize) -> Self {
        let particles_per_rank = scenario.particles_per_gpu();
        let timesteps = scenario.timesteps();
        Self {
            system,
            scenario,
            n_ranks,
            particles_per_rank,
            timesteps,
            gpu_frequency_hz: None,
            setup_seconds: 90.0,
            teardown_seconds: 10.0,
            slurm_backend: AcctGatherEnergyType::PmCounters,
        }
    }

    /// Total number of particles simulated.
    pub fn total_particles(&self) -> f64 {
        self.n_ranks as f64 * self.particles_per_rank
    }
}

/// Everything measured during one campaign.
pub struct CampaignResult {
    /// The configuration that produced this result.
    pub config: CampaignConfig,
    /// The rank-to-hardware mapping used.
    pub mapping: RankMapping,
    /// Per-rank PMT measurement reports (function-level records plus the
    /// whole-loop region).
    pub rank_reports: Vec<RankReport>,
    /// The Slurm accounting record of the job.
    pub sacct: slurm::SacctRecord,
    /// Simulated `(start, end)` of the time-stepping loop.
    pub main_loop_window: (f64, f64),
    /// Ground-truth cluster energy consumed inside the main loop, in joules
    /// (node-level view including PSU losses). Used to validate both
    /// measurement paths.
    pub true_main_loop_energy_j: f64,
    /// Ground-truth cluster energy over the whole job, in joules.
    pub true_job_energy_j: f64,
    /// Total sensor polls across all rank meters (the measurement cost of the
    /// run — what an online tuner spends to learn, cf. the offline sweep).
    pub total_meter_polls: u64,
}

impl CampaignResult {
    /// Duration of the time-stepping loop in simulated seconds.
    pub fn main_loop_duration_s(&self) -> f64 {
        self.main_loop_window.1 - self.main_loop_window.0
    }

    /// Number of ranks in the run.
    pub fn n_ranks(&self) -> usize {
        self.rank_reports.len()
    }
}

/// Execute one paper-scale campaign.
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    run_campaign_with_observers(config, &[])
}

/// Execute one paper-scale campaign with [`RegionObserver`]s attached to the
/// rank-0 meter.
///
/// Stages run in lock-step across ranks, so one rank's region boundaries see
/// every stage exactly once per timestep — which is what a closed-loop
/// controller such as the `autotune` DVFS governor needs: it adjusts the GPU
/// clock at `start_region` (before the stage's kernels execute) and scores the
/// stage's measured energy at `end_region`. Attaching to a single rank keeps
/// one decision per stage execution even on multi-rank runs.
pub fn run_campaign_with_observers(config: &CampaignConfig, observers: &[Arc<dyn RegionObserver>]) -> CampaignResult {
    let observers = observers.to_vec();
    run_campaign_governed(config, move |_| observers)
}

/// Execute one campaign under closed-loop control.
///
/// `wire` receives the campaign's freshly built [`Cluster`] — so a controller
/// can construct its actuator over the actual devices of the run (e.g.
/// `autotune::ClusterActuator`) — and returns the observers to attach to the
/// rank-0 meter (see [`run_campaign_with_observers`] for the attachment
/// semantics).
pub fn run_campaign_governed(
    config: &CampaignConfig,
    wire: impl FnOnce(&Cluster) -> Vec<Arc<dyn RegionObserver>>,
) -> CampaignResult {
    assert!(config.n_ranks >= 1);
    assert!(config.timesteps >= 1);

    let cluster = Cluster::with_gpu_dies(config.system, config.n_ranks);
    let mapping = RankMapping::one_rank_per_die_limited(&cluster, config.n_ranks);
    if let Some(f) = config.gpu_frequency_hz {
        cluster.set_gpu_frequency(f);
    }

    // One PMT meter per rank, reading the pm_counters-equivalent sensor of the
    // rank's node (card-granularity GPUs, as on the real systems).
    let meters: Vec<PowerMeter> = mapping
        .placements()
        .iter()
        .map(|p| {
            let node = cluster.node(p.node_index).clone();
            PowerMeter::builder()
                .sensor(SimNodeSensor::per_card(node))
                .clock(SimClockAdapter::new(cluster.clock().clone()))
                .rank(p.rank)
                .hostname(p.hostname.clone())
                .build()
        })
        .collect();

    for observer in wire(&cluster) {
        meters[0].add_region_observer(observer);
    }

    // Slurm submits the job: its energy window opens here.
    let job = SlurmJob::submit(
        1000 + config.n_ranks as u64,
        format!("sphexa-{}", config.scenario.short_name().to_lowercase()),
        cluster.clone(),
        config.slurm_backend,
    );
    let job_energy_start = cluster.total_energy_j();
    job.run_setup(config.setup_seconds);

    // The PMT window opens only now, at the start of the time-stepping loop.
    job.mark_main_loop_start();
    let loop_start = cluster.clock().now();
    let loop_energy_start = cluster.total_energy_j();
    for meter in &meters {
        meter.start_region(MAIN_LOOP_LABEL).expect("main loop region failed to start");
    }

    let pipeline = config.scenario.pipeline();
    let vendor = cluster.node(0).gpus()[0].spec().vendor;
    for step in 0..config.timesteps {
        for meter in &meters {
            meter.set_iteration(Some(step));
        }
        for &stage in &pipeline {
            run_stage(&cluster, &mapping, &meters, config, stage, vendor);
        }
    }

    let mut rank_reports: Vec<RankReport> = Vec::with_capacity(meters.len());
    for meter in &meters {
        meter.set_iteration(None);
        meter.end_region(MAIN_LOOP_LABEL).expect("main loop region failed to end");
    }
    let loop_end = cluster.clock().now();
    let loop_energy_end = cluster.total_energy_j();
    job.mark_main_loop_end();
    job.run_teardown(config.teardown_seconds);
    job.complete();
    let job_energy_end = cluster.total_energy_j();

    let mut total_meter_polls = 0;
    for meter in &meters {
        rank_reports.push(meter.report());
        total_meter_polls += meter.poll_count();
    }

    CampaignResult {
        config: config.clone(),
        mapping,
        rank_reports,
        sacct: job.sacct(),
        main_loop_window: (loop_start, loop_end),
        true_main_loop_energy_j: loop_energy_end - loop_energy_start,
        true_job_energy_j: job_energy_end - job_energy_start,
        total_meter_polls,
    }
}

/// Execute one pipeline stage across all ranks in lock-step.
fn run_stage(
    cluster: &Cluster,
    mapping: &RankMapping,
    meters: &[PowerMeter],
    config: &CampaignConfig,
    stage: SphStage,
    vendor: hwmodel::gpu::GpuVendor,
) {
    for meter in meters {
        meter.start_region(stage.label()).expect("stage region failed to start");
    }

    // Every rank executes the same per-rank workload on its own GPU die, at
    // the scenario's per-stage cost scaling.
    let work = scenario_stage_workload(config.scenario.as_ref(), stage, config.particles_per_rank, vendor);
    let mut gpu_time = 0.0f64;
    for placement in mapping.placements() {
        let gpu = cluster
            .node(placement.node_index)
            .gpu(placement.gpu_die)
            .expect("mapped GPU missing");
        gpu_time = gpu_time.max(gpu.execute(&work));
    }
    let comm_time = stage_comm_time(stage, config.particles_per_rank, config.n_ranks);
    let duration = gpu_time + comm_time;

    // Host-side activity while the stage runs.
    let cpu_load = cpu_load_during(stage);
    let mem_load = memory_load_during(stage);
    let net_load = network_load_during(stage);
    for node in cluster.nodes() {
        for cpu in node.cpus() {
            cpu.set_load(cpu_load);
        }
        node.memory().set_load(mem_load);
        node.aux().set_load(net_load);
    }

    cluster.advance(duration);

    for node in cluster.nodes() {
        for gpu in node.gpus() {
            gpu.set_idle();
        }
    }

    for meter in meters {
        meter.end_region(stage.label()).expect("stage region failed to end");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{self, ScenarioRegistry};
    use pmt::{aggregate_by_label, DomainKind};

    fn tiny_config(system: SystemKind) -> CampaignConfig {
        CampaignConfig {
            system,
            scenario: scenario::get("Turb").unwrap(),
            n_ranks: 4,
            particles_per_rank: 20.0e6,
            timesteps: 3,
            gpu_frequency_hz: None,
            setup_seconds: 20.0,
            teardown_seconds: 5.0,
            slurm_backend: AcctGatherEnergyType::PmCounters,
        }
    }

    #[test]
    fn campaign_produces_reports_for_every_rank_and_stage() {
        let result = run_campaign(&tiny_config(SystemKind::CscsA100));
        assert_eq!(result.n_ranks(), 4);
        for report in &result.rank_reports {
            let aggs = aggregate_by_label(&report.records);
            let labels: Vec<&str> = aggs.iter().map(|a| a.label.as_str()).collect();
            assert!(labels.contains(&"MomentumEnergy"));
            assert!(labels.contains(&"DomainDecompAndSync"));
            assert!(labels.contains(&MAIN_LOOP_LABEL));
            let me = aggs.iter().find(|a| a.label == "MomentumEnergy").unwrap();
            assert_eq!(me.calls, 3);
            assert!(me.total_time_s > 0.0);
            assert!(me.energy_by_kind(DomainKind::GpuCard) > 0.0);
        }
    }

    #[test]
    fn slurm_window_exceeds_pmt_window() {
        let result = run_campaign(&tiny_config(SystemKind::CscsA100));
        // Slurm measured from submission (includes 20 s setup) -> more energy
        // than the true main-loop energy, which in turn matches the PMT region.
        assert!(result.sacct.consumed_energy_j > result.true_main_loop_energy_j);
        assert!(result.sacct.elapsed_s > result.main_loop_duration_s());
    }

    #[test]
    fn pmt_main_loop_node_energy_matches_ground_truth() {
        let result = run_campaign(&tiny_config(SystemKind::CscsA100));
        // Sum the node-domain energy of the main-loop region over one rank per
        // node (all ranks of a node report the same node counter).
        let mut seen_nodes = std::collections::BTreeSet::new();
        let mut pmt_total = 0.0;
        for (report, placement) in result.rank_reports.iter().zip(result.mapping.placements()) {
            if !seen_nodes.insert(placement.node_index) {
                continue;
            }
            let main = report
                .records
                .iter()
                .find(|r| r.label == MAIN_LOOP_LABEL)
                .expect("main loop record");
            pmt_total += main.energy(pmt::Domain::node());
        }
        let truth = result.true_main_loop_energy_j;
        let rel = (pmt_total - truth).abs() / truth;
        assert!(rel < 0.02, "PMT {pmt_total} vs truth {truth} (rel {rel})");
    }

    #[test]
    fn gcd_sharing_is_visible_on_lumi() {
        let mut cfg = tiny_config(SystemKind::LumiG);
        cfg.n_ranks = 4; // 2 cards, 2 ranks per card
        let result = run_campaign(&cfg);
        let p0 = &result.mapping.placements()[0];
        let p1 = &result.mapping.placements()[1];
        assert_eq!(p0.gpu_card, p1.gpu_card);
        assert_eq!(p0.ranks_per_card, 2);
    }

    #[test]
    fn observers_see_every_stage_of_every_timestep() {
        use std::sync::Mutex;

        struct Counter {
            starts: Mutex<Vec<String>>,
            ends: Mutex<Vec<String>>,
        }
        impl RegionObserver for Counter {
            fn on_region_start(&self, label: &str, _time_s: f64) {
                self.starts.lock().unwrap().push(label.to_string());
            }
            fn on_region_end(&self, record: &pmt::MeasurementRecord) {
                self.ends.lock().unwrap().push(record.label.clone());
            }
        }

        let config = tiny_config(SystemKind::CscsA100);
        let counter = Arc::new(Counter {
            starts: Mutex::new(Vec::new()),
            ends: Mutex::new(Vec::new()),
        });
        let result = run_campaign_with_observers(&config, &[counter.clone() as Arc<dyn RegionObserver>]);
        let stages = config.scenario.pipeline().len() as u64;
        // Per timestep each stage starts and ends once, plus the main loop.
        let expected = (stages * config.timesteps + 1) as usize;
        assert_eq!(counter.starts.lock().unwrap().len(), expected);
        assert_eq!(counter.ends.lock().unwrap().len(), expected);
        let me = counter.ends.lock().unwrap().iter().filter(|l| *l == "MomentumEnergy").count();
        assert_eq!(me as u64, config.timesteps);
        assert!(result.total_meter_polls > 0);
    }

    #[test]
    fn campaign_stage_gating_matches_every_registered_scenario() {
        // Gravity records must appear only for gravitating scenarios and
        // Turbulence records only for stirred ones — for the whole registry,
        // not just the Table-1 pair.
        for scenario in ScenarioRegistry::builtin().scenarios() {
            let mut config = tiny_config(SystemKind::CscsA100);
            config.scenario = scenario.clone();
            config.n_ranks = 2;
            config.timesteps = 2;
            let result = run_campaign(&config);
            let report = &result.rank_reports[0];
            let labels: std::collections::BTreeSet<&str> = report.records.iter().map(|r| r.label.as_str()).collect();
            assert_eq!(
                labels.contains("Gravity"),
                scenario.has_gravity(),
                "{}: Gravity gating",
                scenario.short_name()
            );
            assert_eq!(
                labels.contains("Turbulence"),
                scenario.has_stirring(),
                "{}: Turbulence gating",
                scenario.short_name()
            );
            // Ungated stages always run.
            for always in ["MomentumEnergy", "DomainDecompAndSync", "Timestep"] {
                assert!(labels.contains(always), "{}: missing {always}", scenario.short_name());
            }
        }
    }

    #[test]
    fn lower_frequency_long_runs_use_less_gpu_power() {
        let mut base = tiny_config(SystemKind::MiniHpc);
        base.n_ranks = 2;
        let nominal = run_campaign(&base);
        base.gpu_frequency_hz = Some(1005.0e6);
        let scaled = run_campaign(&base);
        // Down-scaled run takes longer but draws less average power in the loop.
        assert!(scaled.main_loop_duration_s() > nominal.main_loop_duration_s());
        let p_nom = nominal.true_main_loop_energy_j / nominal.main_loop_duration_s();
        let p_scaled = scaled.true_main_loop_energy_j / scaled.main_loop_duration_s();
        assert!(p_scaled < p_nom);
    }
}
