//! Self-gravity (`Gravity` stage).
//!
//! Barnes–Hut tree gravity using the octree monopoles, with `G = 1` in code
//! units (the convention of the Evrard collapse test).

use crate::octree::Octree;
use crate::parallel::parallel_map;
use crate::particle::ParticleSet;

/// Default Barnes–Hut opening angle.
pub const DEFAULT_THETA: f64 = 0.5;

/// Add the gravitational acceleration of every particle onto `ax/ay/az`.
pub fn add_gravity(particles: &mut ParticleSet, tree: &Octree, theta: f64, softening: f64) {
    let n = particles.len();
    let acc: Vec<(f64, f64, f64)> = parallel_map(n, |i| {
        tree.gravity_at(
            (particles.x[i], particles.y[i], particles.z[i]),
            theta,
            softening,
            &particles.x,
            &particles.y,
            &particles.z,
            &particles.m,
            i,
        )
    });
    for (i, (gx, gy, gz)) in acc.into_iter().enumerate() {
        particles.ax[i] += gx;
        particles.ay[i] += gy;
        particles.az[i] += gz;
    }
}

/// [`add_gravity`] restricted to a subset of particles, in place — the
/// active-set form the individual-timestep propagator uses (frozen particles
/// keep their accelerations from their own last kick substep).
pub fn add_gravity_rows(particles: &mut ParticleSet, tree: &Octree, theta: f64, softening: f64, rows: &[u32]) {
    let acc: Vec<(f64, f64, f64)> = parallel_map(rows.len(), |k| {
        let i = rows[k] as usize;
        tree.gravity_at(
            (particles.x[i], particles.y[i], particles.z[i]),
            theta,
            softening,
            &particles.x,
            &particles.y,
            &particles.z,
            &particles.m,
            i,
        )
    });
    for (k, (gx, gy, gz)) in acc.into_iter().enumerate() {
        let i = rows[k] as usize;
        particles.ax[i] += gx;
        particles.ay[i] += gy;
        particles.az[i] += gz;
    }
}

/// Total gravitational potential energy (direct sum; for conservation checks on
/// small particle counts): `E_pot = -Σ_{i<j} m_i m_j / |r_ij|`.
pub fn potential_energy_direct(particles: &ParticleSet, softening: f64) -> f64 {
    potential_energy_slices(&particles.x, &particles.y, &particles.z, &particles.m, softening)
}

/// [`potential_energy_direct`] over flat coordinate/mass slices — the form the
/// distributed propagator evaluates on gathered global arrays, kept as the
/// single implementation so the two paths cannot drift.
pub fn potential_energy_slices(x: &[f64], y: &[f64], z: &[f64], m: &[f64], softening: f64) -> f64 {
    let n = x.len();
    let mut e = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            let dz = z[i] - z[j];
            let r = (dx * dx + dy * dy + dz * dz + softening * softening).sqrt();
            e -= m[i] * m[j] / r;
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;
    use crate::physics::neighbors::build_tree;

    #[test]
    fn gravity_pulls_towards_the_centre_of_mass() {
        let mut p = lattice_cube(6, 1.0, 1.0, 1.3);
        let tree = build_tree(&p, 16);
        add_gravity(&mut p, &tree, DEFAULT_THETA, 0.01);
        // The particle closest to the corner must be pulled towards the centre
        // (positive components of acceleration).
        let i = (0..p.len())
            .min_by(|&a, &b| (p.x[a] + p.y[a] + p.z[a]).total_cmp(&(p.x[b] + p.y[b] + p.z[b])))
            .unwrap();
        assert!(p.ax[i] > 0.0 && p.ay[i] > 0.0 && p.az[i] > 0.0);
    }

    #[test]
    fn two_body_acceleration_matches_newton() {
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.1, 0.0);
        p.push(2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0, 0.1, 0.0);
        let tree = build_tree(&p, 4);
        add_gravity(&mut p, &tree, 0.0, 0.0);
        // a_0 = G m_1 / r² = 5/4, pointing towards +x; a_1 = 3/4 towards -x.
        assert!((p.ax[0] - 1.25).abs() < 1e-9);
        assert!((p.ax[1] + 0.75).abs() < 1e-9);
        assert!(p.ay[0].abs() < 1e-12 && p.az[0].abs() < 1e-12);
    }

    #[test]
    fn potential_energy_of_pair() {
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0, 0.1, 0.0);
        p.push(4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.1, 0.0);
        let e = potential_energy_direct(&p, 0.0);
        assert!((e + 6.0 / 4.0).abs() < 1e-12);
    }
}
