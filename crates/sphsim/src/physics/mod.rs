//! SPH physics kernels.
//!
//! Each sub-module corresponds to one named stage of the SPH-EXA time-stepping
//! loop, the same stages whose per-function energy the paper reports in
//! Figures 3 and 5:
//!
//! | Module | Pipeline stage |
//! |---|---|
//! | [`neighbors`] | `FindNeighbors` |
//! | [`density`] | `XMass` (density / volume elements) |
//! | [`gradh`] | `NormalizationGradh` |
//! | [`eos`] | `EquationOfState` |
//! | [`iad`] | `IADVelocityDivCurl` |
//! | [`avswitches`] | `AVSwitches` |
//! | [`momentum`] | `MomentumEnergy` |
//! | [`gravity`] | `Gravity` |
//! | [`timestep`] | `Timestep` |
//! | [`turbulence`] | `Turbulence` (stirring forcing) |

pub mod avswitches;
pub mod density;
pub mod eos;
pub mod gradh;
pub mod gravity;
pub mod iad;
pub mod momentum;
pub mod neighbors;
pub mod timestep;
pub mod turbulence;

pub use neighbors::NeighborLists;
