//! Density summation (`XMass` stage).
//!
//! `ρ_i = Σ_j m_j W(|r_i − r_j|, h_i)` over the neighbour lists, followed by an
//! update of the smoothing length towards the target neighbour count
//! (`h ∝ (m/ρ)^{1/3}`), which is how SPH-EXA keeps the neighbour count roughly
//! constant as the fluid compresses or expands.

use crate::boundary::MinImage;
use crate::kernels::{w_cubic, LANE_WIDTH};
use crate::parallel::parallel_map;
use crate::particle::ParticleSet;
use crate::physics::neighbors::NeighborLists;

/// Compute the SPH density of every particle. Pair separations go through the
/// shared minimum-image map, so periodic boxes sum over the nearest images;
/// open boxes take a compile-time specialisation with no image arithmetic.
pub fn compute_density(particles: &mut ParticleSet, neighbors: &NeighborLists) {
    let mi = MinImage::of(&particles.boundary);
    if mi.is_identity() {
        density_impl::<false>(particles, neighbors, mi);
    } else {
        density_impl::<true>(particles, neighbors, mi);
    }
}

/// One CSR row of the density sum — shared by the full pass and the
/// row-subset pass, so both produce bit-identical values for a given row.
#[inline]
fn density_row<const PERIODIC: bool>(
    particles: &ParticleSet,
    neighbors: &NeighborLists,
    mi: MinImage,
    i: usize,
) -> f64 {
    let hi = particles.h[i];
    let (xi, yi, zi) = (particles.x[i], particles.y[i], particles.z[i]);
    let mut sum = 0.0;
    // SoA lanes: gather each LANE_WIDTH-wide chunk of the CSR row into
    // fixed-width stack buffers, run a fixed-trip-count compute loop over
    // them, then accumulate the per-lane terms in row order — the same
    // operations in the same order as a scalar sweep, so the sum is
    // bit-identical to one.
    let mut lx = [0.0f64; LANE_WIDTH];
    let mut ly = [0.0f64; LANE_WIDTH];
    let mut lz = [0.0f64; LANE_WIDTH];
    let mut lm = [0.0f64; LANE_WIDTH];
    let mut lt = [0.0f64; LANE_WIDTH];
    let row = neighbors.neighbors(i);
    let mut chunks = row.chunks_exact(LANE_WIDTH);
    for chunk in chunks.by_ref() {
        for (k, &j) in chunk.iter().enumerate() {
            let j = j as usize;
            lx[k] = particles.x[j];
            ly[k] = particles.y[j];
            lz[k] = particles.z[j];
            lm[k] = particles.m[j];
        }
        for k in 0..LANE_WIDTH {
            let dx = xi - lx[k];
            let dy = yi - ly[k];
            let dz = zi - lz[k];
            let (dx, dy, dz) = if PERIODIC { mi.map(dx, dy, dz) } else { (dx, dy, dz) };
            let r = (dx * dx + dy * dy + dz * dz).sqrt();
            lt[k] = lm[k] * w_cubic(r, hi);
        }
        for &t in &lt {
            sum += t;
        }
    }
    for &j in chunks.remainder() {
        let j = j as usize;
        let dx = xi - particles.x[j];
        let dy = yi - particles.y[j];
        let dz = zi - particles.z[j];
        let (dx, dy, dz) = if PERIODIC { mi.map(dx, dy, dz) } else { (dx, dy, dz) };
        let r = (dx * dx + dy * dy + dz * dz).sqrt();
        sum += particles.m[j] * w_cubic(r, hi);
    }
    sum
}

fn density_impl<const PERIODIC: bool>(particles: &mut ParticleSet, neighbors: &NeighborLists, mi: MinImage) {
    let n = particles.len();
    assert_eq!(neighbors.len(), n, "neighbour lists out of date");
    let rho: Vec<f64> = parallel_map(n, |i| density_row::<PERIODIC>(particles, neighbors, mi, i));
    particles.rho = rho;
}

/// [`compute_density`] restricted to a subset of CSR rows, writing `ρ` in
/// place. Each row reads only static neighbour fields (`x`, `m`) plus its own
/// `h`, so any partition of the rows into passes produces exactly the values
/// of one full pass — which is what lets the distributed propagator compute
/// the exported (halo-bound) rows first and overlap the rest with the ghost
/// exchange.
pub fn compute_density_rows(particles: &mut ParticleSet, neighbors: &NeighborLists, rows: &[u32]) {
    assert_eq!(neighbors.len(), particles.len(), "neighbour lists out of date");
    let mi = MinImage::of(&particles.boundary);
    let out: Vec<f64> = if mi.is_identity() {
        parallel_map(rows.len(), |k| {
            density_row::<false>(particles, neighbors, mi, rows[k] as usize)
        })
    } else {
        parallel_map(rows.len(), |k| {
            density_row::<true>(particles, neighbors, mi, rows[k] as usize)
        })
    };
    for (k, &i) in rows.iter().enumerate() {
        particles.rho[i as usize] = out[k];
    }
}

/// Nudge each particle's smoothing length towards the value that would give it
/// `target_neighbors` neighbours, assuming locally uniform density. The change
/// is capped at ±20 % per step for stability (as real SPH codes do).
pub fn update_smoothing_length(particles: &mut ParticleSet, target_neighbors: f64) {
    let n = particles.len();
    let new_h: Vec<f64> = parallel_map(n, |i| smoothing_length_row(particles, target_neighbors, i));
    particles.h = new_h;
}

/// One row of the smoothing-length update (purely row-local).
#[inline]
fn smoothing_length_row(particles: &ParticleSet, target_neighbors: f64, i: usize) -> f64 {
    let current = particles.neighbor_count[i].max(1) as f64;
    let ratio = (target_neighbors / current).cbrt();
    let bounded = ratio.clamp(0.8, 1.2);
    particles.h[i] * bounded
}

/// [`update_smoothing_length`] restricted to a subset of rows, in place.
pub fn update_smoothing_length_rows(particles: &mut ParticleSet, target_neighbors: f64, rows: &[u32]) {
    let out: Vec<f64> = parallel_map(rows.len(), |k| {
        smoothing_length_row(particles, target_neighbors, rows[k] as usize)
    });
    for (k, &i) in rows.iter().enumerate() {
        particles.h[i as usize] = out[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;
    use crate::physics::neighbors::{build_tree, find_neighbors};

    #[test]
    fn uniform_lattice_recovers_uniform_density() {
        // Unit cube, unit total mass -> density 1 everywhere (away from edges).
        let mut p = lattice_cube(8, 1.0, 1.0, 1.3);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        // Check an interior particle: index near the cube centre.
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for i in 0..p.len() {
            let d = (p.x[i] - 0.5).powi(2) + (p.y[i] - 0.5).powi(2) + (p.z[i] - 0.5).powi(2);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        let rho = p.rho[best];
        assert!((rho - 1.0).abs() < 0.15, "interior density {rho} should be ≈ 1");
        // Edge particles see fewer neighbours -> lower density.
        assert!(p.rho[0] < rho);
    }

    #[test]
    fn density_scales_with_mass() {
        let mut p = lattice_cube(6, 1.0, 2.0, 1.3);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        let mut q = lattice_cube(6, 1.0, 1.0, 1.3);
        let tree_q = build_tree(&q, 16);
        let nl_q = find_neighbors(&mut q, &tree_q);
        compute_density(&mut q, &nl_q);
        for i in 0..p.len() {
            assert!((p.rho[i] - 2.0 * q.rho[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn smoothing_length_moves_towards_target() {
        let mut p = lattice_cube(6, 1.0, 1.0, 1.3);
        let tree = build_tree(&p, 16);
        find_neighbors(&mut p, &tree);
        let h_before = p.h.clone();
        // Ask for far more neighbours than present -> h must grow (within cap).
        update_smoothing_length(&mut p, 1000.0);
        assert!(p.h.iter().zip(&h_before).all(|(a, b)| a > b));
        // Ask for almost none -> h must shrink.
        update_smoothing_length(&mut p, 1.0);
        let h_after = p.h.clone();
        assert!(h_after.iter().zip(&p.h).all(|(a, b)| a <= b));
    }
}
