//! Timestep control (`Timestep` stage) and the drift/kick update
//! (`UpdateQuantities` stage).

use crate::parallel::{parallel_chunks_mut, parallel_map};
use crate::particle::ParticleSet;

/// Courant factor used for the CFL timestep.
pub const COURANT: f64 = 0.3;

/// Courant-limited timestep: `dt = C · min_i h_i / (c_i + |v_i| + ε)`, capped
/// by an acceleration criterion `C · √(h/|a|)` (the Courant factor applies to
/// both criteria).
///
/// The reduction over particles runs as a parallel min (one partial minimum
/// per worker chunk via [`parallel_map`], folded serially) — this scan sits on
/// the hot path of every step, and the previous serial loop was the only O(N)
/// stage left outside the thread pool.
pub fn courant_timestep(particles: &ParticleSet, max_dt: f64) -> f64 {
    courant_timestep_prefix(particles, particles.len(), max_dt)
}

/// [`courant_timestep`] restricted to the first `n` particles of the set.
///
/// The distributed propagator stores ghost copies behind its owned particles;
/// ghosts carry locally incomplete accelerations and must not shrink the rank's
/// timestep proposal (their owners reduce over them instead).
pub fn courant_timestep_prefix(particles: &ParticleSet, n: usize, max_dt: f64) -> f64 {
    let n = n.min(particles.len());
    // One map item per *chunk*, not per particle: the partial-minimum buffer
    // stays a few hundred elements regardless of N. The chunk count is held
    // at parallel_map's parallel threshold so large reductions actually fan
    // out across the workers; below it the scan degenerates to the serial
    // loop it replaced.
    let chunks = n.min(256.max(crate::parallel::worker_threads()));
    if chunks == 0 {
        return max_dt.max(1e-12);
    }
    let chunk = n.div_ceil(chunks);
    let partials = parallel_map(chunks, |t| {
        let mut dt = max_dt;
        for i in t * chunk..((t + 1) * chunk).min(n) {
            let v = (particles.vx[i].powi(2) + particles.vy[i].powi(2) + particles.vz[i].powi(2)).sqrt();
            let signal = particles.c[i] + v + 1e-12;
            dt = dt.min(COURANT * particles.h[i] / signal);
            let a = (particles.ax[i].powi(2) + particles.ay[i].powi(2) + particles.az[i].powi(2)).sqrt();
            if a > 1e-12 {
                dt = dt.min(COURANT * (particles.h[i] / a).sqrt());
            }
        }
        dt
    });
    partials.into_iter().fold(max_dt, f64::min).max(1e-12)
}

/// Advance positions, velocities and internal energy by `dt` with a
/// kick-drift (semi-implicit Euler) update, as SPH-EXA's `UpdateQuantities` does.
pub fn update_quantities(particles: &mut ParticleSet, dt: f64) {
    let n = particles.len();
    let ax = particles.ax.clone();
    let ay = particles.ay.clone();
    let az = particles.az.clone();
    let du = particles.du.clone();

    parallel_chunks_mut(&mut particles.vx[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += ax[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.vy[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += ay[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.vz[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += az[s + k] * dt;
        }
    });

    let vx = particles.vx.clone();
    let vy = particles.vy.clone();
    let vz = particles.vz.clone();
    parallel_chunks_mut(&mut particles.x[..n], |s, c| {
        for (k, x) in c.iter_mut().enumerate() {
            *x += vx[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.y[..n], |s, c| {
        for (k, y) in c.iter_mut().enumerate() {
            *y += vy[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.z[..n], |s, c| {
        for (k, z) in c.iter_mut().enumerate() {
            *z += vz[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.u[..n], |s, c| {
        for (k, u) in c.iter_mut().enumerate() {
            *u = (*u + du[s + k] * dt).max(1e-12);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_particle(vx: f64, c: f64, h: f64) -> ParticleSet {
        let mut p = ParticleSet::with_capacity(1);
        p.push(0.0, 0.0, 0.0, vx, 0.0, 0.0, 1.0, h, 1.0);
        p.c = vec![c];
        p
    }

    #[test]
    fn timestep_shrinks_with_velocity_and_sound_speed() {
        let slow = courant_timestep(&single_particle(0.1, 1.0, 0.1), 1.0);
        let fast = courant_timestep(&single_particle(10.0, 1.0, 0.1), 1.0);
        assert!(fast < slow);
        let stiff = courant_timestep(&single_particle(0.1, 50.0, 0.1), 1.0);
        assert!(stiff < slow);
    }

    #[test]
    fn timestep_respects_cap() {
        let p = single_particle(1e-9, 1e-9, 100.0);
        assert_eq!(courant_timestep(&p, 0.25), 0.25);
    }

    #[test]
    fn acceleration_limits_timestep() {
        let mut p = single_particle(0.0, 0.1, 0.1);
        p.ax = vec![1.0e6];
        let dt = courant_timestep(&p, 1.0);
        assert!(dt < 1e-3);
    }

    #[test]
    fn prefix_variant_ignores_trailing_particles() {
        // Two particles; the second (a "ghost" slot) carries an acceleration
        // that would crush the timestep if it were counted.
        let mut p = single_particle(0.1, 1.0, 0.1);
        p.push(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.c = vec![1.0, 1.0];
        p.ax = vec![0.0, 1.0e9];
        let full = courant_timestep(&p, 1.0);
        let owned_only = courant_timestep_prefix(&p, 1, 1.0);
        assert!(full < owned_only, "ghost acceleration must shrink the full reduction");
        assert_eq!(owned_only, courant_timestep(&single_particle(0.1, 1.0, 0.1), 1.0));
        // Empty prefix: only the cap applies.
        assert_eq!(courant_timestep_prefix(&p, 0, 0.25), 0.25);
    }

    #[test]
    fn parallel_reduction_matches_serial_scan() {
        // Above the parallel cutoff the chunked min must agree exactly with a
        // serial reference reduction.
        let mut p = ParticleSet::with_capacity(1000);
        for i in 0..1000 {
            let f = i as f64;
            p.push(f, 0.0, 0.0, 0.01 * f, 0.0, 0.0, 1.0, 0.05 + 1e-4 * f, 1.0);
        }
        p.c = (0..1000).map(|i| 0.5 + 1e-3 * i as f64).collect();
        p.ax = (0..1000).map(|i| if i % 7 == 0 { 50.0 } else { 0.0 }).collect();
        let mut expected = 1.0f64;
        for i in 0..1000 {
            let v = (p.vx[i].powi(2) + p.vy[i].powi(2) + p.vz[i].powi(2)).sqrt();
            expected = expected.min(COURANT * p.h[i] / (p.c[i] + v + 1e-12));
            let a = (p.ax[i].powi(2) + p.ay[i].powi(2) + p.az[i].powi(2)).sqrt();
            if a > 1e-12 {
                expected = expected.min(COURANT * (p.h[i] / a).sqrt());
            }
        }
        assert_eq!(courant_timestep(&p, 1.0), expected.max(1e-12));
    }

    #[test]
    fn update_advances_position_velocity_energy() {
        let mut p = single_particle(1.0, 1.0, 0.1);
        p.ax = vec![2.0];
        p.du = vec![0.5];
        update_quantities(&mut p, 0.1);
        assert!((p.vx[0] - 1.2).abs() < 1e-12);
        assert!((p.x[0] - 0.12).abs() < 1e-12);
        assert!((p.u[0] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn internal_energy_never_goes_negative() {
        let mut p = single_particle(0.0, 1.0, 0.1);
        p.du = vec![-1.0e9];
        update_quantities(&mut p, 1.0);
        assert!(p.u[0] > 0.0);
    }
}
