//! Timestep control (`Timestep` stage) and the drift/kick update
//! (`UpdateQuantities` stage).

use crate::parallel::parallel_chunks_mut;
use crate::particle::ParticleSet;

/// Courant factor used for the CFL timestep.
pub const COURANT: f64 = 0.3;

/// Courant-limited timestep: `dt = C · min_i h_i / (c_i + |v_i| + ε)`, capped by
/// an acceleration criterion `√(h/|a|)`.
pub fn courant_timestep(particles: &ParticleSet, max_dt: f64) -> f64 {
    let mut dt = max_dt;
    for i in 0..particles.len() {
        let v = (particles.vx[i].powi(2) + particles.vy[i].powi(2) + particles.vz[i].powi(2)).sqrt();
        let signal = particles.c[i] + v + 1e-12;
        dt = dt.min(COURANT * particles.h[i] / signal);
        let a = (particles.ax[i].powi(2) + particles.ay[i].powi(2) + particles.az[i].powi(2)).sqrt();
        if a > 1e-12 {
            dt = dt.min(COURANT * (particles.h[i] / a).sqrt());
        }
    }
    dt.max(1e-12)
}

/// Advance positions, velocities and internal energy by `dt` with a
/// kick-drift (semi-implicit Euler) update, as SPH-EXA's `UpdateQuantities` does.
pub fn update_quantities(particles: &mut ParticleSet, dt: f64) {
    let n = particles.len();
    let ax = particles.ax.clone();
    let ay = particles.ay.clone();
    let az = particles.az.clone();
    let du = particles.du.clone();

    parallel_chunks_mut(&mut particles.vx[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += ax[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.vy[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += ay[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.vz[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += az[s + k] * dt;
        }
    });

    let vx = particles.vx.clone();
    let vy = particles.vy.clone();
    let vz = particles.vz.clone();
    parallel_chunks_mut(&mut particles.x[..n], |s, c| {
        for (k, x) in c.iter_mut().enumerate() {
            *x += vx[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.y[..n], |s, c| {
        for (k, y) in c.iter_mut().enumerate() {
            *y += vy[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.z[..n], |s, c| {
        for (k, z) in c.iter_mut().enumerate() {
            *z += vz[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.u[..n], |s, c| {
        for (k, u) in c.iter_mut().enumerate() {
            *u = (*u + du[s + k] * dt).max(1e-12);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_particle(vx: f64, c: f64, h: f64) -> ParticleSet {
        let mut p = ParticleSet::with_capacity(1);
        p.push(0.0, 0.0, 0.0, vx, 0.0, 0.0, 1.0, h, 1.0);
        p.c = vec![c];
        p
    }

    #[test]
    fn timestep_shrinks_with_velocity_and_sound_speed() {
        let slow = courant_timestep(&single_particle(0.1, 1.0, 0.1), 1.0);
        let fast = courant_timestep(&single_particle(10.0, 1.0, 0.1), 1.0);
        assert!(fast < slow);
        let stiff = courant_timestep(&single_particle(0.1, 50.0, 0.1), 1.0);
        assert!(stiff < slow);
    }

    #[test]
    fn timestep_respects_cap() {
        let p = single_particle(1e-9, 1e-9, 100.0);
        assert_eq!(courant_timestep(&p, 0.25), 0.25);
    }

    #[test]
    fn acceleration_limits_timestep() {
        let mut p = single_particle(0.0, 0.1, 0.1);
        p.ax = vec![1.0e6];
        let dt = courant_timestep(&p, 1.0);
        assert!(dt < 1e-3);
    }

    #[test]
    fn update_advances_position_velocity_energy() {
        let mut p = single_particle(1.0, 1.0, 0.1);
        p.ax = vec![2.0];
        p.du = vec![0.5];
        update_quantities(&mut p, 0.1);
        assert!((p.vx[0] - 1.2).abs() < 1e-12);
        assert!((p.x[0] - 0.12).abs() < 1e-12);
        assert!((p.u[0] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn internal_energy_never_goes_negative() {
        let mut p = single_particle(0.0, 1.0, 0.1);
        p.du = vec![-1.0e9];
        update_quantities(&mut p, 1.0);
        assert!(p.u[0] > 0.0);
    }
}
