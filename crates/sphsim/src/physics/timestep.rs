//! Timestep control (`Timestep` stage) and the drift/kick update
//! (`UpdateQuantities` stage), plus the individual (block) timestep machinery:
//! [`TimestepBins`] assigns every particle a power-of-two rung
//! `dt = dt_base / 2^k` from its local Courant/acceleration criterion, limits
//! neighbouring rungs to one level (`|k_i − k_j| ≤ 1` across CSR rows) and
//! schedules which rungs are *active* on each substep of a hierarchical
//! kick-drift cycle.

use crate::parallel::{parallel_chunks_mut, parallel_map};
use crate::particle::ParticleSet;
use crate::physics::neighbors::NeighborLists;

/// Courant factor used for the CFL timestep.
pub const COURANT: f64 = 0.3;

/// Courant-limited timestep: `dt = C · min_i h_i / (c_i + |v_i| + ε)`, capped
/// by an acceleration criterion `C · √(h/|a|)` (the Courant factor applies to
/// both criteria).
///
/// The reduction over particles runs as a parallel min (one partial minimum
/// per worker chunk via [`parallel_map`], folded serially) — this scan sits on
/// the hot path of every step, and the previous serial loop was the only O(N)
/// stage left outside the thread pool.
pub fn courant_timestep(particles: &ParticleSet, max_dt: f64) -> f64 {
    courant_timestep_prefix(particles, particles.len(), max_dt)
}

/// The local Courant/acceleration criterion of one particle, **uncapped**:
/// `min(C·h/(c + |v| + ε), C·√(h/|a|))` (the acceleration term only when
/// `|a| > ε`). Shared by the global reduction ([`courant_timestep_prefix`])
/// and the per-particle rung assignment ([`TimestepBins`]) — folding this
/// value into a running minimum is bit-identical to the fused loop it
/// replaced, because `f64::min` is exact and associative on non-NaN input.
#[inline]
pub fn courant_dt_row(particles: &ParticleSet, i: usize) -> f64 {
    let v = (particles.vx[i].powi(2) + particles.vy[i].powi(2) + particles.vz[i].powi(2)).sqrt();
    let signal = particles.c[i] + v + 1e-12;
    let mut dt = COURANT * particles.h[i] / signal;
    let a = (particles.ax[i].powi(2) + particles.ay[i].powi(2) + particles.az[i].powi(2)).sqrt();
    if a > 1e-12 {
        dt = dt.min(COURANT * (particles.h[i] / a).sqrt());
    }
    dt
}

/// [`courant_timestep`] restricted to the first `n` particles of the set.
///
/// The distributed propagator stores ghost copies behind its owned particles;
/// ghosts carry locally incomplete accelerations and must not shrink the rank's
/// timestep proposal (their owners reduce over them instead).
///
/// An empty prefix (`n = 0`) returns `max_dt` as-is — the cap is the only
/// constraint, and the `1e-12` floor exists to keep a *particle-derived*
/// minimum positive, so it must not touch the degenerate path. `n` beyond the
/// particle count is a caller bug (an owned prefix can never exceed the local
/// set) and trips a debug assertion; release builds clamp defensively.
pub fn courant_timestep_prefix(particles: &ParticleSet, n: usize, max_dt: f64) -> f64 {
    debug_assert!(
        n <= particles.len(),
        "courant_timestep_prefix: prefix {n} exceeds the particle count {}",
        particles.len()
    );
    let n = n.min(particles.len());
    if n == 0 {
        return max_dt;
    }
    // One map item per *chunk*, not per particle: the partial-minimum buffer
    // stays a few hundred elements regardless of N. The chunk count is held
    // at parallel_map's parallel threshold so large reductions actually fan
    // out across the workers; below it the scan degenerates to the serial
    // loop it replaced.
    let chunks = n.min(256.max(crate::parallel::worker_threads()));
    let chunk = n.div_ceil(chunks);
    let partials = parallel_map(chunks, |t| {
        let mut dt = max_dt;
        for i in t * chunk..((t + 1) * chunk).min(n) {
            dt = dt.min(courant_dt_row(particles, i));
        }
        dt
    });
    partials.into_iter().fold(max_dt, f64::min).max(1e-12)
}

/// Advance positions, velocities and internal energy by `dt` with a
/// kick-drift (semi-implicit Euler) update, as SPH-EXA's `UpdateQuantities` does.
pub fn update_quantities(particles: &mut ParticleSet, dt: f64) {
    let n = particles.len();
    let ax = particles.ax.clone();
    let ay = particles.ay.clone();
    let az = particles.az.clone();
    let du = particles.du.clone();

    parallel_chunks_mut(&mut particles.vx[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += ax[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.vy[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += ay[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.vz[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            *v += az[s + k] * dt;
        }
    });

    let vx = particles.vx.clone();
    let vy = particles.vy.clone();
    let vz = particles.vz.clone();
    parallel_chunks_mut(&mut particles.x[..n], |s, c| {
        for (k, x) in c.iter_mut().enumerate() {
            *x += vx[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.y[..n], |s, c| {
        for (k, y) in c.iter_mut().enumerate() {
            *y += vy[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.z[..n], |s, c| {
        for (k, z) in c.iter_mut().enumerate() {
            *z += vz[s + k] * dt;
        }
    });
    parallel_chunks_mut(&mut particles.u[..n], |s, c| {
        for (k, u) in c.iter_mut().enumerate() {
            *u = (*u + du[s + k] * dt).max(1e-12);
        }
    });
}

// ---------------------------------------------------------------------------
// Individual (block) timesteps
// ---------------------------------------------------------------------------

/// Power-of-two individual-timestep state: the cycle plan (`dt_base`, deepest
/// rung, substep phase) plus the scratch buffers of the rung assignment and
/// the neighbour-rung limiter. Per-particle rungs live in the
/// [`ParticleSet::rung`] lane, so they travel with the particle through
/// Morton reorders, rank migration and ghost exchange.
///
/// **Rung assignment.** At the start of each cycle (`phase == 0`) the global
/// minimum `dt_min` of the local criteria ([`courant_dt_row`], capped at
/// `max_dt`, floored at `1e-12` — exactly [`courant_timestep_prefix`]) is
/// expanded to `dt_base = dt_min · 2^(B−1)` and halved back under `max_dt`.
/// Each particle takes the *smallest* rung `k` with `dt_base / 2^k ≤ dt_i`,
/// clamped to `B − 1` — well-defined because `dt_base / 2^(B−1) ≤ dt_min`.
///
/// **Limiter.** A raise-only Jacobi iteration
/// `k_i ← max(k_i, max_{j ∈ row(i)} k_j − 1)` runs to its (unique, least)
/// fixpoint, so no pair in the symmetric CSR lists interacts across more than
/// one level. Raise-only + monotone means the distributed propagator can run
/// the same rounds per rank with a ghost-rung exchange in between and reach
/// the identical fixpoint.
///
/// **Schedule.** The deepest rung actually used, `k_deep`, fixes the substep
/// `dt_sub = dt_base / 2^k_deep` and the cycle length `2^k_deep` (so a cycle
/// where every particle sits on rung 0 degenerates to one full step at
/// `dt_base`). Rung `k` is *active* — kicked, with a fresh
/// density/gradh/IAD/momentum pass over its rows — on substeps
/// `phase % 2^(k_deep − k) == 0`; every particle drifts by `dt_sub` on every
/// substep. A particle may *deepen* (raise its rung, clamped at `k_deep`)
/// mid-cycle at its own kick when its fresh criterion demands it; deeper
/// periods divide shallower ones, so the kick schedule stays aligned.
/// Shallowing happens only at the next cycle start, when every rung is
/// reassigned from scratch.
#[derive(Clone, Debug)]
pub struct TimestepBins {
    n_bins: usize,
    dt_base: f64,
    k_deep: u32,
    phase: u32,
    cycles: u64,
    rung_next: Vec<u8>,
    occupancy: Vec<u32>,
}

impl TimestepBins {
    /// Bin structure with `n_bins` power-of-two rungs (`n_bins ≥ 1`; a single
    /// bin reproduces the global-dt scheme). The first substep is a cycle
    /// start.
    pub fn new(n_bins: usize) -> Self {
        assert!(n_bins >= 1, "need at least one timestep bin");
        assert!(n_bins <= 24, "2^(n_bins-1) substeps per cycle must stay sane");
        Self {
            n_bins,
            dt_base: 0.0,
            k_deep: 0,
            phase: 0,
            cycles: 0,
            rung_next: Vec::new(),
            occupancy: vec![0; n_bins],
        }
    }

    /// Number of cycles planned so far (0 before the first
    /// [`TimestepBins::plan`] — the propagator paces Morton reorders by this,
    /// the binned analogue of the global-dt step counter).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of rungs `B`.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Rung-0 timestep of the current cycle.
    pub fn dt_base(&self) -> f64 {
        self.dt_base
    }

    /// Deepest rung in use this cycle (fixed by [`TimestepBins::seal`]).
    pub fn k_deep(&self) -> u32 {
        self.k_deep
    }

    /// Substep index within the current cycle (`0` = cycle start).
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Substeps per cycle: `2^k_deep`.
    pub fn cycle_len(&self) -> u32 {
        1u32 << self.k_deep
    }

    /// True when the next substep starts a new cycle (full rebuild, every
    /// particle active, rungs reassigned).
    pub fn at_cycle_start(&self) -> bool {
        self.phase == 0
    }

    /// The timestep of rung `k`: `dt_base / 2^k` (exact — halving a finite
    /// f64 in this range is lossless).
    pub fn rung_dt(&self, k: u8) -> f64 {
        self.dt_base / (1u64 << k) as f64
    }

    /// The substep (drift) timestep: the deepest rung's dt.
    pub fn dt_sub(&self) -> f64 {
        self.dt_base / (1u64 << self.k_deep) as f64
    }

    /// True when rung `k` is kicked on the current substep.
    pub fn is_active(&self, k: u8) -> bool {
        let k = (k as u32).min(self.k_deep);
        self.phase.is_multiple_of(1u32 << (self.k_deep - k))
    }

    /// Start a new cycle: derive `dt_base` from the globally-reduced minimum
    /// criterion (`dt_min = courant_timestep_prefix(...)`, already capped at
    /// `max_dt`) by exact doublings, halved back under `max_dt`. Resets the
    /// phase; `k_deep` is fixed separately by [`TimestepBins::seal`] once the
    /// limited rungs are known.
    pub fn plan(&mut self, dt_min: f64, max_dt: f64) {
        assert!(
            dt_min.is_finite() && dt_min > 0.0,
            "cycle planned from an invalid dt_min {dt_min}"
        );
        let mut dt_base = dt_min;
        for _ in 1..self.n_bins {
            dt_base *= 2.0;
        }
        while dt_base > max_dt && dt_base * 0.5 >= dt_min {
            dt_base *= 0.5;
        }
        self.dt_base = dt_base;
        self.phase = 0;
        self.k_deep = 0;
        self.cycles += 1;
    }

    /// Assign the first `n` particles their unlimited rung — the smallest `k`
    /// with `dt_base / 2^k ≤ dt_i` ([`courant_dt_row`]), clamped to
    /// `n_bins − 1`. Slots at or past `n` (ghosts) keep their current rung.
    pub fn assign_rungs(&self, particles: &mut ParticleSet, n: usize) {
        let rungs: Vec<u8> = parallel_map(n, |i| {
            let dt_i = courant_dt_row(particles, i);
            let mut k = 0u8;
            let mut dt = self.dt_base;
            while dt > dt_i && (k as usize) < self.n_bins - 1 {
                dt *= 0.5;
                k += 1;
            }
            k
        });
        particles.rung[..n].copy_from_slice(&rungs);
    }

    /// One raise-only Jacobi round of the neighbour-rung limiter over the
    /// first `n` CSR rows: `k_i ← max(k_i, max_{j ∈ row(i)} k_j − 1)`,
    /// reading every row entry (including ghost slots past `n`). Returns
    /// whether any rung changed; iterate to the fixpoint (at most
    /// `n_bins − 1` rounds on a connected set).
    pub fn limiter_round(&mut self, particles: &mut ParticleSet, neighbors: &NeighborLists, n: usize) -> bool {
        assert!(neighbors.len() >= n, "neighbour lists out of date for the limiter");
        let next: Vec<u8> = parallel_map(n, |i| {
            let mut k = particles.rung[i];
            for &j in neighbors.neighbors(i) {
                let kj = particles.rung[j as usize];
                if kj > k + 1 {
                    k = kj - 1;
                }
            }
            k
        });
        self.rung_next.clear();
        self.rung_next.extend_from_slice(&next);
        let mut changed = false;
        for (i, &k) in self.rung_next.iter().enumerate() {
            if particles.rung[i] != k {
                particles.rung[i] = k;
                changed = true;
            }
        }
        changed
    }

    /// Fix the deepest rung of the cycle (after limiting; the distributed
    /// propagator passes the `allreduce_max` of the per-rank maxima).
    pub fn seal(&mut self, k_deep: u32) {
        assert!((k_deep as usize) < self.n_bins, "k_deep {k_deep} out of range");
        self.k_deep = k_deep;
    }

    /// Deepest rung among the first `n` particles (a rank's local maximum).
    pub fn max_rung(&self, particles: &ParticleSet, n: usize) -> u32 {
        particles.rung[..n].iter().copied().max().unwrap_or(0) as u32
    }

    /// Mid-cycle deepening over `rows` (the active rows of this substep):
    /// raise a particle's rung — never lower it — when its *fresh* criterion
    /// demands a smaller dt, clamped at `k_deep` (the substep size is frozen
    /// for the cycle). The raised rung's period divides the old one and the
    /// current phase is a kick boundary for it, so the schedule stays
    /// aligned; the limiter is re-established at the next cycle start.
    pub fn deepen(&self, particles: &mut ParticleSet, rows: &[u32]) {
        let deepened: Vec<u8> = parallel_map(rows.len(), |r| {
            let i = rows[r] as usize;
            let dt_i = courant_dt_row(particles, i);
            let mut k = particles.rung[i];
            while self.rung_dt(k) > dt_i && (k as u32) < self.k_deep {
                k += 1;
            }
            k
        });
        for (r, &k) in deepened.iter().enumerate() {
            particles.rung[rows[r] as usize] = k;
        }
    }

    /// Advance to the next substep of the cycle.
    pub fn advance(&mut self) {
        self.phase = (self.phase + 1) % self.cycle_len();
    }

    /// Collect the indices in `0..n` whose rung is active this substep into
    /// `out` (ascending; the subset CSR builders require sorted rows).
    pub fn collect_active_rows(&self, particles: &ParticleSet, n: usize, out: &mut Vec<u32>) {
        out.clear();
        for (i, &k) in particles.rung[..n].iter().enumerate() {
            if self.is_active(k) {
                out.push(i as u32);
            }
        }
    }

    /// Per-rung particle counts over the first `n` particles (the
    /// `health.dt_bins` occupancy diagnostic).
    pub fn occupancy(&mut self, particles: &ParticleSet, n: usize) -> &[u32] {
        self.occupancy.fill(0);
        for &k in &particles.rung[..n] {
            self.occupancy[(k as usize).min(self.n_bins - 1)] += 1;
        }
        &self.occupancy
    }
}

/// The binned counterpart of [`update_quantities`]: kick (velocity and
/// internal energy) only the particles whose rung is active this substep,
/// each by its **own** rung dt, then drift *every* particle by the substep
/// dt. Holding `v` piecewise-constant between kicks makes the accumulated
/// drift of a rung-`k` particle over its kick period exactly `v_new · dt_k` —
/// the same position advance the global-dt update performs in one step.
pub fn update_quantities_binned(particles: &mut ParticleSet, bins: &TimestepBins) {
    let n = particles.len();
    let dt_sub = bins.dt_sub();
    // Per-particle kick dt: the rung dt for active particles, 0 for frozen
    // ones (the kick loops skip zeros, leaving v and u untouched bit-wise).
    let kick: Vec<f64> = particles.rung[..n]
        .iter()
        .map(|&k| if bins.is_active(k) { bins.rung_dt(k) } else { 0.0 })
        .collect();
    let ax = particles.ax.clone();
    let ay = particles.ay.clone();
    let az = particles.az.clone();
    let du = particles.du.clone();

    parallel_chunks_mut(&mut particles.vx[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            if kick[s + k] > 0.0 {
                *v += ax[s + k] * kick[s + k];
            }
        }
    });
    parallel_chunks_mut(&mut particles.vy[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            if kick[s + k] > 0.0 {
                *v += ay[s + k] * kick[s + k];
            }
        }
    });
    parallel_chunks_mut(&mut particles.vz[..n], |s, c| {
        for (k, v) in c.iter_mut().enumerate() {
            if kick[s + k] > 0.0 {
                *v += az[s + k] * kick[s + k];
            }
        }
    });
    parallel_chunks_mut(&mut particles.u[..n], |s, c| {
        for (k, u) in c.iter_mut().enumerate() {
            if kick[s + k] > 0.0 {
                *u = (*u + du[s + k] * kick[s + k]).max(1e-12);
            }
        }
    });

    let vx = particles.vx.clone();
    let vy = particles.vy.clone();
    let vz = particles.vz.clone();
    parallel_chunks_mut(&mut particles.x[..n], |s, c| {
        for (k, x) in c.iter_mut().enumerate() {
            *x += vx[s + k] * dt_sub;
        }
    });
    parallel_chunks_mut(&mut particles.y[..n], |s, c| {
        for (k, y) in c.iter_mut().enumerate() {
            *y += vy[s + k] * dt_sub;
        }
    });
    parallel_chunks_mut(&mut particles.z[..n], |s, c| {
        for (k, z) in c.iter_mut().enumerate() {
            *z += vz[s + k] * dt_sub;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_particle(vx: f64, c: f64, h: f64) -> ParticleSet {
        let mut p = ParticleSet::with_capacity(1);
        p.push(0.0, 0.0, 0.0, vx, 0.0, 0.0, 1.0, h, 1.0);
        p.c = vec![c];
        p
    }

    #[test]
    fn timestep_shrinks_with_velocity_and_sound_speed() {
        let slow = courant_timestep(&single_particle(0.1, 1.0, 0.1), 1.0);
        let fast = courant_timestep(&single_particle(10.0, 1.0, 0.1), 1.0);
        assert!(fast < slow);
        let stiff = courant_timestep(&single_particle(0.1, 50.0, 0.1), 1.0);
        assert!(stiff < slow);
    }

    #[test]
    fn timestep_respects_cap() {
        let p = single_particle(1e-9, 1e-9, 100.0);
        assert_eq!(courant_timestep(&p, 0.25), 0.25);
    }

    #[test]
    fn acceleration_limits_timestep() {
        let mut p = single_particle(0.0, 0.1, 0.1);
        p.ax = vec![1.0e6];
        let dt = courant_timestep(&p, 1.0);
        assert!(dt < 1e-3);
    }

    #[test]
    fn prefix_variant_ignores_trailing_particles() {
        // Two particles; the second (a "ghost" slot) carries an acceleration
        // that would crush the timestep if it were counted.
        let mut p = single_particle(0.1, 1.0, 0.1);
        p.push(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.c = vec![1.0, 1.0];
        p.ax = vec![0.0, 1.0e9];
        let full = courant_timestep(&p, 1.0);
        let owned_only = courant_timestep_prefix(&p, 1, 1.0);
        assert!(full < owned_only, "ghost acceleration must shrink the full reduction");
        assert_eq!(owned_only, courant_timestep(&single_particle(0.1, 1.0, 0.1), 1.0));
        // Empty prefix: only the cap applies.
        assert_eq!(courant_timestep_prefix(&p, 0, 0.25), 0.25);
    }

    #[test]
    fn empty_prefix_returns_the_cap_unclamped() {
        // The 1e-12 floor guards particle-derived minima; the degenerate
        // n = 0 path must hand the cap back untouched, however small.
        let p = single_particle(0.1, 1.0, 0.1);
        assert_eq!(courant_timestep_prefix(&p, 0, 1e-15), 1e-15);
        assert_eq!(courant_timestep(&ParticleSet::default(), 1e-15), 1e-15);
    }

    #[test]
    fn parallel_reduction_matches_serial_scan() {
        // Above the parallel cutoff the chunked min must agree exactly with a
        // serial reference reduction.
        let mut p = ParticleSet::with_capacity(1000);
        for i in 0..1000 {
            let f = i as f64;
            p.push(f, 0.0, 0.0, 0.01 * f, 0.0, 0.0, 1.0, 0.05 + 1e-4 * f, 1.0);
        }
        p.c = (0..1000).map(|i| 0.5 + 1e-3 * i as f64).collect();
        p.ax = (0..1000).map(|i| if i % 7 == 0 { 50.0 } else { 0.0 }).collect();
        let mut expected = 1.0f64;
        for i in 0..1000 {
            let v = (p.vx[i].powi(2) + p.vy[i].powi(2) + p.vz[i].powi(2)).sqrt();
            expected = expected.min(COURANT * p.h[i] / (p.c[i] + v + 1e-12));
            let a = (p.ax[i].powi(2) + p.ay[i].powi(2) + p.az[i].powi(2)).sqrt();
            if a > 1e-12 {
                expected = expected.min(COURANT * (p.h[i] / a).sqrt());
            }
        }
        assert_eq!(courant_timestep(&p, 1.0), expected.max(1e-12));
    }

    #[test]
    fn update_advances_position_velocity_energy() {
        let mut p = single_particle(1.0, 1.0, 0.1);
        p.ax = vec![2.0];
        p.du = vec![0.5];
        update_quantities(&mut p, 0.1);
        assert!((p.vx[0] - 1.2).abs() < 1e-12);
        assert!((p.x[0] - 0.12).abs() < 1e-12);
        assert!((p.u[0] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn internal_energy_never_goes_negative() {
        let mut p = single_particle(0.0, 1.0, 0.1);
        p.du = vec![-1.0e9];
        update_quantities(&mut p, 1.0);
        assert!(p.u[0] > 0.0);
    }

    // -- TimestepBins -------------------------------------------------------

    /// Two well-separated particle pairs with contrasting sound speeds, so
    /// their Courant criteria land two rungs apart before limiting.
    fn contrast_cloud() -> ParticleSet {
        let mut p = ParticleSet::with_capacity(4);
        for i in 0..2 {
            p.push(0.02 * i as f64, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        }
        for i in 0..2 {
            p.push(10.0 + 0.02 * i as f64, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        }
        p.c = vec![1.0, 1.0, 8.0, 8.0];
        p
    }

    #[test]
    fn plan_keeps_dt_base_a_power_of_two_multiple_under_the_cap() {
        let mut bins = TimestepBins::new(4);
        bins.plan(0.004, 0.05);
        // 0.004 · 2³ = 0.032 ≤ 0.05: no halving needed.
        assert_eq!(bins.dt_base(), 0.032);
        bins.plan(0.02, 0.05);
        // 0.02 · 2³ = 0.16 > 0.05 → halved to 0.04.
        assert_eq!(bins.dt_base(), 0.04);
        assert_eq!(bins.phase(), 0);
        // The deepest representable rung still reaches at or below dt_min.
        assert!(bins.rung_dt(3) <= 0.02);
    }

    #[test]
    fn rungs_follow_the_local_criterion_and_limit_to_one_level() {
        let mut p = contrast_cloud();
        let tree = crate::physics::neighbors::build_tree(&p, 4);
        let nl = crate::physics::neighbors::find_neighbors(&mut p, &tree);
        let dt_min = courant_timestep(&p, 0.05);
        let mut bins = TimestepBins::new(4);
        bins.plan(dt_min, 0.05);
        bins.assign_rungs(&mut p, 4);
        // The stiff pair's criterion is 8× smaller: it must sit deeper.
        assert!(p.rung[2] > p.rung[0]);
        // The stiffest particles take the deepest rung (dt_base/2³ ≤ dt_min).
        assert_eq!(p.rung[2], 3);
        while bins.limiter_round(&mut p, &nl, 4) {}
        for i in 0..4 {
            for &j in nl.neighbors(i) {
                assert!(
                    (p.rung[i] as i32 - p.rung[j as usize] as i32).abs() <= 1,
                    "limiter violated between {i} and {j}"
                );
            }
        }
        bins.seal(bins.max_rung(&p, 4));
        assert_eq!(bins.k_deep(), 3);
        assert_eq!(bins.cycle_len(), 8);
        assert_eq!(bins.dt_sub(), bins.dt_base() / 8.0);
    }

    #[test]
    fn all_shallow_rungs_collapse_the_cycle_to_one_substep() {
        // Uniform slow gas: everyone lands on rung 0; k_deep = 0 must give a
        // one-substep cycle at dt_base (not 2^(B-1) crawling substeps).
        let mut p = contrast_cloud();
        p.c = vec![1.0; 4];
        let dt_min = courant_timestep(&p, 0.05);
        let mut bins = TimestepBins::new(4);
        bins.plan(dt_min, 0.05);
        bins.assign_rungs(&mut p, 4);
        bins.seal(bins.max_rung(&p, 4));
        assert_eq!(bins.k_deep(), 0);
        assert_eq!(bins.cycle_len(), 1);
        assert_eq!(bins.dt_sub(), bins.dt_base());
        bins.advance();
        assert!(bins.at_cycle_start(), "a length-1 cycle is always at its start");
    }

    #[test]
    fn active_schedule_halves_the_period_per_rung() {
        let mut bins = TimestepBins::new(3);
        bins.plan(0.01, 0.05);
        bins.seal(2);
        let mut kicks = [0u32; 3];
        for _ in 0..bins.cycle_len() {
            for k in 0u8..3 {
                if bins.is_active(k) {
                    kicks[k as usize] += 1;
                }
            }
            bins.advance();
        }
        assert!(bins.at_cycle_start());
        // Rung k is kicked 2^k times per cycle; each kick covers dt_base/2^k.
        assert_eq!(kicks, [1, 2, 4]);
        for k in 0u8..3 {
            let covered = kicks[k as usize] as f64 * bins.rung_dt(k);
            assert!((covered - bins.dt_base()).abs() < 1e-15);
        }
    }

    #[test]
    fn deepen_raises_but_never_lowers_and_clamps_at_k_deep() {
        let mut p = contrast_cloud();
        let mut bins = TimestepBins::new(4);
        bins.plan(courant_timestep(&p, 0.05), 0.05);
        bins.assign_rungs(&mut p, 4);
        bins.seal(bins.max_rung(&p, 4));
        // Make particle 0's criterion catastrophically small mid-cycle.
        p.c[0] = 1e6;
        let before_others = p.rung.clone();
        bins.deepen(&mut p, &[0]);
        assert_eq!(bins.k_deep(), 3);
        assert_eq!(p.rung[0] as u32, bins.k_deep(), "deepening clamps at k_deep");
        assert_eq!(&p.rung[1..], &before_others[1..], "only the given rows change");
        // Relaxing the criterion must NOT lower the rung mid-cycle.
        p.c[0] = 1e-6;
        bins.deepen(&mut p, &[0]);
        assert_eq!(p.rung[0] as u32, bins.k_deep());
    }

    #[test]
    fn binned_update_kicks_active_rungs_only_and_drifts_everyone() {
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.push(1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.ax = vec![4.0, 4.0];
        p.du = vec![0.5, 0.5];
        p.rung = vec![0, 1];
        let mut bins = TimestepBins::new(2);
        bins.plan(0.05, 0.05);
        bins.seal(1);
        // Phase 1 of the 2-substep cycle: only rung 1 is active.
        bins.advance();
        assert!(!bins.is_active(0));
        assert!(bins.is_active(1));
        update_quantities_binned(&mut p, &bins);
        let dt_sub = bins.dt_sub();
        assert_eq!(dt_sub, 0.025);
        // Rung 0 froze its velocity and energy but still drifted.
        assert_eq!(p.vx[0], 1.0);
        assert_eq!(p.u[0], 1.0);
        assert!((p.x[0] - 1.0 * dt_sub).abs() < 1e-15);
        // Rung 1 kicked by its own dt (= dt_sub here) then drifted.
        let v1 = 2.0 + 4.0 * bins.rung_dt(1);
        assert_eq!(p.vx[1], v1);
        assert!((p.x[1] - (1.0 + v1 * dt_sub)).abs() < 1e-15);
        assert!((p.u[1] - (1.0 + 0.5 * bins.rung_dt(1))).abs() < 1e-15);
    }

    #[test]
    fn single_bin_schedule_is_the_global_dt_scheme() {
        let mut p = contrast_cloud();
        let dt_min = courant_timestep(&p, 0.05);
        let mut bins = TimestepBins::new(1);
        bins.plan(dt_min, 0.05);
        bins.assign_rungs(&mut p, 4);
        bins.seal(bins.max_rung(&p, 4));
        assert_eq!(bins.dt_base(), dt_min);
        assert_eq!(bins.cycle_len(), 1);
        assert!(p.rung.iter().all(|&k| k == 0));
        assert!(bins.is_active(0));
    }

    #[test]
    fn occupancy_counts_every_particle_once() {
        let mut p = contrast_cloud();
        let mut bins = TimestepBins::new(4);
        bins.plan(courant_timestep(&p, 0.05), 0.05);
        bins.assign_rungs(&mut p, 4);
        let occ = bins.occupancy(&p, 4);
        assert_eq!(occ.iter().sum::<u32>(), 4);
        assert_eq!(occ.len(), 4);
    }
}
