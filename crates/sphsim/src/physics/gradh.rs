//! Grad-h normalisation terms (`NormalizationGradh` stage).
//!
//! Variable-smoothing-length SPH corrects the momentum and energy equations by
//! the factor `Ω_i = 1 + (h_i / 3 ρ_i) Σ_j m_j ∂W/∂h(r_ij, h_i)` (Springel &
//! Hernquist 2002). `Ω → 1` for a perfectly uniform particle distribution.

use crate::boundary::MinImage;
use crate::kernels::{dwdh_cubic, LANE_WIDTH};
use crate::parallel::parallel_map;
use crate::particle::ParticleSet;
use crate::physics::neighbors::NeighborLists;

/// Compute the grad-h normalisation `Ω` for every particle (minimum-image
/// pair separations under periodic boundaries; open boxes take a
/// compile-time specialisation with no image arithmetic).
pub fn compute_gradh(particles: &mut ParticleSet, neighbors: &NeighborLists) {
    let mi = MinImage::of(&particles.boundary);
    if mi.is_identity() {
        gradh_impl::<false>(particles, neighbors, mi);
    } else {
        gradh_impl::<true>(particles, neighbors, mi);
    }
}

/// One CSR row of the Ω sum — shared by the full pass and the row-subset
/// pass. Reads only static neighbour fields (`x`, `m`) plus the row's own
/// `h` and `ρ`.
#[inline]
fn gradh_row<const PERIODIC: bool>(particles: &ParticleSet, neighbors: &NeighborLists, mi: MinImage, i: usize) -> f64 {
    let hi = particles.h[i];
    let (xi, yi, zi) = (particles.x[i], particles.y[i], particles.z[i]);
    let rho_i = particles.rho[i].max(1e-30);
    let mut sum = 0.0;
    // SoA lanes (see `density_impl`): gather, fixed-width compute,
    // in-row-order accumulate — bit-identical to a scalar sweep.
    let mut lx = [0.0f64; LANE_WIDTH];
    let mut ly = [0.0f64; LANE_WIDTH];
    let mut lz = [0.0f64; LANE_WIDTH];
    let mut lm = [0.0f64; LANE_WIDTH];
    let mut lt = [0.0f64; LANE_WIDTH];
    let row = neighbors.neighbors(i);
    let mut chunks = row.chunks_exact(LANE_WIDTH);
    for chunk in chunks.by_ref() {
        for (k, &j) in chunk.iter().enumerate() {
            let j = j as usize;
            lx[k] = particles.x[j];
            ly[k] = particles.y[j];
            lz[k] = particles.z[j];
            lm[k] = particles.m[j];
        }
        for k in 0..LANE_WIDTH {
            let dx = xi - lx[k];
            let dy = yi - ly[k];
            let dz = zi - lz[k];
            let (dx, dy, dz) = if PERIODIC { mi.map(dx, dy, dz) } else { (dx, dy, dz) };
            let r = (dx * dx + dy * dy + dz * dz).sqrt();
            lt[k] = lm[k] * dwdh_cubic(r, hi);
        }
        for &t in &lt {
            sum += t;
        }
    }
    for &j in chunks.remainder() {
        let j = j as usize;
        let dx = xi - particles.x[j];
        let dy = yi - particles.y[j];
        let dz = zi - particles.z[j];
        let (dx, dy, dz) = if PERIODIC { mi.map(dx, dy, dz) } else { (dx, dy, dz) };
        let r = (dx * dx + dy * dy + dz * dz).sqrt();
        sum += particles.m[j] * dwdh_cubic(r, hi);
    }
    let omega = 1.0 + hi / (3.0 * rho_i) * sum;
    // Guard against pathological values near free surfaces.
    omega.clamp(0.2, 5.0)
}

fn gradh_impl<const PERIODIC: bool>(particles: &mut ParticleSet, neighbors: &NeighborLists, mi: MinImage) {
    let n = particles.len();
    assert_eq!(neighbors.len(), n, "neighbour lists out of date");
    let omega: Vec<f64> = parallel_map(n, |i| gradh_row::<PERIODIC>(particles, neighbors, mi, i));
    particles.omega = omega;
}

/// [`compute_gradh`] restricted to a subset of CSR rows, writing `Ω` in place.
pub fn compute_gradh_rows(particles: &mut ParticleSet, neighbors: &NeighborLists, rows: &[u32]) {
    assert_eq!(neighbors.len(), particles.len(), "neighbour lists out of date");
    let mi = MinImage::of(&particles.boundary);
    let out: Vec<f64> = if mi.is_identity() {
        parallel_map(rows.len(), |k| {
            gradh_row::<false>(particles, neighbors, mi, rows[k] as usize)
        })
    } else {
        parallel_map(rows.len(), |k| {
            gradh_row::<true>(particles, neighbors, mi, rows[k] as usize)
        })
    };
    for (k, &i) in rows.iter().enumerate() {
        particles.omega[i as usize] = out[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;
    use crate::physics::density::compute_density;
    use crate::physics::neighbors::{build_tree, find_neighbors};

    #[test]
    fn omega_is_near_one_for_uniform_lattice() {
        let mut p = lattice_cube(8, 1.0, 1.0, 1.3);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        compute_gradh(&mut p, &nl);
        // Interior particle: omega should be within ~30 % of unity.
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for i in 0..p.len() {
            let d = (p.x[i] - 0.5).powi(2) + (p.y[i] - 0.5).powi(2) + (p.z[i] - 0.5).powi(2);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        assert!((p.omega[best] - 1.0).abs() < 0.3, "Ω = {}", p.omega[best]);
    }

    #[test]
    fn omega_stays_within_guards() {
        let mut p = lattice_cube(4, 1.0, 1.0, 1.3);
        let tree = build_tree(&p, 8);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        compute_gradh(&mut p, &nl);
        assert!(p.omega.iter().all(|&o| (0.2..=5.0).contains(&o)));
    }
}
