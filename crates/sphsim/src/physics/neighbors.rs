//! Neighbour search (`FindNeighbors` stage).

use crate::octree::Octree;
use crate::parallel::parallel_map;
use crate::particle::ParticleSet;

/// Per-particle neighbour lists.
#[derive(Clone, Debug, Default)]
pub struct NeighborLists {
    /// `lists[i]` holds the indices of the particles within `2 h_i` of particle `i`
    /// (including `i` itself).
    pub lists: Vec<Vec<usize>>,
}

impl NeighborLists {
    /// Number of particles covered.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True if no particle is covered.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Mean neighbour count (excluding the particle itself).
    pub fn mean_count(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        let total: usize = self.lists.iter().map(|l| l.len().saturating_sub(1)).sum();
        total as f64 / self.lists.len() as f64
    }
}

/// Build the octree over the current particle positions.
pub fn build_tree(particles: &ParticleSet, max_leaf_size: usize) -> Octree {
    Octree::build(&particles.x, &particles.y, &particles.z, &particles.m, max_leaf_size)
}

/// Find all neighbours within the kernel support `2 h_i` of every particle and
/// record the per-particle neighbour counts.
pub fn find_neighbors(particles: &mut ParticleSet, tree: &Octree) -> NeighborLists {
    let n = particles.len();
    let lists: Vec<Vec<usize>> = parallel_map(n, |i| {
        let mut out = Vec::new();
        let radius = crate::kernels::KERNEL_SUPPORT * particles.h[i];
        tree.neighbors_within(
            (particles.x[i], particles.y[i], particles.z[i]),
            radius,
            &particles.x,
            &particles.y,
            &particles.z,
            &mut out,
        );
        out
    });
    for (i, list) in lists.iter().enumerate() {
        particles.neighbor_count[i] = list.len().saturating_sub(1) as u32;
    }
    NeighborLists { lists }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;

    #[test]
    fn lattice_particles_have_symmetric_neighbour_counts() {
        let mut p = lattice_cube(6, 1.0, 1.0, 1.2);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        assert_eq!(nl.len(), p.len());
        assert!(!nl.is_empty());
        // Interior particles of a uniform lattice should have tens of neighbours.
        assert!(nl.mean_count() > 10.0, "mean neighbours {}", nl.mean_count());
        // Every list contains the particle itself.
        assert!(nl.lists.iter().enumerate().all(|(i, l)| l.contains(&i)));
    }

    #[test]
    fn isolated_particle_has_only_itself() {
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.01, 1.0);
        p.push(10.0, 10.0, 10.0, 0.0, 0.0, 0.0, 1.0, 0.01, 1.0);
        let tree = build_tree(&p, 4);
        let nl = find_neighbors(&mut p, &tree);
        assert_eq!(nl.lists[0], vec![0]);
        assert_eq!(p.neighbor_count[0], 0);
    }
}
