//! Neighbour search (`FindNeighbors` stage).
//!
//! Neighbour lists are stored in CSR (compressed sparse row) form — one flat
//! `indices` array plus per-particle `offsets` — instead of the former
//! `Vec<Vec<usize>>`, which cost one heap allocation (and several growth
//! reallocations) per particle per step. The builder runs as two parallel
//! passes over reusable buffers:
//!
//! 1. **count**: each worker traverses the octree once per particle of its
//!    contiguous block, staging the neighbour indices in a thread-local row
//!    buffer while recording the per-particle counts *and* the
//!    `neighbor_count` diagnostic — so the stage has no serial tail;
//! 2. **symmetrise**: a parallel scan over the staged rows finds *one-sided*
//!    pairs — `j ∈ row(i)` because `r ≤ 2h_i`, but `i ∉ row(j)` because
//!    `r > 2h_j` — and stages `i` for appending to `row(j)`. Every interacting
//!    pair then appears in both rows, which is what makes the pairwise-
//!    antisymmetric momentum kernel conserve total momentum to round-off.
//!    The extra entries sit *outside* the `2h` support of their row's own
//!    particle, so the gather-type kernels (density, grad-h, IAD) are
//!    untouched — their kernel terms vanish there by compact support;
//! 3. **fill**: once the counts (plus extras) are prefix-summed into
//!    `offsets`, each worker's staged block is copied into its final CSR
//!    position. Blocks are contiguous both in particle index and (therefore)
//!    in the CSR `indices` array; with no extras the fill degenerates to a
//!    handful of disjoint `memcpy`s.
//!
//! All buffers live in a [`NeighborScratch`] (owned by
//! [`crate::workspace::StepWorkspace`]); after a warm-up step the whole stage
//! performs zero heap allocations (asserted by the sphsim
//! `alloc_free_neighbors` integration test).
//!
//! The builder honours the particle set's [`crate::boundary::Boundary`]:
//! under a periodic box the tree query also covers the wrapped images of each
//! search sphere and every distance test is minimum-image, so neighbourhoods
//! are seamless across the box faces. The image arrays are fixed-size — the
//! periodic path stays allocation-free.

use crate::boundary::{Boundary, MinImage};
use crate::octree::Octree;
use crate::parallel::worker_threads;
use crate::particle::ParticleSet;

/// Below this particle count the builder stays on one thread (mirrors the
/// cutoff of [`crate::parallel::parallel_map`]). Shared with the cell-list
/// builder ([`crate::celllist`]) so both paths chunk identically.
pub(crate) const SERIAL_CUTOFF: usize = 256;

/// Per-particle neighbour lists in CSR (compressed sparse row) form.
#[derive(Clone, Debug, Default)]
pub struct NeighborLists {
    /// `offsets[i] .. offsets[i + 1]` is the range of [`NeighborLists::indices`]
    /// holding the neighbours of particle `i` (`len() + 1` entries, monotone,
    /// starting at 0).
    pub offsets: Vec<u32>,
    /// Flat neighbour indices of all particles, row by row. Row `i` holds the
    /// particles within `2 h_i` of particle `i` (including `i` itself) plus —
    /// after symmetrisation — any particle `j` whose own support `2 h_j`
    /// reaches `i`, so that `j ∈ N(i) ⟺ i ∈ N(j)`.
    pub indices: Vec<u32>,
}

impl NeighborLists {
    /// Number of particles covered.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True if no particle is covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The neighbours of particle `i` (including `i` itself).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of neighbours of particle `i` (including `i` itself).
    pub fn count(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total number of stored neighbour entries.
    pub fn total_entries(&self) -> usize {
        self.indices.len()
    }

    /// Mean neighbour count (excluding the particle itself).
    pub fn mean_count(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: usize = (0..self.len()).map(|i| self.count(i).saturating_sub(1)).sum();
        total as f64 / self.len() as f64
    }
}

/// Reusable buffers of the multi-pass CSR neighbour-list builder. The fields
/// are crate-visible because the cell-list builder ([`crate::celllist`])
/// writes through the same buffers (its rows are already symmetric, so it
/// leaves the extras empty and shares the offsets/fill tail).
#[derive(Debug)]
pub struct NeighborScratch {
    /// Neighbour count of each particle within its own `2h` support (pass-1
    /// output; extras from the symmetrisation pass are added on top when the
    /// CSR offsets are prefix-summed).
    pub(crate) counts: Vec<u32>,
    /// Per-thread staging rows: pass 1 gathers into them, the fill pass copies
    /// them into the CSR indices.
    pub(crate) rows: Vec<Vec<u32>>,
    /// Per-thread one-sided pairs `(target, extra_neighbor)` found by the
    /// symmetrisation pass.
    extras: Vec<Vec<(u32, u32)>>,
    /// All one-sided pairs, merged and sorted by target particle.
    pub(crate) extras_flat: Vec<(u32, u32)>,
    /// Per-particle start of its extras in `extras_flat` (`len() + 1` entries).
    pub(crate) extra_starts: Vec<u32>,
    /// Per-row own-support neighbour counts of a **subset** build, staged here
    /// (one slot per requested row) and scattered into
    /// `particles.neighbor_count` by the shared subset tail — the full builds
    /// write the diagnostic straight through contiguous chunks instead.
    pub(crate) diag: Vec<u32>,
    /// Worker-thread count, resolved once at construction so the hot loop
    /// never touches the process environment.
    pub(crate) threads: usize,
}

impl NeighborScratch {
    /// Fresh (empty) scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            rows: Vec::new(),
            extras: Vec::new(),
            extras_flat: Vec::new(),
            extra_starts: Vec::new(),
            diag: Vec::new(),
            threads: worker_threads(),
        }
    }
}

impl Default for NeighborScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Build the octree over the current particle positions.
pub fn build_tree(particles: &ParticleSet, max_leaf_size: usize) -> Octree {
    Octree::build(&particles.x, &particles.y, &particles.z, &particles.m, max_leaf_size)
}

/// Find all neighbours within the kernel support `2 h_i` of every particle,
/// writing the CSR lists into `out` and the per-particle neighbour counts into
/// `particles.neighbor_count` — all through the reusable buffers of `scratch`.
pub fn find_neighbors_into(
    particles: &mut ParticleSet,
    tree: &Octree,
    out: &mut NeighborLists,
    scratch: &mut NeighborScratch,
) {
    let n = particles.len();
    assert_eq!(
        particles.neighbor_count.len(),
        n,
        "particle set inconsistent: neighbor_count lane out of sync"
    );
    scratch.counts.clear();
    scratch.counts.resize(n, 0);
    out.offsets.clear();
    out.offsets.resize(n + 1, 0);
    let threads = if n < SERIAL_CUTOFF {
        1
    } else {
        scratch.threads.min(n).max(1)
    };
    let chunk = n.div_ceil(threads).max(1);
    let blocks = n.div_ceil(chunk);
    if scratch.rows.len() < blocks {
        scratch.rows.resize_with(blocks, Vec::new);
    }
    let boundary = particles.boundary;
    let (x, y, z, h) = (&particles.x, &particles.y, &particles.z, &particles.h);

    // Pass 1 (count): gather each block's rows into its staging buffer,
    // recording per-particle counts and the neighbour-count diagnostic in the
    // same parallel pass (no serial post-pass). Under a periodic boundary the
    // per-particle tree query also covers the wrapped images of the search
    // sphere.
    {
        let count_chunks = scratch.counts.chunks_mut(chunk);
        let diag_chunks = particles.neighbor_count.chunks_mut(chunk);
        let row_bufs = scratch.rows.iter_mut();
        if threads == 1 {
            for (t, ((counts, diag), row)) in count_chunks.zip(diag_chunks).zip(row_bufs).enumerate() {
                gather_rows(tree, &boundary, x, y, z, h, t * chunk, counts, diag, row);
            }
        } else {
            std::thread::scope(|scope| {
                for (t, ((counts, diag), row)) in count_chunks.zip(diag_chunks).zip(row_bufs).enumerate() {
                    let boundary = &boundary;
                    scope.spawn(move || gather_rows(tree, boundary, x, y, z, h, t * chunk, counts, diag, row));
                }
            });
        }
    }

    // Pass 2 (symmetrise): scan the staged rows for one-sided pairs — j is in
    // row(i) because r ≤ 2h_i, but r > 2h_j keeps i out of row(j) — and stage
    // i for appending to row(j). The distance test mirrors the tree's
    // inclusion predicate exactly (squared distance vs squared support), so a
    // pair is "one-sided" precisely when the gather pass missed its mirror.
    {
        if scratch.extras.len() < blocks {
            scratch.extras.resize_with(blocks, Vec::new);
        }
        let count_chunks = scratch.counts.chunks(chunk);
        let row_bufs = scratch.rows[..blocks].iter();
        let extra_bufs = scratch.extras[..blocks].iter_mut();
        if threads == 1 {
            for (t, ((counts, row), extras)) in count_chunks.zip(row_bufs).zip(extra_bufs).enumerate() {
                find_one_sided(&boundary, x, y, z, h, t * chunk, counts, row, extras);
            }
        } else {
            std::thread::scope(|scope| {
                for (t, ((counts, row), extras)) in count_chunks.zip(row_bufs).zip(extra_bufs).enumerate() {
                    let boundary = &boundary;
                    scope.spawn(move || find_one_sided(boundary, x, y, z, h, t * chunk, counts, row, extras));
                }
            });
        }
    }
    scratch.extras_flat.clear();
    for block in &scratch.extras[..blocks] {
        scratch.extras_flat.extend_from_slice(block);
    }
    scratch.extras_flat.sort_unstable();
    scratch.extra_starts.clear();
    scratch.extra_starts.resize(n + 1, 0);
    for &(target, _) in &scratch.extras_flat {
        scratch.extra_starts[target as usize + 1] += 1;
    }
    for k in 0..n {
        scratch.extra_starts[k + 1] += scratch.extra_starts[k];
    }

    finish_csr(out, scratch, n, chunk, blocks);
}

/// Shared tail of both CSR builders (octree and cell list): prefix-sum the
/// per-row counts (plus extras) into the offsets and fill the indices from
/// the staged rows. Expects `scratch.counts`, `scratch.rows[..blocks]`,
/// `scratch.extras_flat` and `scratch.extra_starts` populated (the cell-list
/// path leaves the extras empty).
pub(crate) fn finish_csr(
    out: &mut NeighborLists,
    scratch: &mut NeighborScratch,
    n: usize,
    chunk: usize,
    blocks: usize,
) {
    // Offsets: exclusive prefix sum of the per-row counts plus extras.
    let mut acc = 0u64;
    for (k, (off, &c)) in out.offsets.iter_mut().zip(scratch.counts.iter()).enumerate() {
        *off = acc as u32;
        let extras = scratch.extra_starts[k + 1] - scratch.extra_starts[k];
        acc += c as u64 + extras as u64;
    }
    assert!(
        acc <= u32::MAX as u64,
        "neighbour entries exceed the u32 CSR offset range"
    );
    out.offsets[n] = acc as u32;

    // Fill: copy each staged block into its CSR position, appending the
    // extras of each row behind its gathered entries. The branch keys on
    // `blocks` (not `threads`), so any chunking policy stays correct; with no
    // extras each block is one contiguous memcpy.
    out.indices.clear();
    out.indices.resize(acc as usize, 0);
    debug_assert_eq!(
        scratch.rows[..blocks].iter().map(|r| r.len() as u64).sum::<u64>() + scratch.extras_flat.len() as u64,
        acc,
        "staged rows and extras do not cover the CSR index range"
    );
    if blocks == 1 {
        fill_block(
            &mut out.indices,
            0,
            &scratch.counts,
            &scratch.rows[0],
            &scratch.extras_flat,
            &scratch.extra_starts,
        );
    } else if blocks > 1 {
        let extras_flat = &scratch.extras_flat;
        let extra_starts = &scratch.extra_starts;
        std::thread::scope(|scope| {
            let mut rest: &mut [u32] = &mut out.indices;
            for (t, row) in scratch.rows[..blocks].iter().enumerate() {
                let first = t * chunk;
                let last = ((t + 1) * chunk).min(n);
                let counts = &scratch.counts[first..last];
                let block_len = row.len() + (extra_starts[last] - extra_starts[first]) as usize;
                let (block, tail) = rest.split_at_mut(block_len);
                rest = tail;
                scope.spawn(move || fill_block(block, first, counts, row, extras_flat, extra_starts));
            }
        });
    }
}

/// Fill-pass worker: write the CSR rows of the particle block starting at
/// `first` — each staged row followed by its symmetrisation extras — into the
/// block's contiguous region of the CSR `indices` array.
fn fill_block(
    block: &mut [u32],
    first: usize,
    counts: &[u32],
    row: &[u32],
    extras_flat: &[(u32, u32)],
    extra_starts: &[u32],
) {
    let mut src = 0usize;
    let mut dst = 0usize;
    for (k, &c) in counts.iter().enumerate() {
        let c = c as usize;
        block[dst..dst + c].copy_from_slice(&row[src..src + c]);
        src += c;
        dst += c;
        let i = first + k;
        for &(_, extra) in &extras_flat[extra_starts[i] as usize..extra_starts[i + 1] as usize] {
            block[dst] = extra;
            dst += 1;
        }
    }
    debug_assert_eq!(dst, block.len());
}

/// Symmetrisation worker: stage `(j, i)` for every directed edge `(i, j)` of
/// the block whose mirror is missing because `r > 2 h_j`. Distances are
/// minimum-image — the same expression the periodic tree query tests — so
/// "one-sided" means exactly that the gather pass missed the mirror.
#[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
fn find_one_sided(
    boundary: &Boundary,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    h: &[f64],
    first: usize,
    counts: &[u32],
    row: &[u32],
    extras: &mut Vec<(u32, u32)>,
) {
    let mi = MinImage::of(boundary);
    extras.clear();
    let mut pos = 0usize;
    for (k, &c) in counts.iter().enumerate() {
        let i = first + k;
        for &j in &row[pos..pos + c as usize] {
            let j = j as usize;
            if j == i {
                continue;
            }
            let support_j = crate::kernels::KERNEL_SUPPORT * h[j];
            if mi.dist_sq(x[i] - x[j], y[i] - y[j], z[i] - z[j]) > support_j * support_j {
                extras.push((j as u32, i as u32));
            }
        }
        pos += c as usize;
    }
}

/// Pass-1 worker: stage the neighbour rows of the particle block starting at
/// `first` into `row`, recording counts and the diagnostic counter.
#[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
fn gather_rows(
    tree: &Octree,
    boundary: &Boundary,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    h: &[f64],
    first: usize,
    counts: &mut [u32],
    diag: &mut [u32],
    row: &mut Vec<u32>,
) {
    row.clear();
    for (k, (count, diag)) in counts.iter_mut().zip(diag.iter_mut()).enumerate() {
        let i = first + k;
        let before = row.len();
        let radius = crate::kernels::KERNEL_SUPPORT * h[i];
        tree.for_each_within_periodic((x[i], y[i], z[i]), radius, x, y, z, boundary, |j| row.push(j));
        let c = (row.len() - before) as u32;
        *count = c;
        *diag = c.saturating_sub(1);
    }
}

/// Find all neighbours of every particle. Allocating convenience wrapper
/// around [`find_neighbors_into`] (fresh buffers per call): tests and one-off
/// callers use this; the propagator goes through
/// [`crate::workspace::StepWorkspace`], which reuses the buffers across steps.
pub fn find_neighbors(particles: &mut ParticleSet, tree: &Octree) -> NeighborLists {
    let mut out = NeighborLists::default();
    let mut scratch = NeighborScratch::new();
    find_neighbors_into(particles, tree, &mut out, &mut scratch);
    out
}

/// [`find_neighbors_into`] restricted to a sorted subset of rows — the
/// active-particle path of the individual-timestep propagator. `out` still
/// covers the **full** particle set (`n + 1` offsets; rows not in the subset
/// come out zero-length), so every row-subset kernel keeps indexing by
/// absolute particle id; `particles.neighbor_count` is refreshed only at the
/// subset's slots.
///
/// Each requested row is the *symmetric union* set
/// `{ j : d² ≤ (2h_i)² or d² ≤ (2h_j)² }` — identical to the set the full
/// builder produces for that row (the traversal order inside the row may
/// differ, matching the cell-list builder's contract). One tree query per row
/// at the set-wide maximum support radius covers both sides of the union, so
/// no symmetrisation pass over absent rows is needed.
pub fn find_neighbors_rows_into(
    particles: &mut ParticleSet,
    tree: &Octree,
    rows: &[u32],
    out: &mut NeighborLists,
    scratch: &mut NeighborScratch,
) {
    let n = particles.len();
    let m = rows.len();
    assert_eq!(
        particles.neighbor_count.len(),
        n,
        "particle set inconsistent: neighbor_count lane out of sync"
    );
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "subset rows must ascend");
    debug_assert!(rows.last().is_none_or(|&i| (i as usize) < n), "subset row out of range");
    scratch.counts.clear();
    scratch.counts.resize(m, 0);
    scratch.diag.clear();
    scratch.diag.resize(m, 0);
    out.offsets.clear();
    out.offsets.resize(n + 1, 0);
    let threads = if m < SERIAL_CUTOFF {
        1
    } else {
        scratch.threads.min(m).max(1)
    };
    let chunk = m.div_ceil(threads).max(1);
    let blocks = m.div_ceil(chunk);
    if scratch.rows.len() < blocks {
        scratch.rows.resize_with(blocks, Vec::new);
    }
    let boundary = particles.boundary;
    let (x, y, z, h) = (&particles.x, &particles.y, &particles.z, &particles.h);
    // The union row must see every j whose own support reaches i, so the
    // query radius is the set-wide maximum support; the union test then
    // filters the over-gathered candidates with the exact expressions the
    // full builder's gather and symmetrisation passes evaluate.
    let support_max = crate::kernels::KERNEL_SUPPORT * h.iter().copied().fold(0.0f64, f64::max);
    {
        let count_chunks = scratch.counts.chunks_mut(chunk);
        let diag_chunks = scratch.diag.chunks_mut(chunk);
        let row_chunks = rows.chunks(chunk);
        let row_bufs = scratch.rows.iter_mut();
        if threads == 1 {
            for (((counts, diag), rows_block), row) in count_chunks.zip(diag_chunks).zip(row_chunks).zip(row_bufs) {
                gather_subset_rows(tree, &boundary, x, y, z, h, support_max, rows_block, counts, diag, row);
            }
        } else {
            std::thread::scope(|scope| {
                for (((counts, diag), rows_block), row) in count_chunks.zip(diag_chunks).zip(row_chunks).zip(row_bufs) {
                    let boundary = &boundary;
                    scope.spawn(move || {
                        gather_subset_rows(tree, boundary, x, y, z, h, support_max, rows_block, counts, diag, row)
                    });
                }
            });
        }
    }
    finish_subset_csr(out, scratch, rows, n, blocks, &mut particles.neighbor_count);
}

/// Subset gather worker: one tree query per requested row at the set-wide
/// maximum support radius, filtered down to the symmetric union set. Records
/// the union row size and the own-support diagnostic (self excluded), exactly
/// as the full builders do.
#[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
fn gather_subset_rows(
    tree: &Octree,
    boundary: &Boundary,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    h: &[f64],
    support_max: f64,
    rows_block: &[u32],
    counts: &mut [u32],
    diag: &mut [u32],
    row: &mut Vec<u32>,
) {
    let mi = MinImage::of(boundary);
    row.clear();
    for ((&iu, count), diag) in rows_block.iter().zip(counts.iter_mut()).zip(diag.iter_mut()) {
        let i = iu as usize;
        let before = row.len();
        let ri = crate::kernels::KERNEL_SUPPORT * h[i];
        let ri2 = ri * ri;
        let mut own = 0u32;
        tree.for_each_within_periodic((x[i], y[i], z[i]), support_max, x, y, z, boundary, |j| {
            let ju = j as usize;
            let d2 = mi.dist_sq(x[i] - x[ju], y[i] - y[ju], z[i] - z[ju]);
            let rj = crate::kernels::KERNEL_SUPPORT * h[ju];
            let in_own = d2 <= ri2;
            if in_own || d2 <= rj * rj {
                row.push(j);
                own += in_own as u32;
            }
        });
        *count = (row.len() - before) as u32;
        *diag = own.saturating_sub(1);
    }
}

/// Shared tail of both subset builders (octree and cell list): merge the
/// per-row counts into full-set offsets (zero-length rows off the subset),
/// fill the indices — the subset ascends, so each staged block is one
/// contiguous copy — and scatter the staged neighbour-count diagnostic.
pub(crate) fn finish_subset_csr(
    out: &mut NeighborLists,
    scratch: &mut NeighborScratch,
    rows: &[u32],
    n: usize,
    blocks: usize,
    neighbor_count: &mut [u32],
) {
    let m = rows.len();
    let mut acc = 0u64;
    let mut cursor = 0usize;
    for (i, off) in out.offsets[..n].iter_mut().enumerate() {
        *off = acc as u32;
        if cursor < m && rows[cursor] as usize == i {
            acc += scratch.counts[cursor] as u64;
            cursor += 1;
        }
    }
    assert!(
        acc <= u32::MAX as u64,
        "neighbour entries exceed the u32 CSR offset range"
    );
    out.offsets[n] = acc as u32;
    out.indices.clear();
    out.indices.resize(acc as usize, 0);
    let mut rest: &mut [u32] = &mut out.indices;
    for row_buf in &scratch.rows[..blocks] {
        let (block, tail) = rest.split_at_mut(row_buf.len());
        block.copy_from_slice(row_buf);
        rest = tail;
    }
    debug_assert!(rest.is_empty(), "staged subset rows do not cover the CSR index range");
    for (k, &i) in rows.iter().enumerate() {
        neighbor_count[i as usize] = scratch.diag[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;

    #[test]
    fn lattice_particles_have_symmetric_neighbour_counts() {
        let mut p = lattice_cube(6, 1.0, 1.0, 1.2);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        assert_eq!(nl.len(), p.len());
        assert!(!nl.is_empty());
        // Interior particles of a uniform lattice should have tens of neighbours.
        assert!(nl.mean_count() > 10.0, "mean neighbours {}", nl.mean_count());
        // Every row contains the particle itself.
        assert!((0..p.len()).all(|i| nl.neighbors(i).contains(&(i as u32))));
    }

    #[test]
    fn csr_offsets_are_monotone_and_cover_the_indices() {
        let mut p = lattice_cube(5, 1.0, 1.0, 1.2);
        let tree = build_tree(&p, 8);
        let nl = find_neighbors(&mut p, &tree);
        assert_eq!(nl.offsets[0], 0);
        assert!(nl.offsets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*nl.offsets.last().unwrap() as usize, nl.indices.len());
        assert_eq!(nl.total_entries(), nl.indices.len());
        // The recorded diagnostic matches the rows (self excluded).
        assert!((0..p.len()).all(|i| p.neighbor_count[i] as usize == nl.count(i) - 1));
    }

    #[test]
    fn reusing_the_scratch_reproduces_a_fresh_build() {
        let mut p = lattice_cube(5, 1.0, 1.0, 1.2);
        let tree = build_tree(&p, 8);
        let fresh = find_neighbors(&mut p, &tree);
        // Warm the buffers on a different problem, then rebuild.
        let mut warm = ParticleSet::with_capacity(2);
        warm.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        warm.push(0.05, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        let warm_tree = build_tree(&warm, 4);
        let mut out = NeighborLists::default();
        let mut scratch = NeighborScratch::new();
        find_neighbors_into(&mut warm, &warm_tree, &mut out, &mut scratch);
        find_neighbors_into(&mut p, &tree, &mut out, &mut scratch);
        assert_eq!(out.offsets, fresh.offsets);
        assert_eq!(out.indices, fresh.indices);
    }

    #[test]
    fn rows_are_symmetrised_for_nonuniform_h() {
        use crate::kernels::KERNEL_SUPPORT;
        let mut p = lattice_cube(5, 1.0, 1.0, 1.2);
        // Perturb the smoothing lengths so plenty of pairs are one-sided
        // (inside 2h of one particle but outside 2h of the other).
        for (i, h) in p.h.iter_mut().enumerate() {
            *h *= 1.0 + 0.6 * ((i % 7) as f64) / 7.0;
        }
        let tree = build_tree(&p, 8);
        let nl = find_neighbors(&mut p, &tree);
        let in_support = |i: usize, j: usize, h: f64| {
            let dx = p.x[i] - p.x[j];
            let dy = p.y[i] - p.y[j];
            let dz = p.z[i] - p.z[j];
            let s = KERNEL_SUPPORT * h;
            dx * dx + dy * dy + dz * dz <= s * s
        };
        let mut one_sided_pairs = 0usize;
        for i in 0..p.len() {
            // Membership is symmetric.
            for &j in nl.neighbors(i) {
                assert!(
                    nl.neighbors(j as usize).contains(&(i as u32)),
                    "asymmetric pair ({i}, {j})"
                );
            }
            // Each row is exactly { j : r ≤ 2h_i or r ≤ 2h_j }, with no duplicates.
            let mut got: Vec<u32> = nl.neighbors(i).to_vec();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got.len(), nl.count(i), "row {i} contains duplicates");
            let expected: Vec<u32> = (0..p.len())
                .filter(|&j| in_support(i, j, p.h[i]) || in_support(i, j, p.h[j]))
                .map(|j| j as u32)
                .collect();
            assert_eq!(got, expected, "row {i} does not match the symmetric support set");
            // The diagnostic keeps counting only the own-support neighbours.
            let own = (0..p.len()).filter(|&j| j != i && in_support(i, j, p.h[i])).count();
            assert_eq!(p.neighbor_count[i] as usize, own);
            one_sided_pairs += nl.count(i) - 1 - own;
        }
        assert!(one_sided_pairs > 0, "perturbed h should produce one-sided pairs");
    }

    #[test]
    fn periodic_lattice_has_uniform_neighbour_counts() {
        // On an exact lattice in a periodic box every particle is equivalent
        // by translation symmetry: face and corner particles must see exactly
        // as many neighbours as interior ones (the open-box build gives the
        // corner particle ~1/8 of the interior count).
        let mut p = lattice_cube(6, 1.0, 1.0, 1.2);
        p.boundary = crate::boundary::Boundary::unit_box();
        let tree = build_tree(&p, 8);
        let nl = find_neighbors(&mut p, &tree);
        let c0 = nl.count(0);
        assert!(
            (0..p.len()).all(|i| nl.count(i) == c0),
            "periodic lattice neighbour counts are not uniform"
        );
        // And membership stays symmetric across the wrap seam.
        for i in 0..p.len() {
            for &j in nl.neighbors(i) {
                assert!(nl.neighbors(j as usize).contains(&(i as u32)));
            }
        }
        // The same lattice without the wrap has depleted corners.
        let mut open = lattice_cube(6, 1.0, 1.0, 1.2);
        let open_tree = build_tree(&open, 8);
        let open_nl = find_neighbors(&mut open, &open_tree);
        assert!(open_nl.count(0) < c0, "open corner should see fewer neighbours");
    }

    #[test]
    fn isolated_particle_has_only_itself() {
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.01, 1.0);
        p.push(10.0, 10.0, 10.0, 0.0, 0.0, 0.0, 1.0, 0.01, 1.0);
        let tree = build_tree(&p, 4);
        let nl = find_neighbors(&mut p, &tree);
        assert_eq!(nl.neighbors(0), &[0]);
        assert_eq!(p.neighbor_count[0], 0);
    }

    #[test]
    fn subset_rows_match_the_full_build_as_sets() {
        // Non-uniform h so one-sided pairs exist: the subset union test must
        // reproduce exactly the full builder's symmetrised row sets.
        let mut p = lattice_cube(5, 1.0, 1.0, 1.2);
        for (i, h) in p.h.iter_mut().enumerate() {
            *h *= 1.0 + 0.6 * ((i % 7) as f64) / 7.0;
        }
        let tree = build_tree(&p, 8);
        let mut q = p.clone();
        let full = find_neighbors(&mut q, &tree);
        let rows: Vec<u32> = (0..p.len() as u32).filter(|i| i % 3 != 1).collect();
        let mut out = NeighborLists::default();
        let mut scratch = NeighborScratch::new();
        p.neighbor_count.fill(u32::MAX); // sentinel: off-subset slots untouched
        find_neighbors_rows_into(&mut p, &tree, &rows, &mut out, &mut scratch);
        assert_eq!(out.len(), p.len());
        let mut cursor = 0usize;
        for i in 0..p.len() {
            if cursor < rows.len() && rows[cursor] as usize == i {
                cursor += 1;
                let mut got: Vec<u32> = out.neighbors(i).to_vec();
                got.sort_unstable();
                let mut want: Vec<u32> = full.neighbors(i).to_vec();
                want.sort_unstable();
                assert_eq!(got, want, "subset row {i} differs from the full build");
                assert_eq!(p.neighbor_count[i], q.neighbor_count[i], "diagnostic of row {i}");
            } else {
                assert_eq!(out.count(i), 0, "off-subset row {i} must be empty");
                assert_eq!(p.neighbor_count[i], u32::MAX, "off-subset diagnostic {i} touched");
            }
        }
    }

    #[test]
    fn periodic_subset_rows_cross_the_wrap_seam() {
        let mut p = lattice_cube(6, 1.0, 1.0, 1.2);
        p.boundary = crate::boundary::Boundary::unit_box();
        let tree = build_tree(&p, 8);
        let mut q = p.clone();
        let full = find_neighbors(&mut q, &tree);
        // Corner particle 0 has seam-crossing neighbours under the wrap.
        let rows: Vec<u32> = vec![0, 3, 7];
        let mut out = NeighborLists::default();
        let mut scratch = NeighborScratch::new();
        find_neighbors_rows_into(&mut p, &tree, &rows, &mut out, &mut scratch);
        for &i in &rows {
            let i = i as usize;
            let mut got: Vec<u32> = out.neighbors(i).to_vec();
            got.sort_unstable();
            let mut want: Vec<u32> = full.neighbors(i).to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "periodic subset row {i}");
        }
    }

    #[test]
    fn empty_subset_builds_all_empty_rows() {
        let mut p = lattice_cube(4, 1.0, 1.0, 1.2);
        let tree = build_tree(&p, 8);
        let mut out = NeighborLists::default();
        let mut scratch = NeighborScratch::new();
        find_neighbors_rows_into(&mut p, &tree, &[], &mut out, &mut scratch);
        assert_eq!(out.len(), p.len());
        assert!(out.indices.is_empty());
        assert!((0..p.len()).all(|i| out.count(i) == 0));
    }

    #[test]
    fn empty_set_builds_an_empty_csr() {
        let mut p = ParticleSet::default();
        let tree = build_tree(&p, 4);
        let nl = find_neighbors(&mut p, &tree);
        assert!(nl.is_empty());
        assert_eq!(nl.offsets, vec![0]);
        assert!(nl.indices.is_empty());
        assert_eq!(nl.mean_count(), 0.0);
    }
}
