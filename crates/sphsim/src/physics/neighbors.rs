//! Neighbour search (`FindNeighbors` stage).
//!
//! Neighbour lists are stored in CSR (compressed sparse row) form — one flat
//! `indices` array plus per-particle `offsets` — instead of the former
//! `Vec<Vec<usize>>`, which cost one heap allocation (and several growth
//! reallocations) per particle per step. The builder runs as two parallel
//! passes over reusable buffers:
//!
//! 1. **count**: each worker traverses the octree once per particle of its
//!    contiguous block, staging the neighbour indices in a thread-local row
//!    buffer while recording the per-particle counts *and* the
//!    `neighbor_count` diagnostic — so the stage has no serial tail;
//! 2. **fill**: once the counts are prefix-summed into `offsets`, each
//!    worker's staged block is copied into its final CSR position. Blocks are
//!    contiguous both in particle index and (therefore) in the CSR `indices`
//!    array, so the fill is a handful of disjoint `memcpy`s.
//!
//! All buffers live in a [`NeighborScratch`] (owned by
//! [`crate::workspace::StepWorkspace`]); after a warm-up step the whole stage
//! performs zero heap allocations (asserted by the sphsim
//! `alloc_free_neighbors` integration test).

use crate::octree::Octree;
use crate::parallel::worker_threads;
use crate::particle::ParticleSet;

/// Below this particle count the builder stays on one thread (mirrors the
/// cutoff of [`crate::parallel::parallel_map`]).
const SERIAL_CUTOFF: usize = 256;

/// Per-particle neighbour lists in CSR (compressed sparse row) form.
#[derive(Clone, Debug, Default)]
pub struct NeighborLists {
    /// `offsets[i] .. offsets[i + 1]` is the range of [`NeighborLists::indices`]
    /// holding the neighbours of particle `i` (`len() + 1` entries, monotone,
    /// starting at 0).
    pub offsets: Vec<u32>,
    /// Flat neighbour indices of all particles, row by row. Row `i` holds the
    /// particles within `2 h_i` of particle `i`, including `i` itself.
    pub indices: Vec<u32>,
}

impl NeighborLists {
    /// Number of particles covered.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True if no particle is covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The neighbours of particle `i` (including `i` itself).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of neighbours of particle `i` (including `i` itself).
    pub fn count(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total number of stored neighbour entries.
    pub fn total_entries(&self) -> usize {
        self.indices.len()
    }

    /// Mean neighbour count (excluding the particle itself).
    pub fn mean_count(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: usize = (0..self.len()).map(|i| self.count(i).saturating_sub(1)).sum();
        total as f64 / self.len() as f64
    }
}

/// Reusable buffers of the two-pass CSR neighbour-list builder.
#[derive(Debug)]
pub struct NeighborScratch {
    /// Neighbour count of each particle (pass-1 output, prefix-summed into
    /// the CSR offsets).
    counts: Vec<u32>,
    /// Per-thread staging rows: pass 1 gathers into them, pass 2 copies them
    /// into the CSR indices.
    rows: Vec<Vec<u32>>,
    /// Worker-thread count, resolved once at construction so the hot loop
    /// never touches the process environment.
    threads: usize,
}

impl NeighborScratch {
    /// Fresh (empty) scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            rows: Vec::new(),
            threads: worker_threads(),
        }
    }
}

impl Default for NeighborScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Build the octree over the current particle positions.
pub fn build_tree(particles: &ParticleSet, max_leaf_size: usize) -> Octree {
    Octree::build(&particles.x, &particles.y, &particles.z, &particles.m, max_leaf_size)
}

/// Find all neighbours within the kernel support `2 h_i` of every particle,
/// writing the CSR lists into `out` and the per-particle neighbour counts into
/// `particles.neighbor_count` — all through the reusable buffers of `scratch`.
pub fn find_neighbors_into(
    particles: &mut ParticleSet,
    tree: &Octree,
    out: &mut NeighborLists,
    scratch: &mut NeighborScratch,
) {
    let n = particles.len();
    assert_eq!(
        particles.neighbor_count.len(),
        n,
        "particle set inconsistent: neighbor_count lane out of sync"
    );
    scratch.counts.clear();
    scratch.counts.resize(n, 0);
    out.offsets.clear();
    out.offsets.resize(n + 1, 0);
    let threads = if n < SERIAL_CUTOFF {
        1
    } else {
        scratch.threads.min(n).max(1)
    };
    let chunk = n.div_ceil(threads).max(1);
    let blocks = n.div_ceil(chunk);
    if scratch.rows.len() < blocks {
        scratch.rows.resize_with(blocks, Vec::new);
    }
    let (x, y, z, h) = (&particles.x, &particles.y, &particles.z, &particles.h);

    // Pass 1 (count): gather each block's rows into its staging buffer,
    // recording per-particle counts and the neighbour-count diagnostic in the
    // same parallel pass (no serial post-pass).
    {
        let count_chunks = scratch.counts.chunks_mut(chunk);
        let diag_chunks = particles.neighbor_count.chunks_mut(chunk);
        let row_bufs = scratch.rows.iter_mut();
        if threads == 1 {
            for (t, ((counts, diag), row)) in count_chunks.zip(diag_chunks).zip(row_bufs).enumerate() {
                gather_rows(tree, x, y, z, h, t * chunk, counts, diag, row);
            }
        } else {
            std::thread::scope(|scope| {
                for (t, ((counts, diag), row)) in count_chunks.zip(diag_chunks).zip(row_bufs).enumerate() {
                    scope.spawn(move || gather_rows(tree, x, y, z, h, t * chunk, counts, diag, row));
                }
            });
        }
    }

    // Offsets: exclusive prefix sum of the counts.
    let mut acc = 0u64;
    for (off, &c) in out.offsets.iter_mut().zip(scratch.counts.iter()) {
        *off = acc as u32;
        acc += c as u64;
    }
    assert!(
        acc <= u32::MAX as u64,
        "neighbour entries exceed the u32 CSR offset range"
    );
    out.offsets[n] = acc as u32;

    // Pass 2 (fill): copy each staged block into its CSR position. The branch
    // keys on `blocks` (not `threads`), so any chunking policy stays correct.
    out.indices.clear();
    out.indices.resize(acc as usize, 0);
    debug_assert_eq!(
        scratch.rows[..blocks].iter().map(|r| r.len() as u64).sum::<u64>(),
        acc,
        "staged rows do not cover the CSR index range"
    );
    if blocks == 1 {
        out.indices.copy_from_slice(&scratch.rows[0]);
    } else if blocks > 1 {
        std::thread::scope(|scope| {
            let mut rest: &mut [u32] = &mut out.indices;
            for row in &scratch.rows[..blocks] {
                let (block, tail) = rest.split_at_mut(row.len());
                rest = tail;
                scope.spawn(move || block.copy_from_slice(row));
            }
        });
    }
}

/// Pass-1 worker: stage the neighbour rows of the particle block starting at
/// `first` into `row`, recording counts and the diagnostic counter.
#[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
fn gather_rows(
    tree: &Octree,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    h: &[f64],
    first: usize,
    counts: &mut [u32],
    diag: &mut [u32],
    row: &mut Vec<u32>,
) {
    row.clear();
    for (k, (count, diag)) in counts.iter_mut().zip(diag.iter_mut()).enumerate() {
        let i = first + k;
        let before = row.len();
        let radius = crate::kernels::KERNEL_SUPPORT * h[i];
        tree.for_each_within((x[i], y[i], z[i]), radius, x, y, z, |j| row.push(j));
        let c = (row.len() - before) as u32;
        *count = c;
        *diag = c.saturating_sub(1);
    }
}

/// Find all neighbours of every particle. Allocating convenience wrapper
/// around [`find_neighbors_into`] (fresh buffers per call): tests and one-off
/// callers use this; the propagator goes through
/// [`crate::workspace::StepWorkspace`], which reuses the buffers across steps.
pub fn find_neighbors(particles: &mut ParticleSet, tree: &Octree) -> NeighborLists {
    let mut out = NeighborLists::default();
    let mut scratch = NeighborScratch::new();
    find_neighbors_into(particles, tree, &mut out, &mut scratch);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;

    #[test]
    fn lattice_particles_have_symmetric_neighbour_counts() {
        let mut p = lattice_cube(6, 1.0, 1.0, 1.2);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        assert_eq!(nl.len(), p.len());
        assert!(!nl.is_empty());
        // Interior particles of a uniform lattice should have tens of neighbours.
        assert!(nl.mean_count() > 10.0, "mean neighbours {}", nl.mean_count());
        // Every row contains the particle itself.
        assert!((0..p.len()).all(|i| nl.neighbors(i).contains(&(i as u32))));
    }

    #[test]
    fn csr_offsets_are_monotone_and_cover_the_indices() {
        let mut p = lattice_cube(5, 1.0, 1.0, 1.2);
        let tree = build_tree(&p, 8);
        let nl = find_neighbors(&mut p, &tree);
        assert_eq!(nl.offsets[0], 0);
        assert!(nl.offsets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*nl.offsets.last().unwrap() as usize, nl.indices.len());
        assert_eq!(nl.total_entries(), nl.indices.len());
        // The recorded diagnostic matches the rows (self excluded).
        assert!((0..p.len()).all(|i| p.neighbor_count[i] as usize == nl.count(i) - 1));
    }

    #[test]
    fn reusing_the_scratch_reproduces_a_fresh_build() {
        let mut p = lattice_cube(5, 1.0, 1.0, 1.2);
        let tree = build_tree(&p, 8);
        let fresh = find_neighbors(&mut p, &tree);
        // Warm the buffers on a different problem, then rebuild.
        let mut warm = ParticleSet::with_capacity(2);
        warm.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        warm.push(0.05, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        let warm_tree = build_tree(&warm, 4);
        let mut out = NeighborLists::default();
        let mut scratch = NeighborScratch::new();
        find_neighbors_into(&mut warm, &warm_tree, &mut out, &mut scratch);
        find_neighbors_into(&mut p, &tree, &mut out, &mut scratch);
        assert_eq!(out.offsets, fresh.offsets);
        assert_eq!(out.indices, fresh.indices);
    }

    #[test]
    fn isolated_particle_has_only_itself() {
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.01, 1.0);
        p.push(10.0, 10.0, 10.0, 0.0, 0.0, 0.0, 1.0, 0.01, 1.0);
        let tree = build_tree(&p, 4);
        let nl = find_neighbors(&mut p, &tree);
        assert_eq!(nl.neighbors(0), &[0]);
        assert_eq!(p.neighbor_count[0], 0);
    }

    #[test]
    fn empty_set_builds_an_empty_csr() {
        let mut p = ParticleSet::default();
        let tree = build_tree(&p, 4);
        let nl = find_neighbors(&mut p, &tree);
        assert!(nl.is_empty());
        assert_eq!(nl.offsets, vec![0]);
        assert!(nl.indices.is_empty());
        assert_eq!(nl.mean_count(), 0.0);
    }
}
