//! Artificial-viscosity switches (`AVSwitches` stage).
//!
//! The Balsara (1995) limiter suppresses artificial viscosity in shear-dominated
//! flow: `f_i = |∇·v| / (|∇·v| + |∇×v| + ε c/h)`, and the per-particle
//! viscosity coefficient relaxes towards `α_min + (α_max − α_min)·f` with
//! compression (negative divergence) pushing it up faster.

use crate::parallel::parallel_map;
use crate::particle::ParticleSet;

/// Lower bound of the per-particle viscosity coefficient.
pub const ALPHA_MIN: f64 = 0.05;
/// Upper bound of the per-particle viscosity coefficient.
pub const ALPHA_MAX: f64 = 1.0;

/// Balsara limiter value for one particle.
pub fn balsara_limiter(div_v: f64, curl_v: f64, c: f64, h: f64) -> f64 {
    let eps = 1e-4 * c / h.max(1e-30);
    let abs_div = div_v.abs();
    abs_div / (abs_div + curl_v.abs() + eps)
}

/// Update the per-particle artificial-viscosity coefficients.
pub fn update_av_switches(particles: &mut ParticleSet, dt: f64) {
    let n = particles.len();
    let alpha: Vec<f64> = parallel_map(n, |i| av_switch_row(particles, dt, i));
    particles.alpha = alpha;
}

/// One row of the viscosity-switch relaxation (purely row-local).
#[inline]
fn av_switch_row(particles: &ParticleSet, dt: f64, i: usize) -> f64 {
    let f = balsara_limiter(
        particles.div_v[i],
        particles.curl_v[i],
        particles.c[i].max(1e-12),
        particles.h[i],
    );
    let target = if particles.div_v[i] < 0.0 {
        // Compression: raise viscosity proportionally to the limiter.
        ALPHA_MIN + (ALPHA_MAX - ALPHA_MIN) * f
    } else {
        ALPHA_MIN
    };
    let current = particles.alpha[i];
    // Relax towards the target on a few-sound-crossing timescale.
    let decay_time = 5.0 * particles.h[i] / particles.c[i].max(1e-12);
    let w = (dt / decay_time.max(1e-30)).clamp(0.0, 1.0);
    (current + (target - current) * w).clamp(ALPHA_MIN, ALPHA_MAX)
}

/// [`update_av_switches`] restricted to a subset of rows, in place.
pub fn update_av_switches_rows(particles: &mut ParticleSet, dt: f64, rows: &[u32]) {
    let out: Vec<f64> = parallel_map(rows.len(), |k| av_switch_row(particles, dt, rows[k] as usize));
    for (k, &i) in rows.iter().enumerate() {
        particles.alpha[i as usize] = out[k];
    }
}

/// The individual-timestep form: each row relaxes over the time since its own
/// last kick — its rung's dt, not the substep dt — so `rows` (the active rows
/// of this substep) is processed one active rung at a time. Before the first
/// cycle plan (`dt_base == 0`) no rung schedule exists yet; every row falls
/// back to `last_dt`, exactly like the global-dt scheme's first step.
/// `scratch` is the caller's reused per-rung row buffer.
pub fn update_av_switches_binned(
    particles: &mut ParticleSet,
    bins: &crate::physics::timestep::TimestepBins,
    last_dt: f64,
    rows: &[u32],
    scratch: &mut Vec<u32>,
) {
    if bins.dt_base() == 0.0 {
        update_av_switches_rows(particles, last_dt, rows);
        return;
    }
    for k in 0..bins.n_bins() as u8 {
        if !bins.is_active(k) {
            continue;
        }
        scratch.clear();
        scratch.extend(rows.iter().copied().filter(|&i| particles.rung[i as usize] == k));
        if scratch.is_empty() {
            continue;
        }
        update_av_switches_rows(particles, bins.rung_dt(k), scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limiter_is_one_for_pure_compression() {
        let f = balsara_limiter(-5.0, 0.0, 1.0, 0.1);
        assert!(f > 0.99);
    }

    #[test]
    fn limiter_is_small_for_pure_shear() {
        let f = balsara_limiter(-0.01, 10.0, 1.0, 0.1);
        assert!(f < 0.01);
    }

    #[test]
    fn limiter_is_bounded() {
        for &(d, c) in &[(0.0, 0.0), (-3.0, 2.0), (4.0, 0.5), (-1e6, 1e6)] {
            let f = balsara_limiter(d, c, 1.0, 0.1);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn alpha_rises_under_compression_and_decays_otherwise() {
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.push(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.c = vec![1.0, 1.0];
        p.alpha = vec![ALPHA_MIN, ALPHA_MAX];
        p.div_v = vec![-10.0, 1.0]; // particle 0 compressing, particle 1 expanding
        p.curl_v = vec![0.0, 0.0];
        // Integrate a few steps.
        for _ in 0..50 {
            update_av_switches(&mut p, 0.05);
        }
        assert!(
            p.alpha[0] > 0.5,
            "compressing particle should gain viscosity: {}",
            p.alpha[0]
        );
        assert!(
            p.alpha[1] < 0.2,
            "expanding particle should relax to the floor: {}",
            p.alpha[1]
        );
        assert!(p.alpha.iter().all(|&a| (ALPHA_MIN..=ALPHA_MAX).contains(&a)));
    }
}
