//! Equation of state (`EquationOfState` stage).
//!
//! Ideal-gas EOS `P = (γ − 1) ρ u`, sound speed `c = √(γ P / ρ)`, with
//! `γ = 5/3` as used for both the Evrard collapse and the subsonic turbulence
//! test cases.

use crate::parallel::{parallel_chunks_mut, parallel_map};
use crate::particle::ParticleSet;

/// Adiabatic index used throughout.
pub const GAMMA: f64 = 5.0 / 3.0;

/// Update pressure and sound speed of every particle from density and internal
/// energy.
pub fn apply_eos(particles: &mut ParticleSet) {
    let n = particles.len();
    let rho = particles.rho.clone();
    let u = particles.u.clone();
    parallel_chunks_mut(&mut particles.p[..n], |start, chunk| {
        for (k, p) in chunk.iter_mut().enumerate() {
            let i = start + k;
            *p = (GAMMA - 1.0) * rho[i].max(1e-30) * u[i].max(0.0);
        }
    });
    let p = particles.p.clone();
    parallel_chunks_mut(&mut particles.c[..n], |start, chunk| {
        for (k, c) in chunk.iter_mut().enumerate() {
            let i = start + k;
            *c = (GAMMA * p[i] / rho[i].max(1e-30)).max(0.0).sqrt();
        }
    });
}

/// [`apply_eos`] restricted to a subset of rows, in place. The EOS is purely
/// row-local (`P_i`, `c_i` from `ρ_i`, `u_i`), so any partition of the rows
/// reproduces the full pass exactly; the expressions mirror [`apply_eos`]
/// term for term so the values are bit-identical.
pub fn apply_eos_rows(particles: &mut ParticleSet, rows: &[u32]) {
    let out: Vec<(f64, f64)> = parallel_map(rows.len(), |k| {
        let i = rows[k] as usize;
        let p = (GAMMA - 1.0) * particles.rho[i].max(1e-30) * particles.u[i].max(0.0);
        let c = (GAMMA * p / particles.rho[i].max(1e-30)).max(0.0).sqrt();
        (p, c)
    });
    for (k, &i) in rows.iter().enumerate() {
        let i = i as usize;
        particles.p[i] = out[k].0;
        particles.c[i] = out[k].1;
    }
}

/// Pressure of one fluid element (scalar helper).
pub fn pressure(rho: f64, u: f64) -> f64 {
    (GAMMA - 1.0) * rho * u
}

/// Sound speed of one fluid element (scalar helper).
pub fn sound_speed(rho: f64, u: f64) -> f64 {
    (GAMMA * pressure(rho, u) / rho.max(1e-30)).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_eos_matches_ideal_gas() {
        let p = pressure(2.0, 3.0);
        assert!((p - (GAMMA - 1.0) * 6.0).abs() < 1e-12);
        let c = sound_speed(2.0, 3.0);
        assert!((c - (GAMMA * p / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn apply_eos_fills_all_particles() {
        let mut particles = ParticleSet::with_capacity(3);
        for i in 0..3 {
            particles.push(i as f64, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0 + i as f64);
        }
        particles.rho = vec![1.0, 2.0, 3.0];
        apply_eos(&mut particles);
        for i in 0..3 {
            assert!((particles.p[i] - pressure(particles.rho[i], particles.u[i])).abs() < 1e-12);
            assert!(particles.c[i] > 0.0);
        }
    }

    #[test]
    fn zero_internal_energy_gives_zero_pressure() {
        let mut particles = ParticleSet::with_capacity(1);
        particles.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 0.0);
        particles.rho = vec![5.0];
        apply_eos(&mut particles);
        assert_eq!(particles.p[0], 0.0);
        assert_eq!(particles.c[0], 0.0);
    }
}
