//! Momentum and energy equations (`MomentumEnergy` stage).
//!
//! The most expensive kernel of the pipeline in the paper (up to ~46 % of the
//! GPU energy on LUMI-G). Standard grad-h SPH with Monaghan artificial
//! viscosity:
//!
//! ```text
//! dv_i/dt = -Σ_j m_j [ P_i/(Ω_i ρ_i²) + P_j/(Ω_j ρ_j²) + Π_ij ] ∇W_ij
//! du_i/dt = Σ_j m_j [ P_i/(Ω_i ρ_i²) + Π_ij/2 ] (v_i − v_j)·∇W_ij
//! Π_ij    = -α_ij c̄_ij μ_ij / ρ̄_ij + 2 α_ij μ_ij² / ρ̄_ij      (μ_ij < 0 only)
//! ```

use crate::kernels::grad_w_cubic;
use crate::parallel::parallel_map;
use crate::particle::ParticleSet;
use crate::physics::neighbors::NeighborLists;

/// Compute accelerations and internal-energy rates for every particle.
pub fn compute_momentum_energy(particles: &mut ParticleSet, neighbors: &NeighborLists) {
    let n = particles.len();
    assert_eq!(neighbors.len(), n, "neighbour lists out of date");
    let results: Vec<(f64, f64, f64, f64)> = parallel_map(n, |i| {
        let rho_i = particles.rho[i].max(1e-30);
        let p_over_rho2_i = particles.p[i] / (particles.omega[i] * rho_i * rho_i);
        let mut acc = (0.0, 0.0, 0.0);
        let mut du = 0.0;
        for &j in neighbors.neighbors(i) {
            let j = j as usize;
            if j == i {
                continue;
            }
            let dx = particles.x[i] - particles.x[j];
            let dy = particles.y[i] - particles.y[j];
            let dz = particles.z[i] - particles.z[j];
            let dvx = particles.vx[i] - particles.vx[j];
            let dvy = particles.vy[i] - particles.vy[j];
            let dvz = particles.vz[i] - particles.vz[j];
            let h_ij = 0.5 * (particles.h[i] + particles.h[j]);
            let (gx, gy, gz) = grad_w_cubic(dx, dy, dz, h_ij);
            let rho_j = particles.rho[j].max(1e-30);
            let p_over_rho2_j = particles.p[j] / (particles.omega[j] * rho_j * rho_j);

            // Monaghan artificial viscosity (only for approaching particles).
            let v_dot_r = dvx * dx + dvy * dy + dvz * dz;
            let visc = if v_dot_r < 0.0 {
                let r2 = dx * dx + dy * dy + dz * dz;
                let mu = h_ij * v_dot_r / (r2 + 0.01 * h_ij * h_ij);
                let c_ij = 0.5 * (particles.c[i] + particles.c[j]);
                let rho_ij = 0.5 * (rho_i + rho_j);
                let alpha_ij = 0.5 * (particles.alpha[i] + particles.alpha[j]);
                (-alpha_ij * c_ij * mu + 2.0 * alpha_ij * mu * mu) / rho_ij
            } else {
                0.0
            };

            let mj = particles.m[j];
            let term = p_over_rho2_i + p_over_rho2_j + visc;
            acc.0 -= mj * term * gx;
            acc.1 -= mj * term * gy;
            acc.2 -= mj * term * gz;
            du += mj * (p_over_rho2_i + 0.5 * visc) * (dvx * gx + dvy * gy + dvz * gz);
        }
        (acc.0, acc.1, acc.2, du)
    });
    for (i, (ax, ay, az, du)) in results.into_iter().enumerate() {
        particles.ax[i] = ax;
        particles.ay[i] = ay;
        particles.az[i] = az;
        particles.du[i] = du;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;
    use crate::physics::density::compute_density;
    use crate::physics::eos::apply_eos;
    use crate::physics::gradh::compute_gradh;
    use crate::physics::neighbors::{build_tree, find_neighbors};

    fn prepared(n: usize) -> (ParticleSet, NeighborLists) {
        let mut p = lattice_cube(n, 1.0, 1.0, 1.3);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        apply_eos(&mut p);
        compute_gradh(&mut p, &nl);
        (p, nl)
    }

    #[test]
    fn uniform_static_fluid_has_small_interior_forces() {
        let (mut p, nl) = prepared(8);
        compute_momentum_energy(&mut p, &nl);
        // Interior particle: pressure gradients should nearly cancel.
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for i in 0..p.len() {
            let d = (p.x[i] - 0.5).powi(2) + (p.y[i] - 0.5).powi(2) + (p.z[i] - 0.5).powi(2);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        let a_mag = (p.ax[best].powi(2) + p.ay[best].powi(2) + p.az[best].powi(2)).sqrt();
        // Edge particles feel a strong outward pressure force; compare against that.
        let a_edge = (p.ax[0].powi(2) + p.ay[0].powi(2) + p.az[0].powi(2)).sqrt();
        assert!(a_mag < 0.2 * a_edge, "interior acc {a_mag} vs edge acc {a_edge}");
        // A static uniform fluid produces no heating.
        assert!(p.du[best].abs() < 1e-8);
    }

    #[test]
    fn edge_particles_accelerate_outwards() {
        let (mut p, nl) = prepared(6);
        compute_momentum_energy(&mut p, &nl);
        // The corner particle at (0,0,0)-ish should be pushed towards negative
        // coordinates (away from the bulk).
        let i = (0..p.len())
            .min_by(|&a, &b| {
                let da = p.x[a] + p.y[a] + p.z[a];
                let db = p.x[b] + p.y[b] + p.z[b];
                da.total_cmp(&db)
            })
            .unwrap();
        assert!(p.ax[i] < 0.0 && p.ay[i] < 0.0 && p.az[i] < 0.0);
    }

    #[test]
    fn approaching_particles_heat_up() {
        // Two blobs colliding along x: viscosity must produce du > 0 somewhere.
        let (mut p, _) = prepared(6);
        for i in 0..p.len() {
            p.vx[i] = if p.x[i] < 0.5 { 1.0 } else { -1.0 };
        }
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        apply_eos(&mut p);
        compute_gradh(&mut p, &nl);
        compute_momentum_energy(&mut p, &nl);
        let total_du: f64 = (0..p.len()).map(|i| p.m[i] * p.du[i]).sum();
        assert!(total_du > 0.0, "collision should heat the gas, Σ m du = {total_du}");
    }
}
