//! Momentum and energy equations (`MomentumEnergy` stage).
//!
//! The most expensive kernel of the pipeline in the paper (up to ~46 % of the
//! GPU energy on LUMI-G). Grad-h SPH in the SPH-EXA form — each pressure term
//! pairs with the kernel gradient taken at *that* particle's smoothing length,
//! matching the `Ω` it is divided by — with Monaghan artificial viscosity on
//! the symmetrised gradient:
//!
//! ```text
//! dv_i/dt = -Σ_j m_j [ P_i/(Ω_i ρ_i²) ∇W_ij(h_i) + P_j/(Ω_j ρ_j²) ∇W_ij(h_j) + Π_ij ∇W̄_ij ]
//! du_i/dt = Σ_j m_j [ P_i/(Ω_i ρ_i²) (v_i − v_j)·∇W_ij(h_i) + (Π_ij/2) (v_i − v_j)·∇W̄_ij ]
//! Π_ij    = -α_ij c̄_ij μ_ij / ρ̄_ij + 2 α_ij μ_ij² / ρ̄_ij      (μ_ij < 0 only)
//! ∇W̄_ij   = (∇W_ij(h_i) + ∇W_ij(h_j)) / 2
//! ```
//!
//! (A previous version used the single averaged-`h̄` gradient for *all* terms
//! while still dividing by the per-particle `Ω_i`/`Ω_j` — inconsistent with the
//! grad-h derivation, in which each `Ω` corrects exactly the `∂W/∂h` of its own
//! kernel. The per-pair force is antisymmetric under `i ↔ j`, so with
//! symmetrised neighbour lists total momentum is conserved to round-off; see
//! the conservation integration test.)

use crate::boundary::MinImage;
use crate::kernels::{dw_shape, LANE_WIDTH};
use crate::parallel::parallel_map;
use crate::particle::ParticleSet;
use crate::physics::neighbors::NeighborLists;
use std::f64::consts::PI;

/// Compute accelerations and internal-energy rates for every particle. Pair
/// separations are minimum-image, so the pairwise antisymmetry (and with it
/// momentum conservation to round-off) holds across periodic box faces too;
/// open boxes take a compile-time specialisation with no image arithmetic.
pub fn compute_momentum_energy(particles: &mut ParticleSet, neighbors: &NeighborLists) {
    let mi = MinImage::of(&particles.boundary);
    if mi.is_identity() {
        momentum_energy_impl::<false>(particles, neighbors, mi);
    } else {
        momentum_energy_impl::<true>(particles, neighbors, mi);
    }
}

/// The hoisted per-particle reciprocals of the pair loop: the two
/// per-particle kernel gradients and the pressure prefactors then cost one
/// sqrt and one divide per *pair* instead of ~7 divides.
fn momentum_prefactors(particles: &ParticleSet) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = particles.len();
    let inv_h: Vec<f64> = particles.h.iter().map(|&h| 1.0 / h).collect();
    let dw_scale: Vec<f64> = particles.h.iter().map(|&h| 1.0 / (PI * h * h * h * h)).collect();
    let pref: Vec<f64> = (0..n)
        .map(|i| {
            let rho = particles.rho[i].max(1e-30);
            particles.p[i] / (particles.omega[i] * rho * rho)
        })
        .collect();
    (inv_h, dw_scale, pref)
}

/// One CSR row of the momentum/energy equations — shared by the full pass and
/// the row-subset pass, so both produce bit-identical values for a given row.
#[inline]
#[allow(clippy::too_many_arguments)]
fn momentum_row<const PERIODIC: bool>(
    particles: &ParticleSet,
    neighbors: &NeighborLists,
    mi: MinImage,
    inv_h: &[f64],
    dw_scale: &[f64],
    pref: &[f64],
    i: usize,
) -> (f64, f64, f64, f64) {
    {
        let rho_i = particles.rho[i].max(1e-30);
        let (xi, yi, zi) = (particles.x[i], particles.y[i], particles.z[i]);
        let (vxi, vyi, vzi) = (particles.vx[i], particles.vy[i], particles.vz[i]);
        let (hi, ci, alpha_i) = (particles.h[i], particles.c[i], particles.alpha[i]);
        let (pref_i, inv_h_i, dw_scale_i) = (pref[i], inv_h[i], dw_scale[i]);
        let mut acc = (0.0, 0.0, 0.0);
        let mut du = 0.0;
        // SoA lanes (see `density_impl`): gather each chunk of the row into
        // fixed-width buffers, compute per-lane force terms, accumulate in
        // row order. Coincident pairs (including the self entry) have no
        // direction: their lanes *select* a literal `+0.0` contribution —
        // subtracting/adding `+0.0` preserves every accumulator bit-for-bit,
        // so the totals match the scalar loop that `continue`d past them.
        let mut ljx = [0.0f64; LANE_WIDTH];
        let mut ljy = [0.0f64; LANE_WIDTH];
        let mut ljz = [0.0f64; LANE_WIDTH];
        let mut ljvx = [0.0f64; LANE_WIDTH];
        let mut ljvy = [0.0f64; LANE_WIDTH];
        let mut ljvz = [0.0f64; LANE_WIDTH];
        let mut ljh = [0.0f64; LANE_WIDTH];
        let mut ljm = [0.0f64; LANE_WIDTH];
        let mut ljrho = [0.0f64; LANE_WIDTH];
        let mut ljc = [0.0f64; LANE_WIDTH];
        let mut lja = [0.0f64; LANE_WIDTH];
        let mut ljpref = [0.0f64; LANE_WIDTH];
        let mut ljih = [0.0f64; LANE_WIDTH];
        let mut ljdw = [0.0f64; LANE_WIDTH];
        let mut lfx = [0.0f64; LANE_WIDTH];
        let mut lfy = [0.0f64; LANE_WIDTH];
        let mut lfz = [0.0f64; LANE_WIDTH];
        let mut ldu = [0.0f64; LANE_WIDTH];
        let row = neighbors.neighbors(i);
        let mut chunks = row.chunks_exact(LANE_WIDTH);
        for chunk in chunks.by_ref() {
            for (k, &j) in chunk.iter().enumerate() {
                let j = j as usize;
                ljx[k] = particles.x[j];
                ljy[k] = particles.y[j];
                ljz[k] = particles.z[j];
                ljvx[k] = particles.vx[j];
                ljvy[k] = particles.vy[j];
                ljvz[k] = particles.vz[j];
                ljh[k] = particles.h[j];
                ljm[k] = particles.m[j];
                ljrho[k] = particles.rho[j];
                ljc[k] = particles.c[j];
                lja[k] = particles.alpha[j];
                ljpref[k] = pref[j];
                ljih[k] = inv_h[j];
                ljdw[k] = dw_scale[j];
            }
            for k in 0..LANE_WIDTH {
                let dx = xi - ljx[k];
                let dy = yi - ljy[k];
                let dz = zi - ljz[k];
                let (dx, dy, dz) = if PERIODIC { mi.map(dx, dy, dz) } else { (dx, dy, dz) };
                let dvx = vxi - ljvx[k];
                let dvy = vyi - ljvy[k];
                let dvz = vzi - ljvz[k];
                // Per-particle kernel gradients: each grad-h pressure term
                // uses the gradient at its own particle's smoothing length
                // (the Ω it is divided by corrects exactly that kernel's
                // ∂W/∂h); the viscosity takes the symmetrised mean gradient
                // (∇W(h_i) + ∇W(h_j))/2. All gradients share the direction
                // (dx, dy, dz)/r, so the whole pairwise force collapses to a
                // single scalar times the separation vector — which also
                // makes the i ↔ j antisymmetry exact in floating point.
                let h_ij = 0.5 * (hi + ljh[k]);
                let r2 = dx * dx + dy * dy + dz * dz;
                let guard = 1e-12 * h_ij;
                let keep = r2 > guard * guard;
                let r = r2.sqrt();
                let inv_r = 1.0 / r;
                let dw_i = dw_scale_i * dw_shape(r * inv_h_i);
                let dw_j = ljdw[k] * dw_shape(r * ljih[k]);
                let dw_b = 0.5 * (dw_i + dw_j);

                // Monaghan artificial viscosity (approaching pairs only).
                let v_dot_r = dvx * dx + dvy * dy + dvz * dz;
                let visc = if v_dot_r < 0.0 {
                    let mu = h_ij * v_dot_r / (r2 + 0.01 * h_ij * h_ij);
                    let c_ij = 0.5 * (ci + ljc[k]);
                    let rho_j = ljrho[k].max(1e-30);
                    let rho_ij = 0.5 * (rho_i + rho_j);
                    let alpha_ij = 0.5 * (alpha_i + lja[k]);
                    (-alpha_ij * c_ij * mu + 2.0 * alpha_ij * mu * mu) / rho_ij
                } else {
                    0.0
                };

                let mj = ljm[k];
                let force = (pref_i * dw_i + ljpref[k] * dw_j + visc * dw_b) * inv_r;
                lfx[k] = if keep { mj * force * dx } else { 0.0 };
                lfy[k] = if keep { mj * force * dy } else { 0.0 };
                lfz[k] = if keep { mj * force * dz } else { 0.0 };
                // dv·∇W = (dW/dr / r)(dv·dr) — the same dot product for all
                // terms.
                ldu[k] = if keep {
                    mj * (pref_i * dw_i + 0.5 * visc * dw_b) * inv_r * v_dot_r
                } else {
                    0.0
                };
            }
            for k in 0..LANE_WIDTH {
                acc.0 -= lfx[k];
                acc.1 -= lfy[k];
                acc.2 -= lfz[k];
                du += ldu[k];
            }
        }
        for &j in chunks.remainder() {
            let j = j as usize;
            if j == i {
                continue;
            }
            let dx = xi - particles.x[j];
            let dy = yi - particles.y[j];
            let dz = zi - particles.z[j];
            let (dx, dy, dz) = if PERIODIC { mi.map(dx, dy, dz) } else { (dx, dy, dz) };
            let dvx = vxi - particles.vx[j];
            let dvy = vyi - particles.vy[j];
            let dvz = vzi - particles.vz[j];
            let h_ij = 0.5 * (hi + particles.h[j]);
            let r2 = dx * dx + dy * dy + dz * dz;
            let guard = 1e-12 * h_ij;
            if r2 <= guard * guard {
                continue; // coincident pair: no direction, no contribution
            }
            let r = r2.sqrt();
            let inv_r = 1.0 / r;
            let dw_i = dw_scale_i * dw_shape(r * inv_h_i);
            let dw_j = dw_scale[j] * dw_shape(r * inv_h[j]);
            let dw_b = 0.5 * (dw_i + dw_j);
            let v_dot_r = dvx * dx + dvy * dy + dvz * dz;
            let visc = if v_dot_r < 0.0 {
                let mu = h_ij * v_dot_r / (r2 + 0.01 * h_ij * h_ij);
                let c_ij = 0.5 * (ci + particles.c[j]);
                let rho_j = particles.rho[j].max(1e-30);
                let rho_ij = 0.5 * (rho_i + rho_j);
                let alpha_ij = 0.5 * (alpha_i + particles.alpha[j]);
                (-alpha_ij * c_ij * mu + 2.0 * alpha_ij * mu * mu) / rho_ij
            } else {
                0.0
            };
            let mj = particles.m[j];
            let force = (pref_i * dw_i + pref[j] * dw_j + visc * dw_b) * inv_r;
            acc.0 -= mj * force * dx;
            acc.1 -= mj * force * dy;
            acc.2 -= mj * force * dz;
            du += mj * (pref_i * dw_i + 0.5 * visc * dw_b) * inv_r * v_dot_r;
        }
        (acc.0, acc.1, acc.2, du)
    }
}

fn momentum_energy_impl<const PERIODIC: bool>(particles: &mut ParticleSet, neighbors: &NeighborLists, mi: MinImage) {
    let n = particles.len();
    assert_eq!(neighbors.len(), n, "neighbour lists out of date");
    let (inv_h, dw_scale, pref) = momentum_prefactors(particles);
    let results: Vec<(f64, f64, f64, f64)> = parallel_map(n, |i| {
        momentum_row::<PERIODIC>(particles, neighbors, mi, &inv_h, &dw_scale, &pref, i)
    });
    for (i, (ax, ay, az, du)) in results.into_iter().enumerate() {
        particles.ax[i] = ax;
        particles.ay[i] = ay;
        particles.az[i] = az;
        particles.du[i] = du;
    }
}

/// [`compute_momentum_energy`] restricted to a subset of CSR rows, writing
/// the accelerations and energy rates in place.
///
/// Unlike the earlier pipeline stages, a momentum row *does* read recomputed
/// neighbour fields (`ρ, h, P, c, Ω, α` of `j`), so the caller must ensure
/// those are final for every neighbour a selected row can reach — which is
/// exactly the interior/halo row split of the distributed propagator:
/// interior rows reference no ghosts and run while the ghost refresh is in
/// flight; halo rows run after it completes. The prefactor hoist covers the
/// whole set, so subset calls reproduce the full pass bit for bit on the rows
/// they touch.
pub fn compute_momentum_energy_rows(particles: &mut ParticleSet, neighbors: &NeighborLists, rows: &[u32]) {
    assert_eq!(neighbors.len(), particles.len(), "neighbour lists out of date");
    let mi = MinImage::of(&particles.boundary);
    let (inv_h, dw_scale, pref) = momentum_prefactors(particles);
    let out: Vec<(f64, f64, f64, f64)> = if mi.is_identity() {
        parallel_map(rows.len(), |k| {
            momentum_row::<false>(particles, neighbors, mi, &inv_h, &dw_scale, &pref, rows[k] as usize)
        })
    } else {
        parallel_map(rows.len(), |k| {
            momentum_row::<true>(particles, neighbors, mi, &inv_h, &dw_scale, &pref, rows[k] as usize)
        })
    };
    for (k, &i) in rows.iter().enumerate() {
        let i = i as usize;
        particles.ax[i] = out[k].0;
        particles.ay[i] = out[k].1;
        particles.az[i] = out[k].2;
        particles.du[i] = out[k].3;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;
    use crate::physics::density::compute_density;
    use crate::physics::eos::apply_eos;
    use crate::physics::gradh::compute_gradh;
    use crate::physics::neighbors::{build_tree, find_neighbors};

    fn prepared(n: usize) -> (ParticleSet, NeighborLists) {
        let mut p = lattice_cube(n, 1.0, 1.0, 1.3);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        apply_eos(&mut p);
        compute_gradh(&mut p, &nl);
        (p, nl)
    }

    #[test]
    fn uniform_static_fluid_has_small_interior_forces() {
        let (mut p, nl) = prepared(8);
        compute_momentum_energy(&mut p, &nl);
        // Interior particle: pressure gradients should nearly cancel.
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for i in 0..p.len() {
            let d = (p.x[i] - 0.5).powi(2) + (p.y[i] - 0.5).powi(2) + (p.z[i] - 0.5).powi(2);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        let a_mag = (p.ax[best].powi(2) + p.ay[best].powi(2) + p.az[best].powi(2)).sqrt();
        // Edge particles feel a strong outward pressure force; compare against that.
        let a_edge = (p.ax[0].powi(2) + p.ay[0].powi(2) + p.az[0].powi(2)).sqrt();
        assert!(a_mag < 0.2 * a_edge, "interior acc {a_mag} vs edge acc {a_edge}");
        // A static uniform fluid produces no heating.
        assert!(p.du[best].abs() < 1e-8);
    }

    #[test]
    fn edge_particles_accelerate_outwards() {
        let (mut p, nl) = prepared(6);
        compute_momentum_energy(&mut p, &nl);
        // The corner particle at (0,0,0)-ish should be pushed towards negative
        // coordinates (away from the bulk).
        let i = (0..p.len())
            .min_by(|&a, &b| {
                let da = p.x[a] + p.y[a] + p.z[a];
                let db = p.x[b] + p.y[b] + p.z[b];
                da.total_cmp(&db)
            })
            .unwrap();
        assert!(p.ax[i] < 0.0 && p.ay[i] < 0.0 && p.az[i] < 0.0);
    }

    #[test]
    fn pair_forces_are_antisymmetric_with_unequal_h() {
        // Two mutually visible particles with different h, ρ, P, Ω and an
        // approaching velocity (so the viscosity term is active too): the
        // pairwise momentum exchange must cancel to round-off, which is what
        // the per-particle-h gradient form guarantees.
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 0.2, 0.0, 0.0, 2.0, 0.3, 1.0);
        p.push(0.25, 0.1, 0.0, -0.5, 0.0, 0.0, 3.0, 0.5, 2.0);
        p.rho = vec![1.0, 1.5];
        p.p = vec![0.4, 0.9];
        p.c = vec![1.0, 1.2];
        p.omega = vec![0.9, 1.1];
        let nl = NeighborLists {
            offsets: vec![0, 2, 4],
            indices: vec![0, 1, 1, 0],
        };
        compute_momentum_energy(&mut p, &nl);
        for (a0, a1) in [(p.ax[0], p.ax[1]), (p.ay[0], p.ay[1]), (p.az[0], p.az[1])] {
            let imbalance = (p.m[0] * a0 + p.m[1] * a1).abs();
            let scale = (p.m[0] * a0).abs().max((p.m[1] * a1).abs()).max(1e-30);
            assert!(
                imbalance <= 1e-13 * scale,
                "pair momentum imbalance {imbalance} vs scale {scale}"
            );
        }
        // Both particles are heated by the head-on approach.
        assert!(p.du[0] > 0.0 && p.du[1] > 0.0);
    }

    #[test]
    fn pressure_gradient_uses_each_particles_own_h() {
        // Particle 1's smoothing length is large enough that particle 0 sits
        // inside h_1's support but outside h_0's: the force on 0 must then be
        // carried entirely by the P_j/(Ω_j ρ_j²) ∇W(h_j) term — nonzero, where
        // the old averaged-h kernel would misplace the cutoff.
        let mut p = ParticleSet::with_capacity(2);
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.push(0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.4, 1.0);
        p.rho = vec![1.0, 1.0];
        p.p = vec![1.0, 1.0];
        p.c = vec![1.0, 1.0];
        let nl = NeighborLists {
            offsets: vec![0, 2, 4],
            indices: vec![0, 1, 1, 0],
        };
        compute_momentum_energy(&mut p, &nl);
        // r = 0.5 > 2 h_0 = 0.2, so ∇W(h_0) = 0: no P_i term and no du for 0.
        assert_eq!(p.du[0], 0.0);
        // But r < 2 h_1 = 0.8: the P_j term pushes the pair apart.
        assert!(p.ax[0] < 0.0 && p.ax[1] > 0.0);
        assert!((p.m[0] * p.ax[0] + p.m[1] * p.ax[1]).abs() < 1e-15);
    }

    #[test]
    fn approaching_particles_heat_up() {
        // Two blobs colliding along x: viscosity must produce du > 0 somewhere.
        let (mut p, _) = prepared(6);
        for i in 0..p.len() {
            p.vx[i] = if p.x[i] < 0.5 { 1.0 } else { -1.0 };
        }
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        apply_eos(&mut p);
        compute_gradh(&mut p, &nl);
        compute_momentum_energy(&mut p, &nl);
        let total_du: f64 = (0..p.len()).map(|i| p.m[i] * p.du[i]).sum();
        assert!(total_du > 0.0, "collision should heat the gas, Σ m du = {total_du}");
    }
}
