//! Velocity divergence and curl (`IADVelocityDivCurl` stage).
//!
//! SPH-EXA computes integral-approximation-derivative (IAD) gradients; for the
//! mini-framework we use the standard SPH estimators
//!
//! ```text
//! (∇·v)_i = -(1/ρ_i) Σ_j m_j (v_i − v_j) · ∇W_ij
//! (∇×v)_i = -(1/ρ_i) Σ_j m_j (v_i − v_j) × ∇W_ij
//! ```
//!
//! which feed the artificial-viscosity switches.

use crate::boundary::MinImage;
use crate::kernels::{grad_w_cubic, LANE_WIDTH};
use crate::parallel::parallel_map;
use crate::particle::ParticleSet;
use crate::physics::neighbors::NeighborLists;

/// Compute the velocity divergence and curl magnitude of every particle
/// (minimum-image pair separations under periodic boundaries; open boxes
/// take a compile-time specialisation with no image arithmetic).
pub fn compute_div_curl(particles: &mut ParticleSet, neighbors: &NeighborLists) {
    let mi = MinImage::of(&particles.boundary);
    if mi.is_identity() {
        div_curl_impl::<false>(particles, neighbors, mi);
    } else {
        div_curl_impl::<true>(particles, neighbors, mi);
    }
}

/// One CSR row of the divergence/curl estimate — shared by the full pass and
/// the row-subset pass. Reads only static neighbour fields (`x`, `v`, `m`)
/// plus the row's own `h` and `ρ`.
#[inline]
fn div_curl_row<const PERIODIC: bool>(
    particles: &ParticleSet,
    neighbors: &NeighborLists,
    mi: MinImage,
    i: usize,
) -> (f64, f64) {
    {
        let hi = particles.h[i];
        let (xi, yi, zi) = (particles.x[i], particles.y[i], particles.z[i]);
        let (vxi, vyi, vzi) = (particles.vx[i], particles.vy[i], particles.vz[i]);
        let rho_i = particles.rho[i].max(1e-30);
        let mut div = 0.0;
        let mut curl = (0.0, 0.0, 0.0);
        // SoA lanes (see `density_impl`): gather, fixed-width compute,
        // in-row-order accumulate. The former `j == i` skip is gone — the
        // self lane has a zero kernel gradient and zero velocity deltas, so
        // every self term is exactly `+0.0` and subtracting it preserves
        // each accumulator bit-for-bit; dropping the branch keeps the lanes
        // uniform.
        let mut lx = [0.0f64; LANE_WIDTH];
        let mut ly = [0.0f64; LANE_WIDTH];
        let mut lz = [0.0f64; LANE_WIDTH];
        let mut lvx = [0.0f64; LANE_WIDTH];
        let mut lvy = [0.0f64; LANE_WIDTH];
        let mut lvz = [0.0f64; LANE_WIDTH];
        let mut lm = [0.0f64; LANE_WIDTH];
        let mut ld = [0.0f64; LANE_WIDTH];
        let mut lc0 = [0.0f64; LANE_WIDTH];
        let mut lc1 = [0.0f64; LANE_WIDTH];
        let mut lc2 = [0.0f64; LANE_WIDTH];
        let row = neighbors.neighbors(i);
        let mut chunks = row.chunks_exact(LANE_WIDTH);
        for chunk in chunks.by_ref() {
            for (k, &j) in chunk.iter().enumerate() {
                let j = j as usize;
                lx[k] = particles.x[j];
                ly[k] = particles.y[j];
                lz[k] = particles.z[j];
                lvx[k] = particles.vx[j];
                lvy[k] = particles.vy[j];
                lvz[k] = particles.vz[j];
                lm[k] = particles.m[j];
            }
            for k in 0..LANE_WIDTH {
                let dx = xi - lx[k];
                let dy = yi - ly[k];
                let dz = zi - lz[k];
                let (dx, dy, dz) = if PERIODIC { mi.map(dx, dy, dz) } else { (dx, dy, dz) };
                let dvx = vxi - lvx[k];
                let dvy = vyi - lvy[k];
                let dvz = vzi - lvz[k];
                let (gx, gy, gz) = grad_w_cubic(dx, dy, dz, hi);
                let mj = lm[k];
                ld[k] = mj * (dvx * gx + dvy * gy + dvz * gz);
                lc0[k] = mj * (dvy * gz - dvz * gy);
                lc1[k] = mj * (dvz * gx - dvx * gz);
                lc2[k] = mj * (dvx * gy - dvy * gx);
            }
            for k in 0..LANE_WIDTH {
                div -= ld[k];
                curl.0 -= lc0[k];
                curl.1 -= lc1[k];
                curl.2 -= lc2[k];
            }
        }
        for &j in chunks.remainder() {
            let j = j as usize;
            let dx = xi - particles.x[j];
            let dy = yi - particles.y[j];
            let dz = zi - particles.z[j];
            let (dx, dy, dz) = if PERIODIC { mi.map(dx, dy, dz) } else { (dx, dy, dz) };
            let dvx = vxi - particles.vx[j];
            let dvy = vyi - particles.vy[j];
            let dvz = vzi - particles.vz[j];
            let (gx, gy, gz) = grad_w_cubic(dx, dy, dz, hi);
            let mj = particles.m[j];
            div -= mj * (dvx * gx + dvy * gy + dvz * gz);
            curl.0 -= mj * (dvy * gz - dvz * gy);
            curl.1 -= mj * (dvz * gx - dvx * gz);
            curl.2 -= mj * (dvx * gy - dvy * gx);
        }
        let curl_mag = (curl.0 * curl.0 + curl.1 * curl.1 + curl.2 * curl.2).sqrt() / rho_i;
        (div / rho_i, curl_mag)
    }
}

fn div_curl_impl<const PERIODIC: bool>(particles: &mut ParticleSet, neighbors: &NeighborLists, mi: MinImage) {
    let n = particles.len();
    assert_eq!(neighbors.len(), n, "neighbour lists out of date");
    let results: Vec<(f64, f64)> = parallel_map(n, |i| div_curl_row::<PERIODIC>(particles, neighbors, mi, i));
    for (i, (div, curl)) in results.into_iter().enumerate() {
        particles.div_v[i] = div;
        particles.curl_v[i] = curl;
    }
}

/// [`compute_div_curl`] restricted to a subset of CSR rows, writing the
/// divergence and curl magnitude in place.
pub fn compute_div_curl_rows(particles: &mut ParticleSet, neighbors: &NeighborLists, rows: &[u32]) {
    assert_eq!(neighbors.len(), particles.len(), "neighbour lists out of date");
    let mi = MinImage::of(&particles.boundary);
    let out: Vec<(f64, f64)> = if mi.is_identity() {
        parallel_map(rows.len(), |k| {
            div_curl_row::<false>(particles, neighbors, mi, rows[k] as usize)
        })
    } else {
        parallel_map(rows.len(), |k| {
            div_curl_row::<true>(particles, neighbors, mi, rows[k] as usize)
        })
    };
    for (k, &i) in rows.iter().enumerate() {
        particles.div_v[i as usize] = out[k].0;
        particles.curl_v[i as usize] = out[k].1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;
    use crate::physics::density::compute_density;
    use crate::physics::neighbors::{build_tree, find_neighbors};

    fn interior_particle(p: &ParticleSet) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for i in 0..p.len() {
            let d = (p.x[i] - 0.5).powi(2) + (p.y[i] - 0.5).powi(2) + (p.z[i] - 0.5).powi(2);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    fn prepared_lattice(n: usize) -> (ParticleSet, NeighborLists) {
        let mut p = lattice_cube(n, 1.0, 1.0, 1.3);
        let tree = build_tree(&p, 16);
        let nl = find_neighbors(&mut p, &tree);
        compute_density(&mut p, &nl);
        (p, nl)
    }

    #[test]
    fn uniform_expansion_has_positive_divergence_and_no_curl() {
        let (mut p, nl) = prepared_lattice(8);
        // Hubble-like flow v = r (relative to the cube centre): div v = 3, curl = 0.
        for i in 0..p.len() {
            p.vx[i] = p.x[i] - 0.5;
            p.vy[i] = p.y[i] - 0.5;
            p.vz[i] = p.z[i] - 0.5;
        }
        compute_div_curl(&mut p, &nl);
        let i = interior_particle(&p);
        assert!(p.div_v[i] > 1.5, "expected positive divergence, got {}", p.div_v[i]);
        assert!(p.curl_v[i].abs() < 0.7, "expected small curl, got {}", p.curl_v[i]);
    }

    #[test]
    fn rigid_rotation_has_curl_and_no_divergence() {
        let (mut p, nl) = prepared_lattice(8);
        // Rotation about z: v = ω × r with ω = (0,0,1): curl = 2, div = 0.
        for i in 0..p.len() {
            p.vx[i] = -(p.y[i] - 0.5);
            p.vy[i] = p.x[i] - 0.5;
            p.vz[i] = 0.0;
        }
        compute_div_curl(&mut p, &nl);
        let i = interior_particle(&p);
        assert!(p.div_v[i].abs() < 0.7, "expected ~zero divergence, got {}", p.div_v[i]);
        assert!(p.curl_v[i] > 1.0, "expected positive curl, got {}", p.curl_v[i]);
    }

    #[test]
    fn static_fluid_has_neither() {
        let (mut p, nl) = prepared_lattice(6);
        compute_div_curl(&mut p, &nl);
        assert!(p.div_v.iter().all(|d| d.abs() < 1e-10));
        assert!(p.curl_v.iter().all(|c| c.abs() < 1e-10));
    }
}
