//! Turbulence stirring (`Turbulence` stage).
//!
//! The subsonic-turbulence test case drives the gas with a large-scale,
//! approximately solenoidal forcing field, keeping the RMS Mach number below
//! one. The driver here superposes a handful of low-wavenumber Fourier modes
//! with deterministic (seeded) random amplitudes and phases, projected to
//! remove the compressive component — a simplified Ornstein–Uhlenbeck stirring
//! module in the spirit of the one used by SPH-EXA.

use crate::parallel::parallel_map;
use crate::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// One driven Fourier mode.
#[derive(Clone, Debug)]
struct StirMode {
    k: (f64, f64, f64),
    amplitude: (f64, f64, f64),
    phase: f64,
}

/// Large-scale solenoidal stirring driver.
#[derive(Clone, Debug)]
pub struct TurbulenceDriver {
    modes: Vec<StirMode>,
    box_size: f64,
    strength: f64,
}

impl TurbulenceDriver {
    /// Create a driver for a periodic box of size `box_size`, with forcing
    /// amplitude `strength` and a deterministic `seed`.
    pub fn new(box_size: f64, strength: f64, seed: u64) -> Self {
        assert!(box_size > 0.0 && strength >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut modes = Vec::new();
        // Drive the largest scales: |k| in {1, 2} (units of 2π/L).
        for kx in -2i64..=2 {
            for ky in -2i64..=2 {
                for kz in -2i64..=2 {
                    let k2 = kx * kx + ky * ky + kz * kz;
                    if k2 == 0 || k2 > 4 {
                        continue;
                    }
                    let k = (
                        2.0 * PI * kx as f64 / box_size,
                        2.0 * PI * ky as f64 / box_size,
                        2.0 * PI * kz as f64 / box_size,
                    );
                    // Random direction, then project out the component parallel
                    // to k to make the forcing solenoidal (divergence-free).
                    let raw: (f64, f64, f64) = (
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    );
                    let k_norm2 = k.0 * k.0 + k.1 * k.1 + k.2 * k.2;
                    let dot = (raw.0 * k.0 + raw.1 * k.1 + raw.2 * k.2) / k_norm2;
                    let sol = (raw.0 - dot * k.0, raw.1 - dot * k.1, raw.2 - dot * k.2);
                    // Weight larger scales more strongly (k⁻²-ish spectrum).
                    let w = 1.0 / k2 as f64;
                    modes.push(StirMode {
                        k,
                        amplitude: (sol.0 * w, sol.1 * w, sol.2 * w),
                        phase: rng.gen_range(0.0..2.0 * PI),
                    });
                }
            }
        }
        Self {
            modes,
            box_size,
            strength,
        }
    }

    /// Number of driven modes.
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }

    /// The box size the driver was built for.
    pub fn box_size(&self) -> f64 {
        self.box_size
    }

    /// Forcing acceleration at a position and time.
    pub fn acceleration_at(&self, pos: (f64, f64, f64), time: f64) -> (f64, f64, f64) {
        let mut a = (0.0, 0.0, 0.0);
        for mode in &self.modes {
            let arg = mode.k.0 * pos.0 + mode.k.1 * pos.1 + mode.k.2 * pos.2 + mode.phase + 0.7 * time;
            let s = arg.sin();
            a.0 += mode.amplitude.0 * s;
            a.1 += mode.amplitude.1 * s;
            a.2 += mode.amplitude.2 * s;
        }
        (a.0 * self.strength, a.1 * self.strength, a.2 * self.strength)
    }

    /// Add the stirring acceleration to every particle.
    pub fn apply(&self, particles: &mut ParticleSet, time: f64) {
        let n = particles.len();
        let acc: Vec<(f64, f64, f64)> = parallel_map(n, |i| {
            self.acceleration_at((particles.x[i], particles.y[i], particles.z[i]), time)
        });
        for (i, (ax, ay, az)) in acc.into_iter().enumerate() {
            particles.ax[i] += ax;
            particles.ay[i] += ay;
            particles.az[i] += az;
        }
    }

    /// [`TurbulenceDriver::apply`] restricted to a subset of particles — the
    /// active-set form of the individual-timestep propagator.
    pub fn apply_rows(&self, particles: &mut ParticleSet, time: f64, rows: &[u32]) {
        let acc: Vec<(f64, f64, f64)> = parallel_map(rows.len(), |k| {
            let i = rows[k] as usize;
            self.acceleration_at((particles.x[i], particles.y[i], particles.z[i]), time)
        });
        for (k, (ax, ay, az)) in acc.into_iter().enumerate() {
            let i = rows[k] as usize;
            particles.ax[i] += ax;
            particles.ay[i] += ay;
            particles.az[i] += az;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;

    #[test]
    fn driver_is_deterministic_for_a_seed() {
        let a = TurbulenceDriver::new(1.0, 0.5, 42);
        let b = TurbulenceDriver::new(1.0, 0.5, 42);
        let pa = a.acceleration_at((0.3, 0.4, 0.5), 1.0);
        let pb = b.acceleration_at((0.3, 0.4, 0.5), 1.0);
        assert_eq!(pa, pb);
        let c = TurbulenceDriver::new(1.0, 0.5, 7);
        assert_ne!(pa, c.acceleration_at((0.3, 0.4, 0.5), 1.0));
    }

    #[test]
    fn forcing_scales_with_strength() {
        let weak = TurbulenceDriver::new(1.0, 0.1, 1);
        let strong = TurbulenceDriver::new(1.0, 1.0, 1);
        let pw = weak.acceleration_at((0.2, 0.2, 0.2), 0.0);
        let ps = strong.acceleration_at((0.2, 0.2, 0.2), 0.0);
        assert!((ps.0 / pw.0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mean_force_over_box_is_small() {
        // A solenoidal low-k field should have a near-zero volume average.
        let d = TurbulenceDriver::new(1.0, 1.0, 3);
        let mut mean = (0.0, 0.0, 0.0);
        let n = 12;
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let p = (
                        (ix as f64 + 0.5) / n as f64,
                        (iy as f64 + 0.5) / n as f64,
                        (iz as f64 + 0.5) / n as f64,
                    );
                    let a = d.acceleration_at(p, 0.0);
                    mean.0 += a.0;
                    mean.1 += a.1;
                    mean.2 += a.2;
                }
            }
        }
        let count = (n * n * n) as f64;
        let rms_scale = d.acceleration_at((0.25, 0.5, 0.75), 0.0).0.abs().max(0.1);
        assert!((mean.0 / count).abs() < rms_scale);
        assert!(d.mode_count() > 10);
    }

    #[test]
    fn apply_adds_kinetic_stirring() {
        let mut p = lattice_cube(5, 1.0, 1.0, 1.3);
        let d = TurbulenceDriver::new(1.0, 2.0, 11);
        d.apply(&mut p, 0.0);
        let total_a: f64 = (0..p.len()).map(|i| p.ax[i].abs() + p.ay[i].abs() + p.az[i].abs()).sum();
        assert!(total_a > 0.0);
    }
}
