//! Boundary conditions: open boxes and fully periodic boxes.
//!
//! The paper's workload table is dominated by box scenarios (subsonic
//! turbulence, Kelvin–Helmholtz) that are physically periodic. A [`Boundary`]
//! travels with every [`crate::particle::ParticleSet`] and is honoured by the
//! whole pipeline:
//!
//! * the octree neighbour search ([`crate::octree::Octree::for_each_within_periodic`])
//!   also queries the wrapped images of a search sphere that crosses a box
//!   face, so neighbourhoods are seamless across the faces;
//! * every pair kernel (density, grad-h, IAD, momentum/energy) maps raw
//!   displacements through the **minimum-image convention** via [`MinImage`]
//!   (scalar convenience: [`dx_periodic`]) — branch-free: the open-box case
//!   degenerates to the identity map, bit-for-bit;
//! * the propagators wrap positions back into the box at the start of every
//!   `DomainDecompAndSync`, so Morton keys (storage order, domain splitters,
//!   rank ownership) are always computed on wrapped coordinates;
//! * the distributed ghost exchange sends across the wrap seam: the
//!   send-list criterion measures the periodic distance to the destination
//!   rank's bounding box ([`Boundary::dist_sq_to_box`]).
//!
//! The minimum-image convention is only unambiguous while every interaction
//! radius stays below half the box edge; the neighbour search asserts this.

use crate::particle::ParticleSet;

/// Boundary condition of a simulation box.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Boundary {
    /// No boundaries: the gas is free to expand into vacuum (the default).
    #[default]
    Open,
    /// Fully periodic box `[box_min, box_max)` in all three dimensions.
    Periodic {
        /// Lower corner of the periodic box.
        box_min: (f64, f64, f64),
        /// Upper corner of the periodic box.
        box_max: (f64, f64, f64),
    },
}

impl Boundary {
    /// The periodic unit box `[0, 1)³` — what every built-in box scenario uses.
    pub const fn unit_box() -> Self {
        Boundary::Periodic {
            box_min: (0.0, 0.0, 0.0),
            box_max: (1.0, 1.0, 1.0),
        }
    }

    /// True for a periodic boundary.
    pub fn is_periodic(&self) -> bool {
        matches!(self, Boundary::Periodic { .. })
    }

    /// Edge lengths of the periodic box; `(0, 0, 0)` for an open box (the
    /// sentinel the branch-free minimum-image map keys on).
    pub fn lengths(&self) -> (f64, f64, f64) {
        match self {
            Boundary::Open => (0.0, 0.0, 0.0),
            Boundary::Periodic { box_min, box_max } => {
                (box_max.0 - box_min.0, box_max.1 - box_min.1, box_max.2 - box_min.2)
            }
        }
    }

    /// Half of the box space diagonal — the upper bound on any minimum-image
    /// distance. `+∞` for an open box.
    pub fn half_diagonal(&self) -> f64 {
        match self {
            Boundary::Open => f64::INFINITY,
            Boundary::Periodic { .. } => {
                let (lx, ly, lz) = self.lengths();
                0.5 * (lx * lx + ly * ly + lz * lz).sqrt()
            }
        }
    }

    /// Wrap a position back into the box (identity for open boundaries).
    pub fn wrap(&self, pos: (f64, f64, f64)) -> (f64, f64, f64) {
        match self {
            Boundary::Open => pos,
            Boundary::Periodic { box_min, box_max } => (
                wrap_axis(pos.0, box_min.0, box_max.0),
                wrap_axis(pos.1, box_min.1, box_max.1),
                wrap_axis(pos.2, box_min.2, box_max.2),
            ),
        }
    }

    /// Squared *periodic* distance from a point to an axis-aligned box
    /// (0 inside). The per-axis minimum over the image shifts is taken
    /// independently, which is exact because image shifts act per axis.
    pub fn dist_sq_to_box(&self, p: (f64, f64, f64), min: (f64, f64, f64), max: (f64, f64, f64)) -> f64 {
        let (lx, ly, lz) = self.lengths();
        let axis = |p: f64, lo: f64, hi: f64, l: f64| -> f64 {
            let direct = (lo - p).max(0.0).max(p - hi);
            if l <= 0.0 {
                return direct;
            }
            let shifted_up = (lo - (p + l)).max(0.0).max((p + l) - hi);
            let shifted_down = (lo - (p - l)).max(0.0).max((p - l) - hi);
            direct.min(shifted_up).min(shifted_down)
        };
        let dx = axis(p.0, min.0, max.0, lx);
        let dy = axis(p.1, min.1, max.1, ly);
        let dz = axis(p.2, min.2, max.2, lz);
        dx * dx + dy * dy + dz * dz
    }
}

/// Wrap one coordinate into `[lo, hi)`; positions that round exactly onto `hi`
/// are folded back to `lo`.
fn wrap_axis(x: f64, lo: f64, hi: f64) -> f64 {
    let l = hi - lo;
    if l <= 0.0 {
        return x;
    }
    let mut t = (x - lo) % l;
    if t < 0.0 {
        t += l;
    }
    let wrapped = lo + t;
    if wrapped >= hi {
        lo
    } else {
        wrapped
    }
}

/// Precomputed minimum-image map of a [`Boundary`], hoisted out of pair loops.
///
/// The map is **branch-free**: an open boundary stores edge length `0` and
/// inverse `0`, for which `dx − L · round(dx · L⁻¹)` reduces to `dx − 0` — the
/// identity, bit-for-bit on every finite displacement. For a periodic
/// boundary it returns the displacement to the nearest image, which is the
/// physical pair separation as long as interaction radii stay below half the
/// box edge. Every consumer of pair displacements (octree leaf test, CSR
/// symmetrisation, all four pair kernels, `pair_interacts`) goes through this
/// one formula, so inclusion decisions agree to the last bit across passes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinImage {
    l: (f64, f64, f64),
    inv: (f64, f64, f64),
}

impl MinImage {
    /// Build the map for a boundary.
    pub fn of(boundary: &Boundary) -> Self {
        let (lx, ly, lz) = boundary.lengths();
        let inv = |l: f64| if l > 0.0 { 1.0 / l } else { 0.0 };
        Self {
            l: (lx, ly, lz),
            inv: (inv(lx), inv(ly), inv(lz)),
        }
    }

    /// True when the map is the identity (open boundary). The pair kernels
    /// key their compile-time specialisation on this: the open path carries
    /// literally no minimum-image arithmetic, the periodic path stays
    /// branch-free per pair.
    pub fn is_identity(&self) -> bool {
        self.l == (0.0, 0.0, 0.0)
    }

    /// Map a raw displacement onto its minimum image.
    #[inline]
    pub fn map(&self, dx: f64, dy: f64, dz: f64) -> (f64, f64, f64) {
        (
            dx - self.l.0 * (dx * self.inv.0).round(),
            dy - self.l.1 * (dy * self.inv.1).round(),
            dz - self.l.2 * (dz * self.inv.2).round(),
        )
    }

    /// Squared length of the minimum image of a raw displacement.
    #[inline]
    pub fn dist_sq(&self, dx: f64, dy: f64, dz: f64) -> f64 {
        let (dx, dy, dz) = self.map(dx, dy, dz);
        dx * dx + dy * dy + dz * dz
    }
}

/// Minimum-image displacement of `(dx, dy, dz)` under `boundary` — the
/// scalar convenience form of [`MinImage`] for one-off callers (tests,
/// observables, downstream analysis). The pair kernels themselves hoist
/// [`MinImage::of`] out of their loops and call [`MinImage::map`] directly;
/// both routes evaluate the identical expression, so they agree to the bit.
#[inline]
pub fn dx_periodic(boundary: &Boundary, dx: f64, dy: f64, dz: f64) -> (f64, f64, f64) {
    MinImage::of(boundary).map(dx, dy, dz)
}

impl ParticleSet {
    /// Wrap every position back into the box (no-op for open boundaries).
    /// Both propagators call this at the start of `DomainDecompAndSync`, so
    /// Morton keys are always computed on wrapped coordinates.
    pub fn wrap_positions(&mut self) {
        let Boundary::Periodic { box_min, box_max } = self.boundary else {
            return;
        };
        for x in self.x.iter_mut() {
            *x = wrap_axis(*x, box_min.0, box_max.0);
        }
        for y in self.y.iter_mut() {
            *y = wrap_axis(*y, box_min.1, box_max.1);
        }
        for z in self.z.iter_mut() {
            *z = wrap_axis(*z, box_min.2, box_max.2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_boundary_is_the_identity() {
        let b = Boundary::Open;
        assert!(!b.is_periodic());
        assert_eq!(b.lengths(), (0.0, 0.0, 0.0));
        assert_eq!(b.wrap((3.5, -2.0, 9.9)), (3.5, -2.0, 9.9));
        let mi = MinImage::of(&b);
        for &(dx, dy, dz) in &[(0.3, -0.7, 1.9), (-12.0, 0.0, 1e-300), (4.2e9, -5.5e-200, 5.0)] {
            let (mx, my, mz) = mi.map(dx, dy, dz);
            assert_eq!(mx.to_bits(), dx.to_bits());
            assert_eq!(my.to_bits(), dy.to_bits());
            assert_eq!(mz.to_bits(), dz.to_bits());
        }
        // Signed zero may lose its sign through the identity map; numerically
        // it stays a zero, which is all the kernels rely on.
        let (mx, _, _) = mi.map(-0.0, 0.0, 0.0);
        assert_eq!(mx, 0.0);
        assert_eq!(b.half_diagonal(), f64::INFINITY);
    }

    #[test]
    fn wrap_folds_into_the_box() {
        let b = Boundary::unit_box();
        assert_eq!(b.wrap((0.25, 0.5, 0.75)), (0.25, 0.5, 0.75));
        let (x, y, z) = b.wrap((1.25, -0.25, 3.5));
        assert!((x - 0.25).abs() < 1e-12);
        assert!((y - 0.75).abs() < 1e-12);
        assert!((z - 0.5).abs() < 1e-12);
        // Exactly the upper face folds to the lower face; tiny negative
        // overshoots stay strictly inside [lo, hi).
        assert_eq!(b.wrap((1.0, 1.0, 1.0)), (0.0, 0.0, 0.0));
        let (x, _, _) = b.wrap((-1e-18, 0.0, 0.0));
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn min_image_picks_the_nearest_image() {
        let mi = MinImage::of(&Boundary::unit_box());
        let (dx, _, _) = mi.map(0.9, 0.0, 0.0);
        assert!((dx + 0.1).abs() < 1e-12, "0.9 across a unit box is -0.1, got {dx}");
        let (dx, dy, dz) = mi.map(-0.8, 0.3, 0.55);
        assert!((dx - 0.2).abs() < 1e-12);
        assert!((dy - 0.3).abs() < 1e-12);
        assert!((dz + 0.45).abs() < 1e-12);
    }

    #[test]
    fn periodic_distance_to_box_wraps() {
        let b = Boundary::unit_box();
        // A point at x = 0.95 is 0.05 away (through the seam) from a box
        // hugging the lower face.
        let d2 = b.dist_sq_to_box((0.95, 0.5, 0.5), (0.0, 0.0, 0.0), (0.2, 1.0, 1.0));
        assert!((d2 - 0.05 * 0.05).abs() < 1e-12, "d² = {d2}");
        // The open version of the same query measures the direct distance.
        let d2_open = Boundary::Open.dist_sq_to_box((0.95, 0.5, 0.5), (0.0, 0.0, 0.0), (0.2, 1.0, 1.0));
        assert!((d2_open - 0.75 * 0.75).abs() < 1e-12);
        // Inside the box both agree on zero.
        assert_eq!(b.dist_sq_to_box((0.1, 0.5, 0.5), (0.0, 0.0, 0.0), (0.2, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn wrap_positions_respects_the_set_boundary() {
        let mut p = ParticleSet::with_capacity(2);
        p.push(1.2, -0.3, 0.5, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.push(0.4, 0.4, 0.4, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        // Open (default): wrapping is a no-op.
        p.wrap_positions();
        assert_eq!(p.x[0], 1.2);
        p.boundary = Boundary::unit_box();
        p.wrap_positions();
        assert!((p.x[0] - 0.2).abs() < 1e-12);
        assert!((p.y[0] - 0.7).abs() < 1e-12);
        assert_eq!(p.x[1], 0.4);
    }

    #[test]
    fn half_diagonal_bounds_every_min_image_distance() {
        let b = Boundary::Periodic {
            box_min: (0.0, -1.0, 2.0),
            box_max: (2.0, 1.0, 3.0),
        };
        let bound = b.half_diagonal();
        assert!((bound - 0.5 * (4.0f64 + 4.0 + 1.0).sqrt()).abs() < 1e-12);
        let mi = MinImage::of(&b);
        for &(dx, dy, dz) in &[(1.9, 1.9, 0.9), (-1.1, 0.7, -0.6), (5.0, -5.0, 2.5)] {
            let (mx, my, mz) = mi.map(dx, dy, dz);
            assert!((mx * mx + my * my + mz * mz).sqrt() <= bound + 1e-12);
        }
    }
}
