//! Minimal data-parallel helpers.
//!
//! The physics kernels are embarrassingly parallel per-particle loops. These
//! helpers split them across OS threads with `std::thread::scope`, keeping the
//! dependency footprint small (no rayon) while still using every core for the
//! CPU-executed reference simulations.

/// Number of worker threads to use (bounded to keep oversubscription in check).
pub fn worker_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(1, 16)
}

/// Compute `f(i)` for every `i in 0..n` in parallel and collect the results in
/// index order.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = worker_threads().min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n < 256 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut pieces: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(n);
    for piece in pieces.iter_mut() {
        out.append(piece);
    }
    out
}

/// Apply `f(start_index, chunk)` to disjoint chunks of `data` in parallel.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let threads = worker_threads().min(n);
    if threads <= 1 || n < 256 {
        f(0, data);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, piece) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(t * chunk, piece));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out = parallel_map(10_000, |i| i * 2);
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn map_handles_small_and_empty_inputs() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn chunks_mut_touches_every_element() {
        let mut data = vec![0u64; 5000];
        parallel_chunks_mut(&mut data, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (start + k) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn worker_threads_is_reasonable() {
        let t = worker_threads();
        assert!((1..=16).contains(&t));
    }
}
