//! Minimal data-parallel helpers.
//!
//! The physics kernels are embarrassingly parallel per-particle loops. These
//! helpers split them across OS threads with `std::thread::scope`, keeping the
//! dependency footprint small (no rayon) while still using every core for the
//! CPU-executed reference simulations.

/// Default upper bound on the worker-thread count. The per-particle loops
/// scale near-linearly to this width; past it, `thread::scope` spawn/join
/// overhead on every kernel call and host memory-bandwidth saturation eat the
/// gains. (The previous cap of 16 silently left most of a 64–128-core HPC
/// node idle.)
pub const MAX_DEFAULT_THREADS: usize = 64;

/// Hard ceiling on an explicit `SPHSIM_THREADS` override.
pub const MAX_THREADS: usize = 1024;

/// Number of worker threads to use.
///
/// Honours the `SPHSIM_THREADS` environment variable when it parses to a
/// positive integer (clamped to [`MAX_THREADS`]); otherwise defaults to the
/// machine's available parallelism clamped to [`MAX_DEFAULT_THREADS`].
///
/// The environment is consulted exactly once per process (this function sits
/// on every kernel invocation, and `std::env::var` takes a process-global
/// lock); set `SPHSIM_THREADS` before the first kernel call.
pub fn worker_threads() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        resolve_worker_threads(std::env::var("SPHSIM_THREADS").ok().as_deref(), available)
    })
}

/// Pure resolution of the worker-thread count from an optional `SPHSIM_THREADS`
/// override and the machine's available parallelism (kept separate from the
/// environment read so the policy is testable without mutating process-global
/// state from a multi-threaded test binary).
fn resolve_worker_threads(env_override: Option<&str>, available: usize) -> usize {
    if let Some(value) = env_override {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
        // Unparsable or zero: fall through to the default rather than
        // silently serialising the whole simulation.
    }
    available.clamp(1, MAX_DEFAULT_THREADS)
}

/// Compute `f(i)` for every `i in 0..n` in parallel and collect the results in
/// index order.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = worker_threads().min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n < 256 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut pieces: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(n);
    for piece in pieces.iter_mut() {
        out.append(piece);
    }
    out
}

/// Apply `f(start_index, chunk)` to disjoint chunks of `data` in parallel.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let threads = worker_threads().min(n);
    if threads <= 1 || n < 256 {
        f(0, data);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, piece) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(t * chunk, piece));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out = parallel_map(10_000, |i| i * 2);
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn map_handles_small_and_empty_inputs() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn chunks_mut_touches_every_element() {
        let mut data = vec![0u64; 5000];
        parallel_chunks_mut(&mut data, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (start + k) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn worker_threads_is_reasonable() {
        let t = worker_threads();
        assert!((1..=MAX_THREADS).contains(&t));
    }

    #[test]
    fn worker_threads_is_stable_across_calls() {
        // The count is resolved once (OnceLock); repeated calls on the hot
        // path must return the same value without touching the environment.
        let first = worker_threads();
        assert!((0..1000).all(|_| worker_threads() == first));
    }

    #[test]
    fn worker_threads_honours_env_override() {
        // Exercise the resolution policy directly rather than via
        // std::env::set_var: mutating the process environment races the
        // env reads of every other test in this multi-threaded binary.
        assert_eq!(resolve_worker_threads(Some("5"), 32), 5);
        assert_eq!(resolve_worker_threads(Some(" 12 "), 32), 12);
        // An override larger than the default cap is allowed (that is the
        // point of the override)...
        assert_eq!(resolve_worker_threads(Some("128"), 32), 128);
        // ...but still bounded against absurd values.
        assert_eq!(resolve_worker_threads(Some("999999"), 32), MAX_THREADS);
        // Zero or garbage falls back to the default.
        assert_eq!(resolve_worker_threads(Some("0"), 32), 32);
        assert_eq!(resolve_worker_threads(Some("not-a-number"), 32), 32);
        assert_eq!(resolve_worker_threads(None, 32), 32);
        // The default respects machines both smaller and larger than the cap.
        assert_eq!(resolve_worker_threads(None, 8), 8);
        assert_eq!(resolve_worker_threads(None, 256), MAX_DEFAULT_THREADS);
        // The old cap of 16 silently underused large nodes; a 32-core machine
        // must now get all 32 workers by default.
        assert_eq!(resolve_worker_threads(None, 32), 32);
    }
}
