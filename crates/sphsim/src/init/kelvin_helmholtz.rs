//! Kelvin–Helmholtz shear instability initial conditions.
//!
//! A **fully periodic** unit box with two counter-streaming horizontal slabs
//! (`|y − 0.5| < 0.25` streams at `+Δv/2` in `x`, the rest at `−Δv/2`) in
//! pressure equilibrium. The interfaces are smoothed with `tanh` ramps of
//! width [`KH_DELTA`] (the McNally et al. 2012 discipline — a sharp velocity
//! discontinuity is an unresolved vorticity sheet that SPH's artificial
//! viscosity shreds immediately), and a sinusoidal transverse velocity
//! perturbation of one box wavelength is seeded at both interfaces.
//!
//! In the inviscid linear theory the seeded mode grows at
//! `σ = k Δv / 2 = π Δv / λ`; at the lattice resolutions the CPU propagator
//! runs, SPH damping cancels that growth almost exactly (Agertz et al. 2007),
//! leaving a *neutrally persistent* oscillating mode. The scenario validation
//! therefore pins the quantity that is robust at this scale and brutally
//! sensitive to the boundary handling: the envelope-weighted mode amplitude
//! must **retain** its seeded value through a full shear time. With periodic
//! wrap the retention sits near 0.9; with open faces (or any broken image
//! search / ghost wrap) the slabs decompress off the box and the mode
//! collapses to ~0.2 within a fraction of a crossing.

use crate::init::lattice_cube;
use crate::particle::ParticleSet;
use crate::physics::eos::GAMMA;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Velocity jump across the shear interfaces.
pub const KH_DELTA_V: f64 = 1.0;

/// Sound speed of the gas (Mach 0.5 shear: subsonic, near-incompressible).
pub const KH_SOUND_SPEED: f64 = 2.0;

/// Wavelength of the seeded perturbation (one wavelength per box — the
/// best-resolved mode the lattice can carry).
pub const KH_LAMBDA: f64 = 1.0;

/// Amplitude of the seeded transverse velocity perturbation.
pub const KH_AMPLITUDE: f64 = 0.05;

/// Gaussian width of the interface-localised perturbation envelope.
pub const KH_SIGMA_Y: f64 = 0.1;

/// `tanh` half-width of the smoothed shear interfaces.
pub const KH_DELTA: f64 = 0.05;

/// Incompressible equal-density KH growth rate `σ = k Δv / 2`.
pub fn kh_growth_rate() -> f64 {
    PI * KH_DELTA_V / KH_LAMBDA
}

/// The smoothed streamwise velocity profile `v_x(y)`: `+Δv/2` inside the
/// central slab, `−Δv/2` outside, with `tanh` ramps of width [`KH_DELTA`] at
/// the `y = 0.25` and `y = 0.75` interfaces. Periodic across `y = 0 ↔ 1` by
/// construction (both outer ends stream at `−Δv/2`).
pub fn kh_velocity_profile(y: f64) -> f64 {
    0.5 * KH_DELTA_V * (((y - 0.25) / KH_DELTA).tanh() - ((y - 0.75) / KH_DELTA).tanh() - 1.0)
}

fn interface_envelope(y: f64) -> f64 {
    let g = |y0: f64| (-((y - y0) / KH_SIGMA_Y).powi(2)).exp();
    g(0.25) + g(0.75)
}

/// Amplitude of the seeded `sin(kx)` mode in the transverse velocity field,
/// measured by projecting `v_y` onto the mode (in quadrature, so phase drift
/// cannot hide it) with the same interface envelope used to seed it.
pub fn kh_mode_amplitude(particles: &ParticleSet) -> f64 {
    let k = 2.0 * PI / KH_LAMBDA;
    let mut s = 0.0;
    let mut c = 0.0;
    let mut norm = 0.0;
    for i in 0..particles.len() {
        let w = interface_envelope(particles.y[i]);
        if w < 1e-4 {
            continue;
        }
        s += w * particles.vy[i] * (k * particles.x[i]).sin();
        c += w * particles.vy[i] * (k * particles.x[i]).cos();
        norm += w;
    }
    if norm <= 0.0 {
        return 0.0;
    }
    2.0 * (s * s + c * c).sqrt() / norm
}

/// Build a Kelvin–Helmholtz box: `n³` particles in a periodic unit box of
/// unit mass, two counter-streaming slabs at `±Δv/2` behind `tanh`-smoothed
/// interfaces, uniform pressure (sound speed [`KH_SOUND_SPEED`]), and a
/// seeded interface perturbation. Deterministic for a given `seed`.
pub fn kelvin_helmholtz(n_per_dim: usize, seed: u64) -> ParticleSet {
    assert!(
        n_per_dim >= 8,
        "the interfaces need at least a few particles of separation"
    );
    let mut particles = lattice_cube(n_per_dim, 1.0, 1.0, 1.3);
    // Internal energy such that c = sqrt(γ(γ−1)u) = KH_SOUND_SPEED.
    let u0 = KH_SOUND_SPEED * KH_SOUND_SPEED / (GAMMA * (GAMMA - 1.0));
    let k = 2.0 * PI / KH_LAMBDA;
    // Tiny jitter decorrelates the lattice from the seeded mode.
    let mut rng = StdRng::seed_from_u64(seed);
    let spacing = 1.0 / n_per_dim as f64;
    for i in 0..particles.len() {
        particles.x[i] += rng.gen_range(-0.02..0.02) * spacing;
        particles.y[i] += rng.gen_range(-0.02..0.02) * spacing;
        particles.u[i] = u0;
        particles.vx[i] = kh_velocity_profile(particles.y[i]);
        particles.vy[i] = KH_AMPLITUDE * (k * particles.x[i]).sin() * interface_envelope(particles.y[i]);
    }
    particles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_has_two_counter_streaming_slabs() {
        let p = kelvin_helmholtz(10, 1);
        assert_eq!(p.len(), 1000);
        let inner: Vec<usize> = (0..p.len()).filter(|&i| (p.y[i] - 0.5).abs() < 0.2).collect();
        let outer: Vec<usize> = (0..p.len()).filter(|&i| (p.y[i] - 0.5).abs() > 0.3).collect();
        assert!(!inner.is_empty() && !outer.is_empty());
        assert!(inner.iter().all(|&i| p.vx[i] > 0.0));
        assert!(outer.iter().all(|&i| p.vx[i] < 0.0));
    }

    #[test]
    fn seeded_mode_amplitude_matches_the_seed() {
        let p = kelvin_helmholtz(12, 2);
        let a0 = kh_mode_amplitude(&p);
        // The envelope-weighted projection recovers the seeded amplitude to
        // within lattice discreteness.
        assert!(
            (a0 - KH_AMPLITUDE).abs() < 0.5 * KH_AMPLITUDE,
            "measured {a0} vs seeded {KH_AMPLITUDE}"
        );
    }

    #[test]
    fn shear_is_subsonic_and_growth_rate_positive() {
        let mach = KH_DELTA_V / KH_SOUND_SPEED;
        assert!(mach < 1.0, "shear Mach {mach} must stay subsonic");
        assert!((kh_growth_rate() - PI).abs() < 1e-12);
    }

    #[test]
    fn velocity_profile_is_smooth_and_periodic() {
        // Slab centres stream at ±Δv/2 (to within the tanh(5) tail)...
        assert!((kh_velocity_profile(0.5) - 0.5 * KH_DELTA_V).abs() < 1e-3);
        assert!((kh_velocity_profile(0.0) + 0.5 * KH_DELTA_V).abs() < 1e-3);
        // ...the interfaces sit at the profile's zero crossings...
        assert!(kh_velocity_profile(0.25).abs() < 1e-6);
        assert!(kh_velocity_profile(0.75).abs() < 1e-6);
        // ...and the profile matches itself across the periodic wrap.
        assert!((kh_velocity_profile(0.0) - kh_velocity_profile(1.0)).abs() < 1e-6);
        // The tanh ramp is resolvable: |dv/dy| stays below Δv/δ.
        let dv = (kh_velocity_profile(0.26) - kh_velocity_profile(0.24)) / 0.02;
        assert!(dv > 0.0 && dv < KH_DELTA_V / KH_DELTA);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = kelvin_helmholtz(9, 3);
        let b = kelvin_helmholtz(9, 3);
        assert_eq!(a.x, b.x);
        assert_eq!(a.vy, b.vy);
        let c = kelvin_helmholtz(9, 4);
        assert_ne!(a.x, c.x);
    }
}
