//! Subsonic turbulence initial conditions.
//!
//! A periodic unit box of uniform gas with a small-amplitude, large-scale
//! solenoidal velocity perturbation; the stirring driver then maintains the
//! turbulence at a subsonic RMS Mach number. This mirrors the "Subsonic
//! Turbulence" production runs of the paper (Table 1).

use crate::init::lattice_cube;
use crate::particle::ParticleSet;
use crate::physics::turbulence::TurbulenceDriver;

/// Target initial RMS Mach number of the velocity perturbation.
pub const TARGET_MACH: f64 = 0.3;

/// Build a subsonic-turbulence box with `n³` particles in a unit box of unit
/// mass, internal energy chosen so the sound speed is ≈ 1, and an initial
/// solenoidal velocity field at Mach ≈ [`TARGET_MACH`].
pub fn turbulence_box(n: usize, seed: u64) -> ParticleSet {
    let mut particles = lattice_cube(n, 1.0, 1.0, 1.3);
    // u such that c = sqrt(gamma (gamma-1) u) ≈ 1.
    let gamma = crate::physics::eos::GAMMA;
    let u0 = 1.0 / (gamma * (gamma - 1.0));
    for u in particles.u.iter_mut() {
        *u = u0;
    }
    // Seed a large-scale velocity field using the stirring driver's mode set.
    let driver = TurbulenceDriver::new(1.0, 1.0, seed);
    let mut v2_sum = 0.0;
    let mut velocities = Vec::with_capacity(particles.len());
    for i in 0..particles.len() {
        let v = driver.acceleration_at((particles.x[i], particles.y[i], particles.z[i]), 0.0);
        v2_sum += v.0 * v.0 + v.1 * v.1 + v.2 * v.2;
        velocities.push(v);
    }
    let rms = (v2_sum / particles.len() as f64).sqrt().max(1e-12);
    let scale = TARGET_MACH / rms; // sound speed ≈ 1 by construction
    for (i, v) in velocities.into_iter().enumerate() {
        particles.vx[i] = v.0 * scale;
        particles.vy[i] = v.1 * scale;
        particles.vz[i] = v.2 * scale;
    }
    particles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physics::eos;

    #[test]
    fn box_is_subsonic() {
        let p = turbulence_box(8, 1);
        assert_eq!(p.len(), 512);
        let v_rms = (2.0 * p.kinetic_energy() / p.total_mass()).sqrt();
        let c = eos::sound_speed(1.0, p.u[0]);
        let mach = v_rms / c;
        assert!((mach - TARGET_MACH).abs() < 0.05, "Mach {mach}");
        assert!(mach < 1.0, "flow must be subsonic");
    }

    #[test]
    fn sound_speed_is_near_unity() {
        let p = turbulence_box(4, 2);
        let c = eos::sound_speed(1.0, p.u[0]);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn velocity_field_has_structure_not_noise() {
        // Neighbouring particles should have correlated velocities (large-scale
        // modes), unlike white noise.
        let p = turbulence_box(8, 3);
        let n = 8usize;
        let idx = |ix: usize, iy: usize, iz: usize| (ix * n + iy) * n + iz;
        let mut corr = 0.0;
        let mut count = 0.0;
        for ix in 0..n - 1 {
            for iy in 0..n {
                for iz in 0..n {
                    let a = idx(ix, iy, iz);
                    let b = idx(ix + 1, iy, iz);
                    corr += p.vx[a] * p.vx[b] + p.vy[a] * p.vy[b] + p.vz[a] * p.vz[b];
                    count += 1.0;
                }
            }
        }
        let v2_mean = 2.0 * p.kinetic_energy() / p.total_mass() / 1.0;
        assert!(corr / count > 0.2 * v2_mean, "neighbouring velocities should correlate");
    }
}
