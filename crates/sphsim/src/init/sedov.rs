//! Sedov–Taylor blast wave initial conditions.
//!
//! A point-like energy deposition `E₀` in a cold, uniform medium of density
//! `ρ₀`: the classic self-similar strong-shock test. The shock front expands
//! as `R(t) = ξ₀ (E₀ t² / ρ₀)^{1/5}` with `ξ₀ ≈ 1.152` for `γ = 5/3`, which
//! is the analytic observable the scenario validation checks against.

use crate::init::lattice_cube;
use crate::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Blast energy deposited at the centre.
pub const SEDOV_E0: f64 = 1.0;

/// Uniform background density (unit box of unit mass).
pub const SEDOV_RHO0: f64 = 1.0;

/// Specific internal energy of the cold background medium.
pub const SEDOV_U_BACKGROUND: f64 = 1.0e-6;

/// Sedov similarity constant `ξ₀` for `γ = 5/3`.
pub const SEDOV_XI0: f64 = 1.152;

/// Analytic shock-front radius `R(t) = ξ₀ (E₀ t² / ρ₀)^{1/5}`.
pub fn sedov_shock_radius(e0: f64, rho0: f64, t: f64) -> f64 {
    SEDOV_XI0 * (e0 * t * t / rho0).powf(0.2)
}

/// Build a Sedov blast: `n³` particles on a jittered lattice filling the unit
/// box (total mass 1, so `ρ₀ = 1`), cold everywhere except a kernel-weighted
/// deposition of [`SEDOV_E0`] into the particles within ~1.5 lattice spacings
/// of the box centre. Deterministic for a given `seed`.
pub fn sedov_blast(n_per_dim: usize, seed: u64) -> ParticleSet {
    assert!(n_per_dim >= 4, "the blast needs a resolved centre");
    let mut particles = lattice_cube(n_per_dim, 1.0, SEDOV_RHO0, 1.3);
    let spacing = 1.0 / n_per_dim as f64;
    // A small deterministic jitter breaks the perfect lattice symmetry that
    // would otherwise channel the shock along the grid axes.
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..particles.len() {
        particles.x[i] += rng.gen_range(-0.05..0.05) * spacing;
        particles.y[i] += rng.gen_range(-0.05..0.05) * spacing;
        particles.z[i] += rng.gen_range(-0.05..0.05) * spacing;
        particles.u[i] = SEDOV_U_BACKGROUND;
    }
    // Deposit E0 as internal energy, weighted towards the centre so the hot
    // spot is smooth at the particle scale.
    let r_inj = 1.5 * spacing;
    let centre = 0.5;
    let weights: Vec<f64> = (0..particles.len())
        .map(|i| {
            let dx = particles.x[i] - centre;
            let dy = particles.y[i] - centre;
            let dz = particles.z[i] - centre;
            let q2 = (dx * dx + dy * dy + dz * dz) / (r_inj * r_inj);
            (1.0 - q2).max(0.0)
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();
    if total_weight > 0.0 {
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 {
                particles.u[i] += SEDOV_E0 * w / (total_weight * particles.m[i]);
            }
        }
    } else {
        // Degenerate jitter left no particle inside r_inj: put everything on
        // the particle closest to the centre.
        let i = (0..particles.len())
            .min_by(|&a, &b| {
                let da = (particles.x[a] - centre).powi(2)
                    + (particles.y[a] - centre).powi(2)
                    + (particles.z[a] - centre).powi(2);
                let db = (particles.x[b] - centre).powi(2)
                    + (particles.y[b] - centre).powi(2)
                    + (particles.z[b] - centre).powi(2);
                da.total_cmp(&db)
            })
            .expect("non-empty particle set");
        particles.u[i] += SEDOV_E0 / particles.m[i];
    }
    particles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blast_deposits_the_full_energy() {
        let p = sedov_blast(10, 1);
        assert_eq!(p.len(), 1000);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
        // Internal energy = background + E0.
        let background = SEDOV_U_BACKGROUND; // Σ m u0 with Σ m = 1
        assert!((p.internal_energy() - background - SEDOV_E0).abs() < 1e-9);
        assert_eq!(p.kinetic_energy(), 0.0);
    }

    #[test]
    fn energy_is_concentrated_at_the_centre() {
        let p = sedov_blast(12, 2);
        let hottest = (0..p.len()).max_by(|&a, &b| p.u[a].total_cmp(&p.u[b])).unwrap();
        let r = ((p.x[hottest] - 0.5).powi(2) + (p.y[hottest] - 0.5).powi(2) + (p.z[hottest] - 0.5).powi(2)).sqrt();
        assert!(r < 2.0 / 12.0, "hottest particle at r = {r}");
        assert!(p.u[hottest] > 1e3 * SEDOV_U_BACKGROUND);
    }

    #[test]
    fn shock_radius_follows_the_similarity_law() {
        let r1 = sedov_shock_radius(1.0, 1.0, 0.01);
        let r2 = sedov_shock_radius(1.0, 1.0, 0.04);
        // R ∝ t^{2/5}: quadrupling t multiplies R by 4^{0.4}.
        assert!((r2 / r1 - 4.0f64.powf(0.4)).abs() < 1e-12);
        // More energy -> larger radius at fixed time.
        assert!(sedov_shock_radius(8.0, 1.0, 0.01) > r1);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = sedov_blast(8, 9);
        let b = sedov_blast(8, 9);
        assert_eq!(a.x, b.x);
        assert_eq!(a.u, b.u);
        let c = sedov_blast(8, 10);
        assert_ne!(a.x, c.x);
    }
}
