//! Gresho–Chan vortex initial conditions.
//!
//! A rotating column of gas in exact hydrostatic equilibrium (Gresho & Chan
//! 1990): the azimuthal velocity rises linearly to its peak `v_φ = 1` at
//! `r = 0.2`, falls back to zero at `r = 0.4`, and the pressure profile
//! balances the centrifugal force exactly, so the flow is a steady state of
//! the Euler equations. The box is **fully periodic** — the background
//! pressure (`p = 3 + 4 ln 2` outside the vortex) has nothing to push
//! against on an open boundary, so the equilibrium survives only with a
//! working periodic wrap. That makes the scenario the pipeline's periodicity
//! canary: its analytic check (peak azimuthal velocity retention) cannot pass
//! with open-box neighbour search, kernels or ghost exchange.

use crate::init::lattice_cube;
use crate::particle::ParticleSet;
use crate::physics::eos::GAMMA;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Peak azimuthal velocity of the vortex, reached at [`GRESHO_R_PEAK`].
pub const GRESHO_V_PEAK: f64 = 1.0;

/// Radius of the azimuthal-velocity peak.
pub const GRESHO_R_PEAK: f64 = 0.2;

/// Outer radius of the vortex; the gas is at rest beyond it.
pub const GRESHO_R_OUTER: f64 = 0.4;

/// Azimuthal velocity profile `v_φ(r)` of the equilibrium vortex; its
/// maximum is [`GRESHO_V_PEAK`] at [`GRESHO_R_PEAK`].
pub fn gresho_azimuthal_velocity(r: f64) -> f64 {
    if r < GRESHO_R_PEAK {
        5.0 * r
    } else if r < GRESHO_R_OUTER {
        2.0 - 5.0 * r
    } else {
        0.0
    }
}

/// Pressure profile `p(r)` balancing the centrifugal force of
/// [`gresho_azimuthal_velocity`] at unit density (`dp/dr = v_φ²/r`).
pub fn gresho_pressure(r: f64) -> f64 {
    if r < GRESHO_R_PEAK {
        5.0 + 12.5 * r * r
    } else if r < GRESHO_R_OUTER {
        9.0 + 12.5 * r * r - 20.0 * r + 4.0 * (5.0 * r).ln()
    } else {
        3.0 + 4.0 * 2.0f64.ln()
    }
}

/// Mass-weighted mean azimuthal speed in the annulus around the velocity
/// peak (`r ∈ [0.15, 0.25]` from the vortex axis). The scenario validation
/// compares this before and after a run: the vortex is a steady state, so
/// the ratio measures how much of the peak SPH dissipates.
pub fn gresho_peak_speed(particles: &ParticleSet) -> f64 {
    let mut sum = 0.0;
    let mut weight = 0.0;
    for i in 0..particles.len() {
        let dx = particles.x[i] - 0.5;
        let dy = particles.y[i] - 0.5;
        let r = (dx * dx + dy * dy).sqrt();
        if !(0.15..0.25).contains(&r) {
            continue;
        }
        // Azimuthal unit vector is (-dy, dx)/r.
        let v_phi = (-particles.vx[i] * dy + particles.vy[i] * dx) / r.max(1e-12);
        sum += particles.m[i] * v_phi;
        weight += particles.m[i];
    }
    if weight > 0.0 {
        sum / weight
    } else {
        0.0
    }
}

/// Build a Gresho–Chan vortex: `n³` particles on a lightly jittered lattice
/// filling the periodic unit box (total mass 1, so `ρ = 1`), the vortex
/// column along `z` centred at `(0.5, 0.5)`, with the equilibrium velocity
/// and pressure profiles above. Deterministic for a given `seed`.
pub fn gresho_chan(n_per_dim: usize, seed: u64) -> ParticleSet {
    assert!(n_per_dim >= 8, "the vortex core needs a few particles of resolution");
    let mut particles = lattice_cube(n_per_dim, 1.0, 1.0, 1.3);
    let spacing = 1.0 / n_per_dim as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..particles.len() {
        particles.x[i] += rng.gen_range(-0.02..0.02) * spacing;
        particles.y[i] += rng.gen_range(-0.02..0.02) * spacing;
        let dx = particles.x[i] - 0.5;
        let dy = particles.y[i] - 0.5;
        let r = (dx * dx + dy * dy).sqrt().max(1e-12);
        let v_phi = gresho_azimuthal_velocity(r);
        particles.vx[i] = -v_phi * dy / r;
        particles.vy[i] = v_phi * dx / r;
        particles.vz[i] = 0.0;
        // Ideal gas at unit density: u = p / ((γ − 1) ρ).
        particles.u[i] = gresho_pressure(r) / (GAMMA - 1.0);
    }
    particles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_the_closed_form() {
        assert_eq!(gresho_azimuthal_velocity(0.0), 0.0);
        assert!((gresho_azimuthal_velocity(GRESHO_R_PEAK) - 1.0).abs() < 1e-12);
        assert!((gresho_azimuthal_velocity(0.3) - 0.5).abs() < 1e-12);
        assert_eq!(gresho_azimuthal_velocity(0.5), 0.0);
        // Pressure is continuous at both profile breaks.
        for r in [GRESHO_R_PEAK, GRESHO_R_OUTER] {
            let below = gresho_pressure(r - 1e-9);
            let above = gresho_pressure(r + 1e-9);
            assert!((below - above).abs() < 1e-6, "pressure jump at r = {r}");
        }
        // dp/dr = v² / r (centrifugal balance), sampled inside both branches.
        for r in [0.1, 0.3] {
            let eps = 1e-6;
            let dpdr = (gresho_pressure(r + eps) - gresho_pressure(r - eps)) / (2.0 * eps);
            let expect = gresho_azimuthal_velocity(r).powi(2) / r;
            assert!((dpdr - expect).abs() < 1e-4, "r = {r}: dp/dr {dpdr} vs {expect}");
        }
    }

    #[test]
    fn vortex_rotates_about_the_box_centre() {
        let p = gresho_chan(12, 1);
        assert_eq!(p.len(), 12 * 12 * 12);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
        // Angular momentum about the z axis through the centre is positive;
        // net linear momentum vanishes by symmetry (to lattice discreteness).
        let mut lz = 0.0;
        let mut px = 0.0;
        for i in 0..p.len() {
            let dx = p.x[i] - 0.5;
            let dy = p.y[i] - 0.5;
            lz += p.m[i] * (dx * p.vy[i] - dy * p.vx[i]);
            px += p.m[i] * p.vx[i];
        }
        assert!(lz > 0.0, "vortex must carry angular momentum, got {lz}");
        assert!(px.abs() < 0.01, "net momentum should nearly vanish, got {px}");
        // The measured peak speed is close to the seeded profile average.
        let peak = gresho_peak_speed(&p);
        assert!((0.8..=1.05).contains(&peak), "annulus mean v_phi = {peak}");
    }

    #[test]
    fn gas_beyond_the_vortex_is_at_rest_and_pressurised() {
        let p = gresho_chan(10, 2);
        for i in 0..p.len() {
            let dx = p.x[i] - 0.5;
            let dy = p.y[i] - 0.5;
            if (dx * dx + dy * dy).sqrt() > GRESHO_R_OUTER {
                assert_eq!(p.vx[i], 0.0);
                assert_eq!(p.vy[i], 0.0);
                let expect = (3.0 + 4.0 * 2.0f64.ln()) / (GAMMA - 1.0);
                assert!((p.u[i] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = gresho_chan(9, 3);
        let b = gresho_chan(9, 3);
        assert_eq!(a.x, b.x);
        assert_eq!(a.vy, b.vy);
        let c = gresho_chan(9, 4);
        assert_ne!(a.x, c.x);
    }
}
