//! Initial conditions for every registered scenario: the two production test
//! cases of the paper (subsonic turbulence, Evrard collapse) plus the
//! Sedov–Taylor blast, the Noh implosion, the Kelvin–Helmholtz shear
//! instability and the Gresho–Chan vortex.

pub mod evrard;
pub mod gresho;
pub mod kelvin_helmholtz;
pub mod noh;
pub mod sedov;
pub mod turbulence;

use crate::particle::ParticleSet;

/// Build a uniform cubic lattice of `n³` particles filling `[0, box_size]³`
/// with total mass `total_mass`. The smoothing length is set to
/// `eta ×` the lattice spacing.
pub fn lattice_cube(n: usize, box_size: f64, total_mass: f64, eta: f64) -> ParticleSet {
    assert!(n >= 1 && box_size > 0.0 && total_mass > 0.0 && eta > 0.0);
    let count = n * n * n;
    let spacing = box_size / n as f64;
    let m = total_mass / count as f64;
    let h = eta * spacing;
    let mut particles = ParticleSet::with_capacity(count);
    for ix in 0..n {
        for iy in 0..n {
            for iz in 0..n {
                particles.push(
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    (iz as f64 + 0.5) * spacing,
                    0.0,
                    0.0,
                    0.0,
                    m,
                    h,
                    1.0,
                );
            }
        }
    }
    particles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_requested_count_and_mass() {
        let p = lattice_cube(5, 2.0, 10.0, 1.2);
        assert_eq!(p.len(), 125);
        assert!((p.total_mass() - 10.0).abs() < 1e-9);
        let (min, max) = p.bounding_box();
        assert!(min.0 > 0.0 && max.0 < 2.0);
        assert!(p.is_consistent());
    }

    #[test]
    fn lattice_spacing_sets_smoothing_length() {
        let p = lattice_cube(4, 1.0, 1.0, 1.5);
        assert!((p.h[0] - 1.5 * 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_lattice_panics() {
        lattice_cube(0, 1.0, 1.0, 1.0);
    }
}
