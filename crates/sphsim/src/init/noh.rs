//! Noh implosion initial conditions.
//!
//! A cold, uniform gas sphere with a uniform radially inward velocity
//! `v = -v₀ r̂`. An infinitely strong accretion shock forms at the centre and
//! moves outward at `v₀/3`; ahead of the shock the flow stays smooth and the
//! density follows the exact pre-shock solution
//! `ρ(r, t) = ρ₀ (1 + v₀ t / r)²`, which is the analytic observable the
//! scenario validation checks (the post-shock plateau of
//! `ρ₀ ((γ+1)/(γ−1))³ = 64 ρ₀` needs far more resolution than a laptop-scale
//! run can afford, the smooth upstream profile does not).

use crate::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform initial density of the sphere.
pub const NOH_RHO0: f64 = 1.0;

/// Magnitude of the uniform inward radial velocity.
pub const NOH_V0: f64 = 1.0;

/// Specific internal energy of the cold initial gas.
pub const NOH_U0: f64 = 1.0e-6;

/// Exact pre-shock (upstream) density of the Noh flow at radius `r`, time `t`.
pub fn noh_preshock_density(rho0: f64, t: f64, r: f64) -> f64 {
    rho0 * (1.0 + NOH_V0 * t / r).powi(2)
}

/// Build a Noh implosion: approximately `n_target` equal-mass particles
/// uniformly sampling the unit sphere at density [`NOH_RHO0`], all moving
/// radially inward at [`NOH_V0`]. Deterministic for a given `seed`.
pub fn noh_sphere(n_target: usize, seed: u64) -> ParticleSet {
    assert!(n_target >= 8);
    let mut rng = StdRng::seed_from_u64(seed);
    let volume = 4.0 / 3.0 * std::f64::consts::PI;
    let m = NOH_RHO0 * volume / n_target as f64;
    let spacing = (volume / n_target as f64).cbrt();
    let h = 1.4 * spacing;
    let mut particles = ParticleSet::with_capacity(n_target);
    while particles.len() < n_target {
        // Uniform density: enclosed mass ∝ r³, so r = ξ^{1/3}.
        let xi: f64 = rng.gen_range(0.0..1.0f64);
        let r = xi.cbrt();
        let cos_theta: f64 = rng.gen_range(-1.0..1.0);
        let sin_theta = (1.0 - cos_theta * cos_theta).sqrt();
        let phi: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let x = r * sin_theta * phi.cos();
        let y = r * sin_theta * phi.sin();
        let z = r * cos_theta;
        // Inward unit radial velocity; the exact centre stays at rest.
        let (vx, vy, vz) = if r > 1e-12 {
            (-NOH_V0 * x / r, -NOH_V0 * y / r, -NOH_V0 * z / r)
        } else {
            (0.0, 0.0, 0.0)
        };
        particles.push(x, y, z, vx, vy, vz, m, h, NOH_U0);
    }
    particles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_is_uniform_and_inflowing() {
        let p = noh_sphere(3000, 1);
        assert_eq!(p.len(), 3000);
        let volume = 4.0 / 3.0 * std::f64::consts::PI;
        assert!((p.total_mass() - NOH_RHO0 * volume).abs() < 1e-9);
        // Uniform density: half the mass inside r = 0.5^{1/3} ≈ 0.794.
        let r_half = 0.5f64.cbrt();
        let inner = (0..p.len())
            .filter(|&i| (p.x[i].powi(2) + p.y[i].powi(2) + p.z[i].powi(2)).sqrt() < r_half)
            .count() as f64
            / p.len() as f64;
        assert!((inner - 0.5).abs() < 0.05, "inner mass fraction {inner}");
        // Every particle moves radially inward at unit speed.
        for i in 0..p.len() {
            let r = (p.x[i].powi(2) + p.y[i].powi(2) + p.z[i].powi(2)).sqrt();
            if r > 1e-6 {
                let v_r = (p.vx[i] * p.x[i] + p.vy[i] * p.y[i] + p.vz[i] * p.z[i]) / r;
                assert!((v_r + NOH_V0).abs() < 1e-9, "radial velocity {v_r}");
            }
        }
    }

    #[test]
    fn preshock_density_profile() {
        // At t = 0 the profile is the initial density everywhere.
        assert_eq!(noh_preshock_density(1.0, 0.0, 0.3), 1.0);
        // (1 + 0.15/0.25)² = 1.6² = 2.56.
        assert!((noh_preshock_density(1.0, 0.15, 0.25) - 2.56).abs() < 1e-12);
        // The upstream density diverges towards the origin.
        assert!(noh_preshock_density(1.0, 0.1, 0.05) > noh_preshock_density(1.0, 0.1, 0.5));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = noh_sphere(200, 5);
        let b = noh_sphere(200, 5);
        assert_eq!(a.x, b.x);
        assert_eq!(a.vx, b.vx);
        let c = noh_sphere(200, 6);
        assert_ne!(a.x, c.x);
    }
}
