//! Evrard collapse initial conditions.
//!
//! The Evrard (1988) test: a cold, initially static gas sphere of mass `M = 1`
//! and radius `R = 1` with density profile `ρ(r) ∝ 1/r`, specific internal
//! energy `u = 0.05`, and `G = 1`. Gravity overwhelms pressure and the sphere
//! collapses, converting potential energy into heat — the standard strong test
//! for coupled SPH + gravity, and one of the two production runs of the paper.

use crate::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Initial specific internal energy of the Evrard sphere.
pub const EVRARD_U0: f64 = 0.05;

/// Build an Evrard sphere with approximately `n_target` particles of equal
/// mass, total mass 1 and radius 1, via rejection sampling of the `ρ ∝ 1/r`
/// profile (deterministic for a given `seed`).
pub fn evrard_sphere(n_target: usize, seed: u64) -> ParticleSet {
    assert!(n_target >= 8);
    let mut rng = StdRng::seed_from_u64(seed);
    let m = 1.0 / n_target as f64;
    // Mean interparticle spacing for h: sphere volume / n, cube-rooted.
    let volume = 4.0 / 3.0 * std::f64::consts::PI;
    let spacing = (volume / n_target as f64).cbrt();
    let h = 1.4 * spacing;
    let mut particles = ParticleSet::with_capacity(n_target);
    while particles.len() < n_target {
        // For ρ ∝ 1/r the enclosed mass is M(r) ∝ r², so r = √ξ samples the
        // profile exactly.
        let xi: f64 = rng.gen_range(0.0..1.0f64);
        let r = xi.sqrt();
        let cos_theta: f64 = rng.gen_range(-1.0..1.0);
        let sin_theta = (1.0 - cos_theta * cos_theta).sqrt();
        let phi: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let x = r * sin_theta * phi.cos();
        let y = r * sin_theta * phi.sin();
        let z = r * cos_theta;
        particles.push(x, y, z, 0.0, 0.0, 0.0, m, h, EVRARD_U0);
    }
    particles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_has_unit_mass_and_radius() {
        let p = evrard_sphere(2000, 1);
        assert_eq!(p.len(), 2000);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
        let max_r = (0..p.len())
            .map(|i| (p.x[i].powi(2) + p.y[i].powi(2) + p.z[i].powi(2)).sqrt())
            .fold(0.0f64, f64::max);
        assert!(max_r <= 1.0 + 1e-9);
    }

    #[test]
    fn density_profile_is_centrally_concentrated() {
        let p = evrard_sphere(4000, 2);
        // Count particles inside r < 0.5: for ρ ∝ 1/r, M(<0.5) = 0.25 of the mass,
        // which is much more than the 0.125 a uniform sphere would give... wait:
        // M(r) ∝ r² -> M(<0.5) = 0.25. Uniform would give 0.125. Check we are
        // closer to 0.25 than to 0.125.
        let inner = (0..p.len())
            .filter(|&i| (p.x[i].powi(2) + p.y[i].powi(2) + p.z[i].powi(2)).sqrt() < 0.5)
            .count() as f64
            / p.len() as f64;
        assert!((inner - 0.25).abs() < 0.03, "inner fraction {inner}");
    }

    #[test]
    fn initial_state_is_cold_and_static() {
        let p = evrard_sphere(500, 3);
        assert!(p.kinetic_energy() == 0.0);
        assert!((p.internal_energy() - EVRARD_U0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = evrard_sphere(100, 9);
        let b = evrard_sphere(100, 9);
        assert_eq!(a.x, b.x);
        let c = evrard_sphere(100, 10);
        assert_ne!(a.x, c.x);
    }
}
