//! Reusable per-step buffers of the CPU propagator's hot path.
//!
//! [`crate::propagator::Simulation::step`] used to rebuild its octree and
//! neighbour lists from scratch every timestep — a fresh node arena plus one
//! `Vec` per particle per step. The [`StepWorkspace`] owns all of those
//! buffers across steps (octree arena, CSR neighbour lists and their build
//! scratch, Morton keys, sort permutation and reorder lanes), so that after a
//! warm-up step the whole neighbour pipeline performs zero heap allocations
//! (asserted by the `alloc_free_neighbors` integration test).

use crate::boundary::Boundary;
use crate::celllist::{find_neighbors_cells_into, find_neighbors_cells_rows_into, CellGrid, CELL_LIST_CUTOFF};
use crate::morton;
use crate::octree::Octree;
use crate::particle::{ParticleSet, ReorderScratch};
use crate::physics::neighbors::{find_neighbors_into, find_neighbors_rows_into, NeighborLists, NeighborScratch};

/// Which CSR neighbour-list builder [`StepWorkspace::find_neighbors`] runs.
/// Both builders produce the same row sets (pinned by the
/// `celllist_equivalence` suite); they differ in row order and in cost
/// profile, so the policy is a workspace knob rather than a physics one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NeighborBuilder {
    /// Cell list from [`CELL_LIST_CUTOFF`] particles up (when the grid
    /// accepts the set), octree below it — the production default.
    #[default]
    Auto,
    /// Always the octree builder (the bit-pinned reference path).
    Octree,
    /// The cell-list builder whenever the grid accepts the set (still falls
    /// back to the octree on empty or too-polydisperse sets).
    CellList,
}

/// What the last [`StepWorkspace::find_neighbors`] call did — the builder
/// telemetry the propagator publishes each step.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeighborBuildStats {
    /// True when the cell-list builder ran (false: octree).
    pub used_cells: bool,
    /// Non-empty grid cells (0 on the octree path).
    pub occupied_cells: usize,
    /// Total grid cells (0 on the octree path).
    pub total_cells: usize,
    /// Mean particles per occupied cell (0 on the octree path).
    pub mean_occupancy: f64,
    /// Total CSR neighbour entries emitted.
    pub rows: usize,
}

/// The reusable buffers threaded through every stage of one timestep.
pub struct StepWorkspace {
    tree: Octree,
    neighbors: NeighborLists,
    neighbor_scratch: NeighborScratch,
    grid: CellGrid,
    builder: NeighborBuilder,
    build_stats: NeighborBuildStats,
    keys: Vec<u64>,
    perm: Vec<u32>,
    reorder_scratch: ReorderScratch,
    origin_scratch: Vec<u32>,
    interior_rows: Vec<u32>,
    halo_rows: Vec<u32>,
}

impl StepWorkspace {
    /// A fresh workspace; every buffer grows to its steady-state size during
    /// the first step it is used on.
    pub fn new() -> Self {
        Self {
            tree: Octree::empty(),
            neighbors: NeighborLists::default(),
            neighbor_scratch: NeighborScratch::new(),
            grid: CellGrid::new(),
            builder: NeighborBuilder::default(),
            build_stats: NeighborBuildStats::default(),
            keys: Vec::new(),
            perm: Vec::new(),
            reorder_scratch: ReorderScratch::default(),
            origin_scratch: Vec::new(),
            interior_rows: Vec::new(),
            halo_rows: Vec::new(),
        }
    }

    /// Select the CSR builder policy (default: [`NeighborBuilder::Auto`]).
    pub fn set_neighbor_builder(&mut self, builder: NeighborBuilder) {
        self.builder = builder;
    }

    /// What the last [`StepWorkspace::find_neighbors`] call did.
    pub fn neighbor_build_stats(&self) -> NeighborBuildStats {
        self.build_stats
    }

    /// The octree of the current step (valid after [`StepWorkspace::rebuild_tree`]).
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// The CSR neighbour lists of the current step (valid after
    /// [`StepWorkspace::find_neighbors`]).
    pub fn neighbors(&self) -> &NeighborLists {
        &self.neighbors
    }

    /// Rebuild the octree over the current particle positions into the reused
    /// node arena.
    pub fn rebuild_tree(&mut self, particles: &ParticleSet, max_leaf_size: usize) {
        self.tree
            .rebuild(&particles.x, &particles.y, &particles.z, &particles.m, max_leaf_size);
    }

    /// Build the CSR neighbour lists, recording the per-particle neighbour
    /// counts in the same pass. Honours the particle set's [`Boundary`]
    /// (periodic boxes search wrapped images / minimum-image distances).
    ///
    /// The builder follows the configured [`NeighborBuilder`] policy: `Auto`
    /// sweeps the cell grid from [`CELL_LIST_CUTOFF`] particles up and walks
    /// the octree below it; either forced path still falls back to the
    /// octree when [`CellGrid::rebuild`] declines the set (empty, or
    /// smoothing lengths too polydisperse for a uniform grid).
    pub fn find_neighbors(&mut self, particles: &mut ParticleSet) {
        let use_cells = match self.builder {
            NeighborBuilder::Octree => false,
            NeighborBuilder::CellList => self.grid.rebuild(particles),
            NeighborBuilder::Auto => particles.len() >= CELL_LIST_CUTOFF && self.grid.rebuild(particles),
        };
        if use_cells {
            find_neighbors_cells_into(particles, &self.grid, &mut self.neighbors, &mut self.neighbor_scratch);
        } else {
            find_neighbors_into(particles, &self.tree, &mut self.neighbors, &mut self.neighbor_scratch);
        }
        self.build_stats = NeighborBuildStats {
            used_cells: use_cells,
            occupied_cells: if use_cells { self.grid.occupied_cells() } else { 0 },
            total_cells: if use_cells { self.grid.total_cells() } else { 0 },
            mean_occupancy: if use_cells { self.grid.mean_occupancy() } else { 0.0 },
            rows: self.neighbors.total_entries(),
        };
    }

    /// [`StepWorkspace::find_neighbors`] restricted to a sorted subset of
    /// rows — the active-set build of an individual-timestep substep. The
    /// resulting lists still cover the full particle set (off-subset rows are
    /// zero-length), so every row-subset kernel keeps indexing by absolute
    /// particle id. Follows the same builder policy as the full build; both
    /// subset paths require [`StepWorkspace::rebuild_tree`] to have run on
    /// the current positions (the octree path queries the tree, and the
    /// propagator rebuilds it every substep for gravity anyway).
    pub fn find_neighbors_rows(&mut self, particles: &mut ParticleSet, rows: &[u32]) {
        let use_cells = match self.builder {
            NeighborBuilder::Octree => false,
            NeighborBuilder::CellList => self.grid.rebuild(particles),
            NeighborBuilder::Auto => particles.len() >= CELL_LIST_CUTOFF && self.grid.rebuild(particles),
        };
        if use_cells {
            find_neighbors_cells_rows_into(
                particles,
                &self.grid,
                rows,
                &mut self.neighbors,
                &mut self.neighbor_scratch,
            );
        } else {
            find_neighbors_rows_into(
                particles,
                &self.tree,
                rows,
                &mut self.neighbors,
                &mut self.neighbor_scratch,
            );
        }
        self.build_stats = NeighborBuildStats {
            used_cells: use_cells,
            occupied_cells: if use_cells { self.grid.occupied_cells() } else { 0 },
            total_cells: if use_cells { self.grid.total_cells() } else { 0 },
            mean_occupancy: if use_cells { self.grid.mean_occupancy() } else { 0.0 },
            rows: self.neighbors.total_entries(),
        };
    }

    /// Split the current CSR rows (valid after [`StepWorkspace::find_neighbors`])
    /// into **interior** rows — owned rows (`< n_owned`) referencing no slot at
    /// or past `n_owned` — and **halo** rows (everything else: owned rows that
    /// read a ghost, plus the ghost rows themselves). The distributed
    /// propagator runs the momentum kernel over the interior rows while the
    /// mid-step ghost refresh is in flight and finishes the halo rows after it
    /// completes. Both buffers are reused across steps, so a warm call
    /// performs no heap allocation (part of the `alloc_free_neighbors` gate).
    pub fn partition_rows(&mut self, n_owned: usize) {
        self.interior_rows.clear();
        self.halo_rows.clear();
        let n = self.neighbors.len();
        self.interior_rows.reserve(n);
        self.halo_rows.reserve(n);
        for i in 0..n {
            let interior = i < n_owned && self.neighbors.neighbors(i).iter().all(|&j| (j as usize) < n_owned);
            if interior {
                self.interior_rows.push(i as u32);
            } else {
                self.halo_rows.push(i as u32);
            }
        }
    }

    /// Rows whose pair sums read no ghost slot (valid after
    /// [`StepWorkspace::partition_rows`]).
    pub fn interior_rows(&self) -> &[u32] {
        &self.interior_rows
    }

    /// Rows whose pair sums read at least one ghost slot, plus the ghost rows
    /// themselves (valid after [`StepWorkspace::partition_rows`]).
    pub fn halo_rows(&self) -> &[u32] {
        &self.halo_rows
    }

    /// The whole `DomainDecompAndSync` body of the single-rank propagator:
    /// wrap positions back into a periodic box, re-sort the storage into
    /// Morton order when the reorder cadence says so, and rebuild the octree.
    ///
    /// The `reorder_due` decision is **hoisted above the Morton-key
    /// recompute**: a non-reorder step never touches the key/perm lanes — it
    /// pays only the (cheap, periodic-only) wrap pass and the tree rebuild.
    /// An earlier layout regenerated keys every step to decide, which is what
    /// the `DomainDecompAndSync` row of `BENCH_step_throughput.json` gates.
    pub fn domain_sync(
        &mut self,
        particles: &mut ParticleSet,
        origin: &mut Vec<u32>,
        reorder_due: bool,
        max_leaf_size: usize,
    ) {
        particles.wrap_positions();
        if reorder_due {
            self.reorder_by_morton(particles, origin);
        }
        self.rebuild_tree(particles, max_leaf_size);
    }

    /// Sort the particle storage into Morton (Z-order) order, so that octree
    /// leaves — and therefore CSR neighbour rows — cover contiguous memory.
    /// `origin` (the map `origin[current] = original` from storage slot to
    /// construction-order index) is permuted alongside, keeping
    /// externally-held indices resolvable across reorders.
    ///
    /// Keys anchor to the periodic box when the set's boundary is periodic
    /// (wrapped coordinates then key stably regardless of how the occupied
    /// volume breathes), and to the instantaneous bounding box otherwise.
    pub fn reorder_by_morton(&mut self, particles: &mut ParticleSet, origin: &mut Vec<u32>) {
        let n = particles.len();
        assert_eq!(origin.len(), n, "origin map out of sync with particle count");
        if n == 0 {
            return;
        }
        let (min, max) = match particles.boundary {
            Boundary::Periodic { box_min, box_max } => (box_min, box_max),
            Boundary::Open => particles.bounding_box(),
        };
        self.keys.clear();
        self.keys.reserve(n);
        for ((&x, &y), &z) in particles.x.iter().zip(&particles.y).zip(&particles.z) {
            self.keys.push(morton::encode_position((x, y, z), min, max));
        }
        self.perm.clear();
        self.perm.extend(0..n as u32);
        let keys = &self.keys;
        self.perm.sort_unstable_by_key(|&i| keys[i as usize]);
        particles.reorder_with(&self.perm, &mut self.reorder_scratch);
        self.origin_scratch.clear();
        self.origin_scratch.reserve(n);
        for &src in &self.perm {
            self.origin_scratch.push(origin[src as usize]);
        }
        std::mem::swap(origin, &mut self.origin_scratch);
    }
}

impl Default for StepWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::lattice_cube;
    use crate::physics::neighbors::find_neighbors;

    #[test]
    fn workspace_pipeline_matches_the_allocating_path() {
        let mut a = lattice_cube(5, 1.0, 1.0, 1.2);
        let mut b = a.clone();
        let tree = crate::physics::neighbors::build_tree(&a, 16);
        let fresh = find_neighbors(&mut a, &tree);
        let mut ws = StepWorkspace::new();
        ws.rebuild_tree(&b, 16);
        ws.find_neighbors(&mut b);
        assert_eq!(ws.neighbors().offsets, fresh.offsets);
        assert_eq!(ws.neighbors().indices, fresh.indices);
        assert_eq!(a.neighbor_count, b.neighbor_count);
    }

    #[test]
    fn morton_reorder_sorts_keys_and_tracks_origins() {
        let mut p = lattice_cube(4, 1.0, 1.0, 1.2);
        // Tag each particle through its internal energy so we can recognise it.
        for (i, u) in p.u.iter_mut().enumerate() {
            *u = i as f64 + 1.0;
        }
        let before = p.clone();
        let mut origin: Vec<u32> = (0..p.len() as u32).collect();
        let mut ws = StepWorkspace::new();
        ws.reorder_by_morton(&mut p, &mut origin);
        // Keys are non-decreasing after the sort.
        let (min, max) = p.bounding_box();
        let keys: Vec<u64> = (0..p.len())
            .map(|i| morton::encode_position((p.x[i], p.y[i], p.z[i]), min, max))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // The origin map resolves every slot back to its construction index.
        for (current, &orig) in origin.iter().enumerate() {
            assert_eq!(p.u[current], before.u[orig as usize]);
            assert_eq!(p.x[current], before.x[orig as usize]);
        }
        // A second reorder keeps the composition correct.
        ws.reorder_by_morton(&mut p, &mut origin);
        for (current, &orig) in origin.iter().enumerate() {
            assert_eq!(p.u[current], before.u[orig as usize]);
        }
    }

    #[test]
    fn reorder_on_empty_set_is_a_noop() {
        let mut p = ParticleSet::default();
        let mut origin = Vec::new();
        let mut ws = StepWorkspace::new();
        ws.reorder_by_morton(&mut p, &mut origin);
        assert!(p.is_empty() && origin.is_empty());
    }
}
