//! Named pipeline stages of the time-stepping loop.
//!
//! These are the functions whose per-call energy the paper reports (Figures 3
//! and 5). The same labels are used by the CPU reference propagator, the
//! GPU-offload workload model and the analysis crate, so that records produced
//! by either path aggregate identically.

use serde::{Deserialize, Serialize};

/// One stage of the SPH-EXA-style time-stepping loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SphStage {
    /// Domain decomposition, octree sync and halo exchange.
    DomainDecompAndSync,
    /// Neighbour search.
    FindNeighbors,
    /// Density / volume-element computation.
    XMass,
    /// Grad-h normalisation terms.
    NormalizationGradh,
    /// Equation of state.
    EquationOfState,
    /// Integral-approximation derivatives: velocity divergence and curl.
    IADVelocityDivCurl,
    /// Artificial-viscosity switches.
    AVSwitches,
    /// Momentum and energy equations.
    MomentumEnergy,
    /// Self-gravity (Evrard collapse only).
    Gravity,
    /// Turbulence stirring forcing (subsonic turbulence only).
    Turbulence,
    /// Timestep computation (reduction).
    Timestep,
    /// Drift/kick update of positions, velocities and energies.
    UpdateQuantities,
}

impl SphStage {
    /// The label used in measurement records and in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SphStage::DomainDecompAndSync => "DomainDecompAndSync",
            SphStage::FindNeighbors => "FindNeighbors",
            SphStage::XMass => "XMass",
            SphStage::NormalizationGradh => "NormalizationGradh",
            SphStage::EquationOfState => "EquationOfState",
            SphStage::IADVelocityDivCurl => "IADVelocityDivCurl",
            SphStage::AVSwitches => "AVSwitches",
            SphStage::MomentumEnergy => "MomentumEnergy",
            SphStage::Gravity => "Gravity",
            SphStage::Turbulence => "Turbulence",
            SphStage::Timestep => "Timestep",
            SphStage::UpdateQuantities => "UpdateQuantities",
        }
    }

    /// Parse a stage from its label.
    pub fn from_label(label: &str) -> Option<SphStage> {
        SphStage::all().into_iter().find(|s| s.label() == label)
    }

    /// Every stage, in pipeline order.
    pub fn all() -> Vec<SphStage> {
        vec![
            SphStage::DomainDecompAndSync,
            SphStage::FindNeighbors,
            SphStage::XMass,
            SphStage::NormalizationGradh,
            SphStage::EquationOfState,
            SphStage::IADVelocityDivCurl,
            SphStage::AVSwitches,
            SphStage::MomentumEnergy,
            SphStage::Gravity,
            SphStage::Turbulence,
            SphStage::Timestep,
            SphStage::UpdateQuantities,
        ]
    }

    /// True if the stage involves inter-rank communication.
    pub fn is_communication(&self) -> bool {
        matches!(self, SphStage::DomainDecompAndSync | SphStage::Timestep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for stage in SphStage::all() {
            assert_eq!(SphStage::from_label(stage.label()), Some(stage));
        }
        assert_eq!(SphStage::from_label("NotAStage"), None);
    }

    #[test]
    fn pipeline_contains_the_paper_functions() {
        let labels: Vec<&str> = SphStage::all().iter().map(|s| s.label()).collect();
        for expected in [
            "DomainDecompAndSync",
            "XMass",
            "NormalizationGradh",
            "IADVelocityDivCurl",
            "AVSwitches",
            "MomentumEnergy",
            "Gravity",
        ] {
            assert!(labels.contains(&expected), "missing stage {expected}");
        }
    }

    #[test]
    fn communication_stages_flagged() {
        assert!(SphStage::DomainDecompAndSync.is_communication());
        assert!(!SphStage::MomentumEnergy.is_communication());
    }
}
