//! Octree for neighbour search and Barnes–Hut gravity.
//!
//! A pointer-free octree over particle positions, in the spirit of SPH-EXA's
//! Cornerstone octree (Keller et al. 2023), reduced to what the mini-framework
//! needs: ball (fixed-radius) neighbour queries for the SPH sums and
//! node monopoles (mass + centre of mass) for the gravity traversal.
//!
//! The node arena, the particle index permutation and the build scratch are
//! all owned by the tree and reused across [`Octree::rebuild`] calls, and the
//! traversals run iteratively over fixed-size stacks — so a time-stepping loop
//! that rebuilds the tree every step performs no heap allocation once the
//! arena has warmed up to its steady-state size.
//!
//! Periodic boxes are searched through
//! [`Octree::for_each_within_periodic`]: the tree itself always covers the
//! wrapped (in-box) positions, and a query whose sphere crosses a box face
//! additionally prunes against the sphere's wrapped images, while the leaf
//! inclusion test is the *minimum-image* distance — the exact same formula
//! the pair kernels use, so inclusion decisions agree to the last bit.

use crate::boundary::{Boundary, MinImage};

/// Axis-aligned bounding box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: (f64, f64, f64),
    /// Maximum corner.
    pub max: (f64, f64, f64),
}

impl Aabb {
    /// Create a box; panics if any max < min.
    pub fn new(min: (f64, f64, f64), max: (f64, f64, f64)) -> Self {
        assert!(max.0 >= min.0 && max.1 >= min.1 && max.2 >= min.2, "invalid AABB");
        Self { min, max }
    }

    /// Bounding box of a point cloud, slightly padded.
    pub fn of_points(x: &[f64], y: &[f64], z: &[f64]) -> Self {
        let mut min = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for i in 0..x.len() {
            min.0 = min.0.min(x[i]);
            min.1 = min.1.min(y[i]);
            min.2 = min.2.min(z[i]);
            max.0 = max.0.max(x[i]);
            max.1 = max.1.max(y[i]);
            max.2 = max.2.max(z[i]);
        }
        if x.is_empty() {
            return Self::new((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        }
        let pad = 1e-9 + 1e-9 * (max.0 - min.0).abs().max((max.1 - min.1).abs()).max((max.2 - min.2).abs());
        Self::new(
            (min.0 - pad, min.1 - pad, min.2 - pad),
            (max.0 + pad, max.1 + pad, max.2 + pad),
        )
    }

    /// Geometric centre.
    pub fn center(&self) -> (f64, f64, f64) {
        (
            0.5 * (self.min.0 + self.max.0),
            0.5 * (self.min.1 + self.max.1),
            0.5 * (self.min.2 + self.max.2),
        )
    }

    /// Longest edge length.
    pub fn longest_edge(&self) -> f64 {
        (self.max.0 - self.min.0)
            .max(self.max.1 - self.min.1)
            .max(self.max.2 - self.min.2)
    }

    /// True if the point is inside (inclusive).
    pub fn contains(&self, p: (f64, f64, f64)) -> bool {
        p.0 >= self.min.0
            && p.0 <= self.max.0
            && p.1 >= self.min.1
            && p.1 <= self.max.1
            && p.2 >= self.min.2
            && p.2 <= self.max.2
    }

    /// Squared distance from a point to the box (0 if inside).
    pub fn distance_sq(&self, p: (f64, f64, f64)) -> f64 {
        let dx = (self.min.0 - p.0).max(0.0).max(p.0 - self.max.0);
        let dy = (self.min.1 - p.1).max(0.0).max(p.1 - self.max.1);
        let dz = (self.min.2 - p.2).max(0.0).max(p.2 - self.max.2);
        dx * dx + dy * dy + dz * dz
    }

    /// True if a sphere overlaps the box.
    pub fn overlaps_sphere(&self, center: (f64, f64, f64), radius: f64) -> bool {
        self.distance_sq(center) <= radius * radius
    }

    /// The `octant`-th child box (octant bits: x = 1, y = 2, z = 4).
    pub fn octant(&self, octant: usize) -> Aabb {
        let c = self.center();
        let (min, max) = (self.min, self.max);
        let x = if octant & 1 == 0 { (min.0, c.0) } else { (c.0, max.0) };
        let y = if octant & 2 == 0 { (min.1, c.1) } else { (c.1, max.1) };
        let z = if octant & 4 == 0 { (min.2, c.2) } else { (c.2, max.2) };
        Aabb::new((x.0, y.0, z.0), (x.1, y.1, z.1))
    }
}

/// One octree node.
#[derive(Clone, Debug)]
pub struct OctreeNode {
    /// Spatial extent of the node.
    pub bounds: Aabb,
    /// Indices into the tree's `indices` array covered by this node.
    pub start: usize,
    /// One past the last index covered by this node.
    pub end: usize,
    /// Indices of the eight children in the node array, or `None` for leaves.
    pub children: Option<[usize; 8]>,
    /// Total mass of the particles in the node (for gravity).
    pub mass: f64,
    /// Centre of mass of the particles in the node.
    pub com: (f64, f64, f64),
}

impl OctreeNode {
    /// Number of particles in this node.
    pub fn count(&self) -> usize {
        self.end - self.start
    }

    /// True if the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// Octree over a set of particle positions.
pub struct Octree {
    nodes: Vec<OctreeNode>,
    indices: Vec<usize>,
    max_leaf_size: usize,
    /// Reusable scratch for the in-place octant partition of one node segment.
    partition_scratch: Vec<usize>,
    /// Reusable work stack of `(node index, depth)` pairs of the iterative build.
    build_stack: Vec<(usize, usize)>,
}

impl Octree {
    /// An empty tree (unit root box, no particles) — an arena waiting for its
    /// first [`Octree::rebuild`].
    pub fn empty() -> Self {
        let bounds = Aabb::new((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        Self {
            nodes: vec![OctreeNode {
                bounds,
                start: 0,
                end: 0,
                children: None,
                mass: 0.0,
                com: bounds.center(),
            }],
            indices: Vec::new(),
            max_leaf_size: 1,
            partition_scratch: Vec::new(),
            build_stack: Vec::new(),
        }
    }

    /// Build an octree over the given positions with at most `max_leaf_size`
    /// particles per leaf.
    pub fn build(x: &[f64], y: &[f64], z: &[f64], m: &[f64], max_leaf_size: usize) -> Self {
        let mut tree = Self::empty();
        tree.rebuild(x, y, z, m, max_leaf_size);
        tree
    }

    /// Rebuild the tree over new positions, reusing the node arena, the index
    /// permutation and the build scratch (no allocation once their capacity
    /// has reached the steady-state size).
    pub fn rebuild(&mut self, x: &[f64], y: &[f64], z: &[f64], m: &[f64], max_leaf_size: usize) {
        assert!(max_leaf_size >= 1);
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), z.len());
        assert_eq!(x.len(), m.len());
        self.max_leaf_size = max_leaf_size;
        let bounds = Aabb::of_points(x, y, z);
        self.nodes.clear();
        self.indices.clear();
        self.indices.extend(0..x.len());
        if x.is_empty() {
            self.nodes.push(OctreeNode {
                bounds,
                start: 0,
                end: 0,
                children: None,
                mass: 0.0,
                com: bounds.center(),
            });
            return;
        }
        let n = x.len();
        self.nodes.push(OctreeNode {
            bounds,
            start: 0,
            end: n,
            children: None,
            mass: 0.0,
            com: (0.0, 0.0, 0.0),
        });
        self.build_stack.clear();
        self.build_stack.push((0, 0));
        while let Some((node_idx, depth)) = self.build_stack.pop() {
            self.split(node_idx, x, y, z, depth);
        }
        // The traversal stacks index nodes as u32.
        assert!(
            self.nodes.len() <= u32::MAX as usize,
            "octree arena exceeds u32 node indices"
        );
        self.compute_moments(x, y, z, m);
    }

    /// All nodes (root is node 0).
    pub fn nodes(&self) -> &[OctreeNode] {
        &self.nodes
    }

    /// Number of particles indexed by the tree.
    pub fn particle_count(&self) -> usize {
        self.indices.len()
    }

    /// Root bounding box.
    pub fn bounds(&self) -> Aabb {
        self.nodes[0].bounds
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum depth of the tree (root = depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(tree: &Octree, node: usize) -> usize {
            match tree.nodes[node].children {
                None => 0,
                Some(children) => 1 + children.iter().map(|&c| depth_of(tree, c)).max().unwrap_or(0),
            }
        }
        depth_of(self, 0)
    }

    const MAX_DEPTH: usize = 21;

    /// Upper bound on the DFS stack of a traversal: popping an internal node
    /// pushes its 8 children, so at most 8 entries live per tree level and the
    /// tree is at most `MAX_DEPTH` levels deep.
    const TRAVERSAL_STACK: usize = 8 * (Self::MAX_DEPTH + 2);

    fn split(&mut self, node_idx: usize, x: &[f64], y: &[f64], z: &[f64], depth: usize) {
        let (start, end, bounds) = {
            let node = &self.nodes[node_idx];
            (node.start, node.end, node.bounds)
        };
        let count = end - start;
        if count <= self.max_leaf_size || depth >= Self::MAX_DEPTH {
            return;
        }
        let center = bounds.center();
        let octant_of = |p: usize| {
            let mut oct = 0usize;
            if x[p] > center.0 {
                oct |= 1;
            }
            if y[p] > center.1 {
                oct |= 2;
            }
            if z[p] > center.2 {
                oct |= 4;
            }
            oct
        };
        // Counting sort of the segment into the eight octants, through the
        // reusable scratch buffer — no per-node allocation.
        let mut counts = [0usize; 8];
        for &p in &self.indices[start..end] {
            counts[octant_of(p)] += 1;
        }
        // Degenerate case: all points identical -> stop splitting.
        if counts.iter().filter(|&&c| c > 0).count() <= 1 && depth > 0 {
            return;
        }
        let mut child_start = [0usize; 8];
        let mut cursor = start;
        for (oct, &c) in counts.iter().enumerate() {
            child_start[oct] = cursor;
            cursor += c;
        }
        self.partition_scratch.clear();
        self.partition_scratch.extend_from_slice(&self.indices[start..end]);
        let mut write = child_start;
        for k in 0..count {
            let p = self.partition_scratch[k];
            let oct = octant_of(p);
            self.indices[write[oct]] = p;
            write[oct] += 1;
        }
        let mut children = [0usize; 8];
        for (oct, &cs) in child_start.iter().enumerate() {
            self.nodes.push(OctreeNode {
                bounds: bounds.octant(oct),
                start: cs,
                end: cs + counts[oct],
                children: None,
                mass: 0.0,
                com: (0.0, 0.0, 0.0),
            });
            children[oct] = self.nodes.len() - 1;
        }
        self.nodes[node_idx].children = Some(children);
        for &child in &children {
            self.build_stack.push((child, depth + 1));
        }
    }

    fn compute_moments(&mut self, x: &[f64], y: &[f64], z: &[f64], m: &[f64]) {
        // Process nodes in reverse creation order: children always come after
        // their parent, so reverse order sees children first.
        for i in (0..self.nodes.len()).rev() {
            let (mass, com) = match self.nodes[i].children {
                None => {
                    let mut mass = 0.0;
                    let mut cx = 0.0;
                    let mut cy = 0.0;
                    let mut cz = 0.0;
                    for &p in &self.indices[self.nodes[i].start..self.nodes[i].end] {
                        mass += m[p];
                        cx += m[p] * x[p];
                        cy += m[p] * y[p];
                        cz += m[p] * z[p];
                    }
                    if mass > 0.0 {
                        (mass, (cx / mass, cy / mass, cz / mass))
                    } else {
                        (0.0, self.nodes[i].bounds.center())
                    }
                }
                Some(children) => {
                    let mut mass = 0.0;
                    let mut cx = 0.0;
                    let mut cy = 0.0;
                    let mut cz = 0.0;
                    for &c in &children {
                        let child = &self.nodes[c];
                        mass += child.mass;
                        cx += child.mass * child.com.0;
                        cy += child.mass * child.com.1;
                        cz += child.mass * child.com.2;
                    }
                    if mass > 0.0 {
                        (mass, (cx / mass, cy / mass, cz / mass))
                    } else {
                        (0.0, self.nodes[i].bounds.center())
                    }
                }
            };
            self.nodes[i].mass = mass;
            self.nodes[i].com = com;
        }
    }

    /// Visit the index of every particle within `radius` of `center`
    /// (including the particle at the centre itself, if any), in tree order.
    ///
    /// Iterative, allocation-free traversal over a fixed-size stack: this is
    /// the primitive the CSR neighbour-list build writes through.
    pub fn for_each_within(
        &self,
        center: (f64, f64, f64),
        radius: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        mut visit: impl FnMut(u32),
    ) {
        let r2 = radius * radius;
        let mut stack = [0u32; Self::TRAVERSAL_STACK];
        let mut top = 1usize;
        while top > 0 {
            top -= 1;
            let node = &self.nodes[stack[top] as usize];
            if node.count() == 0 || !node.bounds.overlaps_sphere(center, radius) {
                continue;
            }
            match node.children {
                Some(children) => {
                    debug_assert!(top + 8 <= Self::TRAVERSAL_STACK);
                    for &c in &children {
                        stack[top] = c as u32;
                        top += 1;
                    }
                }
                None => {
                    for &p in &self.indices[node.start..node.end] {
                        let dx = x[p] - center.0;
                        let dy = y[p] - center.1;
                        let dz = z[p] - center.2;
                        if dx * dx + dy * dy + dz * dz <= r2 {
                            visit(p as u32);
                        }
                    }
                }
            }
        }
    }

    /// [`Octree::for_each_within`] under a [`Boundary`]: for an open box this
    /// delegates to the plain traversal (bit-identical path); for a periodic
    /// box the query additionally covers the wrapped images of a search
    /// sphere that crosses a box face, and the leaf test is the
    /// **minimum-image** squared distance — the same expression every pair
    /// kernel and the CSR symmetrisation pass evaluate, so a pair is included
    /// here exactly when the kernels consider it in range.
    ///
    /// A single traversal visits every particle at most once; node pruning
    /// tests the (up to 8) image spheres with a conservatively inflated
    /// radius so ulp-level disagreement between shifted-centre and
    /// minimum-image arithmetic can never drop a borderline node.
    ///
    /// # Panics
    ///
    /// Panics if `2 · radius` reaches a periodic box edge: the minimum-image
    /// convention is ambiguous there (a particle could interact with two
    /// images of the same partner).
    #[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
    pub fn for_each_within_periodic(
        &self,
        center: (f64, f64, f64),
        radius: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        boundary: &Boundary,
        mut visit: impl FnMut(u32),
    ) {
        let Boundary::Periodic { box_min, box_max } = *boundary else {
            return self.for_each_within(center, radius, x, y, z, visit);
        };
        let (lx, ly, lz) = (box_max.0 - box_min.0, box_max.1 - box_min.1, box_max.2 - box_min.2);
        assert!(
            2.0 * radius < lx.min(ly).min(lz),
            "interaction diameter {} reaches the periodic box edge {} — the minimum-image \
             convention is ambiguous; shrink the smoothing length or grow the box",
            2.0 * radius,
            lx.min(ly).min(lz)
        );
        // Per-dimension image shifts of the query centre: a sphere crossing
        // the lower face must also be searched shifted up by +L (images near
        // the upper face), and vice versa. With 2r < L at most one extra
        // shift per dimension applies.
        let axis_shifts = |c: f64, r: f64, lo: f64, hi: f64, l: f64| -> (f64, usize) {
            if c - r <= lo {
                (l, 2)
            } else if c + r >= hi {
                (-l, 2)
            } else {
                (0.0, 1)
            }
        };
        let (sx, nx) = axis_shifts(center.0, radius, box_min.0, box_max.0, lx);
        let (sy, ny) = axis_shifts(center.1, radius, box_min.1, box_max.1, ly);
        let (sz, nz) = axis_shifts(center.2, radius, box_min.2, box_max.2, lz);
        let mut centers = [(0.0f64, 0.0f64, 0.0f64); 8];
        let mut m = 0usize;
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    centers[m] = (
                        center.0 + if ix == 1 { sx } else { 0.0 },
                        center.1 + if iy == 1 { sy } else { 0.0 },
                        center.2 + if iz == 1 { sz } else { 0.0 },
                    );
                    m += 1;
                }
            }
        }
        // Conservative prune radius: shifted-centre arithmetic can differ
        // from the minimum-image expression by a few ulps.
        let prune_r = radius * (1.0 + 1e-12);
        let mi = MinImage::of(boundary);
        let r2 = radius * radius;
        let mut stack = [0u32; Self::TRAVERSAL_STACK];
        let mut top = 1usize;
        while top > 0 {
            top -= 1;
            let node = &self.nodes[stack[top] as usize];
            if node.count() == 0 || !centers[..m].iter().any(|&c| node.bounds.overlaps_sphere(c, prune_r)) {
                continue;
            }
            match node.children {
                Some(children) => {
                    debug_assert!(top + 8 <= Self::TRAVERSAL_STACK);
                    for &c in &children {
                        stack[top] = c as u32;
                        top += 1;
                    }
                }
                None => {
                    for &p in &self.indices[node.start..node.end] {
                        if mi.dist_sq(x[p] - center.0, y[p] - center.1, z[p] - center.2) <= r2 {
                            visit(p as u32);
                        }
                    }
                }
            }
        }
    }

    /// Collect the indices of all particles within `radius` of `center`
    /// (including the particle at the centre itself, if any).
    pub fn neighbors_within(
        &self,
        center: (f64, f64, f64),
        radius: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        out: &mut Vec<usize>,
    ) {
        out.clear();
        self.for_each_within(center, radius, x, y, z, |p| out.push(p as usize));
    }

    /// Barnes–Hut gravitational acceleration at `pos` with opening angle
    /// `theta` and softening `eps`, excluding the particle `self_idx` (pass
    /// `usize::MAX` to include everything).
    #[allow(clippy::too_many_arguments)] // mirrors the flat SoA particle layout
    pub fn gravity_at(
        &self,
        pos: (f64, f64, f64),
        theta: f64,
        eps: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        m: &[f64],
        self_idx: usize,
    ) -> (f64, f64, f64) {
        let mut acc = (0.0, 0.0, 0.0);
        let mut stack = [0u32; Self::TRAVERSAL_STACK];
        let mut top = 1usize;
        while top > 0 {
            top -= 1;
            let node = &self.nodes[stack[top] as usize];
            if node.count() == 0 || node.mass <= 0.0 {
                continue;
            }
            let dx = node.com.0 - pos.0;
            let dy = node.com.1 - pos.1;
            let dz = node.com.2 - pos.2;
            let dist2 = dx * dx + dy * dy + dz * dz + eps * eps;
            let dist = dist2.sqrt();
            let size = node.bounds.longest_edge();
            if node.is_leaf() || (size / dist) < theta {
                if node.is_leaf() {
                    for &p in &self.indices[node.start..node.end] {
                        if p == self_idx {
                            continue;
                        }
                        let dx = x[p] - pos.0;
                        let dy = y[p] - pos.1;
                        let dz = z[p] - pos.2;
                        let d2 = dx * dx + dy * dy + dz * dz + eps * eps;
                        let d = d2.sqrt();
                        let f = m[p] / (d2 * d);
                        acc.0 += f * dx;
                        acc.1 += f * dy;
                        acc.2 += f * dz;
                    }
                } else {
                    // Accept the monopole of this internal node.
                    let f = node.mass / (dist2 * dist);
                    acc.0 += f * dx;
                    acc.1 += f * dy;
                    acc.2 += f * dz;
                }
            } else if let Some(children) = node.children {
                debug_assert!(top + 8 <= Self::TRAVERSAL_STACK);
                for &c in &children {
                    stack[top] = c as u32;
                    top += 1;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let m: Vec<f64> = (0..n).map(|_| 1.0).collect();
        (x, y, z, m)
    }

    #[test]
    fn aabb_octants_partition_volume() {
        let b = Aabb::new((0.0, 0.0, 0.0), (2.0, 2.0, 2.0));
        let vol: f64 = (0..8)
            .map(|o| {
                let c = b.octant(o);
                (c.max.0 - c.min.0) * (c.max.1 - c.min.1) * (c.max.2 - c.min.2)
            })
            .sum();
        assert!((vol - 8.0).abs() < 1e-12);
        assert!(b.contains((1.0, 1.0, 1.0)));
        assert!(!b.contains((3.0, 0.0, 0.0)));
    }

    #[test]
    fn sphere_overlap_detection() {
        let b = Aabb::new((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        assert!(b.overlaps_sphere((0.5, 0.5, 0.5), 0.1));
        assert!(b.overlaps_sphere((1.5, 0.5, 0.5), 0.6));
        assert!(!b.overlaps_sphere((2.0, 2.0, 2.0), 0.5));
    }

    #[test]
    fn tree_indexes_every_particle_once() {
        let (x, y, z, m) = random_cloud(500, 1);
        let tree = Octree::build(&x, &y, &z, &m, 16);
        assert_eq!(tree.particle_count(), 500);
        // Leaves must partition the index set.
        let mut seen = vec![false; 500];
        for node in tree.nodes().iter().filter(|n| n.is_leaf()) {
            for &p in &tree.indices[node.start..node.end] {
                assert!(!seen[p], "particle {p} appears in two leaves");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(tree.depth() >= 1);
        assert!(tree.leaf_count() >= 500 / 16);
    }

    #[test]
    fn leaves_respect_max_size() {
        let (x, y, z, m) = random_cloud(2000, 2);
        let tree = Octree::build(&x, &y, &z, &m, 32);
        for node in tree.nodes().iter().filter(|n| n.is_leaf()) {
            assert!(node.count() <= 32, "leaf with {} particles", node.count());
        }
    }

    #[test]
    fn leaf_particles_lie_inside_leaf_bounds() {
        let (x, y, z, m) = random_cloud(300, 3);
        let tree = Octree::build(&x, &y, &z, &m, 8);
        for node in tree.nodes().iter().filter(|n| n.is_leaf()) {
            for &p in &tree.indices[node.start..node.end] {
                // Allow boundary tolerance: points exactly on a split plane may
                // land in the lower octant.
                let eps = 1e-9;
                assert!(x[p] >= node.bounds.min.0 - eps && x[p] <= node.bounds.max.0 + eps);
                assert!(y[p] >= node.bounds.min.1 - eps && y[p] <= node.bounds.max.1 + eps);
                assert!(z[p] >= node.bounds.min.2 - eps && z[p] <= node.bounds.max.2 + eps);
            }
        }
    }

    #[test]
    fn neighbor_search_matches_brute_force() {
        let (x, y, z, m) = random_cloud(400, 4);
        let tree = Octree::build(&x, &y, &z, &m, 8);
        let mut found = Vec::new();
        for i in (0..400).step_by(37) {
            let center = (x[i], y[i], z[i]);
            let radius = 0.15;
            tree.neighbors_within(center, radius, &x, &y, &z, &mut found);
            let mut expected: Vec<usize> = (0..400)
                .filter(|&j| {
                    let d2 = (x[j] - center.0).powi(2) + (y[j] - center.1).powi(2) + (z[j] - center.2).powi(2);
                    d2 <= radius * radius
                })
                .collect();
            let mut got = found.clone();
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "neighbour mismatch for particle {i}");
        }
    }

    #[test]
    fn root_mass_is_total_mass() {
        let (x, y, z, m) = random_cloud(100, 5);
        let tree = Octree::build(&x, &y, &z, &m, 10);
        assert!((tree.nodes()[0].mass - 100.0).abs() < 1e-9);
        let com = tree.nodes()[0].com;
        assert!(com.0 > 0.3 && com.0 < 0.7);
    }

    #[test]
    fn gravity_matches_direct_sum_for_small_theta() {
        let (x, y, z, m) = random_cloud(200, 6);
        let tree = Octree::build(&x, &y, &z, &m, 8);
        let eps = 0.01;
        let pos = (0.5, 0.5, 0.5);
        let tree_acc = tree.gravity_at(pos, 0.0, eps, &x, &y, &z, &m, usize::MAX);
        let mut direct = (0.0, 0.0, 0.0);
        for j in 0..200 {
            let dx = x[j] - pos.0;
            let dy = y[j] - pos.1;
            let dz = z[j] - pos.2;
            let d2 = dx * dx + dy * dy + dz * dz + eps * eps;
            let d = d2.sqrt();
            let f = m[j] / (d2 * d);
            direct.0 += f * dx;
            direct.1 += f * dy;
            direct.2 += f * dz;
        }
        // theta = 0 forces full opening, so the tree walk must equal direct sum.
        assert!((tree_acc.0 - direct.0).abs() < 1e-9);
        assert!((tree_acc.1 - direct.1).abs() < 1e-9);
        assert!((tree_acc.2 - direct.2).abs() < 1e-9);
    }

    #[test]
    fn gravity_with_moderate_theta_is_close_to_direct() {
        let (x, y, z, m) = random_cloud(500, 7);
        let tree = Octree::build(&x, &y, &z, &m, 16);
        let eps = 0.02;
        let pos = (0.1, 0.9, 0.2);
        let approx = tree.gravity_at(pos, 0.5, eps, &x, &y, &z, &m, usize::MAX);
        let exact = tree.gravity_at(pos, 0.0, eps, &x, &y, &z, &m, usize::MAX);
        let mag = (exact.0 * exact.0 + exact.1 * exact.1 + exact.2 * exact.2).sqrt();
        let err = ((approx.0 - exact.0).powi(2) + (approx.1 - exact.1).powi(2) + (approx.2 - exact.2).powi(2)).sqrt();
        assert!(err / mag < 0.05, "relative BH error {}", err / mag);
    }

    #[test]
    fn empty_and_singleton_trees() {
        let tree = Octree::build(&[], &[], &[], &[], 8);
        assert_eq!(tree.particle_count(), 0);
        let mut out = Vec::new();
        tree.neighbors_within((0.0, 0.0, 0.0), 1.0, &[], &[], &[], &mut out);
        assert!(out.is_empty());

        let tree = Octree::build(&[0.5], &[0.5], &[0.5], &[2.0], 8);
        assert_eq!(tree.particle_count(), 1);
        assert!((tree.nodes()[0].mass - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rebuild_reuses_the_arena_and_matches_a_fresh_build() {
        let (x, y, z, m) = random_cloud(800, 9);
        let fresh = Octree::build(&x, &y, &z, &m, 16);
        // Warm the arena on a different (smaller) problem, then rebuild.
        let mut reused = Octree::build(&x[..200], &y[..200], &z[..200], &m[..200], 8);
        reused.rebuild(&x, &y, &z, &m, 16);
        assert_eq!(reused.particle_count(), 800);
        assert_eq!(reused.nodes().len(), fresh.nodes().len());
        assert!((reused.nodes()[0].mass - fresh.nodes()[0].mass).abs() < 1e-12);
        let mut a = Vec::new();
        let mut b = Vec::new();
        fresh.neighbors_within((0.5, 0.5, 0.5), 0.2, &x, &y, &z, &mut a);
        reused.neighbors_within((0.5, 0.5, 0.5), 0.2, &x, &y, &z, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_arena_answers_queries_without_a_rebuild() {
        let tree = Octree::empty();
        assert_eq!(tree.particle_count(), 0);
        let mut out = vec![7];
        tree.neighbors_within((0.5, 0.5, 0.5), 10.0, &[], &[], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn periodic_search_finds_wrapped_neighbours() {
        use crate::boundary::{Boundary, MinImage};
        let (x, y, z, m) = random_cloud(600, 21);
        let tree = Octree::build(&x, &y, &z, &m, 8);
        let boundary = Boundary::unit_box();
        let mi = MinImage::of(&boundary);
        let radius = 0.2;
        let mut wrapped_pairs = 0usize;
        for i in (0..600).step_by(29) {
            let center = (x[i], y[i], z[i]);
            let mut found = Vec::new();
            tree.for_each_within_periodic(center, radius, &x, &y, &z, &boundary, |j| found.push(j as usize));
            found.sort_unstable();
            // No duplicates: each particle is visited at most once even when
            // the query sphere crosses several faces.
            let mut dedup = found.clone();
            dedup.dedup();
            assert_eq!(found, dedup, "duplicate visits for particle {i}");
            let mut expected: Vec<usize> = (0..600)
                .filter(|&j| mi.dist_sq(x[j] - center.0, y[j] - center.1, z[j] - center.2) <= radius * radius)
                .collect();
            expected.sort_unstable();
            assert_eq!(found, expected, "periodic neighbour mismatch for particle {i}");
            // Count pairs only reachable through the wrap.
            wrapped_pairs += expected
                .iter()
                .filter(|&&j| {
                    let d2 = (x[j] - center.0).powi(2) + (y[j] - center.1).powi(2) + (z[j] - center.2).powi(2);
                    d2 > radius * radius
                })
                .count();
        }
        assert!(wrapped_pairs > 0, "test should exercise wrapped images");
    }

    #[test]
    fn periodic_search_with_open_boundary_matches_plain_traversal() {
        use crate::boundary::Boundary;
        let (x, y, z, m) = random_cloud(300, 22);
        let tree = Octree::build(&x, &y, &z, &m, 8);
        for i in (0..300).step_by(41) {
            let center = (x[i], y[i], z[i]);
            let mut plain = Vec::new();
            tree.for_each_within(center, 0.15, &x, &y, &z, |j| plain.push(j));
            let mut open = Vec::new();
            tree.for_each_within_periodic(center, 0.15, &x, &y, &z, &Boundary::Open, |j| open.push(j));
            assert_eq!(plain, open);
        }
    }

    #[test]
    #[should_panic(expected = "minimum-image")]
    fn oversized_periodic_radius_panics() {
        use crate::boundary::Boundary;
        let (x, y, z, m) = random_cloud(50, 23);
        let tree = Octree::build(&x, &y, &z, &m, 8);
        tree.for_each_within_periodic((0.5, 0.5, 0.5), 0.6, &x, &y, &z, &Boundary::unit_box(), |_| {});
    }

    #[test]
    fn identical_points_do_not_recurse_forever() {
        let n = 50;
        let x = vec![0.5; n];
        let y = vec![0.5; n];
        let z = vec![0.5; n];
        let m = vec![1.0; n];
        let tree = Octree::build(&x, &y, &z, &m, 4);
        assert_eq!(tree.particle_count(), n);
        assert!(tree.depth() <= 21);
    }
}
