//! Lane-vectorisation smoke test: the pair kernels' fixed-width lane loops
//! are only a win if the compiler actually emits packed-double SIMD for
//! them. `sphsim_lane_probe_q` is an `#[no_mangle] #[inline(never)]` stand-in
//! with the exact shape of a lane compute loop (fixed `LANE_WIDTH` trip
//! count over `[f64; LANE_WIDTH]` buffers); this test disassembles it out of
//! the test binary and fails if the loop fell back to scalar-only code on
//! the default target. CI runs it in release (`cargo test --release -p
//! sphsim --test simd_lanes`); debug builds skip — `opt-level=0` never
//! vectorises and that is not a regression.

use sphsim::kernels::{sphsim_lane_probe_q, LANE_WIDTH};
use std::process::Command;

#[test]
fn lane_probe_compiles_to_packed_double_simd() {
    // Keep the probe alive in this binary (and sanity-check its output).
    let dx = [1.0f64; LANE_WIDTH];
    let dy = [2.0f64; LANE_WIDTH];
    let dz = [2.0f64; LANE_WIDTH];
    let mut out = [0.0f64; LANE_WIDTH];
    sphsim_lane_probe_q(&dx, &dy, &dz, 0.5, &mut out);
    assert!(out.iter().all(|&q| (q - 1.5).abs() < 1e-12));

    if cfg!(debug_assertions) {
        eprintln!("skipping: debug build never vectorises");
        return;
    }
    if !cfg!(target_arch = "x86_64") {
        eprintln!("skipping: packed-double opcode check is x86_64-specific");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let Ok(dump) = Command::new("objdump").arg("-d").arg(&exe).output() else {
        eprintln!("skipping: objdump not available");
        return;
    };
    assert!(dump.status.success(), "objdump failed on {}", exe.display());
    let asm = String::from_utf8_lossy(&dump.stdout);

    // Isolate the probe's body: from its label to the next symbol label.
    let label = asm
        .find("<sphsim_lane_probe_q>:")
        .expect("probe symbol present in disassembly (it was just called)");
    let body = &asm[label..];
    let end = body[22..].find(">:").map_or(body.len(), |e| e + 22);
    let body = &body[..end];

    // The probe multiplies, adds and square-roots f64 lanes; packed-double
    // forms of those (SSE2 `mulpd`/`addpd`/`sqrtpd` or their AVX `v…`
    // spellings) mean the lane loop vectorised. Scalar-only output
    // (`mulsd`/`sqrtsd`) means the restructure regressed to one lane at a
    // time and the kernels lost their throughput win.
    let packed = ["mulpd", "addpd", "sqrtpd"];
    let found: Vec<&str> = packed.iter().copied().filter(|op| body.contains(op)).collect();
    assert!(
        !found.is_empty(),
        "sphsim_lane_probe_q contains no packed-double instructions ({packed:?}) — \
         the lane loops compiled to scalar code:\n{body}"
    );
}
