//! Portable-sweep equivalence: re-runs the cell-list ≡ octree contract with
//! `SPHSIM_FORCE_PORTABLE_SWEEP` set, so the scalar candidate scan is
//! exercised even on hosts whose runtime dispatch would otherwise always
//! take the AVX2/AVX-512 specializations. Together with
//! `celllist_equivalence` (which runs whatever path the host CPU selects)
//! this pins every sweep implementation to the same rows.
//!
//! Kept as its own test binary: the force flag is read once per process, so
//! it must be set before any sweep runs and would otherwise leak into the
//! main suite's coverage of the SIMD paths.

use sphsim::celllist::{find_neighbors_cells_into, CellGrid};
use sphsim::init::lattice_cube;
use sphsim::physics::neighbors::{build_tree, find_neighbors, NeighborLists, NeighborScratch};
use sphsim::scenario::ScenarioRegistry;
use sphsim::{Boundary, ParticleSet};

fn sorted_rows(nl: &NeighborLists) -> Vec<Vec<u32>> {
    (0..nl.len())
        .map(|i| {
            let mut r = nl.neighbors(i).to_vec();
            r.sort_unstable();
            r
        })
        .collect()
}

fn assert_equivalent(p: &ParticleSet, label: &str) {
    let mut a = p.clone();
    let mut b = p.clone();
    let tree = build_tree(&a, 16);
    let octree_nl = find_neighbors(&mut a, &tree);
    let mut grid = CellGrid::new();
    assert!(grid.rebuild(&b), "grid rebuild should accept this particle set");
    let mut cell_nl = NeighborLists::default();
    let mut scratch = NeighborScratch::new();
    find_neighbors_cells_into(&mut b, &grid, &mut cell_nl, &mut scratch);
    assert_eq!(
        sorted_rows(&cell_nl),
        sorted_rows(&octree_nl),
        "{label}: portable cell-list rows differ from octree rows"
    );
    assert_eq!(
        a.neighbor_count, b.neighbor_count,
        "{label}: neighbour-count diagnostics differ"
    );
}

#[test]
fn portable_sweep_matches_octree_everywhere() {
    // Must precede the first sweep in this process — the flag is cached.
    std::env::set_var("SPHSIM_FORCE_PORTABLE_SWEEP", "1");

    // Open, nonuniform h: the portable non-uniform union test.
    let mut open = lattice_cube(7, 1.0, 1.0, 1.2);
    for (i, h) in open.h.iter_mut().enumerate() {
        *h *= 1.0 + 0.7 * ((i % 5) as f64) / 5.0;
    }
    assert_equivalent(&open, "open lattice, nonuniform h, portable");

    // Periodic, uniform h: the portable wrap path.
    let mut periodic = lattice_cube(8, 1.0, 1.0, 1.2);
    periodic.boundary = Boundary::unit_box();
    assert_equivalent(&periodic, "periodic lattice, portable");

    // Every registered scenario, same as the acceptance gate.
    let registry = ScenarioRegistry::builtin();
    for scenario in registry.scenarios() {
        let mut p = scenario.initial_conditions(1500, 42);
        p.wrap_positions();
        assert_equivalent(&p, scenario.short_name());
    }
}
