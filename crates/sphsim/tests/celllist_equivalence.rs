//! Cell-list ≡ octree CSR equivalence: both neighbour-list builders must
//! produce identical row *sets* (sorted rows compared, since the builders
//! emit in different orders — stencil-scan vs tree-traversal) and identical
//! neighbour-count diagnostics, on random clouds, periodic lattices, a
//! wrap-seam tracer and every registered scenario's initial conditions, for
//! both Open and Periodic boundaries. This is the correctness contract that
//! lets `StepWorkspace` pick the builder purely on cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sphsim::celllist::{find_neighbors_cells_into, CellGrid};
use sphsim::init::lattice_cube;
use sphsim::physics::neighbors::{build_tree, find_neighbors, NeighborLists, NeighborScratch};
use sphsim::scenario::ScenarioRegistry;
use sphsim::{Boundary, ParticleSet};

fn sorted_rows(nl: &NeighborLists) -> Vec<Vec<u32>> {
    (0..nl.len())
        .map(|i| {
            let mut r = nl.neighbors(i).to_vec();
            r.sort_unstable();
            r
        })
        .collect()
}

fn cell_rows(p: &mut ParticleSet) -> NeighborLists {
    let mut grid = CellGrid::new();
    assert!(grid.rebuild(p), "grid rebuild should accept this particle set");
    let mut out = NeighborLists::default();
    let mut scratch = NeighborScratch::new();
    find_neighbors_cells_into(p, &grid, &mut out, &mut scratch);
    out
}

/// Both builders over the same set: sorted rows and diagnostics must match.
fn assert_equivalent(p: &ParticleSet, label: &str) {
    let mut a = p.clone();
    let mut b = p.clone();
    let tree = build_tree(&a, 16);
    let octree_nl = find_neighbors(&mut a, &tree);
    let cell_nl = cell_rows(&mut b);
    assert_eq!(
        sorted_rows(&cell_nl),
        sorted_rows(&octree_nl),
        "{label}: cell-list rows differ from octree rows"
    );
    assert_eq!(
        a.neighbor_count, b.neighbor_count,
        "{label}: neighbour-count diagnostics differ"
    );
}

fn random_cloud(n: usize, seed: u64, boundary: Boundary) -> ParticleSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = ParticleSet::with_capacity(n);
    for _ in 0..n {
        let (x, y, z) = (rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
        // h in a 1.8× band — nonuniform enough to exercise the one-sided
        // union, inside the grid's polydispersity limit.
        let h = 0.05 * (1.0 + 0.8 * rng.gen::<f64>());
        p.push(x, y, z, 0.0, 0.0, 0.0, 1.0, h, 1.0);
    }
    p.boundary = boundary;
    p
}

#[test]
fn random_clouds_match_open_and_periodic() {
    for seed in [1u64, 7, 42] {
        let open = random_cloud(600, seed, Boundary::Open);
        assert_equivalent(&open, &format!("open cloud seed {seed}"));
        let periodic = random_cloud(600, seed + 100, Boundary::unit_box());
        assert_equivalent(&periodic, &format!("periodic cloud seed {seed}"));
    }
}

#[test]
fn periodic_lattice_matches() {
    let mut p = lattice_cube(8, 1.0, 1.0, 1.2);
    p.boundary = Boundary::unit_box();
    assert_equivalent(&p, "periodic lattice");
}

#[test]
fn open_lattice_with_nonuniform_h_matches() {
    let mut p = lattice_cube(7, 1.0, 1.0, 1.2);
    for (i, h) in p.h.iter_mut().enumerate() {
        *h *= 1.0 + 0.7 * ((i % 5) as f64) / 5.0;
    }
    assert_equivalent(&p, "open lattice, nonuniform h");
}

#[test]
fn wrap_seam_tracers_match() {
    // Particles hugging opposite faces of the box: every neighbourhood
    // crosses the wrap seam, so any stencil-wrapping mistake shows up as a
    // missing (or through-the-box) pair.
    let mut p = ParticleSet::with_capacity(40);
    let mut rng = StdRng::seed_from_u64(9);
    for k in 0..40 {
        let face = k % 2;
        let x = if face == 0 {
            0.002 * (1.0 + rng.gen::<f64>())
        } else {
            1.0 - 0.002 * (1.0 + rng.gen::<f64>())
        };
        let y = rng.gen::<f64>();
        let z = rng.gen::<f64>();
        p.push(x, y, z, 0.0, 0.0, 0.0, 1.0, 0.08, 1.0);
    }
    p.boundary = Boundary::unit_box();
    assert_equivalent(&p, "wrap-seam tracers");
    // Sanity: the seam actually couples the faces — some lower-face particle
    // must see an upper-face particle.
    let mut q = p.clone();
    let tree = build_tree(&q, 8);
    let nl = find_neighbors(&mut q, &tree);
    let coupled = (0..q.len()).any(|i| q.x[i] < 0.01 && nl.neighbors(i).iter().any(|&j| q.x[j as usize] > 0.99));
    assert!(coupled, "tracer cloud should couple across the seam");
}

#[test]
fn every_registered_scenario_matches() {
    // The acceptance gate: identical CSR rows on all six registered
    // scenarios' initial conditions (mixed Open / Periodic boundaries).
    let registry = ScenarioRegistry::builtin();
    assert_eq!(registry.len(), 6, "expected the six built-in scenarios");
    for scenario in registry.scenarios() {
        let mut p = scenario.initial_conditions(1500, 42);
        // The builders are compared on wrapped coordinates — the same state
        // the propagator hands them after DomainDecompAndSync.
        p.wrap_positions();
        assert_equivalent(&p, scenario.short_name());
    }
}
