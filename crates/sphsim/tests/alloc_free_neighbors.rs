//! Counting-allocator proof of the flat hot path: after warm-up, the whole
//! neighbour pipeline (Morton reorder + octree rebuild + CSR neighbour-list
//! build) performs **zero** heap allocations per step.
//!
//! This file is its own test binary so the counting global allocator cannot
//! interfere with any other test, and it contains exactly one test so no
//! concurrent test thread can perturb the allocation counter. The particle
//! count stays below the parallel cutoff on purpose: thread spawns allocate,
//! and what this test pins down is the *pipeline's* allocation behaviour, not
//! the threading substrate's.

use sphsim::init::lattice_cube;
use sphsim::{NeighborBuilder, StepWorkspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract; we delegate as-is.
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract; we delegate as-is.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds GlobalAlloc's contract; we delegate as-is.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn neighbour_pipeline_allocates_nothing_after_warmup() {
    // 216 particles: serial path, realistic neighbour counts (~60 interior).
    let mut particles = lattice_cube(6, 1.0, 1.0, 1.2);
    let mut origin: Vec<u32> = (0..particles.len() as u32).collect();
    let mut workspace = StepWorkspace::new();
    // Exercise the distributed row partition too: treat the lower half as
    // "owned" so both interior and halo classifications occur every step.
    let n_owned = particles.len() / 2;

    // Warm-up: buffers grow to steady-state capacity.
    for _ in 0..3 {
        workspace.reorder_by_morton(&mut particles, &mut origin);
        workspace.rebuild_tree(&particles, 32);
        workspace.find_neighbors(&mut particles);
        workspace.partition_rows(n_owned);
    }

    // The counting allocator is process-global, so a libtest harness thread
    // (e.g. the timeout monitor) can allocate inside the measurement window
    // under scheduler load. Pipeline allocations are deterministic and would
    // dirty every attempt; harness noise is transient — so retry, and demand
    // one attempt whose 25 *consecutive* steps are all allocation-free (a
    // five-fold longer window than the original test, so even low-period
    // amortised-growth regressions land inside it).
    let clean_attempt = (0..5).any(|_| {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..25 {
            workspace.reorder_by_morton(&mut particles, &mut origin);
            workspace.rebuild_tree(&particles, 32);
            workspace.find_neighbors(&mut particles);
            workspace.partition_rows(n_owned);
        }
        ALLOCATIONS.load(Ordering::SeqCst) == before
    });
    assert!(
        clean_attempt,
        "the warm neighbour pipeline must not touch the heap: every 25-step attempt saw allocations"
    );

    // Sanity: the pipeline actually produced neighbour lists.
    let nl = workspace.neighbors();
    assert_eq!(nl.len(), particles.len());
    assert!(nl.mean_count() > 10.0);

    // Same gate for the cell-list builder. 216 particles sit below
    // `CELL_LIST_CUTOFF`, so Auto would stay on the octree — force the grid
    // path to prove its warm sweep (rebuild + counting sort + SoA pack +
    // stencil gather) is just as allocation-free.
    workspace.set_neighbor_builder(NeighborBuilder::CellList);
    for _ in 0..3 {
        workspace.reorder_by_morton(&mut particles, &mut origin);
        workspace.rebuild_tree(&particles, 32);
        workspace.find_neighbors(&mut particles);
        workspace.partition_rows(n_owned);
    }
    assert!(
        workspace.neighbor_build_stats().used_cells,
        "the forced cell-list builder should accept this uniform-h lattice"
    );

    let clean_cell_attempt = (0..5).any(|_| {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..25 {
            workspace.reorder_by_morton(&mut particles, &mut origin);
            workspace.rebuild_tree(&particles, 32);
            workspace.find_neighbors(&mut particles);
            workspace.partition_rows(n_owned);
        }
        ALLOCATIONS.load(Ordering::SeqCst) == before
    });
    assert!(
        clean_cell_attempt,
        "the warm cell-list pipeline must not touch the heap: every 25-step attempt saw allocations"
    );
    let nl = workspace.neighbors();
    assert_eq!(nl.len(), particles.len());
    assert!(nl.mean_count() > 10.0);
}
