//! The sensor abstraction.
//!
//! A [`Sensor`] is one source of power/energy readings covering one or more
//! [`Domain`]s. Back-ends (RAPL, Cray `pm_counters`, NVML, ROCm SMI, dummy)
//! implement this trait; the [`crate::meter::PowerMeter`] samples any number of
//! sensors through it. This is the "common interface to a comprehensive set of
//! back-ends" that the paper credits PMT with (§2).

use crate::domain::Domain;
use crate::error::Result;
use crate::sample::DomainSample;
use std::sync::Arc;

/// A source of power/energy readings.
pub trait Sensor: Send + Sync {
    /// Short back-end name, e.g. `"rapl"`, `"cray_pm_counters"`, `"nvml"`.
    fn name(&self) -> &str;

    /// The measurement domains this sensor exposes. The set must be stable for
    /// the lifetime of the sensor.
    fn domains(&self) -> Vec<Domain>;

    /// Read every domain once. The meter attaches timestamps from its clock.
    fn sample(&self) -> Result<Vec<DomainSample>>;

    /// Human-readable description for reports.
    fn description(&self) -> String {
        format!("{} ({} domains)", self.name(), self.domains().len())
    }
}

/// Blanket implementation so `Arc<S>` can be used wherever a sensor is expected.
impl<S: Sensor + ?Sized> Sensor for Arc<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn domains(&self) -> Vec<Domain> {
        (**self).domains()
    }

    fn sample(&self) -> Result<Vec<DomainSample>> {
        (**self).sample()
    }

    fn description(&self) -> String {
        (**self).description()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::dummy::DummySensor;

    #[test]
    fn arc_sensor_delegates() {
        let s = Arc::new(DummySensor::new(Domain::node(), 100.0));
        assert_eq!(Sensor::name(&s), "dummy");
        assert_eq!(Sensor::domains(&s).len(), 1);
        assert_eq!(Sensor::sample(&s).unwrap().len(), 1);
        assert!(Sensor::description(&s).contains("dummy"));
    }
}
