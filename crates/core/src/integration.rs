//! Power→energy integration.
//!
//! Sensors expose either cumulative energy counters (RAPL, Cray `pm_counters`,
//! NVML total-energy) or instantaneous power readings (NVML power, ROCm SMI).
//! The [`EnergyAccumulator`] turns a stream of timestamped readings of one
//! domain into a single monotone cumulative energy estimate:
//!
//! * counter readings are differenced (the back-ends unwrap hardware counter
//!   wrap-around, so the counter seen here is monotone);
//! * power readings are integrated with the trapezoidal rule;
//! * when both are present the counter wins (it is exact).

use crate::sample::DomainSample;
use serde::{Deserialize, Serialize};

/// Incremental power→energy integrator for one measurement domain.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EnergyAccumulator {
    cumulative_j: f64,
    last_time_s: Option<f64>,
    last_power_w: Option<f64>,
    last_counter_j: Option<f64>,
    samples: u64,
}

impl EnergyAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative energy attributed to this domain so far, in joules.
    pub fn energy_j(&self) -> f64 {
        self.cumulative_j
    }

    /// Number of samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Most recent power reading, if any.
    pub fn last_power_w(&self) -> Option<f64> {
        self.last_power_w
    }

    /// Fold in one timestamped reading. Timestamps must be monotone
    /// non-decreasing; out-of-order samples are ignored (a warning-level
    /// situation on real systems, where sensors occasionally return stale data).
    pub fn update(&mut self, time_s: f64, sample: &DomainSample) {
        if let Some(last_t) = self.last_time_s {
            if time_s < last_t {
                return; // stale/out-of-order reading
            }
        }
        let dt = self.last_time_s.map(|t| time_s - t).unwrap_or(0.0);

        if let Some(counter) = sample.energy_j {
            // Exact path: difference of the cumulative hardware counter.
            if let Some(last_counter) = self.last_counter_j {
                let delta = counter - last_counter;
                if delta >= 0.0 {
                    self.cumulative_j += delta;
                }
                // A negative delta would mean the back-end failed to unwrap a
                // counter overflow; we drop it rather than subtract energy.
            }
            self.last_counter_j = Some(counter);
            // Keep the power reading for reporting even when the counter is used.
            if sample.power_w.is_some() {
                self.last_power_w = sample.power_w;
            }
        } else if let Some(p) = sample.power_w {
            // Approximate path: trapezoidal integration of power.
            if dt > 0.0 {
                let p_prev = self.last_power_w.unwrap_or(p);
                self.cumulative_j += 0.5 * (p + p_prev) * dt;
            }
            self.last_power_w = Some(p);
        }

        self.last_time_s = Some(time_s);
        self.samples += 1;
    }
}

/// Integrate a standalone series of `(time_s, power_w)` samples with the
/// trapezoidal rule. Used by analysis code that works on recorded traces.
pub fn integrate_power_trace(trace: &[(f64, f64)]) -> f64 {
    trace
        .windows(2)
        .map(|w| {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t1 > t0 {
                0.5 * (p0 + p1) * (t1 - t0)
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn counter_deltas_are_exact() {
        let mut acc = EnergyAccumulator::new();
        let d = Domain::cpu(0);
        acc.update(0.0, &DomainSample::energy(d, 100.0));
        acc.update(1.0, &DomainSample::energy(d, 150.0));
        acc.update(2.0, &DomainSample::energy(d, 175.0));
        assert!((acc.energy_j() - 75.0).abs() < 1e-12);
        assert_eq!(acc.samples(), 3);
    }

    #[test]
    fn constant_power_integrates_to_p_times_t() {
        let mut acc = EnergyAccumulator::new();
        let d = Domain::gpu(0);
        for i in 0..=10 {
            acc.update(i as f64, &DomainSample::power(d, 200.0));
        }
        assert!((acc.energy_j() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn ramping_power_uses_trapezoid() {
        let mut acc = EnergyAccumulator::new();
        let d = Domain::gpu(0);
        // Power ramps linearly 0..100 W over 10 s -> energy = 500 J exactly
        // under the trapezoidal rule.
        for i in 0..=10 {
            acc.update(i as f64, &DomainSample::power(d, 10.0 * i as f64));
        }
        assert!((acc.energy_j() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn counter_wins_over_power() {
        let mut acc = EnergyAccumulator::new();
        let d = Domain::gpu(0);
        acc.update(0.0, &DomainSample::both(d, 1000.0, 0.0));
        acc.update(10.0, &DomainSample::both(d, 1000.0, 50.0));
        // Counter says 50 J even though power integration would say 10 kJ.
        assert!((acc.energy_j() - 50.0).abs() < 1e-12);
        assert_eq!(acc.last_power_w(), Some(1000.0));
    }

    #[test]
    fn negative_counter_delta_is_dropped() {
        let mut acc = EnergyAccumulator::new();
        let d = Domain::cpu(0);
        acc.update(0.0, &DomainSample::energy(d, 100.0));
        acc.update(1.0, &DomainSample::energy(d, 40.0)); // bogus
        acc.update(2.0, &DomainSample::energy(d, 90.0));
        assert!((acc.energy_j() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_samples_are_ignored() {
        let mut acc = EnergyAccumulator::new();
        let d = Domain::cpu(0);
        acc.update(5.0, &DomainSample::power(d, 100.0));
        acc.update(1.0, &DomainSample::power(d, 9999.0));
        acc.update(6.0, &DomainSample::power(d, 100.0));
        assert!((acc.energy_j() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn first_sample_contributes_nothing() {
        let mut acc = EnergyAccumulator::new();
        acc.update(3.0, &DomainSample::power(Domain::node(), 500.0));
        assert_eq!(acc.energy_j(), 0.0);
    }

    #[test]
    fn trace_integration_matches_accumulator() {
        let trace: Vec<(f64, f64)> = (0..=20).map(|i| (i as f64 * 0.5, 150.0 + 10.0 * (i % 3) as f64)).collect();
        let direct = integrate_power_trace(&trace);
        let mut acc = EnergyAccumulator::new();
        for (t, p) in &trace {
            acc.update(*t, &DomainSample::power(Domain::node(), *p));
        }
        assert!((direct - acc.energy_j()).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_point_traces_integrate_to_zero() {
        assert_eq!(integrate_power_trace(&[]), 0.0);
        assert_eq!(integrate_power_trace(&[(0.0, 100.0)]), 0.0);
    }
}
