//! ROCm-SMI-style back-end for AMD GPUs.
//!
//! Like the NVML back-end, the sensor is written against a small trait
//! ([`RocmSmiApi`]) so the same code measures the simulated MI250X GCDs of the
//! `hwmodel` crate, an in-memory mock in tests, or (with a thin binding) the
//! real `rocm_smi_lib`.
//!
//! ROCm SMI reports average socket power in **microwatts**
//! (`rsmi_dev_power_ave_get`) and a cumulative energy counter with a
//! per-device resolution factor (`rsmi_dev_energy_count_get`). One device
//! corresponds to one GCD, i.e. half an MI250X card.

use crate::domain::Domain;
use crate::error::{PmtError, Result};
use crate::sample::DomainSample;
use crate::sensor::Sensor;
use crate::units::microwatts_to_watts;
use std::sync::Arc;

/// Minimal ROCm-SMI-like device query interface.
pub trait RocmSmiApi: Send + Sync {
    /// Number of GPU devices (GCDs) visible to the process.
    fn device_count(&self) -> u32;

    /// Average power of device `index` in microwatts.
    fn power_ave_uw(&self, index: u32) -> Result<u64>;

    /// Cumulative energy counter of device `index`, already converted to
    /// microjoules (the real API returns a raw counter and a resolution; the
    /// binding applies the resolution). Returns an error when unsupported.
    fn energy_count_uj(&self, index: u32) -> Result<u64>;
}

/// Sensor exposing one domain per visible AMD GPU die (GCD).
pub struct RocmSmiSensor {
    api: Arc<dyn RocmSmiApi>,
    has_energy_counter: bool,
}

impl RocmSmiSensor {
    /// Create a sensor over a ROCm-SMI-like API. Fails if no device is visible.
    pub fn new(api: Arc<dyn RocmSmiApi>) -> Result<Self> {
        if api.device_count() == 0 {
            return Err(PmtError::unavailable("rocm_smi", "no AMD GPU visible"));
        }
        let has_energy_counter = api.energy_count_uj(0).is_ok();
        Ok(Self {
            api,
            has_energy_counter,
        })
    }

    /// Whether the devices expose the cumulative energy counter.
    pub fn has_energy_counter(&self) -> bool {
        self.has_energy_counter
    }
}

impl Sensor for RocmSmiSensor {
    fn name(&self) -> &str {
        "rocm_smi"
    }

    fn domains(&self) -> Vec<Domain> {
        (0..self.api.device_count()).map(Domain::gpu).collect()
    }

    fn sample(&self) -> Result<Vec<DomainSample>> {
        let count = self.api.device_count();
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            let power_w = microwatts_to_watts(self.api.power_ave_uw(i)? as f64);
            let energy_j = if self.has_energy_counter {
                Some(self.api.energy_count_uj(i)? as f64 / 1.0e6)
            } else {
                None
            };
            out.push(DomainSample {
                domain: Domain::gpu(i),
                power_w: Some(power_w),
                energy_j,
            });
        }
        Ok(out)
    }

    fn description(&self) -> String {
        format!(
            "rocm_smi ({} GCDs, energy counter: {})",
            self.api.device_count(),
            self.has_energy_counter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct MockRocm {
        power_uw: Mutex<Vec<u64>>,
        energy_uj: Mutex<Vec<u64>>,
        energy_supported: bool,
    }

    impl MockRocm {
        fn new(count: usize, energy_supported: bool) -> Self {
            Self {
                power_uw: Mutex::new(vec![90_000_000; count]),
                energy_uj: Mutex::new(vec![0; count]),
                energy_supported,
            }
        }
    }

    impl RocmSmiApi for MockRocm {
        fn device_count(&self) -> u32 {
            self.power_uw.lock().len() as u32
        }

        fn power_ave_uw(&self, index: u32) -> Result<u64> {
            self.power_uw
                .lock()
                .get(index as usize)
                .copied()
                .ok_or_else(|| PmtError::UnknownDomain(format!("gpu{index}")))
        }

        fn energy_count_uj(&self, index: u32) -> Result<u64> {
            if !self.energy_supported {
                return Err(PmtError::unavailable("rocm_smi", "no energy counter"));
            }
            self.energy_uj
                .lock()
                .get(index as usize)
                .copied()
                .ok_or_else(|| PmtError::UnknownDomain(format!("gpu{index}")))
        }
    }

    #[test]
    fn one_domain_per_gcd() {
        let s = RocmSmiSensor::new(Arc::new(MockRocm::new(8, true))).unwrap();
        assert_eq!(s.domains().len(), 8);
        assert!(s.has_energy_counter());
    }

    #[test]
    fn converts_microwatts() {
        let api = Arc::new(MockRocm::new(1, true));
        *api.power_uw.lock() = vec![280_000_000];
        *api.energy_uj.lock() = vec![5_000_000];
        let s = RocmSmiSensor::new(api).unwrap();
        let samples = s.sample().unwrap();
        assert!((samples[0].power_w.unwrap() - 280.0).abs() < 1e-12);
        assert!((samples[0].energy_j.unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn power_only_mode() {
        let s = RocmSmiSensor::new(Arc::new(MockRocm::new(2, false))).unwrap();
        assert!(!s.has_energy_counter());
        assert!(s.sample().unwrap().iter().all(|x| x.energy_j.is_none()));
    }

    #[test]
    fn zero_devices_is_unavailable() {
        assert!(RocmSmiSensor::new(Arc::new(MockRocm::new(0, true))).is_err());
    }
}
