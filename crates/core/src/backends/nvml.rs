//! NVML-style back-end for NVIDIA GPUs.
//!
//! The sensor logic is written against the small [`NvmlApi`] trait rather than
//! the `libnvidia-ml` C library, so that:
//!
//! * the simulated A100s of the `hwmodel` crate can be measured through exactly
//!   the same code path (the `cluster` crate provides the adapter);
//! * unit tests can use an in-memory mock;
//! * a binding to the real library only needs to implement three methods.
//!
//! NVML reports power in **milliwatts** (`nvmlDeviceGetPowerUsage`) and, on
//! Volta and newer, a cumulative energy counter in **millijoules**
//! (`nvmlDeviceGetTotalEnergyConsumption`); the sensor converts both to SI.

use crate::domain::Domain;
use crate::error::{PmtError, Result};
use crate::sample::DomainSample;
use crate::sensor::Sensor;
use crate::units::{millijoules_to_joules, milliwatts_to_watts};
use std::sync::Arc;

/// Minimal NVML-like device query interface.
pub trait NvmlApi: Send + Sync {
    /// Number of GPUs visible to the process.
    fn device_count(&self) -> u32;

    /// Current board power draw of device `index`, in milliwatts.
    fn power_usage_mw(&self, index: u32) -> Result<u64>;

    /// Cumulative energy consumption of device `index` since driver load, in
    /// millijoules. Returns an error on GPUs without the counter.
    fn total_energy_consumption_mj(&self, index: u32) -> Result<u64>;
}

/// Sensor exposing one domain per visible NVIDIA GPU die.
pub struct NvmlSensor {
    api: Arc<dyn NvmlApi>,
    /// Whether the energy counter is available (probed at construction).
    has_energy_counter: bool,
}

impl NvmlSensor {
    /// Create a sensor over an NVML-like API. Fails if no device is visible.
    pub fn new(api: Arc<dyn NvmlApi>) -> Result<Self> {
        let count = api.device_count();
        if count == 0 {
            return Err(PmtError::unavailable("nvml", "no NVIDIA GPU visible"));
        }
        let has_energy_counter = api.total_energy_consumption_mj(0).is_ok();
        Ok(Self {
            api,
            has_energy_counter,
        })
    }

    /// Whether the devices expose the cumulative energy counter.
    pub fn has_energy_counter(&self) -> bool {
        self.has_energy_counter
    }
}

impl Sensor for NvmlSensor {
    fn name(&self) -> &str {
        "nvml"
    }

    fn domains(&self) -> Vec<Domain> {
        (0..self.api.device_count()).map(Domain::gpu).collect()
    }

    fn sample(&self) -> Result<Vec<DomainSample>> {
        let count = self.api.device_count();
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            let power_w = milliwatts_to_watts(self.api.power_usage_mw(i)? as f64);
            let energy_j = if self.has_energy_counter {
                Some(millijoules_to_joules(self.api.total_energy_consumption_mj(i)? as f64))
            } else {
                None
            };
            out.push(DomainSample {
                domain: Domain::gpu(i),
                power_w: Some(power_w),
                energy_j,
            });
        }
        Ok(out)
    }

    fn description(&self) -> String {
        format!(
            "nvml ({} GPUs, energy counter: {})",
            self.api.device_count(),
            self.has_energy_counter
        )
    }
}

#[cfg(test)]
pub(crate) mod mock {
    use super::*;
    use parking_lot::Mutex;

    /// In-memory NVML mock for unit tests.
    pub struct MockNvml {
        pub power_mw: Mutex<Vec<u64>>,
        pub energy_mj: Mutex<Vec<u64>>,
        pub energy_supported: bool,
    }

    impl MockNvml {
        pub fn new(count: usize, energy_supported: bool) -> Self {
            Self {
                power_mw: Mutex::new(vec![60_000; count]),
                energy_mj: Mutex::new(vec![0; count]),
                energy_supported,
            }
        }
    }

    impl NvmlApi for MockNvml {
        fn device_count(&self) -> u32 {
            self.power_mw.lock().len() as u32
        }

        fn power_usage_mw(&self, index: u32) -> Result<u64> {
            self.power_mw
                .lock()
                .get(index as usize)
                .copied()
                .ok_or_else(|| PmtError::UnknownDomain(format!("gpu{index}")))
        }

        fn total_energy_consumption_mj(&self, index: u32) -> Result<u64> {
            if !self.energy_supported {
                return Err(PmtError::unavailable("nvml", "energy counter not supported"));
            }
            self.energy_mj
                .lock()
                .get(index as usize)
                .copied()
                .ok_or_else(|| PmtError::UnknownDomain(format!("gpu{index}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::MockNvml;
    use super::*;

    #[test]
    fn exposes_one_domain_per_gpu() {
        let s = NvmlSensor::new(Arc::new(MockNvml::new(4, true))).unwrap();
        assert_eq!(
            s.domains(),
            vec![Domain::gpu(0), Domain::gpu(1), Domain::gpu(2), Domain::gpu(3)]
        );
        assert!(s.has_energy_counter());
    }

    #[test]
    fn converts_units() {
        let api = Arc::new(MockNvml::new(1, true));
        *api.power_mw.lock() = vec![250_000];
        *api.energy_mj.lock() = vec![3_600_000];
        let s = NvmlSensor::new(api).unwrap();
        let samples = s.sample().unwrap();
        assert!((samples[0].power_w.unwrap() - 250.0).abs() < 1e-12);
        assert!((samples[0].energy_j.unwrap() - 3600.0).abs() < 1e-12);
    }

    #[test]
    fn works_without_energy_counter() {
        let s = NvmlSensor::new(Arc::new(MockNvml::new(2, false))).unwrap();
        assert!(!s.has_energy_counter());
        let samples = s.sample().unwrap();
        assert!(samples.iter().all(|x| x.energy_j.is_none()));
        assert!(samples.iter().all(|x| x.power_w.is_some()));
    }

    #[test]
    fn zero_gpus_is_unavailable() {
        let err = NvmlSensor::new(Arc::new(MockNvml::new(0, true))).err().unwrap();
        assert!(matches!(err, PmtError::BackendUnavailable { .. }));
    }
}
