//! HPE/Cray `pm_counters` back-end.
//!
//! HPE/Cray EX nodes (LUMI-G, the CSCS Alps A100 partition) expose out-of-band
//! power telemetry through `/sys/cray/pm_counters/`:
//!
//! | File | Content |
//! |---|---|
//! | `power`, `energy` | whole node |
//! | `cpu_power`, `cpu_energy` | CPU package(s) |
//! | `memory_power`, `memory_energy` | DRAM (not present on every platform) |
//! | `accelN_power`, `accelN_energy` | GPU **card** `N` (two GCDs on MI250X) |
//!
//! Values are formatted as `"<value> W <timestamp> us"` (or `J`). This is the
//! same source Slurm's `pm_counters` energy-gathering plugin uses — which is why
//! the paper can compare PMT against Slurm on these systems, and why the GPU
//! granularity is *cards*, creating the two-GCDs-per-measurement quirk of §2.

use crate::domain::Domain;
use crate::error::{PmtError, Result};
use crate::sample::DomainSample;
use crate::sensor::Sensor;
use std::fs;
use std::path::{Path, PathBuf};

/// Default location of the Cray power-management counters.
pub const DEFAULT_PM_COUNTERS_ROOT: &str = "/sys/cray/pm_counters";

/// One parsed `pm_counters` value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmCounterValue {
    /// Numeric value in the unit given by the file (W or J).
    pub value: f64,
    /// Controller timestamp in microseconds.
    pub timestamp_us: u64,
}

/// Parse the `"<value> <unit> <timestamp> us"` format of a `pm_counters` file.
pub fn parse_pm_counter(content: &str, expected_unit: &str) -> Result<PmCounterValue> {
    let parts: Vec<&str> = content.split_whitespace().collect();
    if parts.len() < 2 {
        return Err(PmtError::parse("pm_counters value", content));
    }
    let value: f64 = parts[0]
        .parse()
        .map_err(|_| PmtError::parse("pm_counters numeric value", content))?;
    if parts[1] != expected_unit {
        return Err(PmtError::parse(
            format!("pm_counters unit (expected {expected_unit})"),
            content,
        ));
    }
    let timestamp_us = if parts.len() >= 4 && parts[3] == "us" {
        parts[2].parse().unwrap_or(0)
    } else {
        0
    };
    Ok(PmCounterValue { value, timestamp_us })
}

#[derive(Debug, Clone)]
struct CounterPair {
    domain: Domain,
    power_file: Option<PathBuf>,
    energy_file: Option<PathBuf>,
}

/// Sensor reading the HPE/Cray `pm_counters` sysfs tree.
pub struct CrayPmCountersSensor {
    root: PathBuf,
    counters: Vec<CounterPair>,
}

impl CrayPmCountersSensor {
    /// Discover the counters available under `root`
    /// (e.g. `/sys/cray/pm_counters`).
    pub fn discover(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        if !root.is_dir() {
            return Err(PmtError::unavailable(
                "cray_pm_counters",
                format!("{} is not a directory", root.display()),
            ));
        }
        let mut counters = Vec::new();
        let push_pair = |domain: Domain, power: &str, energy: &str, counters: &mut Vec<CounterPair>| {
            let power_file = root.join(power);
            let energy_file = root.join(energy);
            let power_file = power_file.exists().then_some(power_file);
            let energy_file = energy_file.exists().then_some(energy_file);
            if power_file.is_some() || energy_file.is_some() {
                counters.push(CounterPair {
                    domain,
                    power_file,
                    energy_file,
                });
            }
        };

        push_pair(Domain::node(), "power", "energy", &mut counters);
        push_pair(Domain::cpu(0), "cpu_power", "cpu_energy", &mut counters);
        push_pair(Domain::memory(), "memory_power", "memory_energy", &mut counters);
        // Accelerator counters: accel0.. until the first missing index.
        for card in 0..64u32 {
            let power = format!("accel{card}_power");
            let energy = format!("accel{card}_energy");
            if !root.join(&power).exists() && !root.join(&energy).exists() {
                break;
            }
            push_pair(Domain::gpu_card(card), &power, &energy, &mut counters);
        }

        if counters.is_empty() {
            return Err(PmtError::unavailable(
                "cray_pm_counters",
                format!("no pm_counters files under {}", root.display()),
            ));
        }
        Ok(Self { root, counters })
    }

    /// Root directory this sensor reads from.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of GPU cards exposed by this node.
    pub fn gpu_cards(&self) -> usize {
        self.counters
            .iter()
            .filter(|c| c.domain.kind == crate::domain::DomainKind::GpuCard)
            .count()
    }

    fn read_value(path: &Path, unit: &str) -> Result<f64> {
        let content = fs::read_to_string(path).map_err(|e| PmtError::io(path, e))?;
        Ok(parse_pm_counter(&content, unit)?.value)
    }
}

impl Sensor for CrayPmCountersSensor {
    fn name(&self) -> &str {
        "cray_pm_counters"
    }

    fn domains(&self) -> Vec<Domain> {
        self.counters.iter().map(|c| c.domain).collect()
    }

    fn sample(&self) -> Result<Vec<DomainSample>> {
        let mut out = Vec::with_capacity(self.counters.len());
        for c in &self.counters {
            let power_w = match &c.power_file {
                Some(p) => Some(Self::read_value(p, "W")?),
                None => None,
            };
            let energy_j = match &c.energy_file {
                Some(p) => Some(Self::read_value(p, "J")?),
                None => None,
            };
            out.push(DomainSample {
                domain: c.domain,
                power_w,
                energy_j,
            });
        }
        Ok(out)
    }

    fn description(&self) -> String {
        format!(
            "cray_pm_counters at {} ({} domains, {} GPU cards)",
            self.root.display(),
            self.counters.len(),
            self.gpu_cards()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainKind;
    use std::fs;

    fn make_tree(tag: &str, cards: u32, with_memory: bool) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pmt-pmc-{tag}-{}-{}",
            std::process::id(),
            // sphlint::allow(float-determinism, temp-dir uniquifier; value never reaches an assertion)
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("power"), "1667 W 1600000000 us\n").unwrap();
        fs::write(dir.join("energy"), "8231076 J 1600000000 us\n").unwrap();
        fs::write(dir.join("cpu_power"), "142 W 1600000000 us\n").unwrap();
        fs::write(dir.join("cpu_energy"), "523412 J 1600000000 us\n").unwrap();
        if with_memory {
            fs::write(dir.join("memory_power"), "54 W 1600000000 us\n").unwrap();
            fs::write(dir.join("memory_energy"), "204112 J 1600000000 us\n").unwrap();
        }
        for c in 0..cards {
            fs::write(
                dir.join(format!("accel{c}_power")),
                format!("{} W 1600000000 us\n", 300 + c),
            )
            .unwrap();
            fs::write(
                dir.join(format!("accel{c}_energy")),
                format!("{} J 1600000000 us\n", 100000 * (c + 1)),
            )
            .unwrap();
        }
        dir
    }

    #[test]
    fn parses_value_unit_timestamp() {
        let v = parse_pm_counter("1667 W 1600000000 us\n", "W").unwrap();
        assert_eq!(v.value, 1667.0);
        assert_eq!(v.timestamp_us, 1_600_000_000);
    }

    #[test]
    fn parse_rejects_wrong_unit_and_garbage() {
        assert!(parse_pm_counter("1667 W 0 us", "J").is_err());
        assert!(parse_pm_counter("", "W").is_err());
        assert!(parse_pm_counter("abc W 0 us", "W").is_err());
    }

    #[test]
    fn parse_tolerates_missing_timestamp() {
        let v = parse_pm_counter("250 W", "W").unwrap();
        assert_eq!(v.value, 250.0);
        assert_eq!(v.timestamp_us, 0);
    }

    #[test]
    fn discovers_lumi_like_tree() {
        let dir = make_tree("lumi", 4, true);
        let s = CrayPmCountersSensor::discover(&dir).unwrap();
        let domains = s.domains();
        assert!(domains.contains(&Domain::node()));
        assert!(domains.contains(&Domain::cpu(0)));
        assert!(domains.contains(&Domain::memory()));
        assert_eq!(s.gpu_cards(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn discovers_tree_without_memory_sensor() {
        let dir = make_tree("nomem", 4, false);
        let s = CrayPmCountersSensor::discover(&dir).unwrap();
        assert!(!s.domains().contains(&Domain::memory()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn samples_report_power_and_energy() {
        let dir = make_tree("sample", 2, true);
        let s = CrayPmCountersSensor::discover(&dir).unwrap();
        let samples = s.sample().unwrap();
        let node = samples.iter().find(|x| x.domain == Domain::node()).unwrap();
        assert_eq!(node.power_w, Some(1667.0));
        assert_eq!(node.energy_j, Some(8_231_076.0));
        let card1 = samples.iter().find(|x| x.domain == Domain::gpu_card(1)).unwrap();
        assert_eq!(card1.power_w, Some(301.0));
        assert_eq!(card1.energy_j, Some(200_000.0));
        assert!(samples.iter().all(|x| x.domain.kind != DomainKind::Gpu));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_root_is_unavailable() {
        let err = CrayPmCountersSensor::discover("/nonexistent/pm_counters").err().unwrap();
        assert!(matches!(err, PmtError::BackendUnavailable { .. }));
    }

    #[test]
    fn accel_enumeration_stops_at_gap() {
        let dir = make_tree("gap", 2, false);
        // accel5 exists but accel2..4 do not -> enumeration must stop at 2 cards.
        fs::write(dir.join("accel5_power"), "300 W 0 us\n").unwrap();
        let s = CrayPmCountersSensor::discover(&dir).unwrap();
        assert_eq!(s.gpu_cards(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
