//! Dummy back-end: a constant (but settable) power source.
//!
//! Useful for tests, examples and for estimating the overhead of the
//! measurement infrastructure itself (the real PMT ships the same back-end for
//! the same reason).

use crate::domain::Domain;
use crate::error::Result;
use crate::sample::DomainSample;
use crate::sensor::Sensor;
use parking_lot::Mutex;

/// A sensor reporting a settable constant power for a single domain.
#[derive(Debug)]
pub struct DummySensor {
    domain: Domain,
    power_w: Mutex<f64>,
}

impl DummySensor {
    /// Create a dummy sensor for `domain` reporting `power_w` watts.
    pub fn new(domain: Domain, power_w: f64) -> Self {
        assert!(power_w >= 0.0, "power must be non-negative");
        Self {
            domain,
            power_w: Mutex::new(power_w),
        }
    }

    /// Change the reported power.
    pub fn set_power(&self, power_w: f64) {
        assert!(power_w >= 0.0, "power must be non-negative");
        *self.power_w.lock() = power_w;
    }

    /// Currently reported power.
    pub fn power(&self) -> f64 {
        *self.power_w.lock()
    }
}

impl Sensor for DummySensor {
    fn name(&self) -> &str {
        "dummy"
    }

    fn domains(&self) -> Vec<Domain> {
        vec![self.domain]
    }

    fn sample(&self) -> Result<Vec<DomainSample>> {
        Ok(vec![DomainSample::power(self.domain, self.power())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_constant_power() {
        let s = DummySensor::new(Domain::node(), 123.0);
        let samples = s.sample().unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].power_w, Some(123.0));
        assert_eq!(samples[0].energy_j, None);
    }

    #[test]
    fn power_is_settable() {
        let s = DummySensor::new(Domain::gpu(2), 100.0);
        s.set_power(250.0);
        assert_eq!(s.sample().unwrap()[0].power_w, Some(250.0));
        assert_eq!(s.domains(), vec![Domain::gpu(2)]);
    }

    #[test]
    #[should_panic]
    fn negative_power_rejected() {
        DummySensor::new(Domain::node(), -1.0);
    }
}
