//! Intel RAPL back-end (Linux `powercap` framework).
//!
//! RAPL exposes cumulative energy counters per package domain under
//! `/sys/class/powercap/intel-rapl:<pkg>/energy_uj`, with optional sub-domains
//! such as `intel-rapl:<pkg>:0` named `dram`. Counters are in microjoules and
//! wrap around at `max_energy_range_uj`; this back-end unwraps them so that the
//! meter always sees a monotone counter.
//!
//! The back-end works against any directory with that layout — the real
//! `/sys/class/powercap` on a Linux machine, or the virtual tree produced by
//! `hwmodel::VirtualSysfs` in the simulated experiments.

use crate::domain::{Domain, DomainKind};
use crate::error::{PmtError, Result};
use crate::sample::DomainSample;
use crate::sensor::Sensor;
use crate::units::microjoules_to_joules;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Default sysfs location of the powercap framework on Linux.
pub const DEFAULT_POWERCAP_ROOT: &str = "/sys/class/powercap";

#[derive(Debug, Clone)]
struct RaplDomain {
    domain: Domain,
    energy_file: PathBuf,
    max_range_uj: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct UnwrapState {
    last_raw_uj: u64,
    wraps: u64,
    initialised: bool,
}

/// Sensor reading the Linux powercap (`intel-rapl`) energy counters.
pub struct RaplSensor {
    domains: Vec<RaplDomain>,
    unwrap: Mutex<BTreeMap<Domain, UnwrapState>>,
}

impl RaplSensor {
    /// Discover RAPL domains under `root` (e.g. `/sys/class/powercap`).
    ///
    /// Fails with [`PmtError::BackendUnavailable`] if no `intel-rapl:*` domain
    /// with an `energy_uj` file is found.
    pub fn discover(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref();
        let entries = fs::read_dir(root).map_err(|e| PmtError::io(root, e))?;
        let mut domains = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| PmtError::io(root, e))?;
            let dir_name = entry.file_name().to_string_lossy().to_string();
            if !dir_name.starts_with("intel-rapl:") {
                continue;
            }
            let dir = entry.path();
            let energy_file = dir.join("energy_uj");
            if !energy_file.exists() {
                continue;
            }
            let name = fs::read_to_string(dir.join("name"))
                .map_err(|e| PmtError::io(dir.join("name"), e))?
                .trim()
                .to_string();
            let max_range_uj: u64 = fs::read_to_string(dir.join("max_energy_range_uj"))
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(u64::MAX);
            let domain = if let Some(pkg) = name.strip_prefix("package-") {
                let index: u32 = pkg.parse().map_err(|_| PmtError::parse("RAPL package name", name.clone()))?;
                Domain::cpu(index)
            } else if name == "dram" {
                Domain::memory()
            } else if name == "psys" {
                Domain::node()
            } else {
                // core/uncore sub-domains are subsumed by the package counter.
                continue;
            };
            domains.push(RaplDomain {
                domain,
                energy_file,
                max_range_uj,
            });
        }
        if domains.is_empty() {
            return Err(PmtError::unavailable(
                "rapl",
                format!("no intel-rapl domains with energy_uj under {}", root.display()),
            ));
        }
        domains.sort_by_key(|d| d.domain);
        Ok(Self {
            domains,
            unwrap: Mutex::new(BTreeMap::new()),
        })
    }

    fn read_raw_uj(path: &Path) -> Result<u64> {
        let content = fs::read_to_string(path).map_err(|e| PmtError::io(path, e))?;
        content.trim().parse().map_err(|_| PmtError::parse("energy_uj", content))
    }
}

impl Sensor for RaplSensor {
    fn name(&self) -> &str {
        "rapl"
    }

    fn domains(&self) -> Vec<Domain> {
        self.domains.iter().map(|d| d.domain).collect()
    }

    fn sample(&self) -> Result<Vec<DomainSample>> {
        let mut out = Vec::with_capacity(self.domains.len());
        let mut unwrap = self.unwrap.lock();
        for d in &self.domains {
            let raw = Self::read_raw_uj(&d.energy_file)?;
            let state = unwrap.entry(d.domain).or_default();
            if state.initialised && raw < state.last_raw_uj {
                // The hardware counter wrapped around since the last reading.
                state.wraps += 1;
            }
            state.last_raw_uj = raw;
            state.initialised = true;
            let unwrapped_uj = raw as f64 + state.wraps as f64 * d.max_range_uj as f64;
            out.push(DomainSample::energy(d.domain, microjoules_to_joules(unwrapped_uj)));
        }
        Ok(out)
    }

    fn description(&self) -> String {
        let cpus = self.domains.iter().filter(|d| d.domain.kind == DomainKind::Cpu).count();
        let has_dram = self.domains.iter().any(|d| d.domain.kind == DomainKind::Memory);
        format!("rapl ({cpus} package(s), dram: {has_dram})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn make_tree(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pmt-rapl-{tag}-{}-{}",
            std::process::id(),
            // sphlint::allow(float-determinism, temp-dir uniquifier; value never reaches an assertion)
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let pkg0 = dir.join("intel-rapl:0");
        let dram = dir.join("intel-rapl:0:0");
        let pkg1 = dir.join("intel-rapl:1");
        for d in [&pkg0, &dram, &pkg1] {
            fs::create_dir_all(d).unwrap();
            fs::write(d.join("max_energy_range_uj"), "262143328850\n").unwrap();
        }
        fs::write(pkg0.join("name"), "package-0\n").unwrap();
        fs::write(pkg1.join("name"), "package-1\n").unwrap();
        fs::write(dram.join("name"), "dram\n").unwrap();
        fs::write(pkg0.join("energy_uj"), "1000000\n").unwrap();
        fs::write(pkg1.join("energy_uj"), "2000000\n").unwrap();
        fs::write(dram.join("energy_uj"), "500000\n").unwrap();
        dir
    }

    #[test]
    fn discovers_packages_and_dram() {
        let dir = make_tree("discover");
        let sensor = RaplSensor::discover(&dir).unwrap();
        let domains = sensor.domains();
        assert!(domains.contains(&Domain::cpu(0)));
        assert!(domains.contains(&Domain::cpu(1)));
        assert!(domains.contains(&Domain::memory()));
        assert_eq!(domains.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn samples_convert_uj_to_joules() {
        let dir = make_tree("units");
        let sensor = RaplSensor::discover(&dir).unwrap();
        let samples = sensor.sample().unwrap();
        let pkg0 = samples.iter().find(|s| s.domain == Domain::cpu(0)).unwrap();
        assert!((pkg0.energy_j.unwrap() - 1.0).abs() < 1e-12);
        assert!(pkg0.power_w.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unwraps_counter_overflow() {
        let dir = make_tree("wrap");
        let sensor = RaplSensor::discover(&dir).unwrap();
        let _ = sensor.sample().unwrap();
        // Simulate a wrap: counter goes down.
        fs::write(dir.join("intel-rapl:0/energy_uj"), "400000\n").unwrap();
        let samples = sensor.sample().unwrap();
        let pkg0 = samples.iter().find(|s| s.domain == Domain::cpu(0)).unwrap();
        // 0.4 J + one full wrap (262143.328850 J) > first reading of 1 J.
        assert!(pkg0.energy_j.unwrap() > 262143.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_tree_reports_unavailable() {
        let err = RaplSensor::discover("/nonexistent/powercap").err().unwrap();
        assert!(matches!(err, PmtError::Io { .. }));
        let empty = std::env::temp_dir().join(format!("pmt-rapl-empty-{}", std::process::id()));
        fs::create_dir_all(&empty).unwrap();
        let err = RaplSensor::discover(&empty).err().unwrap();
        assert!(matches!(err, PmtError::BackendUnavailable { .. }));
        fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn garbage_counter_is_a_parse_error() {
        let dir = make_tree("garbage");
        fs::write(dir.join("intel-rapl:0/energy_uj"), "not-a-number\n").unwrap();
        let sensor = RaplSensor::discover(&dir).unwrap();
        assert!(matches!(sensor.sample(), Err(PmtError::Parse { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }
}
