//! Measurement back-ends.
//!
//! Each back-end adapts one platform power interface to the [`crate::sensor::Sensor`]
//! trait:
//!
//! | Back-end | Interface | Domains | Reading |
//! |---|---|---|---|
//! | [`rapl::RaplSensor`] | Linux `powercap` sysfs (`intel-rapl:*`) | CPU packages, DRAM | cumulative energy counter (µJ, wrapping) |
//! | [`pm_counters::CrayPmCountersSensor`] | HPE/Cray `pm_counters` sysfs | node, CPU, memory, GPU *cards* | power + cumulative energy |
//! | [`nvml::NvmlSensor`] | NVML-style API (trait-abstracted) | GPU dies | power (mW) + total energy (mJ) |
//! | [`rocm::RocmSmiSensor`] | ROCm-SMI-style API (trait-abstracted) | GPU dies | power (µW), optional energy counter |
//! | [`dummy::DummySensor`] | none | any single domain | constant/settable power |
//!
//! The NVML and ROCm back-ends talk to a small trait (`NvmlApi` / `RocmSmiApi`)
//! instead of linking vendor libraries, so the same code path runs against the
//! simulated GPUs of the `hwmodel` crate (see the `cluster` crate's adapters) or
//! against a mock in unit tests — and could be bound to the real libraries
//! without touching the sensor logic.

pub mod dummy;
pub mod nvml;
pub mod pm_counters;
pub mod rapl;
pub mod rocm;

pub use dummy::DummySensor;
pub use nvml::{NvmlApi, NvmlSensor};
pub use pm_counters::CrayPmCountersSensor;
pub use rapl::RaplSensor;
pub use rocm::{RocmSmiApi, RocmSmiSensor};
