//! Unit helpers and human-readable formatting for energy, power and time.
//!
//! Internally the toolkit works in SI base units (`f64` joules, watts and
//! seconds). This module provides the conversions and the formatting used in
//! reports (the paper quotes energies in mega-joules and EDP in J·s).

/// Joules per mega-joule.
pub const J_PER_MJ: f64 = 1.0e6;
/// Joules per kilowatt-hour.
pub const J_PER_KWH: f64 = 3.6e6;
/// Joules per watt-hour.
pub const J_PER_WH: f64 = 3600.0;
/// Microjoules per joule (RAPL counters are in µJ).
pub const UJ_PER_J: f64 = 1.0e6;
/// Millijoules per joule (NVML total-energy counters are in mJ).
pub const MJ_MILLI_PER_J: f64 = 1.0e3;

/// Convert joules to mega-joules.
pub fn joules_to_megajoules(j: f64) -> f64 {
    j / J_PER_MJ
}

/// Convert joules to kilowatt-hours.
pub fn joules_to_kwh(j: f64) -> f64 {
    j / J_PER_KWH
}

/// Convert microjoules (RAPL) to joules.
pub fn microjoules_to_joules(uj: f64) -> f64 {
    uj / UJ_PER_J
}

/// Convert millijoules (NVML) to joules.
pub fn millijoules_to_joules(mj: f64) -> f64 {
    mj / MJ_MILLI_PER_J
}

/// Convert milliwatts (NVML power readings) to watts.
pub fn milliwatts_to_watts(mw: f64) -> f64 {
    mw / 1.0e3
}

/// Convert microwatts (ROCm SMI power readings) to watts.
pub fn microwatts_to_watts(uw: f64) -> f64 {
    uw / 1.0e6
}

/// Energy-delay product in J·s from an energy in joules and a duration in seconds.
pub fn energy_delay_product(energy_j: f64, duration_s: f64) -> f64 {
    energy_j * duration_s
}

/// Format an energy with an automatically chosen unit (J, kJ, MJ, GJ).
pub fn format_energy(joules: f64) -> String {
    let abs = joules.abs();
    if abs >= 1.0e9 {
        format!("{:.2} GJ", joules / 1.0e9)
    } else if abs >= 1.0e6 {
        format!("{:.2} MJ", joules / 1.0e6)
    } else if abs >= 1.0e3 {
        format!("{:.2} kJ", joules / 1.0e3)
    } else {
        format!("{:.2} J", joules)
    }
}

/// Format a power with an automatically chosen unit (W, kW, MW).
pub fn format_power(watts: f64) -> String {
    let abs = watts.abs();
    if abs >= 1.0e6 {
        format!("{:.2} MW", watts / 1.0e6)
    } else if abs >= 1.0e3 {
        format!("{:.2} kW", watts / 1.0e3)
    } else {
        format!("{:.1} W", watts)
    }
}

/// Format a duration with an automatically chosen unit (s, min, h).
pub fn format_duration(seconds: f64) -> String {
    if seconds >= 3600.0 {
        format!("{:.2} h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.2} min", seconds / 60.0)
    } else if seconds >= 1.0 {
        format!("{:.2} s", seconds)
    } else {
        format!("{:.2} ms", seconds * 1.0e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn megajoule_conversion() {
        assert!((joules_to_megajoules(24.4e6) - 24.4).abs() < 1e-12);
    }

    #[test]
    fn kwh_conversion() {
        assert!((joules_to_kwh(3.6e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sensor_unit_conversions() {
        assert!((microjoules_to_joules(1.0e6) - 1.0).abs() < 1e-12);
        assert!((millijoules_to_joules(1.0e3) - 1.0).abs() < 1e-12);
        assert!((milliwatts_to_watts(250_000.0) - 250.0).abs() < 1e-12);
        assert!((microwatts_to_watts(250_000_000.0) - 250.0).abs() < 1e-12);
    }

    #[test]
    fn edp_is_product() {
        assert_eq!(energy_delay_product(10.0, 5.0), 50.0);
    }

    #[test]
    fn energy_formatting_picks_units() {
        assert_eq!(format_energy(12.0), "12.00 J");
        assert_eq!(format_energy(12_000.0), "12.00 kJ");
        assert_eq!(format_energy(24.4e6), "24.40 MJ");
        assert_eq!(format_energy(2.0e9), "2.00 GJ");
    }

    #[test]
    fn power_formatting_picks_units() {
        assert_eq!(format_power(450.0), "450.0 W");
        assert_eq!(format_power(2500.0), "2.50 kW");
        assert_eq!(format_power(3.2e6), "3.20 MW");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration(0.5), "500.00 ms");
        assert_eq!(format_duration(30.0), "30.00 s");
        assert_eq!(format_duration(90.0), "1.50 min");
        assert_eq!(format_duration(7200.0), "2.00 h");
    }
}
