//! Back-end registry and auto-discovery.
//!
//! On a real machine one would enumerate which power interfaces exist
//! (`/sys/class/powercap`, `/sys/cray/pm_counters`, NVML, ROCm SMI) and attach
//! a sensor for each. [`discover_sensors`] does exactly that, given a
//! [`PlatformPaths`] description plus optional GPU API handles, ignoring any
//! back-end that is unavailable — the behaviour expected of a portable
//! measurement toolkit.

use crate::backends::nvml::{NvmlApi, NvmlSensor};
use crate::backends::pm_counters::CrayPmCountersSensor;
use crate::backends::rapl::RaplSensor;
use crate::backends::rocm::{RocmSmiApi, RocmSmiSensor};
use crate::error::Result;
use crate::sensor::Sensor;
use std::path::PathBuf;
use std::sync::Arc;

/// Known back-end kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Linux powercap / Intel RAPL.
    Rapl,
    /// HPE/Cray `pm_counters`.
    CrayPmCounters,
    /// NVIDIA NVML.
    Nvml,
    /// AMD ROCm SMI.
    RocmSmi,
    /// Constant dummy source.
    Dummy,
}

impl BackendKind {
    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Rapl => "rapl",
            BackendKind::CrayPmCounters => "cray_pm_counters",
            BackendKind::Nvml => "nvml",
            BackendKind::RocmSmi => "rocm_smi",
            BackendKind::Dummy => "dummy",
        }
    }
}

/// File-system locations of the file-based power interfaces.
#[derive(Clone, Debug)]
pub struct PlatformPaths {
    /// Location of the powercap tree (`/sys/class/powercap` on real systems).
    pub powercap_root: Option<PathBuf>,
    /// Location of the Cray pm_counters tree (`/sys/cray/pm_counters`).
    pub pm_counters_root: Option<PathBuf>,
}

impl PlatformPaths {
    /// Paths of a real Linux system.
    pub fn system_defaults() -> Self {
        Self {
            powercap_root: Some(PathBuf::from(crate::backends::rapl::DEFAULT_POWERCAP_ROOT)),
            pm_counters_root: Some(PathBuf::from(crate::backends::pm_counters::DEFAULT_PM_COUNTERS_ROOT)),
        }
    }

    /// No file-based interfaces.
    pub fn none() -> Self {
        Self {
            powercap_root: None,
            pm_counters_root: None,
        }
    }

    /// Both trees under a common (virtual) sysfs root, as produced by
    /// `hwmodel::VirtualSysfs`.
    pub fn under_virtual_root(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        Self {
            powercap_root: Some(root.join("class/powercap")),
            pm_counters_root: Some(root.join("cray/pm_counters")),
        }
    }
}

/// Result of back-end discovery.
pub struct DiscoveredSensors {
    /// Successfully constructed sensors.
    pub sensors: Vec<Arc<dyn Sensor>>,
    /// Back-ends that were probed but unavailable, with the reason.
    pub unavailable: Vec<(BackendKind, String)>,
}

impl DiscoveredSensors {
    /// Names of the available back-ends.
    pub fn names(&self) -> Vec<String> {
        self.sensors.iter().map(|s| s.name().to_string()).collect()
    }
}

/// Probe every known back-end and return whichever are available.
pub fn discover_sensors(
    paths: &PlatformPaths,
    nvml: Option<Arc<dyn NvmlApi>>,
    rocm: Option<Arc<dyn RocmSmiApi>>,
) -> DiscoveredSensors {
    let mut sensors: Vec<Arc<dyn Sensor>> = Vec::new();
    let mut unavailable: Vec<(BackendKind, String)> = Vec::new();

    let mut push_result = |kind: BackendKind, result: Result<Arc<dyn Sensor>>| match result {
        Ok(s) => sensors.push(s),
        Err(e) => unavailable.push((kind, e.to_string())),
    };

    let pm_result = match &paths.pm_counters_root {
        Some(root) => CrayPmCountersSensor::discover(root).map(|s| Arc::new(s) as Arc<dyn Sensor>),
        None => Err(crate::error::PmtError::unavailable(
            "cray_pm_counters",
            "no pm_counters path configured",
        )),
    };
    push_result(BackendKind::CrayPmCounters, pm_result);

    let rapl_result = match &paths.powercap_root {
        Some(root) => RaplSensor::discover(root).map(|s| Arc::new(s) as Arc<dyn Sensor>),
        None => Err(crate::error::PmtError::unavailable(
            "rapl",
            "no powercap path configured",
        )),
    };
    push_result(BackendKind::Rapl, rapl_result);

    let nvml_result = match nvml {
        Some(api) => NvmlSensor::new(api).map(|s| Arc::new(s) as Arc<dyn Sensor>),
        None => Err(crate::error::PmtError::unavailable("nvml", "no NVML handle provided")),
    };
    push_result(BackendKind::Nvml, nvml_result);

    let rocm_result = match rocm {
        Some(api) => RocmSmiSensor::new(api).map(|s| Arc::new(s) as Arc<dyn Sensor>),
        None => Err(crate::error::PmtError::unavailable(
            "rocm_smi",
            "no ROCm SMI handle provided",
        )),
    };
    push_result(BackendKind::RocmSmi, rocm_result);

    DiscoveredSensors { sensors, unavailable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(BackendKind::Rapl.name(), "rapl");
        assert_eq!(BackendKind::CrayPmCounters.name(), "cray_pm_counters");
        assert_eq!(BackendKind::Nvml.name(), "nvml");
        assert_eq!(BackendKind::RocmSmi.name(), "rocm_smi");
        assert_eq!(BackendKind::Dummy.name(), "dummy");
    }

    #[test]
    fn discovery_with_nothing_available_reports_reasons() {
        let found = discover_sensors(&PlatformPaths::none(), None, None);
        assert!(found.sensors.is_empty());
        assert_eq!(found.unavailable.len(), 4);
    }

    #[test]
    fn discovery_finds_file_backends_under_virtual_root() {
        let root = std::env::temp_dir().join(format!(
            "pmt-registry-{}-{}",
            std::process::id(),
            // sphlint::allow(float-determinism, temp-dir uniquifier; value never reaches an assertion)
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        // Build a minimal powercap + pm_counters tree.
        let pcap = root.join("class/powercap/intel-rapl:0");
        fs::create_dir_all(&pcap).unwrap();
        fs::write(pcap.join("name"), "package-0\n").unwrap();
        fs::write(pcap.join("energy_uj"), "123\n").unwrap();
        fs::write(pcap.join("max_energy_range_uj"), "262143328850\n").unwrap();
        let pm = root.join("cray/pm_counters");
        fs::create_dir_all(&pm).unwrap();
        fs::write(pm.join("power"), "500 W 0 us\n").unwrap();
        fs::write(pm.join("energy"), "1000 J 0 us\n").unwrap();

        let found = discover_sensors(&PlatformPaths::under_virtual_root(&root), None, None);
        let names = found.names();
        assert!(names.contains(&"rapl".to_string()));
        assert!(names.contains(&"cray_pm_counters".to_string()));
        assert_eq!(found.unavailable.len(), 2); // nvml + rocm handles missing
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn system_defaults_point_at_sys() {
        let p = PlatformPaths::system_defaults();
        assert!(p.powercap_root.unwrap().starts_with("/sys"));
        assert!(p.pm_counters_root.unwrap().starts_with("/sys"));
    }
}
