//! Measurement records and per-rank reports.
//!
//! The paper's methodology (§2): energy consumption is measured per MPI rank for
//! every instrumented function call, gathered at the end of the execution and
//! stored into a file for post-hoc analysis, to avoid perturbing the running
//! simulation. [`MeasurementRecord`] is one instrumented region on one rank;
//! [`RankReport`] is everything a rank writes out; the CSV round-trip is what a
//! real deployment would put on the parallel filesystem.

use crate::domain::{Domain, DomainKind};
use crate::error::{PmtError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// The result of measuring one instrumented region (one function call, one
/// timestep, or the whole time-stepping loop) on one rank.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementRecord {
    /// Region label, e.g. `"MomentumEnergy"`.
    pub label: String,
    /// MPI rank that produced the record.
    pub rank: u32,
    /// Timestep / iteration index, if the caller set one.
    pub iteration: Option<u64>,
    /// Region start time on the meter's clock, in seconds.
    pub start_s: f64,
    /// Region end time on the meter's clock, in seconds.
    pub end_s: f64,
    /// Energy attributed to each measurement domain during the region, in joules.
    pub energy_j: BTreeMap<Domain, f64>,
}

impl MeasurementRecord {
    /// Region duration in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }

    /// Total energy across all domains in joules.
    ///
    /// Note: when a sensor reports both node-level and per-device domains, the
    /// node-level value already contains the devices; analysis code should pick
    /// the appropriate domains instead of blindly summing. This helper excludes
    /// the node domain for that reason.
    pub fn total_device_energy_j(&self) -> f64 {
        self.energy_j
            .iter()
            .filter(|(d, _)| d.kind != DomainKind::Node)
            .map(|(_, e)| e)
            .sum()
    }

    /// Energy of a specific domain, 0.0 if absent.
    pub fn energy(&self, domain: Domain) -> f64 {
        self.energy_j.get(&domain).copied().unwrap_or(0.0)
    }

    /// Sum of the energy of all domains of a given kind.
    pub fn energy_by_kind(&self, kind: DomainKind) -> f64 {
        self.energy_j.iter().filter(|(d, _)| d.kind == kind).map(|(_, e)| e).sum()
    }

    /// Energy-delay product of this record (total device energy × duration), in J·s.
    pub fn edp(&self) -> f64 {
        self.total_device_energy_j() * self.duration_s()
    }
}

/// Everything one rank measured during a run.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct RankReport {
    /// MPI rank.
    pub rank: u32,
    /// Hostname of the node the rank executed on.
    pub hostname: String,
    /// All measurement records, in completion order.
    pub records: Vec<MeasurementRecord>,
}

impl RankReport {
    /// Create an empty report for a rank.
    pub fn new(rank: u32, hostname: impl Into<String>) -> Self {
        Self {
            rank,
            hostname: hostname.into(),
            records: Vec::new(),
        }
    }

    /// Serialise to CSV with columns
    /// `label,rank,hostname,iteration,start_s,end_s,domain,energy_j`
    /// (one row per record × domain).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,rank,hostname,iteration,start_s,end_s,domain,energy_j\n");
        for r in &self.records {
            for (domain, energy) in &r.energy_j {
                let iter_str = r.iteration.map(|i| i.to_string()).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.9},{:.9},{},{:.6}",
                    r.label, r.rank, self.hostname, iter_str, r.start_s, r.end_s, domain, energy
                );
            }
        }
        out
    }

    /// Parse a report back from the CSV produced by [`RankReport::to_csv`].
    pub fn from_csv(csv: &str) -> Result<Self> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or_else(|| PmtError::parse("rank report CSV", "empty input"))?;
        if !header.starts_with("label,rank,hostname") {
            return Err(PmtError::parse("rank report CSV header", header));
        }
        let mut report = RankReport::default();
        let mut current: Option<MeasurementRecord> = None;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 8 {
                return Err(PmtError::parse("rank report CSV row", line));
            }
            let label = fields[0].to_string();
            let rank: u32 = fields[1].parse().map_err(|_| PmtError::parse("rank", line))?;
            let hostname = fields[2].to_string();
            let iteration = if fields[3].is_empty() {
                None
            } else {
                Some(fields[3].parse().map_err(|_| PmtError::parse("iteration", line))?)
            };
            let start_s: f64 = fields[4].parse().map_err(|_| PmtError::parse("start_s", line))?;
            let end_s: f64 = fields[5].parse().map_err(|_| PmtError::parse("end_s", line))?;
            let domain: Domain = fields[6].parse().map_err(|e| PmtError::parse("domain", e))?;
            let energy: f64 = fields[7].parse().map_err(|_| PmtError::parse("energy_j", line))?;

            report.rank = rank;
            report.hostname = hostname;

            let same_record = current.as_ref().is_some_and(|c| {
                c.label == label && c.start_s == start_s && c.end_s == end_s && c.iteration == iteration
            });
            if !same_record {
                if let Some(done) = current.take() {
                    report.records.push(done);
                }
                current = Some(MeasurementRecord {
                    label,
                    rank,
                    iteration,
                    start_s,
                    end_s,
                    energy_j: BTreeMap::new(),
                });
            }
            current.as_mut().unwrap().energy_j.insert(domain, energy);
        }
        if let Some(done) = current.take() {
            report.records.push(done);
        }
        Ok(report)
    }

    /// Write the CSV representation to a file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        fs::write(path, self.to_csv()).map_err(|e| PmtError::io(path, e))
    }

    /// Read a report from a CSV file.
    pub fn read_csv(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let content = fs::read_to_string(path).map_err(|e| PmtError::io(path, e))?;
        Self::from_csv(&content)
    }

    /// Total energy per domain across all records, in joules.
    pub fn total_by_domain(&self) -> BTreeMap<Domain, f64> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            for (d, e) in &r.energy_j {
                *out.entry(*d).or_insert(0.0) += e;
            }
        }
        out
    }
}

/// Per-label aggregate over many records (e.g. all calls of `MomentumEnergy`
/// across all timesteps on one rank).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FunctionAggregate {
    /// Region label.
    pub label: String,
    /// Number of records folded in.
    pub calls: u64,
    /// Summed duration in seconds.
    pub total_time_s: f64,
    /// Summed energy per domain in joules.
    pub energy_j: BTreeMap<Domain, f64>,
}

impl FunctionAggregate {
    /// Sum of the energy of all domains of a given kind.
    pub fn energy_by_kind(&self, kind: DomainKind) -> f64 {
        self.energy_j.iter().filter(|(d, _)| d.kind == kind).map(|(_, e)| e).sum()
    }

    /// Total non-node energy in joules.
    pub fn total_device_energy_j(&self) -> f64 {
        self.energy_j
            .iter()
            .filter(|(d, _)| d.kind != DomainKind::Node)
            .map(|(_, e)| e)
            .sum()
    }

    /// Energy-delay product (total device energy × summed duration) in J·s.
    pub fn edp(&self) -> f64 {
        self.total_device_energy_j() * self.total_time_s
    }
}

/// Aggregate records by label (insertion order of first appearance).
pub fn aggregate_by_label(records: &[MeasurementRecord]) -> Vec<FunctionAggregate> {
    let mut order: Vec<String> = Vec::new();
    let mut map: BTreeMap<String, FunctionAggregate> = BTreeMap::new();
    for r in records {
        if !map.contains_key(&r.label) {
            order.push(r.label.clone());
        }
        let agg = map.entry(r.label.clone()).or_insert_with(|| FunctionAggregate {
            label: r.label.clone(),
            calls: 0,
            total_time_s: 0.0,
            energy_j: BTreeMap::new(),
        });
        agg.calls += 1;
        agg.total_time_s += r.duration_s();
        for (d, e) in &r.energy_j {
            *agg.energy_j.entry(*d).or_insert(0.0) += e;
        }
    }
    order.into_iter().map(|l| map.remove(&l).unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, start: f64, end: f64, gpu: f64, cpu: f64) -> MeasurementRecord {
        let mut energy = BTreeMap::new();
        energy.insert(Domain::gpu(0), gpu);
        energy.insert(Domain::cpu(0), cpu);
        MeasurementRecord {
            label: label.to_string(),
            rank: 3,
            iteration: Some(7),
            start_s: start,
            end_s: end,
            energy_j: energy,
        }
    }

    #[test]
    fn duration_and_totals() {
        let r = record("MomentumEnergy", 1.0, 3.5, 1000.0, 100.0);
        assert!((r.duration_s() - 2.5).abs() < 1e-12);
        assert!((r.total_device_energy_j() - 1100.0).abs() < 1e-12);
        assert!((r.energy_by_kind(DomainKind::Gpu) - 1000.0).abs() < 1e-12);
        assert!((r.edp() - 1100.0 * 2.5).abs() < 1e-9);
        assert_eq!(r.energy(Domain::memory()), 0.0);
    }

    #[test]
    fn node_domain_excluded_from_device_total() {
        let mut r = record("x", 0.0, 1.0, 10.0, 5.0);
        r.energy_j.insert(Domain::node(), 100.0);
        assert!((r.total_device_energy_j() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip() {
        let mut report = RankReport::new(3, "nid001234");
        report.records.push(record("XMass", 0.0, 1.0, 10.0, 2.0));
        report.records.push(record("MomentumEnergy", 1.0, 3.0, 50.0, 4.0));
        let csv = report.to_csv();
        let parsed = RankReport::from_csv(&csv).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn csv_round_trip_without_iteration() {
        let mut report = RankReport::new(0, "host");
        let mut r = record("total", 0.0, 10.0, 100.0, 10.0);
        r.iteration = None;
        r.rank = 0;
        report.records.push(r);
        let parsed = RankReport::from_csv(&report.to_csv()).unwrap();
        assert_eq!(parsed.records[0].iteration, None);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(RankReport::from_csv("").is_err());
        assert!(RankReport::from_csv("wrong,header\n1,2").is_err());
        let bad_row = "label,rank,hostname,iteration,start_s,end_s,domain,energy_j\nfoo,notanumber,h,,0,1,gpu:0,5\n";
        assert!(RankReport::from_csv(bad_row).is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut report = RankReport::new(3, "nid000001");
        report.records.push(record("Gravity", 2.0, 4.0, 33.0, 3.0));
        let path = std::env::temp_dir().join(format!("pmt-report-{}.csv", std::process::id()));
        report.write_csv(&path).unwrap();
        let parsed = RankReport::read_csv(&path).unwrap();
        assert_eq!(parsed, report);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn total_by_domain_sums_records() {
        let mut report = RankReport::new(0, "h");
        report.records.push(record("a", 0.0, 1.0, 10.0, 1.0));
        report.records.push(record("b", 1.0, 2.0, 20.0, 2.0));
        let totals = report.total_by_domain();
        assert!((totals[&Domain::gpu(0)] - 30.0).abs() < 1e-12);
        assert!((totals[&Domain::cpu(0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_groups_by_label_preserving_order() {
        let records = vec![
            record("XMass", 0.0, 1.0, 10.0, 1.0),
            record("MomentumEnergy", 1.0, 2.0, 30.0, 2.0),
            record("XMass", 2.0, 3.0, 12.0, 1.5),
        ];
        let aggs = aggregate_by_label(&records);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].label, "XMass");
        assert_eq!(aggs[0].calls, 2);
        assert!((aggs[0].energy_by_kind(DomainKind::Gpu) - 22.0).abs() < 1e-12);
        assert!((aggs[0].total_time_s - 2.0).abs() < 1e-12);
        assert_eq!(aggs[1].label, "MomentumEnergy");
        assert!(aggs[1].edp() > 0.0);
    }
}
