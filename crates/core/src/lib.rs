//! # pmt — Power Measurement Toolkit (Rust)
//!
//! An application-level power and energy measurement library in the spirit of
//! the Power Measurement Toolkit (PMT) used in
//! *"Accurate Measurement of Application-level Energy Consumption for
//! Energy-Aware Large-Scale Simulations"* (SC 2023): a **common interface over a
//! comprehensive set of power-measurement back-ends**, plus the region/hook
//! instrumentation needed to attribute energy to individual simulation
//! functions and devices.
//!
//! ## Pieces
//!
//! * [`sensor::Sensor`] — one source of power/energy readings covering one or
//!   more [`domain::Domain`]s (node, CPU package, GPU die, GPU card, memory).
//! * [`backends`] — RAPL (`powercap`), HPE/Cray `pm_counters`, NVML-style,
//!   ROCm-SMI-style and dummy back-ends. File-based back-ends parse the real
//!   kernel file formats; GPU back-ends talk to a tiny trait so that simulated
//!   or real devices plug in identically.
//! * [`meter::PowerMeter`] — samples sensors, integrates power into energy
//!   ([`integration::EnergyAccumulator`]), and measures labelled regions.
//! * [`instrument::ProfilingHooks`] — the function-hook layer used to
//!   instrument a simulation's time-stepping loop, exactly as the paper does
//!   with SPH-EXA.
//! * [`report`] — per-rank measurement records, CSV round-trip, per-function
//!   aggregation for post-hoc analysis.
//!
//! ## Example
//!
//! ```
//! use pmt::backends::DummySensor;
//! use pmt::clock::ManualClock;
//! use pmt::{Domain, PowerMeter};
//!
//! // A meter over a 250 W "GPU" driven by a manual clock.
//! let clock = ManualClock::new();
//! let meter = PowerMeter::builder()
//!     .sensor(DummySensor::new(Domain::gpu(0), 250.0))
//!     .clock(clock.clone())
//!     .build();
//!
//! let (result, record) = meter
//!     .measure("MomentumEnergy", || {
//!         clock.advance(4.0); // the "kernel" takes 4 s
//!         2 + 2
//!     })
//!     .unwrap();
//!
//! assert_eq!(result, 4);
//! assert!((record.energy(Domain::gpu(0)) - 1000.0).abs() < 1e-9);
//! assert!((record.duration_s() - 4.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod backends;
pub mod clock;
pub mod domain;
pub mod error;
pub mod instrument;
pub mod integration;
pub mod meter;
pub mod registry;
pub mod report;
pub mod sample;
pub mod sensor;
pub mod units;

pub use clock::{Clock, ManualClock, WallClock};
pub use domain::{Domain, DomainKind};
pub use error::{PmtError, Result};
pub use instrument::{ProfilingHooks, RegionGuard};
pub use integration::EnergyAccumulator;
pub use meter::{MeterBuilder, PowerMeter, RegionObserver};
pub use registry::{discover_sensors, BackendKind, DiscoveredSensors, PlatformPaths};
pub use report::{aggregate_by_label, FunctionAggregate, MeasurementRecord, RankReport};
pub use sample::{DomainSample, TimedSample};
pub use sensor::Sensor;
