//! Clock abstraction.
//!
//! The meter timestamps every sample and region boundary through a [`Clock`].
//! Production deployments use the [`WallClock`]; the large-scale experiments in
//! this repository use an adapter over the simulated clock of the `hwmodel`
//! crate (see the `cluster` crate); unit tests use the [`ManualClock`].

use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;

/// A monotone time source measured in seconds since an arbitrary origin.
pub trait Clock: Send + Sync {
    /// Current time in seconds.
    fn now_s(&self) -> f64;
}

/// Wall-clock time relative to the moment the clock was created.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Create a wall clock with its origin at "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A manually advanced clock for tests and simulations.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    t: Arc<RwLock<f64>>,
}

impl ManualClock {
    /// Create a manual clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a manual clock at `t0` seconds.
    pub fn starting_at(t0: f64) -> Self {
        let c = Self::new();
        c.set(t0);
        c
    }

    /// Advance the clock by `dt` seconds.
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite());
        *self.t.write() += dt;
    }

    /// Set the absolute time (must be monotone).
    pub fn set(&self, t: f64) {
        let mut cur = self.t.write();
        assert!(t >= *cur, "manual clock cannot go backwards");
        *cur = t;
    }
}

impl Clock for ManualClock {
    fn now_s(&self) -> f64 {
        *self.t.read()
    }
}

/// A clock driven by a user-provided closure (used to adapt foreign clock types,
/// e.g. the simulated cluster clock, without introducing a crate dependency).
pub struct FnClock<F: Fn() -> f64 + Send + Sync>(pub F);

impl<F: Fn() -> f64 + Send + Sync> Clock for FnClock<F> {
    fn now_s(&self) -> f64 {
        (self.0)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now_s();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = c.now_s();
        assert!(b > a);
    }

    #[test]
    fn manual_clock_only_moves_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance(2.0);
        assert_eq!(c.now_s(), 2.0);
        let copy = c.clone();
        copy.advance(1.0);
        assert_eq!(c.now_s(), 3.0);
    }

    #[test]
    #[should_panic]
    fn manual_clock_rejects_backwards() {
        let c = ManualClock::starting_at(10.0);
        c.set(1.0);
    }

    #[test]
    fn fn_clock_delegates() {
        let c = FnClock(|| 42.0);
        assert_eq!(c.now_s(), 42.0);
    }
}
