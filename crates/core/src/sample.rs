//! Sample types produced by sensors.

use crate::domain::Domain;
use serde::{Deserialize, Serialize};

/// One reading of one domain.
///
/// A sensor may expose instantaneous power, a cumulative energy counter, or
/// both. The meter prefers cumulative counters (exact, no sampling error) and
/// falls back to integrating power samples when no counter is available —
/// mirroring how the real PMT back-ends behave (RAPL exposes energy counters,
/// NVML primarily exposes power).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainSample {
    /// The domain this reading refers to.
    pub domain: Domain,
    /// Instantaneous power in watts, if the sensor provides it.
    pub power_w: Option<f64>,
    /// Cumulative energy in joules since an arbitrary sensor-specific origin,
    /// if the sensor provides it. Must be monotone non-decreasing (back-ends
    /// unwrap hardware counter wrap-around before reporting).
    pub energy_j: Option<f64>,
}

impl DomainSample {
    /// A power-only sample.
    pub fn power(domain: Domain, power_w: f64) -> Self {
        Self {
            domain,
            power_w: Some(power_w),
            energy_j: None,
        }
    }

    /// An energy-counter-only sample.
    pub fn energy(domain: Domain, energy_j: f64) -> Self {
        Self {
            domain,
            power_w: None,
            energy_j: Some(energy_j),
        }
    }

    /// A sample carrying both power and a cumulative energy counter.
    pub fn both(domain: Domain, power_w: f64, energy_j: f64) -> Self {
        Self {
            domain,
            power_w: Some(power_w),
            energy_j: Some(energy_j),
        }
    }

    /// True if the sample carries no usable information.
    pub fn is_empty(&self) -> bool {
        self.power_w.is_none() && self.energy_j.is_none()
    }
}

/// A timestamped reading of one domain, as stored by the meter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimedSample {
    /// Timestamp in seconds on the meter's clock.
    pub time_s: f64,
    /// The reading.
    pub sample: DomainSample,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_populate_expected_fields() {
        let d = Domain::gpu(0);
        let p = DomainSample::power(d, 250.0);
        assert_eq!(p.power_w, Some(250.0));
        assert_eq!(p.energy_j, None);
        let e = DomainSample::energy(d, 1.0e3);
        assert_eq!(e.power_w, None);
        assert_eq!(e.energy_j, Some(1.0e3));
        let b = DomainSample::both(d, 250.0, 1.0e3);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_sample_detection() {
        let s = DomainSample {
            domain: Domain::node(),
            power_w: None,
            energy_j: None,
        };
        assert!(s.is_empty());
    }
}
